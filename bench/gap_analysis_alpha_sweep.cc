// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Gap analysis: where do the paper's Section 6.2.4 gain factors come from?
//
// On truly independent lists, a random access lands at a uniformly random
// position, so the probability that the run of seen positions just past the
// sorted cursor p is contiguous decays geometrically: the expected best-
// position advance is roughly e^{(m-1)p/n} - 1 positions, which is negligible
// until p approaches n. Canonical BPA therefore stops at (almost) TA's
// position on i.i.d. uniform data, and its measured gain is ~1x (see
// fig03_05_uniform_vary_m).
//
// The moment the lists are position-correlated — which the paper argues is
// the realistic case ("In real-world applications, there are usually such
// correlations", Section 6.1) — random accesses land near the sorted
// frontier, the prefix fills in, and the best position leaps ahead. This
// bench sweeps the correlation parameter alpha from strong correlation to
// fully independent lists at the paper's default m = 8 and reports the
// TA/BPA and TA/BPA2 execution-cost factors, locating the regime where the
// paper's approximations (m+6)/8 and (m+1)/2 hold.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  const size_t n = DefaultN();
  const size_t m = DefaultM();
  const size_t k = DefaultK();
  SumScorer sum;
  const TopKQuery query{k, &sum};

  FigureReporter report(
      "Gap analysis: execution-cost gain vs. TA as correlation weakens "
      "(m=8; paper approximations: BPA ~ 1.75, BPA2 ~ 4.5). alpha in 1e-4 "
      "units; 10000 = uniform (independent).",
      "alpha_1e4", {"TA/BPA", "TA/BPA2", "TA cost"});

  struct Point {
    double alpha;      // <0 means independent uniform
    uint64_t scaled;   // alpha * 1e4 for the x column
  };
  const std::vector<Point> points = {
      {0.0001, 1},   {0.001, 10},   {0.01, 100},
      {0.05, 500},   {0.2, 2000},   {0.5, 5000},
      {-1.0, 10000},  // fully independent (uniform database)
  };

  for (const Point& point : points) {
    const Database db =
        point.alpha < 0
            ? MakeDatabase(DatabaseKind::kUniform, n, m, 0.0, 64001)
            : MakeDatabase(DatabaseKind::kCorrelated, n, m, point.alpha,
                           64001);
    const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
    const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
    const Measurement bpa2 = Measure(AlgorithmKind::kBpa2, db, query);
    report.AddRow(point.scaled,
                  {ta.execution_cost / bpa.execution_cost,
                   ta.execution_cost / bpa2.execution_cost,
                   ta.execution_cost});
  }
  report.Print();
  std::cout
      << "Reading guide: at small alpha (strong correlation) BPA/BPA2 match\n"
         "the paper's factors; as lists become independent the BPA factor\n"
         "decays to ~1 because random accesses stop filling the prefix.\n";
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
