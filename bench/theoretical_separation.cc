// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Demonstrates Lemma 3 / Theorem 3 at scale: over the adversarial family of
// gen/adversarial.h, BPA's stopping position, access counts and execution
// cost are exactly (m-1) times lower than TA's — the paper's proven
// worst-case separation, realized on concrete databases.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "gen/adversarial.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  SumScorer sum;
  FigureReporter report(
      "Lemma 3 worst case (u=50, n=10000, k=20): TA vs BPA stopping position "
      "and cost ratio (expected ratio: exactly m-1)",
      "m", {"TA stop", "BPA stop", "TA cost", "BPA cost", "cost ratio"});
  for (size_t m : {3u, 4u, 5u, 6u, 8u, 10u, 12u}) {
    Lemma3Config config;
    config.m = m;
    config.u = 50;
    config.n = 10000;
    const Database db = MakeLemma3Database(config).ValueOrDie();
    const TopKQuery query{DefaultK(), &sum};
    const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
    const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
    report.AddRow(m, {static_cast<double>(ta.stop_position),
                      static_cast<double>(bpa.stop_position),
                      ta.execution_cost, bpa.execution_cost,
                      ta.execution_cost / bpa.execution_cost});
  }
  report.Print();
  std::cout << "Each row's cost ratio equals m-1: the separation proven in\n"
               "Theorem 3, realized on an explicit database family.\n";
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
