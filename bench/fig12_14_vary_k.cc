// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reproduces Figures 12, 13 and 14: execution cost vs. k over the uniform
// database (Figure 12) and correlated databases with α = 0.01 (Figure 13)
// and α = 0.001 (Figure 14); m = 8, n = 100,000.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void RunOne(int figure, DatabaseKind kind, double alpha, uint64_t seed) {
  const size_t n = DefaultN();
  const size_t m = DefaultM();
  SumScorer sum;
  std::string db_label = ToString(kind);
  if (kind == DatabaseKind::kCorrelated) {
    db_label += " alpha=" + std::to_string(alpha);
  }
  FigureReporter cost("Figure " + std::to_string(figure) +
                          ": Execution cost vs. k (" + db_label +
                          ", m=" + std::to_string(m) +
                          ", n=" + std::to_string(n) + ")",
                      "k", {"TA", "BPA", "BPA2"});
  const Database db = MakeDatabase(kind, n, m, alpha, seed);
  for (size_t k : KSweep()) {
    const TopKQuery query{k, &sum};
    const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
    const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
    const Measurement bpa2 = Measure(AlgorithmKind::kBpa2, db, query);
    cost.AddRow(k, {ta.execution_cost, bpa.execution_cost,
                    bpa2.execution_cost});
  }
  cost.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::RunOne(12, topk::DatabaseKind::kUniform, 0.0, 1200);
  topk::bench::RunOne(13, topk::DatabaseKind::kCorrelated, 0.01, 1300);
  topk::bench::RunOne(14, topk::DatabaseKind::kCorrelated, 0.001, 1400);
  return 0;
}
