// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Replays the paper's worked examples and prints measured vs. paper-reported
// values: Figure 1 (Examples 1-3: FA/TA/BPA stopping positions and access
// counts) and Figure 2 (Section 5: BPA vs. BPA2 access totals).

#include <iostream>

#include "common/table_printer.h"
#include "core/algorithms.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

void Run() {
  SumScorer sum;
  const TopKQuery query{3, &sum};

  {
    const Database db = MakeFigure1Database();
    TablePrinter table(
        "Figure 1 walkthrough (k=3, f=sum): stopping positions and accesses");
    table.AddRow("algorithm", "stop position", "paper", "sorted", "random",
                 "total accesses");
    struct Row {
      AlgorithmKind kind;
      const char* paper_stop;
    };
    for (const Row row : {Row{AlgorithmKind::kFa, "8"},
                          Row{AlgorithmKind::kTa, "6"},
                          Row{AlgorithmKind::kBpa, "3"},
                          Row{AlgorithmKind::kBpa2, "3 (rounds)"}}) {
      const TopKResult r =
          MakeAlgorithm(row.kind)->Execute(db, query).ValueOrDie();
      table.AddRow(ToString(row.kind), static_cast<uint64_t>(r.stop_position),
                   row.paper_stop, r.stats.sorted_accesses,
                   r.stats.random_accesses, r.stats.TotalAccesses());
    }
    table.Print(std::cout);
    std::cout << "\n";

    TablePrinter answers("Figure 1 top-3 (paper: d8=71, d3=70, d5=70)");
    answers.AddRow("rank", "item", "overall score");
    const TopKResult r =
        MakeAlgorithm(AlgorithmKind::kBpa)->Execute(db, query).ValueOrDie();
    for (size_t i = 0; i < r.items.size(); ++i) {
      answers.AddRow(i + 1, PaperItemLabel(r.items[i].item),
                     r.items[i].score);
    }
    answers.Print(std::cout);
    std::cout << "\n";
  }

  {
    const Database db = MakeFigure2Database();
    TablePrinter table(
        "Figure 2 walkthrough (k=3, f=sum): BPA=63 vs BPA2=36 accesses "
        "(paper, Section 5.1)");
    table.AddRow("algorithm", "sorted", "direct", "random", "total",
                 "paper total");
    for (const auto& [kind, paper] :
         std::initializer_list<std::pair<AlgorithmKind, const char*>>{
             {AlgorithmKind::kBpa, "63"}, {AlgorithmKind::kBpa2, "36"}}) {
      const TopKResult r =
          MakeAlgorithm(kind)->Execute(db, query).ValueOrDie();
      table.AddRow(ToString(kind), r.stats.sorted_accesses,
                   r.stats.direct_accesses, r.stats.random_accesses,
                   r.stats.TotalAccesses(), paper);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace topk

int main() {
  topk::Run();
  return 0;
}
