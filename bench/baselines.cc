// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Related-work baseline comparison (Sections 3 and 7): total accesses and
// execution cost of Naive, FA, NRA, TPUT, TA, BPA and BPA2 over a moderate
// uniform database. FA and NRA blow up quickly with m, which is exactly the
// behaviour the paper's lineage (FA -> TA -> BPA/BPA2) was designed to fix,
// so this bench uses a reduced n and stops the m sweep at 8.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  const size_t n = SmokeMode() ? 2000 : 10000;
  const size_t k = 10;
  SumScorer sum;
  const TopKQuery query{k, &sum};

  FigureReporter accesses(
      "Baselines: total accesses vs. m (uniform database, n=" +
          std::to_string(n) + ", k=" + std::to_string(k) + ")",
      "m", {"Naive", "FA", "NRA", "TPUT", "TA", "BPA", "BPA2"});
  FigureReporter cost(
      "Baselines: execution cost vs. m (uniform database, n=" +
          std::to_string(n) + ", k=" + std::to_string(k) + ")",
      "m", {"Naive", "FA", "NRA", "TPUT", "TA", "BPA", "BPA2"});

  for (size_t m : {2u, 4u, 6u, 8u}) {
    const Database db =
        MakeDatabase(DatabaseKind::kUniform, n, m, 0.0, 15000 + m);
    std::vector<double> acc_row;
    std::vector<double> cost_row;
    for (AlgorithmKind kind :
         {AlgorithmKind::kNaive, AlgorithmKind::kFa, AlgorithmKind::kNra,
          AlgorithmKind::kTput, AlgorithmKind::kTa, AlgorithmKind::kBpa,
          AlgorithmKind::kBpa2}) {
      const Measurement mm = Measure(kind, db, query);
      acc_row.push_back(static_cast<double>(mm.accesses));
      cost_row.push_back(mm.execution_cost);
    }
    accesses.AddRow(m, acc_row);
    cost.AddRow(m, cost_row);
  }
  accesses.Print();
  cost.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
