// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reproduces Figures 9, 10 and 11: execution cost vs. the number of lists m
// over correlated databases with α = 0.001, 0.01 and 0.1 (n = 100,000,
// k = 20, Zipf θ = 0.7 scores; Section 6.1).

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void RunOne(int figure, double alpha) {
  const size_t n = DefaultN();
  const size_t k = DefaultK();
  SumScorer sum;
  FigureReporter cost("Figure " + std::to_string(figure) +
                          ": Execution cost vs. number of lists (correlated "
                          "database, alpha=" +
                          std::to_string(alpha) + ", k=" + std::to_string(k) +
                          ", n=" + std::to_string(n) + ")",
                      "m", {"TA", "BPA", "BPA2"});
  for (size_t m : MSweep()) {
    const Database db =
        MakeDatabase(DatabaseKind::kCorrelated, n, m, alpha, 9000 + m);
    const TopKQuery query{k, &sum};
    const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
    const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
    const Measurement bpa2 = Measure(AlgorithmKind::kBpa2, db, query);
    cost.AddRow(m, {ta.execution_cost, bpa.execution_cost,
                    bpa2.execution_cost});
  }
  cost.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::RunOne(9, 0.001);
  topk::bench::RunOne(10, 0.01);
  topk::bench::RunOne(11, 0.1);
  return 0;
}
