// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reproduces Figures 3, 4 and 5: execution cost / number of accesses /
// response time vs. the number of lists m over the uniform database
// (n = 100,000, k = 20, sum scoring). Also prints the measured TA/BPA and
// TA/BPA2 cost factors next to the paper's approximations (m+6)/8 and
// (m+1)/2.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  const size_t n = DefaultN();
  const size_t k = DefaultK();
  SumScorer sum;
  const std::string suffix =
      " (uniform database, k=" + std::to_string(k) +
      ", n=" + std::to_string(n) + ")";

  FigureReporter cost("Figure 3: Execution cost vs. number of lists" + suffix,
                      "m", {"TA", "BPA", "BPA2"});
  FigureReporter accesses(
      "Figure 4: Number of accesses vs. number of lists" + suffix, "m",
      {"TA", "BPA", "BPA2"});
  FigureReporter response(
      "Figure 5: Response time (ms) vs. number of lists" + suffix, "m",
      {"TA", "BPA", "BPA2"});
  FigureReporter factors(
      "Cost factor vs. TA (paper: BPA ~ (m+6)/8, BPA2 ~ (m+1)/2)", "m",
      {"TA/BPA", "(m+6)/8", "TA/BPA2", "(m+1)/2"});

  for (size_t m : MSweep()) {
    const Database db =
        MakeDatabase(DatabaseKind::kUniform, n, m, 0.0, 4200 + m);
    const TopKQuery query{k, &sum};
    const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
    const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
    const Measurement bpa2 = Measure(AlgorithmKind::kBpa2, db, query);
    cost.AddRow(m, {ta.execution_cost, bpa.execution_cost,
                    bpa2.execution_cost});
    accesses.AddRow(m, {static_cast<double>(ta.accesses),
                        static_cast<double>(bpa.accesses),
                        static_cast<double>(bpa2.accesses)});
    response.AddRow(m, {ta.response_ms, bpa.response_ms, bpa2.response_ms});
    factors.AddRow(m, {ta.execution_cost / bpa.execution_cost,
                       (static_cast<double>(m) + 6.0) / 8.0,
                       ta.execution_cost / bpa2.execution_cost,
                       (static_cast<double>(m) + 1.0) / 2.0});
  }
  cost.Print();
  accesses.Print();
  response.Print();
  factors.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
