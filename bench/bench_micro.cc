// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// google-benchmark micro-benchmarks for the library's building blocks:
// best-position trackers (the Section 5.2 data-structure trade-off at the
// operation level), B+tree inserts, sorted-list access primitives, the top-k
// buffer, workload generators, and small end-to-end algorithm executions.
//
// Besides the google-benchmark suite, `bench_micro --json[=path]` runs the
// batch throughput benchmark and emits the measurements as JSON (default
// path: BENCH_PR5.json) to track the perf trajectory. With no scenario flags
// it measures the full trajectory set — the historical cache-resident shape
// (uniform n=10k m=5 k=20, comparable with BENCH_PR1–PR4.json) plus the
// DRAM-resident regime (uniform and zipf at n=1M) — as one JSON document
// with a "workloads" array. Scenario flags select a single workload instead:
//
//   --n=<items> --m=<lists> --k=<answers>
//   --dist={uniform,gaussian,correlated,zipf}   score distribution
//   --quick   ~10x fewer queries and, in trajectory mode, the n=1M set
//             reduced to one BPA + one CA series (CI per-push capture of
//             the DRAM-resident regime — the random-access and dual-heap
//             hot paths — not a stable measurement)
//   --deadline-ms=MS --access-budget=N   arm the query governor for every
//             measured execution: the batch then times the *anytime* path
//             (stop at a round boundary, certify bounds) instead of the
//             run-to-exact path, and each series records its completion
//
// `bench_micro --degrade-json[=path]` (default path: DEGRADE_PR6.json) runs
// the degradation-quality sweep instead: for each algorithm it measures the
// answer quality — recall against the Naive oracle, certified theta — at
// access budgets set to fixed fractions of the algorithm's own ungoverned
// access count, plus one targeted-kill fault scenario (failover quality).
// CI uploads the artifact next to the --quick trajectory JSON.
//
// `bench_micro --serve-json[=path]` (default path: BENCH_PR7.json) runs the
// open-loop serving benchmark: a TopKServer (--threads workers, every request
// arming the --serve-deadline-ms SLA) is offered Poisson arrivals at swept
// fractions of its nominal capacity — below, near and above saturation — and
// each point reports p50/p95/p99 latency (measured from the *scheduled*
// arrival, so a backed-up server is charged its queueing delay instead of
// hiding it: no coordinated omission), the shed rate, and the achieved
// throughput next to the single-thread closed-loop baseline.
//
// `bench_micro --dist-json[=path]` (default path: BENCH_PR10.json) measures
// the distributed coordinator: per-query message and byte counts for
// distributed BPA/TPUT over in-process list-owner shards across an n/m/k
// grid (fault-free, so the counts are exact and deterministic), then a
// degradation sweep over replication factor (R=1 vs R=2) x owner-death x
// delay rates reporting recall against the exact answer, the certified
// theta of each degraded answer, SLA compliance under a 250 virtual-ms
// governor deadline, and the retry/hedge/timeout/failover counters of the
// fault machinery, plus a deterministic targeted-kill section (one replica
// of one list dies mid-query: R=1 degrades with a certificate, R=2 stays
// exact). The degradation object is also written standalone next to the
// main artifact (<path minus .json>-degradation.json). --quick trims the
// grid and the per-cell seed count for CI.
//
// The BPA series is measured in two modes — a fresh ExecutionContext per
// query (the pre-PR1 per-query allocation path) vs one reused context — so
// the number stays comparable with BENCH_PR1.json. The two modes run as
// interleaved chunk pairs (reused chunk, fresh chunk, repeated), not as two
// sequential blocks: on a shared vCPU, minutes-apart blocks sit in
// different host-noise phases, which is exactly how BENCH_PR4.json recorded
// the nonsensical uniform-10k `speedup_reused_vs_fresh: 0.977` (reused
// "slower" than the allocating path); interleaving puts both modes in every
// phase so their ratio cancels the drift. The no-random-access family (NRA,
// CA, TPUT), whose candidate bookkeeping lives in the flat CandidatePool
// (PR 2) with the per-mask group index (PR 3), NRA pool compaction (PR 4),
// and the dual-heap min side + hugepage arena (PR 5), is measured in the
// reused-context (zero-allocation) mode — with n=1M query counts raised in
// PR 5 now that the deep scanners are several times cheaper there.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flag_parse.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/algorithms.h"
#include "core/candidate_bounds.h"
#include "core/topk_server.h"
#include "dist/coordinator.h"
#include "dist/fault_injecting_transport.h"
#include "dist/in_process_transport.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"
#include "tracker/best_position_tracker.h"
#include "tracker/bplus_tree.h"

namespace topk {
namespace {

// --- trackers ---

void BM_TrackerMarkSeen(benchmark::State& state, TrackerKind kind) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<Position> positions(n);
  for (auto& p : positions) {
    p = static_cast<Position>(1 + rng.NextBounded(n));
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto tracker = MakeTracker(kind, n);
    state.ResumeTiming();
    for (Position p : positions) {
      tracker->MarkSeen(p);
    }
    benchmark::DoNotOptimize(tracker->best_position());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(positions.size()));
}

void BM_BitArrayTracker(benchmark::State& state) {
  BM_TrackerMarkSeen(state, TrackerKind::kBitArray);
}
void BM_BPlusTreeTracker(benchmark::State& state) {
  BM_TrackerMarkSeen(state, TrackerKind::kBPlusTree);
}
void BM_SortedSetTracker(benchmark::State& state) {
  BM_TrackerMarkSeen(state, TrackerKind::kSortedSet);
}
BENCHMARK(BM_BitArrayTracker)->Arg(1 << 12)->Arg(1 << 16);
BENCHMARK(BM_BPlusTreeTracker)->Arg(1 << 12)->Arg(1 << 16);
BENCHMARK(BM_SortedSetTracker)->Arg(1 << 12)->Arg(1 << 16);

// Sparse workload (few accesses over a huge list): the B+tree's O(log u)
// regime vs. the bit array's O(n/u).
void BM_TrackerSparse(benchmark::State& state, TrackerKind kind) {
  const size_t n = 10'000'000;
  const size_t u = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<Position> positions(u);
  for (auto& p : positions) {
    p = static_cast<Position>(1 + rng.NextBounded(n));
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto tracker = MakeTracker(kind, n);
    state.ResumeTiming();
    for (Position p : positions) {
      tracker->MarkSeen(p);
    }
    benchmark::DoNotOptimize(tracker->best_position());
  }
}
void BM_BitArraySparse(benchmark::State& state) {
  BM_TrackerSparse(state, TrackerKind::kBitArray);
}
void BM_BPlusTreeSparse(benchmark::State& state) {
  BM_TrackerSparse(state, TrackerKind::kBPlusTree);
}
BENCHMARK(BM_BitArraySparse)->Arg(1000);
BENCHMARK(BM_BPlusTreeSparse)->Arg(1000);

// --- B+tree ---

void BM_BPlusTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) {
    k = static_cast<uint32_t>(rng.NextBounded(n * 4));
  }
  for (auto _ : state) {
    BPlusTree tree;
    for (uint32_t k : keys) {
      tree.Insert(k);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1024)->Arg(65536);

// --- sorted list primitives ---

void BM_SortedListLookup(benchmark::State& state) {
  const size_t n = 100000;
  const Database db = MakeUniformDatabase(n, 1, 4);
  Rng rng(5);
  std::vector<ItemId> items(1024);
  for (auto& item : items) {
    item = static_cast<ItemId>(rng.NextBounded(n));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.list(0).Lookup(items[i++ & 1023]));
  }
}
BENCHMARK(BM_SortedListLookup);

void BM_SortedListEntryAt(benchmark::State& state) {
  const size_t n = 100000;
  const Database db = MakeUniformDatabase(n, 1, 6);
  Position p = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.list(0).EntryAt(p));
    p = p % n + 1;
  }
}
BENCHMARK(BM_SortedListEntryAt);

// --- top-k buffer ---

void BM_TopKBufferOffer(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<Score> scores(8192);
  for (auto& s : scores) {
    s = rng.NextDouble();
  }
  for (auto _ : state) {
    TopKBuffer buffer(k);
    for (size_t i = 0; i < scores.size(); ++i) {
      buffer.Offer(static_cast<ItemId>(i), scores[i]);
    }
    benchmark::DoNotOptimize(buffer.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scores.size()));
}
BENCHMARK(BM_TopKBufferOffer)->Arg(20)->Arg(100);

// --- generators ---

void BM_UniformGeneration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeUniformDatabase(n, 4, ++seed));
  }
}
BENCHMARK(BM_UniformGeneration)->Arg(10000);

void BM_CorrelatedGeneration(benchmark::State& state) {
  CorrelatedConfig config;
  config.n = static_cast<size_t>(state.range(0));
  config.m = 4;
  config.alpha = 0.01;
  for (auto _ : state) {
    ++config.seed;
    benchmark::DoNotOptimize(MakeCorrelatedDatabase(config).ValueOrDie());
  }
}
BENCHMARK(BM_CorrelatedGeneration)->Arg(10000);

// --- end-to-end algorithm executions (small scale) ---

void BM_Algorithm(benchmark::State& state, AlgorithmKind kind) {
  static const Database db = MakeUniformDatabase(20000, 4, 8);
  static const SumScorer sum;
  const TopKQuery query{20, &sum};
  auto algorithm = MakeAlgorithm(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm->Execute(db, query).ValueOrDie());
  }
}
void BM_TaEndToEnd(benchmark::State& state) {
  BM_Algorithm(state, AlgorithmKind::kTa);
}
void BM_BpaEndToEnd(benchmark::State& state) {
  BM_Algorithm(state, AlgorithmKind::kBpa);
}
void BM_Bpa2EndToEnd(benchmark::State& state) {
  BM_Algorithm(state, AlgorithmKind::kBpa2);
}
BENCHMARK(BM_TaEndToEnd);
BENCHMARK(BM_BpaEndToEnd);
BENCHMARK(BM_Bpa2EndToEnd);

// --- batch throughput mode (--json) ---

// Runs `queries` BPA executions and returns wall milliseconds. `reuse_context`
// selects between the zero-allocation reused-context path and a fresh context
// (plus result) per query, which reproduces the per-query allocation behavior
// of the seed implementation.
double MeasureBatchMillis(const TopKAlgorithm& algorithm, const Database& db,
                          const TopKQuery& query, int queries,
                          bool reuse_context, Score* checksum) {
  *checksum = 0.0;
  if (reuse_context) {
    ExecutionContext context;
    TopKResult result;
    for (int i = 0; i < 3; ++i) {  // warm-up
      algorithm.ExecuteInto(db, query, &context, &result).Abort("warm-up");
    }
    Timer timer;
    for (int i = 0; i < queries; ++i) {
      algorithm.ExecuteInto(db, query, &context, &result).Abort("bench query");
      // A governed run may return fewer than k items (anytime answer).
      *checksum += result.items.empty() ? 0.0 : result.items.front().score;
    }
    return timer.ElapsedMillis();
  }
  Timer timer;
  for (int i = 0; i < queries; ++i) {
    ExecutionContext context;
    const TopKResult result =
        algorithm.Execute(db, query, &context).ValueOrDie();
    *checksum += result.items.empty() ? 0.0 : result.items.front().score;
  }
  return timer.ElapsedMillis();
}

// Chunk pairs of the interleaved fresh-vs-reused comparison. 5 pairs spread
// both modes across ~the whole measurement window; more would shrink chunks
// below timer resolution for fast workloads.
constexpr int kFreshReusedPairs = 5;

// Measures the reused-context and fresh-context-per-query modes as
// kFreshReusedPairs interleaved chunk pairs over `queries` executions each,
// accumulating per-mode wall time. Both modes experience every host-noise
// phase of the measurement window, so the reported speedup is a paired
// comparison instead of a difference of two minutes-apart block averages
// (see the file comment — the BENCH_PR4 0.977 anomaly).
void MeasureInterleavedBatch(const TopKAlgorithm& algorithm,
                             const Database& db, const TopKQuery& query,
                             int queries, double* reused_ms, double* fresh_ms,
                             Score* reused_checksum, Score* fresh_checksum) {
  ExecutionContext context;
  TopKResult result;
  for (int i = 0; i < 3; ++i) {  // warm-up
    algorithm.ExecuteInto(db, query, &context, &result).Abort("warm-up");
  }
  *reused_ms = 0.0;
  *fresh_ms = 0.0;
  *reused_checksum = 0.0;
  *fresh_checksum = 0.0;
  int done_reused = 0;
  int done_fresh = 0;
  for (int pair = 1; pair <= kFreshReusedPairs; ++pair) {
    const int target = queries * pair / kFreshReusedPairs;
    Timer reused_timer;
    for (; done_reused < target; ++done_reused) {
      algorithm.ExecuteInto(db, query, &context, &result).Abort("bench query");
      *reused_checksum +=
          result.items.empty() ? 0.0 : result.items.front().score;
    }
    *reused_ms += reused_timer.ElapsedMillis();
    Timer fresh_timer;
    for (; done_fresh < target; ++done_fresh) {
      ExecutionContext fresh_context;
      const TopKResult fresh_result =
          algorithm.Execute(db, query, &fresh_context).ValueOrDie();
      *fresh_checksum +=
          fresh_result.items.empty() ? 0.0 : fresh_result.items.front().score;
    }
    *fresh_ms += fresh_timer.ElapsedMillis();
  }
}

// One per-algorithm series of the throughput report.
struct ThroughputSeries {
  AlgorithmKind kind;
  int queries;        // NRA/CA scan far deeper than BPA; fewer reps suffice
  bool measure_fresh; // fresh-vs-reused only for BPA (the PR 1 trajectory)
};

// One workload of the throughput report: a database shape plus the series
// measured against it.
struct ThroughputScenario {
  std::string dist;
  size_t n;
  size_t m;
  size_t k;
  std::vector<ThroughputSeries> series;
};

// Command-line configuration of the throughput and degradation modes.
struct ThroughputConfig {
  size_t n = 10000;
  size_t m = 5;
  size_t k = 20;
  std::string dist = "uniform";
  bool explicit_workload = false;  // any of --n/--m/--k/--dist given
  bool quick = false;  // ~10x fewer queries: CI trajectory capture
  std::string json_path = "BENCH_PR5.json";
  // Governor limits applied to every measured execution (0 = unlimited).
  double deadline_ms = 0.0;
  uint64_t access_budget = 0;
  std::string degrade_path = "DEGRADE_PR6.json";
  // Open-loop serving mode (--serve-json).
  std::string serve_path = "BENCH_PR7.json";
  size_t threads = 0;  // 0 = hardware concurrency
  double serve_deadline_ms = 25.0;
  size_t serve_requests = 0;  // 0 = auto (scaled down by --quick)
  // Distributed coordinator mode (--dist-json).
  std::string dist_path = "BENCH_PR10.json";
};

// The workloads a flag-less --json run measures: the historical
// cache-resident trajectory shape first (comparable with BENCH_PR1–PR4),
// then the DRAM-resident n=1M regime under uniform and zipf scores. Query
// counts shrink with n but were raised for NRA/CA/TPUT in PR 5 (the
// dual-heap prune/compaction peels and the hugepage-backed pool cut their
// per-query cost several-fold, so more repetitions fit the same budget);
// --quick cuts counts ~10x and reduces the n=1M set to one BPA and one CA
// series — the random-access and dual-heap hot paths — so CI can afford a
// per-push capture.
// The cache-resident series set (BPA fresh-vs-reused plus the pool family),
// shared by the default trajectory's first scenario and the explicit
// --n/--m/--k/--dist workload so their query counts cannot diverge.
std::vector<ThroughputSeries> CacheResidentSeries(int scale) {
  return {{AlgorithmKind::kBpa, 1000 / scale, true},
          {AlgorithmKind::kNra, 100 / scale, false},
          {AlgorithmKind::kCa, 200 / scale, false},
          {AlgorithmKind::kTput, 200 / scale, false}};
}

std::vector<ThroughputScenario> TrajectoryScenarios(bool quick) {
  const int scale = quick ? 10 : 1;
  std::vector<ThroughputScenario> scenarios;
  scenarios.push_back({"uniform", 10000, 5, 20, CacheResidentSeries(scale)});
  if (quick) {
    scenarios.push_back({"uniform", 1000000, 5, 20,
                         {{AlgorithmKind::kBpa, 20, false},
                          {AlgorithmKind::kCa, 5, false}}});
    return scenarios;
  }
  scenarios.push_back({"uniform", 1000000, 5, 20,
                       {{AlgorithmKind::kBpa, 100, true},
                        {AlgorithmKind::kNra, 30, false},
                        {AlgorithmKind::kCa, 20, false},
                        {AlgorithmKind::kTput, 15, false}}});
  scenarios.push_back({"zipf", 1000000, 5, 20,
                       {{AlgorithmKind::kBpa, 100, true},
                        {AlgorithmKind::kNra, 30, false},
                        {AlgorithmKind::kCa, 20, false},
                        {AlgorithmKind::kTput, 15, false}}});
  return scenarios;
}

// Measures one scenario and appends its JSON object to `json`. Returns false
// on an unservable workload or checksum mismatch (already reported).
bool AppendScenarioJson(const ThroughputScenario& scenario,
                        const ThroughputConfig& config, std::string& json) {
  const bool quick = config.quick;
  DatabaseKind kind = DatabaseKind::kUniform;
  ParseDatabaseKind(scenario.dist, &kind);  // validated by the caller
  const Database db = MakeDatabaseOfKind(kind, scenario.n, scenario.m, 11);
  // Gaussian (and in principle correlated) scores go negative; the pool
  // algorithms need a floor no local score undercuts.
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  options.governor.deadline_ms = config.deadline_ms;
  options.governor.total_access_budget = config.access_budget;
  SumScorer sum;
  const TopKQuery query{scenario.k, &sum};

  char line[1024];
  std::snprintf(line, sizeof(line),
                "    {\"workload\": {\"distribution\": \"%s\", \"n\": %zu,"
                " \"m\": %zu, \"k\": %zu, \"quick\": %s},\n"
                "     \"series\": [\n",
                scenario.dist.c_str(), scenario.n, scenario.m, scenario.k,
                quick ? "true" : "false");
  json += line;

  bool first = true;
  for (const ThroughputSeries& s : scenario.series) {
    const auto algorithm = MakeAlgorithm(s.kind, options);
    // Access counts are deterministic per query; probe them once. The probe
    // also validates the scenario against the algorithm (e.g. the pool
    // family's 64-list cap) so an unservable workload reports the status
    // instead of aborting mid-measurement.
    const auto probe_result = algorithm->Execute(db, query);
    if (!probe_result.ok()) {
      std::fprintf(stderr, "%s cannot serve this workload: %s\n",
                   ToString(s.kind).c_str(),
                   probe_result.status().ToString().c_str());
      return false;
    }
    const TopKResult& probe = probe_result.ValueOrDie();

    Score reused_checksum = 0.0;
    Score fresh_checksum = 0.0;
    double reused_ms = 0.0;
    double fresh_ms = 0.0;
    if (s.measure_fresh) {
      MeasureInterleavedBatch(*algorithm, db, query, s.queries, &reused_ms,
                              &fresh_ms, &reused_checksum, &fresh_checksum);
      // A wall-clock deadline trips nondeterministically, so the two modes
      // may legitimately return different anytime prefixes; access-budget
      // trips are deterministic and keep the checksums comparable.
      if (config.deadline_ms == 0.0 && fresh_checksum != reused_checksum) {
        std::fprintf(stderr, "%s checksum mismatch: %f vs %f\n",
                     ToString(s.kind).c_str(), fresh_checksum,
                     reused_checksum);
        return false;
      }
    } else {
      reused_ms = MeasureBatchMillis(*algorithm, db, query, s.queries,
                                     /*reuse_context=*/true, &reused_checksum);
    }
    const double reused_qps = 1000.0 * s.queries / reused_ms;

    if (!first) {
      json += ",\n";
    }
    first = false;
    std::snprintf(
        line, sizeof(line),
        "      {\"algorithm\": \"%s\", \"queries\": %d,\n"
        "       \"per_query_accesses\": {\"sorted\": %llu, \"random\": %llu,"
        " \"direct\": %llu, \"total\": %llu},\n"
        "       \"reused_context\": {\"wall_ms\": %.3f,"
        " \"queries_per_sec\": %.1f}",
        ToString(s.kind).c_str(), s.queries,
        static_cast<unsigned long long>(probe.stats.sorted_accesses),
        static_cast<unsigned long long>(probe.stats.random_accesses),
        static_cast<unsigned long long>(probe.stats.direct_accesses),
        static_cast<unsigned long long>(probe.stats.TotalAccesses()),
        reused_ms, reused_qps);
    json += line;

    if (options.governor.enabled()) {
      std::snprintf(line, sizeof(line),
                    ",\n       \"completion\": \"%s\", \"theta\": %.6f",
                    ToString(probe.completion),
                    std::isfinite(probe.theta) ? probe.theta : -1.0);
      json += line;
    }
    if (s.measure_fresh) {
      std::snprintf(line, sizeof(line),
                    ",\n       \"fresh_context_per_query\": {\"wall_ms\":"
                    " %.3f, \"queries_per_sec\": %.1f},\n"
                    "       \"fresh_reused_interleaved_pairs\": %d,\n"
                    "       \"speedup_reused_vs_fresh\": %.3f",
                    fresh_ms, 1000.0 * s.queries / fresh_ms,
                    kFreshReusedPairs, fresh_ms / reused_ms);
      json += line;
    }
    json += "}";
  }
  json += "\n    ]}";
  return true;
}

int RunThroughputMode(const ThroughputConfig& config) {
  std::vector<ThroughputScenario> scenarios;
  if (config.explicit_workload) {
    if (config.k == 0 || config.k > config.n || config.m == 0) {
      std::fprintf(stderr, "invalid workload: n=%zu m=%zu k=%zu\n", config.n,
                   config.m, config.k);
      return 1;
    }
    DatabaseKind kind;
    if (!ParseDatabaseKind(config.dist, &kind)) {
      std::fprintf(stderr,
                   "unknown --dist=%s (uniform|gaussian|correlated|zipf)\n",
                   config.dist.c_str());
      return 1;
    }
    const int scale = config.quick ? 10 : 1;
    scenarios.push_back({config.dist, config.n, config.m, config.k,
                         CacheResidentSeries(scale)});
  } else {
    scenarios = TrajectoryScenarios(config.quick);
  }

  std::string json;
  json += "{\n";
  json += "  \"benchmark\": \"batch_throughput\",\n";
  json += "  \"workloads\": [\n";
  bool first = true;
  for (const ThroughputScenario& scenario : scenarios) {
    if (!first) {
      json += ",\n";
    }
    first = false;
    // The database is built (and freed) inside the call: the n=1M scenarios
    // each hold ~200 MB, and only one needs to live at a time.
    if (!AppendScenarioJson(scenario, config, json)) {
      return 1;
    }
  }
  json += "\n  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen(config.json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
    return 1;
  }
  return 0;
}

// --- degradation-quality mode (--degrade-json) ---

// Fraction of the returned items that belong to the oracle's exact top-k.
// Score ties are measure-zero under the generators' double scores, so the
// id-set comparison is exact in practice.
double RecallVsTruth(const TopKResult& result,
                     const std::vector<ItemId>& truth_sorted, size_t k) {
  size_t hits = 0;
  for (const ResultItem& item : result.items) {
    hits += std::binary_search(truth_sorted.begin(), truth_sorted.end(),
                               item.item);
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

// Appends the per-run quality fields shared by the budget sweep and the
// fault scenario. Theta can be +inf when nothing was certified; JSON has no
// inf, so it is reported as -1 (meaning "no certificate").
void AppendQualityJson(const TopKResult& result,
                       const std::vector<ItemId>& truth_sorted, size_t k,
                       std::string& json) {
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "\"completion\": \"%s\", \"returned\": %zu, \"recall\": %.4f,\n"
      "         \"theta\": %.6f, \"kth_lower_bound\": %.6f,"
      " \"unreturned_upper_bound\": %.6f,\n"
      "         \"accesses\": %llu",
      ToString(result.completion), result.items.size(),
      RecallVsTruth(result, truth_sorted, k),
      std::isfinite(result.theta) ? result.theta : -1.0,
      std::isfinite(result.kth_lower_bound) ? result.kth_lower_bound : -1.0,
      std::isfinite(result.unreturned_upper_bound)
          ? result.unreturned_upper_bound
          : -1.0,
      static_cast<unsigned long long>(result.stats.TotalAccesses()));
  json += line;
}

// Measures how gracefully each algorithm degrades: answer quality (recall vs
// the Naive oracle, certified theta) at access budgets set to fractions of
// the algorithm's own ungoverned access count, plus one targeted-kill fault
// scenario exercising the failover path. Quality, not time, is the point —
// every run executes once (the answers are deterministic).
int RunDegradeMode(const ThroughputConfig& config) {
  if (config.k == 0 || config.k > config.n || config.m < 2) {
    std::fprintf(stderr, "invalid workload: n=%zu m=%zu k=%zu (need m >= 2)\n",
                 config.n, config.m, config.k);
    return 1;
  }
  DatabaseKind kind;
  if (!ParseDatabaseKind(config.dist, &kind)) {
    std::fprintf(stderr,
                 "unknown --dist=%s (uniform|gaussian|correlated|zipf)\n",
                 config.dist.c_str());
    return 1;
  }
  const Database db = MakeDatabaseOfKind(kind, config.n, config.m, 11);
  AlgorithmOptions base_options;
  base_options.score_floor = DeriveScoreFloor(db);
  SumScorer sum;
  const TopKQuery query{config.k, &sum};

  const TopKResult oracle = MakeAlgorithm(AlgorithmKind::kNaive)
                                ->Execute(db, query)
                                .ValueOrDie();
  std::vector<ItemId> truth_sorted;
  truth_sorted.reserve(oracle.items.size());
  for (const ResultItem& item : oracle.items) {
    truth_sorted.push_back(item.item);
  }
  std::sort(truth_sorted.begin(), truth_sorted.end());

  constexpr double kBudgetFractions[] = {0.125, 0.25, 0.5, 0.75, 1.0};
  const AlgorithmKind kinds[] = {AlgorithmKind::kFa,   AlgorithmKind::kTa,
                                 AlgorithmKind::kBpa,  AlgorithmKind::kBpa2,
                                 AlgorithmKind::kTput, AlgorithmKind::kNra,
                                 AlgorithmKind::kCa};

  std::string json;
  json += "{\n";
  json += "  \"benchmark\": \"degradation_quality\",\n";
  char line[1024];
  std::snprintf(line, sizeof(line),
                "  \"workload\": {\"distribution\": \"%s\", \"n\": %zu,"
                " \"m\": %zu, \"k\": %zu},\n"
                "  \"series\": [\n",
                config.dist.c_str(), config.n, config.m, config.k);
  json += line;

  bool first_series = true;
  for (AlgorithmKind algo : kinds) {
    const auto ungoverned = MakeAlgorithm(algo, base_options);
    const auto probe_result = ungoverned->Execute(db, query);
    if (!probe_result.ok()) {
      std::fprintf(stderr, "%s cannot serve this workload: %s\n",
                   ToString(algo).c_str(),
                   probe_result.status().ToString().c_str());
      return 1;
    }
    const uint64_t full_accesses =
        probe_result.ValueOrDie().stats.TotalAccesses();

    if (!first_series) {
      json += ",\n";
    }
    first_series = false;
    std::snprintf(line, sizeof(line),
                  "    {\"algorithm\": \"%s\","
                  " \"ungoverned_total_accesses\": %llu,\n"
                  "     \"budget_sweep\": [\n",
                  ToString(algo).c_str(),
                  static_cast<unsigned long long>(full_accesses));
    json += line;

    bool first_point = true;
    for (double fraction : kBudgetFractions) {
      AlgorithmOptions options = base_options;
      options.governor.total_access_budget = std::max<uint64_t>(
          1, static_cast<uint64_t>(fraction * full_accesses));
      const auto run = MakeAlgorithm(algo, options)->Execute(db, query);
      if (!run.ok()) {
        std::fprintf(stderr, "%s under budget failed: %s\n",
                     ToString(algo).c_str(), run.status().ToString().c_str());
        return 1;
      }
      if (!first_point) {
        json += ",\n";
      }
      first_point = false;
      std::snprintf(
          line, sizeof(line),
          "       {\"budget_fraction\": %.3f, \"budget\": %llu, ", fraction,
          static_cast<unsigned long long>(
              options.governor.total_access_budget));
      json += line;
      AppendQualityJson(run.ValueOrDie(), truth_sorted, config.k, json);
      json += "}";
    }
    json += "\n     ],\n";

    // Targeted kill: list 1 dies after 100 accesses. The random-access
    // algorithms fail over to NRA over the survivors; NRA/CA degrade in
    // place with widened bounds.
    AlgorithmOptions fault_options = base_options;
    fault_options.fault_plan.kill_list = 1;
    fault_options.fault_plan.kill_after_accesses = 100;
    const auto faulted = MakeAlgorithm(algo, fault_options)->Execute(db, query);
    if (!faulted.ok()) {
      std::fprintf(stderr, "%s under targeted kill failed: %s\n",
                   ToString(algo).c_str(),
                   faulted.status().ToString().c_str());
      return 1;
    }
    const TopKResult& fault_result = faulted.ValueOrDie();
    std::snprintf(line, sizeof(line),
                  "     \"targeted_kill\": {\"kill_list\": 1,"
                  " \"kill_after_accesses\": 100, \"failed_over\": %s,"
                  " \"dead_lists\": %u,\n         ",
                  fault_result.failed_over ? "true" : "false",
                  fault_result.dead_lists);
    json += line;
    AppendQualityJson(fault_result, truth_sorted, config.k, json);
    json += "}}";
  }
  json += "\n  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen(config.degrade_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write %s\n", config.degrade_path.c_str());
    return 1;
  }
  return 0;
}

// --- open-loop serving mode (--serve-json) ---

// Nearest-rank-with-interpolation percentile over a sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

// One offered-rate point of the open-loop sweep: Poisson arrivals at
// `offered_qps` submitted against a fresh TopKServer. Latency is measured
// from each request's *scheduled* arrival time, not from the (possibly late)
// Submit call — the standard guard against coordinated omission: when the
// server backs up, the queueing delay the client would have experienced is
// charged to the request instead of silently skipped.
struct ServePoint {
  double offered_qps = 0.0;
  size_t requests = 0;
  double wall_seconds = 0.0;
  double achieved_qps = 0.0;  // completed ok / wall
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;  // rejected + expired, as a fraction of offered
  ServerStats stats;
};

ServePoint MeasureServePoint(const Database& db, AlgorithmKind algo,
                             const TopKQuery& query,
                             const AlgorithmOptions& options,
                             const ThroughputConfig& config, size_t threads,
                             double offered_qps, size_t requests,
                             uint64_t seed) {
  ServerOptions server_options;
  server_options.num_threads = threads;
  server_options.queue_capacity = 2 * threads + 16;
  server_options.shed_policy = ShedPolicy::kReject;
  server_options.algorithm_options = options;

  ServePoint point;
  point.offered_qps = offered_qps;
  point.requests = requests;

  std::mutex mu;
  std::condition_variable cv;
  size_t delivered = 0;
  std::vector<double> ok_latencies_ms;
  ok_latencies_ms.reserve(requests);

  Rng rng(seed);
  using Clock = std::chrono::steady_clock;
  {
    TopKServer server(&db, server_options);
    // A couple of warm-up requests size every worker context before the
    // measured window (not counted; the server is per-point anyway).
    for (size_t w = 0; w < 2 * threads; ++w) {
      server.Submit(ServerRequest{algo, query, 0.0}).wait();
    }

    Timer wall;
    Clock::time_point next_arrival = Clock::now();
    for (size_t i = 0; i < requests; ++i) {
      // Exponential inter-arrival at the offered rate (Poisson process).
      const double u = std::max(1e-12, 1.0 - rng.NextDouble());
      next_arrival += std::chrono::nanoseconds(static_cast<int64_t>(
          -std::log(u) / offered_qps * 1e9));
      std::this_thread::sleep_until(next_arrival);
      const Clock::time_point scheduled = next_arrival;
      ServerRequest request{algo, query, config.serve_deadline_ms};
      server.SubmitWithCallback(request, [&, scheduled](
                                             Result<TopKResult> result) {
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
                .count();
        std::lock_guard<std::mutex> lock(mu);
        if (result.ok()) {
          ok_latencies_ms.push_back(latency_ms);
        }
        ++delivered;
        cv.notify_all();
      });
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return delivered == requests; });
    }
    point.wall_seconds = wall.ElapsedSeconds();
    point.stats = server.stats();
    // Warm-up requests completed before the measured window; subtract them.
    point.stats.submitted -= 2 * threads;
    point.stats.completed -= 2 * threads;
  }

  std::sort(ok_latencies_ms.begin(), ok_latencies_ms.end());
  point.p50_ms = Percentile(ok_latencies_ms, 0.50);
  point.p95_ms = Percentile(ok_latencies_ms, 0.95);
  point.p99_ms = Percentile(ok_latencies_ms, 0.99);
  point.achieved_qps =
      static_cast<double>(ok_latencies_ms.size()) / point.wall_seconds;
  point.shed_rate =
      static_cast<double>(point.stats.shed_rejected +
                          point.stats.expired_at_dequeue) /
      static_cast<double>(requests);
  return point;
}

// Open-loop latency sweep: for each algorithm, measure the single-thread
// closed-loop throughput (the PR 1–5 trajectory number), then offer Poisson
// arrivals at fractions of the server's nominal capacity (threads x
// closed-loop qps) — below, near and above saturation — and report latency
// percentiles, shed rate and achieved throughput. Every request arms the
// --serve-deadline-ms SLA, so the overload point demonstrates the full
// governance path: queue -> watchdog cancel -> certified anytime answer, or
// shed before execution.
int RunServeMode(const ThroughputConfig& config) {
  if (config.k == 0 || config.k > config.n || config.m == 0) {
    std::fprintf(stderr, "invalid workload: n=%zu m=%zu k=%zu\n", config.n,
                 config.m, config.k);
    return 1;
  }
  DatabaseKind kind;
  if (!ParseDatabaseKind(config.dist, &kind)) {
    std::fprintf(stderr,
                 "unknown --dist=%s (uniform|gaussian|correlated|zipf)\n",
                 config.dist.c_str());
    return 1;
  }
  const size_t threads =
      config.threads != 0
          ? config.threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  const Database db = MakeDatabaseOfKind(kind, config.n, config.m, 11);
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  SumScorer sum;
  const TopKQuery query{config.k, &sum};

  struct ServeSeries {
    AlgorithmKind kind;
    int baseline_queries;
  };
  const int scale = config.quick ? 4 : 1;
  const ServeSeries series[] = {{AlgorithmKind::kBpa, 600 / scale},
                                {AlgorithmKind::kNra, 60 / scale},
                                {AlgorithmKind::kCa, 120 / scale},
                                {AlgorithmKind::kTput, 120 / scale}};
  const size_t requests_per_point =
      config.serve_requests != 0 ? config.serve_requests
                                 : (config.quick ? 80 : 300);
  constexpr double kLoadFractions[] = {0.4, 0.8, 1.2};

  std::string json;
  json += "{\n  \"benchmark\": \"open_loop_serving\",\n";
  char line[1024];
  std::snprintf(line, sizeof(line),
                "  \"workload\": {\"distribution\": \"%s\", \"n\": %zu,"
                " \"m\": %zu, \"k\": %zu, \"quick\": %s},\n"
                "  \"server\": {\"threads\": %zu, \"shed_policy\": \"reject\","
                " \"deadline_ms\": %.3f},\n"
                "  \"series\": [\n",
                config.dist.c_str(), config.n, config.m, config.k,
                config.quick ? "true" : "false", threads,
                config.serve_deadline_ms);
  json += line;

  bool first_series = true;
  uint64_t seed = 1007;
  for (const ServeSeries& s : series) {
    const auto algorithm = MakeAlgorithm(s.kind, options);
    const auto probe = algorithm->Execute(db, query);
    if (!probe.ok()) {
      std::fprintf(stderr, "%s cannot serve this workload: %s\n",
                   ToString(s.kind).c_str(),
                   probe.status().ToString().c_str());
      return 1;
    }
    Score checksum = 0.0;
    const double closed_ms =
        MeasureBatchMillis(*algorithm, db, query, s.baseline_queries,
                           /*reuse_context=*/true, &checksum);
    const double closed_qps = 1000.0 * s.baseline_queries / closed_ms;

    if (!first_series) {
      json += ",\n";
    }
    first_series = false;
    std::snprintf(line, sizeof(line),
                  "    {\"algorithm\": \"%s\","
                  " \"closed_loop_1thread_qps\": %.1f,\n"
                  "     \"points\": [\n",
                  ToString(s.kind).c_str(), closed_qps);
    json += line;

    bool first_point = true;
    for (double fraction : kLoadFractions) {
      const double offered = fraction * closed_qps * threads;
      const ServePoint point =
          MeasureServePoint(db, s.kind, query, options, config, threads,
                            offered, requests_per_point, ++seed);
      if (!first_point) {
        json += ",\n";
      }
      first_point = false;
      std::snprintf(
          line, sizeof(line),
          "       {\"load_fraction\": %.2f, \"offered_qps\": %.1f,"
          " \"requests\": %zu,\n"
          "        \"achieved_qps\": %.1f, \"speedup_vs_closed_loop\": %.2f,\n"
          "        \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f,"
          " \"p99\": %.3f},\n"
          "        \"shed_rate\": %.4f, \"submitted\": %llu,"
          " \"completed\": %llu, \"failed\": %llu,"
          " \"shed_rejected\": %llu, \"shed_degraded\": %llu,"
          " \"expired_at_dequeue\": %llu,"
          " \"deadline_cancelled\": %llu}",
          fraction, point.offered_qps, point.requests, point.achieved_qps,
          point.achieved_qps / closed_qps, point.p50_ms, point.p95_ms,
          point.p99_ms, point.shed_rate,
          static_cast<unsigned long long>(point.stats.submitted),
          static_cast<unsigned long long>(point.stats.completed),
          static_cast<unsigned long long>(point.stats.failed),
          static_cast<unsigned long long>(point.stats.shed_rejected),
          static_cast<unsigned long long>(point.stats.shed_degraded),
          static_cast<unsigned long long>(point.stats.expired_at_dequeue),
          static_cast<unsigned long long>(point.stats.deadline_cancelled));
      json += line;
    }
    json += "\n     ]}";
  }
  json += "\n  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen(config.serve_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write %s\n", config.serve_path.c_str());
    return 1;
  }
  return 0;
}

// --- distributed coordinator mode (--dist-json) ---

// One distributed execution over `replicas` in-process ListOwners per list,
// optionally behind a FaultInjectingTransport. Returns false only on a
// non-degradable error (validation; the fault paths always answer).
bool RunDistQuery(const Database& db, bool bpa, size_t k, size_t replicas,
                  const TransportFaultPlan* plan, double deadline_ms,
                  TopKResult* result, DistStats* stats,
                  TransportFaultStats* fault_stats) {
  InProcessTransport inner = InProcessTransport::PerListOwners(db, replicas);
  FaultInjectingTransport faulty(&inner,
                                 plan != nullptr ? *plan
                                                 : TransportFaultPlan{});
  Transport* transport = plan != nullptr ? static_cast<Transport*>(&faulty)
                                         : static_cast<Transport*>(&inner);
  DistOptions options;
  options.governor.deadline_ms = deadline_ms;
  options.replication_factor = static_cast<uint32_t>(replicas);
  Coordinator coordinator(transport, options);
  if (!coordinator.Connect().ok()) {
    return false;
  }
  SumScorer sum;
  const TopKQuery query{k, &sum};
  const auto executed =
      bpa ? coordinator.ExecuteBpa(query) : coordinator.ExecuteTput(query);
  if (!executed.ok()) {
    return false;
  }
  *result = executed.ValueOrDie();
  *stats = coordinator.stats();
  if (fault_stats != nullptr) {
    *fault_stats = faulty.fault_stats();
  }
  return true;
}

// Distributed wire-cost and degradation sweep: the numbers the distributed
// top-k literature reports (messages and bytes per query vs n/m/k, TPUT's
// fixed round count vs BPA's depth-proportional one), then answer quality —
// recall against the exact top-k, certified theta, SLA compliance — as
// owner-death and delay rates rise. Everything is deterministic: the wire
// section is fault-free, and each degradation cell replays a fixed set of
// transport fault seeds, so the artifact is reproducible bit-for-bit.
int RunDistMode(const ThroughputConfig& config) {
  struct WirePoint {
    size_t n, m, k;
  };
  std::vector<WirePoint> wire_points = {{1000, 5, 20},   {10000, 5, 20},
                                        {100000, 5, 20}, {10000, 2, 20},
                                        {10000, 10, 20}, {10000, 5, 1},
                                        {10000, 5, 100}};
  if (config.quick) {
    wire_points.resize(5);  // drop n=100k and the k sweep for CI captures
  }

  std::string json;
  json += "{\n  \"benchmark\": \"distributed_bpa_tput\",\n";
  json += "  \"transport\": \"in_process_per_list_owners\",\n";
  char line[1024];

  json += "  \"wire\": [\n";
  bool first = true;
  for (const WirePoint& p : wire_points) {
    const Database db = MakeUniformDatabase(p.n, p.m, 11);
    for (const bool bpa : {true, false}) {
      TopKResult result;
      DistStats stats;
      if (!RunDistQuery(db, bpa, p.k, 1, nullptr, 0.0, &result, &stats,
                        nullptr)) {
        std::fprintf(stderr, "dist %s failed at n=%zu m=%zu k=%zu\n",
                     bpa ? "BPA" : "TPUT", p.n, p.m, p.k);
        return 1;
      }
      if (!first) {
        json += ",\n";
      }
      first = false;
      std::snprintf(
          line, sizeof(line),
          "    {\"algorithm\": \"%s\", \"n\": %zu, \"m\": %zu, \"k\": %zu,"
          " \"messages_sent\": %llu, \"replies_received\": %llu,"
          " \"bytes_sent\": %llu, \"bytes_received\": %llu,"
          " \"rounds\": %llu, \"sorted_accesses\": %llu,"
          " \"random_accesses\": %llu, \"stop_position\": %u}",
          bpa ? "dBPA" : "dTPUT", p.n, p.m, p.k,
          static_cast<unsigned long long>(stats.messages_sent),
          static_cast<unsigned long long>(stats.replies_received),
          static_cast<unsigned long long>(stats.bytes_sent),
          static_cast<unsigned long long>(stats.bytes_received),
          static_cast<unsigned long long>(stats.rounds),
          static_cast<unsigned long long>(result.stats.sorted_accesses),
          static_cast<unsigned long long>(result.stats.random_accesses),
          result.stop_position);
      json += line;
    }
  }
  json += "\n  ],\n";

  // Degradation sweep: uniform n=5000 m=5 k=20, a 250 virtual-ms governor
  // deadline per query (roomy enough that the fault-free baseline certifies
  // exact — the sweep then isolates what the *faults* cost), and a grid of
  // owner-death x delay rates. delay_ms equals the 5 ms RPC deadline, the
  // regime hedging is built for: a delayed primary outlasts the p99-derived
  // hedge timeout and the re-issued request wins. Recall is against the
  // fault-free exact answer; theta >= 1 is each degraded answer's own
  // certificate (1 = certified exact).
  const size_t kN = 5000, kM = 5, kK = 20;
  const double kDeadlineMs = 250.0;
  const Database db = MakeUniformDatabase(kN, kM, 11);
  SumScorer sum;
  const auto truth_result =
      MakeAlgorithm(AlgorithmKind::kBpa)->Execute(db, TopKQuery{kK, &sum});
  if (!truth_result.ok()) {
    std::fprintf(stderr, "cannot compute the exact reference answer\n");
    return 1;
  }
  std::vector<bool> truth(kN, false);
  for (const ResultItem& item : truth_result.ValueOrDie().items) {
    truth[item.item] = true;
  }

  // The degradation object is built standalone so it can be embedded in the
  // main artifact AND written as its own file (the R-axis grid is what the
  // release pipeline tracks release-over-release).
  std::string deg;
  std::snprintf(line, sizeof(line),
                "{\"workload\": {\"distribution\":"
                " \"uniform\", \"n\": %zu, \"m\": %zu, \"k\": %zu},"
                " \"deadline_ms\": %.1f, \"delay_ms\": 5.0,"
                " \"death_window_messages\": [1, 32], \"cells\": [\n",
                kN, kM, kK, kDeadlineMs);
  deg += line;

  const size_t replications[] = {1, 2};
  const double death_rates[] = {0.0, 0.05, 0.1, 0.2};
  const double delay_rates[] = {0.0, 0.2};
  const uint64_t kSeeds = config.quick ? 3 : 8;
  first = true;
  for (const bool bpa : {true, false}) {
    for (const size_t replication : replications) {
      for (const double death_rate : death_rates) {
        for (const double delay_rate : delay_rates) {
          size_t exact = 0, failed_over = 0, deadline_trips = 0;
          double recall_sum = 0.0, theta_sum = 0.0, virtual_ms_sum = 0.0;
          size_t theta_finite = 0;
          DistStats totals;
          TransportFaultStats fault_totals;
          for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
            TransportFaultPlan plan;
            plan.seed = seed;
            plan.owner_death_rate = death_rate;
            // Dying owners die within the first 32 messages: inside even
            // TPUT's small per-owner message budget, so the death rate bites
            // both protocols instead of only BPA's chatty rows.
            plan.death_max_messages = 32;
            plan.delay_rate = delay_rate;
            plan.delay_ms = 5.0;
            TopKResult result;
            DistStats stats;
            TransportFaultStats faults;
            if (!RunDistQuery(db, bpa, kK, replication, &plan, kDeadlineMs,
                              &result, &stats, &faults)) {
              std::fprintf(stderr, "degraded dist query failed (seed %llu)\n",
                           static_cast<unsigned long long>(seed));
              return 1;
            }
            size_t hits = 0;
            for (const ResultItem& item : result.items) {
              hits += truth[item.item] ? 1 : 0;
            }
            recall_sum += static_cast<double>(hits) / static_cast<double>(kK);
            if (std::isfinite(result.theta)) {
              theta_sum += result.theta;
              ++theta_finite;
            }
            exact += result.completion == Completion::kExact ? 1 : 0;
            deadline_trips +=
                result.completion == Completion::kDeadline ? 1 : 0;
            failed_over += result.failed_over ? 1 : 0;
            virtual_ms_sum += stats.virtual_ms;
            totals.retries += stats.retries;
            totals.hedges += stats.hedges;
            totals.hedge_wins += stats.hedge_wins;
            totals.timeouts += stats.timeouts;
            totals.duplicate_replies += stats.duplicate_replies;
            totals.owner_deaths += stats.owner_deaths;
            totals.messages_sent += stats.messages_sent;
            totals.replica_failovers += stats.replica_failovers;
            totals.breaker_opens += stats.breaker_opens;
            totals.probes_sent += stats.probes_sent;
            totals.groups_lost += stats.groups_lost;
            fault_totals.dropped_messages += faults.dropped_messages;
            fault_totals.delayed_messages += faults.delayed_messages;
          }
          if (!first) {
            deg += ",\n";
          }
          first = false;
          const double q = static_cast<double>(kSeeds);
          std::snprintf(
              line, sizeof(line),
              "    {\"algorithm\": \"%s\", \"replication\": %zu,"
              " \"owner_death_rate\": %.2f,"
              " \"delay_rate\": %.2f, \"queries\": %llu,\n"
              "     \"exact\": %zu, \"failed_over\": %zu,"
              " \"deadline_trips\": %zu, \"mean_recall\": %.4f,"
              " \"mean_theta\": %.4f, \"theta_finite\": %zu,\n"
              "     \"mean_virtual_ms\": %.3f, \"messages_sent\": %llu,"
              " \"retries\": %llu, \"hedges\": %llu, \"hedge_wins\": %llu,"
              " \"timeouts\": %llu, \"duplicate_replies\": %llu,"
              " \"owner_deaths\": %u, \"delayed_messages\": %llu,\n"
              "     \"replica_failovers\": %llu, \"breaker_opens\": %llu,"
              " \"probes_sent\": %llu, \"groups_lost\": %u}",
              bpa ? "dBPA" : "dTPUT", replication, death_rate, delay_rate,
              static_cast<unsigned long long>(kSeeds), exact, failed_over,
              deadline_trips, recall_sum / q,
              theta_finite != 0
                  ? theta_sum / static_cast<double>(theta_finite)
                  : 0.0,
              theta_finite, virtual_ms_sum / q,
              static_cast<unsigned long long>(totals.messages_sent),
              static_cast<unsigned long long>(totals.retries),
              static_cast<unsigned long long>(totals.hedges),
              static_cast<unsigned long long>(totals.hedge_wins),
              static_cast<unsigned long long>(totals.timeouts),
              static_cast<unsigned long long>(totals.duplicate_replies),
              totals.owner_deaths,
              static_cast<unsigned long long>(fault_totals.delayed_messages),
              static_cast<unsigned long long>(totals.replica_failovers),
              static_cast<unsigned long long>(totals.breaker_opens),
              static_cast<unsigned long long>(totals.probes_sent),
              totals.groups_lost);
          deg += line;
        }
      }
    }
  }
  deg += "\n  ],\n";

  // Targeted kill: replica 0 of list 0 dies after 6 served messages, no
  // other fault. The headline of the replication work, deterministic (one
  // cell per algorithm x R): at R=1 the list dies with the owner and the
  // answer degrades to a certified-theta NRA fallback; at R=2 the sibling
  // replica resumes the cursor exactly and the answer stays exact. The
  // scenario gets a roomier deadline than the grid: dBPA's fault-free run
  // already sits near the grid budget on this workload, and the point here
  // is the failover tax (probes + timeouts), not deadline pressure.
  const double kKillDeadlineMs = 2.0 * kDeadlineMs;
  char header[160];
  std::snprintf(header, sizeof(header),
                "  \"targeted_kill\": {\"killed\": \"list 0 replica 0\","
                " \"kill_after_messages\": 6, \"deadline_ms\": %.0f,"
                " \"cells\": [\n",
                kKillDeadlineMs);
  deg += header;
  first = true;
  for (const bool bpa : {true, false}) {
    for (const size_t replication : replications) {
      TransportFaultPlan plan;
      plan.kill_owner = InProcessTransport::OwnerIndex(kM, 0, 0);
      plan.kill_after_messages = 6;
      TopKResult result;
      DistStats stats;
      TransportFaultStats faults;
      if (!RunDistQuery(db, bpa, kK, replication, &plan, kKillDeadlineMs,
                        &result, &stats, &faults)) {
        std::fprintf(stderr, "targeted-kill dist query failed\n");
        return 1;
      }
      size_t hits = 0;
      for (const ResultItem& item : result.items) {
        hits += truth[item.item] ? 1 : 0;
      }
      if (!first) {
        deg += ",\n";
      }
      first = false;
      std::snprintf(
          line, sizeof(line),
          "    {\"algorithm\": \"%s\", \"replication\": %zu,"
          " \"recall\": %.4f, \"theta\": %.4f, \"completion\": \"%s\","
          " \"failed_over\": %s, \"replica_failovers\": %llu,"
          " \"owner_deaths\": %u, \"groups_lost\": %u}",
          bpa ? "dBPA" : "dTPUT", replication,
          static_cast<double>(hits) / static_cast<double>(kK),
          std::isfinite(result.theta) ? result.theta : -1.0,
          ToString(result.completion), result.failed_over ? "true" : "false",
          static_cast<unsigned long long>(stats.replica_failovers),
          stats.owner_deaths, stats.groups_lost);
      deg += line;
    }
  }
  deg += "\n  ]}}";

  json += "  \"degradation\": " + deg + "\n}\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen(config.dist_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write %s\n", config.dist_path.c_str());
    return 1;
  }
  // The degradation grid alone, as its own artifact next to the main one.
  std::string deg_path = config.dist_path;
  const std::string suffix = ".json";
  if (deg_path.size() >= suffix.size() &&
      deg_path.compare(deg_path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    deg_path.resize(deg_path.size() - suffix.size());
  }
  deg_path += "-degradation.json";
  if (std::FILE* f = std::fopen(deg_path.c_str(), "w")) {
    std::fputs("{\n  \"benchmark\": \"distributed_degradation\",\n"
               "  \"degradation\": ",
               f);
    std::fputs(deg.c_str(), f);
    std::fputs("\n}\n", f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write %s\n", deg_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  topk::ThroughputConfig config;
  bool throughput_mode = false;
  bool degrade_mode = false;
  bool serve_mode = false;
  bool dist_mode = false;
  bool scenario_flags_ok = true;
  // Shared CLI flag helpers (see common/flag_parse.h): --flag=value and
  // --flag value shapes, strict numeric parses.
  const auto value_of = [&](const std::string& arg, const char* name,
                            int* i) -> const char* {
    return topk::FlagValue(arg, name, i, argc, argv);
  };
  const auto parse_size = topk::ParseFlagSize;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      throughput_mode = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      throughput_mode = true;
      config.json_path = arg.substr(7);
    } else if (arg == "--degrade-json") {
      degrade_mode = true;
    } else if (arg.rfind("--degrade-json=", 0) == 0) {
      degrade_mode = true;
      config.degrade_path = arg.substr(15);
    } else if (arg == "--serve-json") {
      serve_mode = true;
    } else if (arg.rfind("--serve-json=", 0) == 0) {
      serve_mode = true;
      config.serve_path = arg.substr(13);
    } else if (arg == "--dist-json") {
      dist_mode = true;
    } else if (arg.rfind("--dist-json=", 0) == 0) {
      dist_mode = true;
      config.dist_path = arg.substr(12);
    } else if (const char* v = value_of(arg, "--threads", &i)) {
      scenario_flags_ok &= parse_size(v, &config.threads);
    } else if (const char* v = value_of(arg, "--serve-deadline-ms", &i)) {
      scenario_flags_ok &= topk::ParseFlagDouble(v, &config.serve_deadline_ms);
    } else if (const char* v = value_of(arg, "--serve-requests", &i)) {
      scenario_flags_ok &= parse_size(v, &config.serve_requests);
    } else if (arg == "--quick") {
      config.quick = true;
    } else if (const char* v = value_of(arg, "--n", &i)) {
      scenario_flags_ok &= parse_size(v, &config.n);
      config.explicit_workload = true;
    } else if (const char* v = value_of(arg, "--m", &i)) {
      scenario_flags_ok &= parse_size(v, &config.m);
      config.explicit_workload = true;
    } else if (const char* v = value_of(arg, "--k", &i)) {
      scenario_flags_ok &= parse_size(v, &config.k);
      config.explicit_workload = true;
    } else if (const char* v = value_of(arg, "--dist", &i)) {
      config.dist = v;
      config.explicit_workload = true;
    } else if (const char* v = value_of(arg, "--deadline-ms", &i)) {
      scenario_flags_ok &= topk::ParseFlagDouble(v, &config.deadline_ms);
    } else if (const char* v = value_of(arg, "--access-budget", &i)) {
      scenario_flags_ok &= topk::ParseFlagU64(v, &config.access_budget);
    } else {
      // Not a scenario flag. In throughput mode that is an error (a typoed
      // flag must not silently measure — and label — the default workload);
      // outside it the argument belongs to google-benchmark.
      scenario_flags_ok = false;
    }
  }
  if (throughput_mode || degrade_mode || serve_mode || dist_mode) {
    if (!scenario_flags_ok) {
      std::fprintf(stderr,
                   "unrecognized argument in --json/--degrade-json/"
                   "--serve-json/--dist-json mode; scenario flags: --n --m "
                   "--k --dist {uniform,gaussian,correlated,zipf} --quick "
                   "--deadline-ms --access-budget --threads "
                   "--serve-deadline-ms --serve-requests\n");
      return 1;
    }
    if (dist_mode) {
      return topk::RunDistMode(config);
    }
    if (serve_mode) {
      return topk::RunServeMode(config);
    }
    if (degrade_mode) {
      return topk::RunDegradeMode(config);
    }
    return topk::RunThroughputMode(config);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
