// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reproduces Figures 15, 16 and 17: execution cost vs. the number of data
// items n over the uniform database (Figure 15) and correlated databases with
// α = 0.01 (Figure 16) and α = 0.0001 (Figure 17); m = 8, k = 20.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void RunOne(int figure, DatabaseKind kind, double alpha, uint64_t seed) {
  const size_t m = DefaultM();
  const size_t k = DefaultK();
  SumScorer sum;
  std::string db_label = ToString(kind);
  if (kind == DatabaseKind::kCorrelated) {
    db_label += " alpha=" + std::to_string(alpha);
  }
  FigureReporter cost("Figure " + std::to_string(figure) +
                          ": Execution cost vs. n (" + db_label +
                          ", m=" + std::to_string(m) +
                          ", k=" + std::to_string(k) + ")",
                      "n", {"TA", "BPA", "BPA2"});
  for (size_t n : NSweep()) {
    const Database db = MakeDatabase(kind, n, m, alpha, seed + n);
    const TopKQuery query{k, &sum};
    const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
    const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
    const Measurement bpa2 = Measure(AlgorithmKind::kBpa2, db, query);
    cost.AddRow(n, {ta.execution_cost, bpa.execution_cost,
                    bpa2.execution_cost});
  }
  cost.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::RunOne(15, topk::DatabaseKind::kUniform, 0.0, 1500);
  topk::bench::RunOne(16, topk::DatabaseKind::kCorrelated, 0.01, 1600);
  topk::bench::RunOne(17, topk::DatabaseKind::kCorrelated, 0.0001, 1700);
  return 0;
}
