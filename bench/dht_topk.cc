// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Future-work experiment (paper Section 8): BPA2 over a Chord-like DHT.
// Compares BPA2-over-DHT against the gather-everything strawman as the ring
// grows, reporting routing hops, protocol messages and payload bytes.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "dist/dht.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void RunFamily(DatabaseKind kind, double alpha) {
  const size_t n = SmokeMode() ? 5000 : 50000;
  const size_t m = DefaultM();
  const size_t k = DefaultK();
  SumScorer sum;
  const TopKQuery query{k, &sum};
  const Database db = MakeDatabase(kind, n, m, alpha, 123456);

  std::string label = ToString(kind);
  if (kind == DatabaseKind::kCorrelated) {
    label += " alpha=" + std::to_string(alpha);
  }
  FigureReporter report(
      "BPA2 over a Chord-like DHT vs. gather-all (" + label +
          ", n=" + std::to_string(n) + ", m=" + std::to_string(m) +
          ", k=" + std::to_string(k) + ")",
      "nodes",
      {"routing hops", "BPA2 msgs", "BPA2 MB", "gather MB", "byte ratio"});

  for (size_t nodes : {8u, 32u, 128u, 512u, 2048u}) {
    DhtTopKOptions options;
    options.num_nodes = nodes;
    options.ring_seed = 9 + nodes;
    const auto bpa2 = RunDhtBpa2(db, query, options).ValueOrDie();
    const auto gather = RunDhtGatherAll(db, query, options).ValueOrDie();
    const double bpa2_mb = static_cast<double>(bpa2.network.bytes) / 1e6;
    const double gather_mb = static_cast<double>(gather.network.bytes) / 1e6;
    report.AddRow(nodes,
                  {static_cast<double>(bpa2.routing_hops),
                   static_cast<double>(bpa2.network.messages), bpa2_mb,
                   gather_mb, gather_mb / bpa2_mb});
  }
  report.Print();
}

void Run() {
  // The paper's DHT motivation is skewed, correlated data (e.g. URL
  // popularity); there BPA2 touches a tiny prefix and gather-all pays the
  // whole lists.
  RunFamily(DatabaseKind::kCorrelated, 0.01);
  // On independent uniform data BPA2 scans deep, and per-access RPC framing
  // makes gather-all's bulk transfer the cheaper strategy — an honest
  // trade-off worth knowing before deploying per-access protocols on a DHT.
  RunFamily(DatabaseKind::kUniform, 0.0);
  std::cout
      << "Reading guide: routing grows ~log(nodes) while protocol traffic is\n"
         "ring-size independent. BPA2 wins by orders of magnitude on skewed/\n"
         "correlated rankings (its use case); bulk gather wins on uniform\n"
         "noise where early termination cannot help.\n";
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
