// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Shared helpers for the figure-reproduction benchmark binaries. Every binary
// prints the same series the corresponding paper figure plots, as an aligned
// table followed by a CSV block (diff-friendly, plot-ready).
//
// Environment:
//   BENCH_SMOKE=1  — run a reduced grid (small n, few m values, 1 repetition)
//                    for quick checks; default is the paper's full scale.
//
// Measurement note — interleaved pairs: on this project's shared-vCPU hosts
// the noise band is wide and drifts over minutes, so two configurations
// measured as sequential blocks can order arbitrarily (BENCH_PR4.json
// recorded the allocating fresh-context BPA path as 2% "faster" than the
// zero-allocation reused path that way). Any A-vs-B comparison worth
// reporting must interleave the two sides — alternate A/B chunks within one
// process (bench_micro's fresh-vs-reused series does this), or alternate
// whole A/B binary runs and take the min over >= 5 pairs (how the per-PR
// speedups in CHANGES.md are measured). Block-vs-block deltas within the
// noise band are phase artifacts, not results.

#ifndef TOPK_BENCH_BENCH_UTIL_H_
#define TOPK_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/topk_algorithm.h"
#include "gen/database_generator.h"
#include "lists/database.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {

/// True when BENCH_SMOKE=1 is set in the environment.
bool SmokeMode();

/// Paper defaults (Table 1): n = 100,000, k = 20, m = 8. Smoke mode shrinks n.
size_t DefaultN();
size_t DefaultK();
size_t DefaultM();

/// The m sweep of Figures 3-11: 2, 4, ..., 18 (smoke: 2, 4, 8).
std::vector<size_t> MSweep();

/// The k sweep of Figures 12-14: 10, 20, ..., 100 (smoke: 10, 50, 100).
std::vector<size_t> KSweep();

/// The n sweep of Figures 15-17: 25k..200k step 25k (smoke: 5k, 10k, 20k).
std::vector<size_t> NSweep();

/// Repetitions for response-time measurements (median reported).
int Repetitions();

/// One measured algorithm execution.
struct Measurement {
  double execution_cost = 0.0;
  uint64_t accesses = 0;
  double response_ms = 0.0;  // median over Repetitions() runs
  Position stop_position = 0;
};

/// Runs `kind` on `db` and reports the paper's three metrics. Repeats the run
/// Repetitions() times for a stable response-time median (costs/accesses are
/// deterministic across repetitions).
Measurement Measure(AlgorithmKind kind, const Database& db,
                    const TopKQuery& query,
                    const AlgorithmOptions& options = {});

/// Builds the database family used by the figure benches.
Database MakeDatabase(DatabaseKind kind, size_t n, size_t m, double alpha,
                      uint64_t seed);

/// Prints an aligned table plus its CSV twin to stdout.
class FigureReporter {
 public:
  /// \param title e.g. "Figure 4: Number of accesses vs. m (uniform, k=20)".
  /// \param param_name the x-axis column ("m", "k", "n").
  FigureReporter(std::string title, std::string param_name,
                 std::vector<std::string> series_names);

  /// Adds one x-axis row with one value per series.
  void AddRow(uint64_t param_value, const std::vector<double>& values);

  /// Prints the aligned table and the CSV block.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::pair<uint64_t, std::vector<double>>> rows_;
};

}  // namespace bench
}  // namespace topk

#endif  // TOPK_BENCH_BENCH_UTIL_H_
