// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"

namespace topk {
namespace bench {

bool SmokeMode() {
  const char* env = std::getenv("BENCH_SMOKE");
  return env != nullptr && std::string(env) == "1";
}

size_t DefaultN() { return SmokeMode() ? 5000 : 100000; }
size_t DefaultK() { return 20; }
size_t DefaultM() { return 8; }

std::vector<size_t> MSweep() {
  if (SmokeMode()) {
    return {2, 4, 8};
  }
  return {2, 4, 6, 8, 10, 12, 14, 16, 18};
}

std::vector<size_t> KSweep() {
  if (SmokeMode()) {
    return {10, 50, 100};
  }
  return {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
}

std::vector<size_t> NSweep() {
  if (SmokeMode()) {
    return {5000, 10000, 20000};
  }
  return {25000, 50000, 75000, 100000, 125000, 150000, 175000, 200000};
}

int Repetitions() { return SmokeMode() ? 1 : 3; }

Measurement Measure(AlgorithmKind kind, const Database& db,
                    const TopKQuery& query, const AlgorithmOptions& options) {
  auto algorithm = MakeAlgorithm(kind, options);
  Measurement measurement;
  std::vector<double> times;
  const int reps = Repetitions();
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const TopKResult result = algorithm->Execute(db, query).ValueOrDie();
    measurement.execution_cost = result.execution_cost;
    measurement.accesses = result.stats.TotalAccesses();
    measurement.stop_position = result.stop_position;
    times.push_back(result.elapsed_ms);
  }
  std::sort(times.begin(), times.end());
  measurement.response_ms = times[times.size() / 2];
  return measurement;
}

Database MakeDatabase(DatabaseKind kind, size_t n, size_t m, double alpha,
                      uint64_t seed) {
  switch (kind) {
    case DatabaseKind::kUniform:
      return MakeUniformDatabase(n, m, seed);
    case DatabaseKind::kGaussian:
      return MakeGaussianDatabase(n, m, seed);
    case DatabaseKind::kCorrelated: {
      CorrelatedConfig config;
      config.n = n;
      config.m = m;
      config.alpha = alpha;
      config.seed = seed;
      return MakeCorrelatedDatabase(config).ValueOrDie();
    }
    case DatabaseKind::kZipf:
      return MakeZipfDatabase(n, m, seed);
  }
  return Database();
}

FigureReporter::FigureReporter(std::string title, std::string param_name,
                               std::vector<std::string> series_names)
    : title_(std::move(title)) {
  header_.push_back(std::move(param_name));
  for (auto& name : series_names) {
    header_.push_back(std::move(name));
  }
}

void FigureReporter::AddRow(uint64_t param_value,
                            const std::vector<double>& values) {
  rows_.emplace_back(param_value, values);
}

void FigureReporter::Print() const {
  TablePrinter table(title_);
  table.AddRow(std::vector<std::string>(header_.begin(), header_.end()));
  for (const auto& [param, values] : rows_) {
    std::vector<std::string> cells;
    cells.push_back(TablePrinter::FormatCell(param));
    for (double v : values) {
      cells.push_back(TablePrinter::FormatCell(v));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  std::cout << "\n";
  table.PrintCsv(std::cout);
  std::cout << "\n";
}

}  // namespace bench
}  // namespace topk
