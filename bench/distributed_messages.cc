// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Distributed-cost comparison (Sections 5-7): messages, payload bytes and
// simulated latency for distributed TA, BPA, BPA2 and TPUT over the uniform
// database. The number-of-accesses metric of Figure 4 is the message proxy;
// this bench exposes the actual message and byte counts, showing
//  * BPA2 < BPA < TA on messages (per-access protocols),
//  * TPUT's constant three rounds but bulk payloads,
//  * BPA's extra position payloads vs. BPA2 (Section 5 motivation).

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "dist/coordinator.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  const size_t n = SmokeMode() ? 5000 : 20000;
  const size_t k = DefaultK();
  SumScorer sum;
  const TopKQuery query{k, &sum};
  DistributedOptions options;

  FigureReporter messages(
      "Distributed: messages vs. m (uniform database, n=" + std::to_string(n) +
          ", k=" + std::to_string(k) + ")",
      "m", {"dist-TA", "dist-BPA", "dist-BPA2", "dist-TPUT"});
  FigureReporter bytes(
      "Distributed: payload bytes vs. m (uniform database, n=" +
          std::to_string(n) + ", k=" + std::to_string(k) + ")",
      "m", {"dist-TA", "dist-BPA", "dist-BPA2", "dist-TPUT"});
  FigureReporter latency(
      "Distributed: simulated latency (ms, rtt=1ms) vs. m", "m",
      {"dist-TA", "dist-BPA", "dist-BPA2", "dist-TPUT"});

  for (size_t m : MSweep()) {
    const Database db =
        MakeDatabase(DatabaseKind::kUniform, n, m, 0.0, 91000 + m);
    const auto ta = RunDistributedTa(db, query, options).ValueOrDie();
    const auto bpa = RunDistributedBpa(db, query, options).ValueOrDie();
    const auto bpa2 = RunDistributedBpa2(db, query, options).ValueOrDie();
    const auto tput = RunDistributedTput(db, query, options).ValueOrDie();
    messages.AddRow(m, {static_cast<double>(ta.network.messages),
                        static_cast<double>(bpa.network.messages),
                        static_cast<double>(bpa2.network.messages),
                        static_cast<double>(tput.network.messages)});
    bytes.AddRow(m, {static_cast<double>(ta.network.bytes),
                     static_cast<double>(bpa.network.bytes),
                     static_cast<double>(bpa2.network.bytes),
                     static_cast<double>(tput.network.bytes)});
    latency.AddRow(m, {ta.network.simulated_ms, bpa.network.simulated_ms,
                       bpa2.network.simulated_ms, tput.network.simulated_ms});
  }
  messages.Print();
  bytes.Print();
  latency.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
