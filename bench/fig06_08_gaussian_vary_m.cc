// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reproduces Figures 6, 7 and 8: execution cost / number of accesses /
// response time vs. the number of lists m over the Gaussian database
// (n = 100,000, k = 20, sum scoring; scores ~ N(0,1) as in Section 6.1).

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  const size_t n = DefaultN();
  const size_t k = DefaultK();
  SumScorer sum;
  const std::string suffix =
      " (Gaussian database, k=" + std::to_string(k) +
      ", n=" + std::to_string(n) + ")";

  FigureReporter cost("Figure 6: Execution cost vs. number of lists" + suffix,
                      "m", {"TA", "BPA", "BPA2"});
  FigureReporter accesses(
      "Figure 7: Number of accesses vs. number of lists" + suffix, "m",
      {"TA", "BPA", "BPA2"});
  FigureReporter response(
      "Figure 8: Response time (ms) vs. number of lists" + suffix, "m",
      {"TA", "BPA", "BPA2"});

  for (size_t m : MSweep()) {
    const Database db =
        MakeDatabase(DatabaseKind::kGaussian, n, m, 0.0, 6800 + m);
    const TopKQuery query{k, &sum};
    const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
    const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
    const Measurement bpa2 = Measure(AlgorithmKind::kBpa2, db, query);
    cost.AddRow(m, {ta.execution_cost, bpa.execution_cost,
                    bpa2.execution_cost});
    accesses.AddRow(m, {static_cast<double>(ta.accesses),
                        static_cast<double>(bpa.accesses),
                        static_cast<double>(bpa2.accesses)});
    response.AddRow(m, {ta.response_ms, bpa.response_ms, bpa2.response_ms});
  }
  cost.Print();
  accesses.Print();
  response.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
