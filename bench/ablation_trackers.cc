// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Section 5.2 ablation: end-to-end BPA/BPA2 response time with the three
// best-position management strategies (bit array, B+tree, sorted set). The
// paper's analysis: the bit array costs O(n/u) amortized per access and n
// bits of space; the B+tree costs O(log u) amortized and O(u) space, so it
// wins when n >> u (deep lists, early stops).

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void RunOne(AlgorithmKind kind) {
  const size_t n = DefaultN();
  const size_t k = DefaultK();
  SumScorer sum;
  FigureReporter report(
      "Tracker ablation (" + ToString(kind) +
          ", uniform database, k=" + std::to_string(k) +
          ", n=" + std::to_string(n) + "): response time (ms) vs. m",
      "m", {"bit-array", "b+tree", "sorted-set"});
  for (size_t m : MSweep()) {
    const Database db =
        MakeDatabase(DatabaseKind::kUniform, n, m, 0.0, 31000 + m);
    const TopKQuery query{k, &sum};
    std::vector<double> row;
    for (TrackerKind tracker : {TrackerKind::kBitArray,
                                TrackerKind::kBPlusTree,
                                TrackerKind::kSortedSet}) {
      AlgorithmOptions options;
      options.tracker = tracker;
      row.push_back(Measure(kind, db, query, options).response_ms);
    }
    report.AddRow(m, row);
  }
  report.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::RunOne(topk::AlgorithmKind::kBpa);
  topk::bench::RunOne(topk::AlgorithmKind::kBpa2);
  return 0;
}
