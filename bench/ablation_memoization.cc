// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Accounting ablation: the paper's cost model (Lemma 2) charges (m-1) random
// accesses for every sorted access, even when the item was already resolved.
// A practical implementation can memoize resolved items and skip those random
// accesses. This bench quantifies the gap for TA and BPA: the stopping
// position is identical, only the access counts change.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  const size_t n = DefaultN();
  const size_t k = DefaultK();
  SumScorer sum;
  FigureReporter report(
      "Memoization ablation (uniform database): total accesses vs. m "
      "(paper-faithful vs. memoized)",
      "m",
      {"TA", "TA+memo", "BPA", "BPA+memo"});
  for (size_t m : MSweep()) {
    const Database db =
        MakeDatabase(DatabaseKind::kUniform, n, m, 0.0, 56000 + m);
    const TopKQuery query{k, &sum};
    AlgorithmOptions memo;
    memo.memoize_seen_items = true;
    report.AddRow(
        m, {static_cast<double>(Measure(AlgorithmKind::kTa, db, query)
                                    .accesses),
            static_cast<double>(Measure(AlgorithmKind::kTa, db, query, memo)
                                    .accesses),
            static_cast<double>(Measure(AlgorithmKind::kBpa, db, query)
                                    .accesses),
            static_cast<double>(Measure(AlgorithmKind::kBpa, db, query, memo)
                                    .accesses)});
  }
  report.Print();
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
