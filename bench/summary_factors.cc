// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reproduces the paper's Section 6.2.4 summary: over the uniform database,
// BPA outperforms TA by approximately (m+6)/8 and BPA2 by approximately
// (m+1)/2 (execution cost, m > 2). Prints measured factors, the paper's
// approximation, and the relative deviation, averaged over several seeds.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "lists/scorer.h"

namespace topk {
namespace bench {
namespace {

void Run() {
  const size_t n = DefaultN();
  const size_t k = DefaultK();
  const int kSeeds = SmokeMode() ? 1 : 3;
  SumScorer sum;

  FigureReporter report(
      "Section 6.2.4 summary: measured execution-cost gain vs. TA over the "
      "uniform database (avg over " + std::to_string(kSeeds) + " seeds)",
      "m", {"TA/BPA", "(m+6)/8", "TA/BPA2", "(m+1)/2"});

  for (size_t m : MSweep()) {
    double bpa_factor = 0.0;
    double bpa2_factor = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      const Database db = MakeDatabase(DatabaseKind::kUniform, n, m, 0.0,
                                       77000 + 131 * s + m);
      const TopKQuery query{k, &sum};
      const Measurement ta = Measure(AlgorithmKind::kTa, db, query);
      const Measurement bpa = Measure(AlgorithmKind::kBpa, db, query);
      const Measurement bpa2 = Measure(AlgorithmKind::kBpa2, db, query);
      bpa_factor += ta.execution_cost / bpa.execution_cost;
      bpa2_factor += ta.execution_cost / bpa2.execution_cost;
    }
    bpa_factor /= kSeeds;
    bpa2_factor /= kSeeds;
    report.AddRow(m, {bpa_factor, (static_cast<double>(m) + 6.0) / 8.0,
                      bpa2_factor, (static_cast<double>(m) + 1.0) / 2.0});
  }
  report.Print();
  std::cout << "Paper reference points (m=10): TA/BPA ~ 2, TA/BPA2 ~ 5.5\n";
}

}  // namespace
}  // namespace bench
}  // namespace topk

int main() {
  topk::bench::Run();
  return 0;
}
