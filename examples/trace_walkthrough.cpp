// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Replays the paper's worked example (Figure 1, Examples 2-3) with execution
// traces switched on, printing TA's threshold δ and BPA's best-positions
// overall score λ row by row — the exact numbers from the paper's Figure 1.b
// and Example 3. A compact way to *see* why BPA stops at position 3 while TA
// runs to position 6.
//
//   $ ./trace_walkthrough

#include <iostream>

#include "common/table_printer.h"
#include "core/algorithms.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

int main() {
  using namespace topk;

  const Database db = MakeFigure1Database();
  SumScorer sum;
  const TopKQuery query{3, &sum};

  AlgorithmOptions options;
  options.collect_trace = true;

  const TopKResult ta = MakeAlgorithm(AlgorithmKind::kTa, options)
                            ->Execute(db, query)
                            .ValueOrDie();
  const TopKResult bpa = MakeAlgorithm(AlgorithmKind::kBpa, options)
                             ->Execute(db, query)
                             .ValueOrDie();

  std::cout << "Figure 1 database, k = 3, f = sum.\n"
            << "Paper: TA stops at position 6, BPA at position 3 "
               "(Examples 2-3).\n\n";

  TablePrinter table("Stop-rule evaluations, row by row");
  table.AddRow("position", "TA threshold δ", "TA kth(Y)", "BPA λ",
               "BPA kth(Y)", "BPA min bp");
  const size_t rows = std::max(ta.trace.size(), bpa.trace.size());
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(i + 1));
    if (i < ta.trace.size()) {
      cells.push_back(TablePrinter::FormatCell(ta.trace[i].threshold));
      cells.push_back(TablePrinter::FormatCell(ta.trace[i].kth_score));
    } else {
      cells.push_back("(stopped)");
      cells.push_back("-");
    }
    if (i < bpa.trace.size()) {
      cells.push_back(TablePrinter::FormatCell(bpa.trace[i].threshold));
      cells.push_back(TablePrinter::FormatCell(bpa.trace[i].kth_score));
      cells.push_back(
          std::to_string(bpa.trace[i].min_best_position));
    } else {
      cells.push_back("(stopped)");
      cells.push_back("-");
      cells.push_back("-");
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);

  std::cout
      << "\nReading guide: both algorithms buffer the same k items, but BPA\n"
         "evaluates the threshold at the *best positions* (deepest fully-\n"
         "seen prefix). At row 3 the random accesses have filled positions\n"
         "1..9 of lists 1-2 and 1..6 of list 3, so λ collapses from 80 to\n"
         "43 = s1(9)+s2(9)+s3(6) while TA's δ is still 80. Y's k-th score\n"
         "(70) beats 43, and BPA stops three rows before TA.\n";

  std::cout << "\nTop-3: ";
  for (const ResultItem& item : bpa.items) {
    std::cout << PaperItemLabel(item.item) << " (" << item.score << ")  ";
  }
  std::cout << "\n";
  return 0;
}
