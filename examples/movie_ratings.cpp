// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// The relational scenario from the paper's introduction: "find the top-k
// tuples in a relational table according to some scoring function over its
// attributes" — here, movies rated on several criteria, each criterion
// maintained as a sorted (indexed) list.
//
// Demonstrates: multiple scoring functions over the same database, the
// tracker choice (Section 5.2), and per-query cost accounting.
//
//   $ ./movie_ratings

#include <iostream>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "core/algorithms.h"
#include "lists/scorer.h"

int main() {
  using namespace topk;

  constexpr size_t kMovies = 30000;
  const std::vector<std::string> criteria = {"story", "acting", "visuals",
                                             "soundtrack", "pacing"};
  constexpr size_t kTop = 8;

  // Ratings in [0, 10]; movies have a latent quality so criteria correlate.
  Rng rng(1968);
  std::vector<std::vector<Score>> ratings(kMovies,
                                          std::vector<Score>(criteria.size()));
  for (size_t i = 0; i < kMovies; ++i) {
    const double quality = rng.NextDouble(2.0, 8.0);
    for (size_t c = 0; c < criteria.size(); ++c) {
      double r = quality + rng.NextGaussian(0.0, 1.2);
      ratings[i][c] = std::min(10.0, std::max(0.0, r));
    }
  }
  const Database db = Database::FromScoreMatrix(ratings).ValueOrDie();

  SumScorer overall;
  MinScorer weakest_aspect;  // "no weak spots" ranking
  const WeightedSumScorer cinephile =
      WeightedSumScorer::Make({2.0, 1.5, 1.0, 1.0, 0.5}).ValueOrDie();

  auto bpa = MakeAlgorithm(AlgorithmKind::kBpa);

  for (const Scorer* scorer :
       std::vector<const Scorer*>{&overall, &weakest_aspect, &cinephile}) {
    const TopKQuery query{kTop, scorer};
    const TopKResult result = bpa->Execute(db, query).ValueOrDie();
    TablePrinter table("Top movies by '" + scorer->name() + "' (" +
                       std::to_string(result.stats.TotalAccesses()) +
                       " accesses, stop position " +
                       std::to_string(result.stop_position) + ")");
    table.AddRow("rank", "movie id", "score");
    for (size_t i = 0; i < result.items.size(); ++i) {
      table.AddRow(i + 1, static_cast<uint64_t>(result.items[i].item),
                   result.items[i].score);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // Section 5.2 in practice: the best-position structure is pluggable.
  TablePrinter trackers("BPA2 response time by best-position structure");
  trackers.AddRow("tracker", "time (ms)", "accesses");
  for (TrackerKind kind : {TrackerKind::kBitArray, TrackerKind::kBPlusTree,
                           TrackerKind::kSortedSet}) {
    AlgorithmOptions options;
    options.tracker = kind;
    auto bpa2 = MakeAlgorithm(AlgorithmKind::kBpa2, options);
    const TopKResult r =
        bpa2->Execute(db, TopKQuery{kTop, &overall}).ValueOrDie();
    trackers.AddRow(ToString(kind), r.elapsed_ms, r.stats.TotalAccesses());
  }
  trackers.Print(std::cout);
  return 0;
}
