// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Distributed deployment (paper, Section 5): the sorted lists live at remote
// list-owner nodes and every access is a message exchange with the query
// originator. This example runs the distributed TA, BPA, BPA2 and TPUT
// coordinators over a simulated network and compares messages, bytes, and
// simulated latency — showing why BPA2 keeps the best positions at the list
// owners instead of shipping seen positions to the originator.
//
//   $ ./distributed_topk

#include <iostream>

#include "common/table_printer.h"
#include "dist/coordinator.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

int main() {
  using namespace topk;

  constexpr size_t kItems = 20000;
  constexpr size_t kNodes = 6;
  constexpr size_t kTop = 10;

  const Database db = MakeUniformDatabase(kItems, kNodes, 777);
  SumScorer sum;
  const TopKQuery query{kTop, &sum};

  DistributedOptions options;
  options.network.rtt_ms = 2.0;                    // WAN-ish round trip
  options.network.bandwidth_bytes_per_ms = 125.0;  // ~1 Mbit/s

  std::cout << "Distributed top-" << kTop << " over " << kNodes
            << " list owners, n=" << kItems << " items each.\n\n";

  TablePrinter table("Distributed protocols compared");
  table.AddRow("protocol", "accesses", "messages", "bytes", "rounds",
               "simulated latency (ms)");

  const auto ta = RunDistributedTa(db, query, options).ValueOrDie();
  const auto bpa = RunDistributedBpa(db, query, options).ValueOrDie();
  const auto bpa2 = RunDistributedBpa2(db, query, options).ValueOrDie();
  const auto tput = RunDistributedTput(db, query, options).ValueOrDie();

  struct Row {
    const char* name;
    const DistributedResult* r;
  };
  for (const Row row : {Row{"dist-TA", &ta}, Row{"dist-BPA", &bpa},
                        Row{"dist-BPA2", &bpa2}, Row{"dist-TPUT", &tput}}) {
    table.AddRow(row.name, row.r->access_stats.TotalAccesses(),
                 row.r->network.messages, row.r->network.bytes,
                 row.r->network.rounds, row.r->network.simulated_ms);
  }
  table.Print(std::cout);

  std::cout << "\nTop item according to dist-BPA2: item "
            << bpa2.items[0].item << " (score " << bpa2.items[0].score
            << ")\n";
  std::cout << "\nReading guide: dist-BPA and dist-TA ship one RPC per list\n"
               "access; BPA additionally transfers positions so the query\n"
               "originator can maintain every seen position. BPA2 leaves\n"
               "best-position management at the owners (fewer accesses, no\n"
               "position sets at the originator). TPUT bounds the number of\n"
               "round trips to three but moves bulk payloads.\n";
  return 0;
}
