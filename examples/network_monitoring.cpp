// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// The network-monitoring scenario from the paper's conclusion: an application
// monitors the activity of users at m IP locations; each location keeps a
// list of URLs ranked by access frequency. The administrator asks "what are
// the top-k popular URLs overall?".
//
// URL popularity famously follows a Zipf law, and the same URL tends to be
// popular everywhere, so the per-location lists are position-correlated: we
// generate them with the paper's correlated-database generator (Zipf scores,
// small alpha) and answer the query with TA, BPA and BPA2.
//
//   $ ./network_monitoring

#include <iostream>

#include "common/table_printer.h"
#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

int main() {
  using namespace topk;

  constexpr size_t kUrls = 50000;      // distinct URLs (data items)
  constexpr size_t kLocations = 12;    // monitored IP locations (lists)
  constexpr size_t kTop = 10;

  // Each location ranks URLs by access frequency; frequencies follow a Zipf
  // law (theta = 0.7, the paper's setting) and the ranking is strongly
  // correlated across locations (alpha = 0.001).
  CorrelatedConfig config;
  config.n = kUrls;
  config.m = kLocations;
  config.alpha = 0.001;
  config.zipf_theta = 0.7;
  config.seed = 20070923;  // VLDB'07 opening day
  const Database db = MakeCorrelatedDatabase(config).ValueOrDie();

  // Overall popularity = total frequency across locations.
  SumScorer total_frequency;
  const TopKQuery query{kTop, &total_frequency};

  std::cout << "Monitoring " << kLocations << " locations x " << kUrls
            << " URLs; looking for the top-" << kTop << " popular URLs.\n\n";

  auto bpa2 = MakeAlgorithm(AlgorithmKind::kBpa2);
  const TopKResult top = bpa2->Execute(db, query).ValueOrDie();
  TablePrinter urls("Top URLs by aggregated access frequency");
  urls.AddRow("rank", "url id", "aggregated frequency");
  for (size_t i = 0; i < top.items.size(); ++i) {
    urls.AddRow(i + 1, static_cast<uint64_t>(top.items[i].item),
                top.items[i].score);
  }
  urls.Print(std::cout);
  std::cout << "\n";

  TablePrinter work("Who read how much of the lists?");
  work.AddRow("algorithm", "accesses", "execution cost", "time (ms)");
  for (AlgorithmKind kind :
       {AlgorithmKind::kTa, AlgorithmKind::kBpa, AlgorithmKind::kBpa2}) {
    const TopKResult r = MakeAlgorithm(kind)->Execute(db, query).ValueOrDie();
    work.AddRow(ToString(kind), r.stats.TotalAccesses(), r.execution_cost,
                r.elapsed_ms);
  }
  work.Print(std::cout);
  std::cout << "\nBecause popular URLs sit near the top of every list, the\n"
               "best-position algorithms stop after reading a tiny prefix.\n";
  return 0;
}
