// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// The information-retrieval scenario from the paper's introduction: "to find
// the top-k documents whose aggregate rank is the highest w.r.t. some given
// keywords, the solution is to have for each keyword a ranked list of
// documents, and return the k documents whose aggregate rank in all lists is
// the highest."
//
// We synthesize per-keyword relevance lists (BM25-ish positive scores with a
// long tail), weight the query terms, and answer with BPA2.
//
//   $ ./keyword_search

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "core/algorithms.h"
#include "lists/scorer.h"

int main() {
  using namespace topk;

  const std::vector<std::string> keywords = {"distributed", "top-k", "query",
                                             "algorithm"};
  constexpr size_t kDocs = 20000;
  constexpr size_t kTop = 5;

  // Synthetic relevance: each document's score for a keyword is a product of
  // a per-document quality factor and a per-(doc, keyword) affinity, which
  // yields realistic heavy-tailed, cross-list-correlated scores.
  Rng rng(4242);
  std::vector<double> quality(kDocs);
  for (auto& q : quality) {
    q = std::exp(rng.NextGaussian(0.0, 0.8));
  }
  std::vector<std::vector<Score>> scores(kDocs,
                                         std::vector<Score>(keywords.size()));
  for (size_t d = 0; d < kDocs; ++d) {
    for (size_t t = 0; t < keywords.size(); ++t) {
      scores[d][t] = quality[d] * std::exp(rng.NextGaussian(0.0, 0.5));
    }
  }
  const Database db = Database::FromScoreMatrix(scores).ValueOrDie();

  // The second query term matters twice as much.
  const WeightedSumScorer scorer =
      WeightedSumScorer::Make({1.0, 2.0, 1.0, 1.5}).ValueOrDie();
  const TopKQuery query{kTop, &scorer};

  std::cout << "Searching " << kDocs << " documents for:";
  for (const auto& kw : keywords) {
    std::cout << " \"" << kw << "\"";
  }
  std::cout << "\n\n";

  auto bpa2 = MakeAlgorithm(AlgorithmKind::kBpa2);
  const TopKResult result = bpa2->Execute(db, query).ValueOrDie();

  TablePrinter hits("Top documents (weighted aggregate relevance)");
  hits.AddRow("rank", "doc id", "score");
  for (size_t i = 0; i < result.items.size(); ++i) {
    hits.AddRow(i + 1, static_cast<uint64_t>(result.items[i].item),
                result.items[i].score);
  }
  hits.Print(std::cout);

  std::cout << "\nBPA2 resolved the query after touching "
            << result.stats.TotalAccesses() << " postings out of "
            << kDocs * keywords.size() << " ("
            << 100.0 * result.stats.TotalAccesses() /
                   static_cast<double>(kDocs * keywords.size())
            << "% of the index).\n";

  // Contrast with the naive full scan.
  const TopKResult naive = MakeAlgorithm(AlgorithmKind::kNaive)
                               ->Execute(db, query)
                               .ValueOrDie();
  std::cout << "A full scan reads " << naive.stats.TotalAccesses()
            << " postings; same answer, "
            << naive.stats.TotalAccesses() /
                   std::max<uint64_t>(1, result.stats.TotalAccesses())
            << "x the work.\n";
  return 0;
}
