// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Quickstart: build a small database, run a top-k query with BPA, and compare
// the work all algorithms did. Start here.
//
//   $ ./quickstart

#include <iostream>

#include "common/table_printer.h"
#include "core/algorithms.h"
#include "lists/scorer.h"

int main() {
  using namespace topk;

  // A database is m sorted lists over the same n items. The easiest way to
  // build one is a score matrix: scores[item][list].
  const Database db = Database::FromScoreMatrix({
                                    // list0  list1  list2
                                    {30.0, 21.0, 14.0},  // item 0
                                    {11.0, 28.0, 24.0},  // item 1
                                    {26.0, 14.0, 30.0},  // item 2
                                    {28.0, 13.0, 25.0},  // item 3
                                    {17.0, 24.0, 29.0},  // item 4
                                    {14.0, 27.0, 19.0},  // item 5
                                    {25.0, 25.0, 11.0},  // item 6
                                    {23.0, 20.0, 28.0},  // item 7
                                    {27.0, 23.0, 12.0},  // item 8
                                })
                          .ValueOrDie();

  // A query: how many items (k) and how to aggregate the local scores.
  SumScorer sum;
  const TopKQuery query{3, &sum};

  // Run the paper's Best Position Algorithm.
  auto bpa = MakeAlgorithm(AlgorithmKind::kBpa);
  const TopKResult result = bpa->Execute(db, query).ValueOrDie();

  std::cout << "Top-" << query.k << " items by " << sum.name() << ":\n";
  for (const ResultItem& item : result.items) {
    std::cout << "  item " << item.item << "  overall score " << item.score
              << "\n";
  }
  std::cout << "\nBPA stopped at position " << result.stop_position
            << " after " << result.stats.ToString() << "\n\n";

  // Every algorithm returns the same answer; they differ in how much of the
  // lists they read.
  TablePrinter table("Work comparison on this database");
  table.AddRow("algorithm", "stop position", "total accesses",
               "execution cost");
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult r = MakeAlgorithm(kind)->Execute(db, query).ValueOrDie();
    table.AddRow(ToString(kind), static_cast<uint64_t>(r.stop_position),
                 r.stats.TotalAccesses(), r.execution_cost);
  }
  table.Print(std::cout);
  return 0;
}
