// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// NRA pool compaction (AlgorithmOptions::nra_pool_compaction) is specified to
// be a behavioral no-op: erasing candidates whose upper bound is strictly
// below the k-th lower bound must not change results, stop positions or
// access counts — only the pool's memory footprint. These tests certify the
// no-op differentially across the fuzz grid (compaction forced on at every
// stop check vs. off) and pin the memory claim at DRAM scale: a million-item
// NRA run must keep peak pool occupancy far below n while the uncompacted
// run's pool grows toward every seen item.

#include <cstdint>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/candidate_bounds.h"
#include "core/execution_context.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

struct NraRun {
  TopKResult result;
  size_t pool_size = 0;
  size_t pool_peak = 0;
};

NraRun RunNra(const Database& db, size_t k, bool compaction,
              size_t compaction_floor) {
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  options.nra_pool_compaction = compaction;
  options.nra_compaction_floor = compaction_floor;
  SumScorer sum;
  ExecutionContext context;
  NraRun run;
  run.result = MakeAlgorithm(AlgorithmKind::kNra, options)
                   ->Execute(db, TopKQuery{k, &sum}, &context)
                   .ValueOrDie();
  run.pool_size = context.pool().size();
  run.pool_peak = context.pool().peak_size();
  return run;
}

void ExpectIdenticalBehavior(const NraRun& off, const NraRun& on,
                             const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(off.result.stop_position, on.result.stop_position);
  EXPECT_EQ(off.result.stats.sorted_accesses, on.result.stats.sorted_accesses);
  EXPECT_EQ(off.result.stats.random_accesses, on.result.stats.random_accesses);
  EXPECT_EQ(off.result.stats.direct_accesses, on.result.stats.direct_accesses);
  ASSERT_EQ(off.result.items.size(), on.result.items.size());
  for (size_t i = 0; i < off.result.items.size(); ++i) {
    EXPECT_EQ(off.result.items[i].item, on.result.items[i].item);
    EXPECT_EQ(off.result.items[i].score, on.result.items[i].score);
  }
}

// Compaction with an aggressive watermark floor vs. off, across the fuzz
// grid's families and shapes: the exact item sequence, the stop position and
// every access counter must be identical.
TEST(PoolCompactionTest, DifferentialAcrossGrid) {
  char label[128];
  bool any_erased = false;
  for (DatabaseKind kind :
       {DatabaseKind::kUniform, DatabaseKind::kGaussian,
        DatabaseKind::kCorrelated, DatabaseKind::kZipf}) {
    for (size_t n : {size_t{50}, size_t{200}, size_t{1000}}) {
      for (size_t m : {size_t{1}, size_t{2}, size_t{5}}) {
        for (uint64_t seed = 1; seed <= 2; ++seed) {
          const Database db = MakeDatabaseOfKind(kind, n, m, seed);
          for (size_t k : {size_t{1}, size_t{5}, n / 2, n}) {
            if (k == 0 || k > n) {
              continue;
            }
            const NraRun off = RunNra(db, k, /*compaction=*/false, 1);
            const NraRun on = RunNra(db, k, /*compaction=*/true, 1);
            std::snprintf(label, sizeof(label), "%s n=%zu m=%zu k=%zu s=%llu",
                          ToString(kind).c_str(), n, m, k,
                          static_cast<unsigned long long>(seed));
            ExpectIdenticalBehavior(off, on, label);
            // Compaction never grows the pool.
            EXPECT_LE(on.pool_size, off.pool_size);
            any_erased |= on.pool_size < off.pool_size;
          }
        }
      }
    }
  }
  // The differential must exercise real erasures somewhere in the grid —
  // otherwise it would be comparing compaction against itself.
  EXPECT_TRUE(any_erased);
}

// DRAM-scale smoke, part 1 — the memory claim. Gaussian m=2: the k-th lower
// bound gets strong early (only two lists need to agree) while the scan
// still runs deep, so the seen set is ~26% of n but the live set is tiny —
// compaction must keep peak occupancy well over an order of magnitude under
// the uncompacted pool's. Measured (Release, seed 11): stop 139528 under
// every schedule; peak 259381 uncompacted, 16426 under PR 4's schedule
// (2x-live productive reset, flat 4x backoff — the peak was exactly the
// first unproductive pass's 4x landing point), 8215 under PR 5's 1.25x
// productive reset with escalating (2x then 4x) backoff.
TEST(PoolCompactionTest, MillionItemSmokeBoundsPoolOccupancy) {
  constexpr size_t kN = 1'000'000;
  const Database db = MakeGaussianDatabase(kN, 2, 11);
  const size_t default_floor = AlgorithmOptions().nra_compaction_floor;
  const NraRun off = RunNra(db, 20, /*compaction=*/false, default_floor);
  const NraRun on = RunNra(db, 20, /*compaction=*/true, default_floor);
  ExpectIdenticalBehavior(off, on, "gaussian n=1M m=2 k=20");

  // The uncompacted pool holds every distinct item the deep scan saw.
  EXPECT_GT(off.pool_peak, kN / 8);
  // The compacted peak is bounded well below n: productive passes reset the
  // watermark to 1.25x the surviving live set, so the peak hugs the live
  // population (a few thousand here), not the number of seen items. PR 4's
  // looser 2x schedule peaked at ~16.4k on this workload; the bound below
  // would catch a regression to it.
  EXPECT_LT(on.pool_peak, kN / 100);
  // The final size depends only on where the stop lands between two passes;
  // it is bounded by the watermark floor (the minimum trigger).
  EXPECT_LE(on.pool_size, default_floor);
}

// DRAM-scale smoke, part 2 — the adversarially-live workload (uniform m=5).
// Its live set is intrinsically large mid-scan (~26% of n: five independent
// lists resolve top candidates slowly, so hundreds of thousands of
// partially-seen items genuinely block the stop rule), which bounds what any
// compaction schedule can do to the peak. The unproductive-pass backoff
// (escalating 2x-then-4x watermark growth when under a quarter is erased)
// exists exactly for this shape: behavior must stay byte-identical,
// occupancy must never exceed the uncompacted pool's, and the walk tax
// stays a few hundred thousand visits per query instead of repeated
// O(live) sweeps — the quarter bar also keeps marginally-dead passes from
// resetting the watermark tight and churning candidates (erase, re-see,
// re-insert) near the productivity boundary. Measured (Release, seed 11):
// both peaks 720173 (every ladder pass found a mostly-live pool and backed
// off).
TEST(PoolCompactionTest, MillionItemUniformLiveSetNeverExceedsUncompacted) {
  constexpr size_t kN = 1'000'000;
  const Database db = MakeUniformDatabase(kN, 5, 11);
  const size_t default_floor = AlgorithmOptions().nra_compaction_floor;
  const NraRun off = RunNra(db, 20, /*compaction=*/false, default_floor);
  const NraRun on = RunNra(db, 20, /*compaction=*/true, default_floor);
  ExpectIdenticalBehavior(off, on, "uniform n=1M m=5 k=20");

  EXPECT_LE(on.pool_peak, off.pool_peak);
  EXPECT_LE(on.pool_size, off.pool_size);
  EXPECT_GT(off.pool_size, kN / 2);
}

}  // namespace
}  // namespace topk
