// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Cross-algorithm equivalence sweep: every algorithm must return the same
// top-k overall-score multiset as the naive full scan over a grid of
// {database family} x {m} x {n} x {k} x {scoring function}.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

struct GridCase {
  DatabaseKind db_kind;
  size_t m;
  size_t n;
  size_t k;
};

std::string CaseName(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  return ToString(c.db_kind) + "_m" + std::to_string(c.m) + "_n" +
         std::to_string(c.n) + "_k" + std::to_string(c.k);
}

Database MakeDb(const GridCase& c, uint64_t seed) {
  switch (c.db_kind) {
    case DatabaseKind::kUniform:
      return MakeUniformDatabase(c.n, c.m, seed);
    case DatabaseKind::kGaussian:
      return MakeGaussianDatabase(c.n, c.m, seed);
    case DatabaseKind::kCorrelated: {
      CorrelatedConfig config;
      config.n = c.n;
      config.m = c.m;
      config.alpha = 0.05;
      config.seed = seed;
      return MakeCorrelatedDatabase(config).ValueOrDie();
    }
    case DatabaseKind::kZipf:
      return MakeZipfDatabase(c.n, c.m, seed);
  }
  return Database();
}

double DbFloor(const Database& db) {
  double floor = 0.0;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    floor = std::min(floor, db.list(i).MinScore());
  }
  return floor;
}

class CorrectnessTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(CorrectnessTest, AllAlgorithmsMatchNaiveScores) {
  const GridCase& c = GetParam();
  const Database db = MakeDb(c, /*seed=*/1234 + c.m * 31 + c.n);

  std::vector<std::unique_ptr<Scorer>> scorers;
  scorers.push_back(std::make_unique<SumScorer>());
  scorers.push_back(std::make_unique<MinScorer>());
  scorers.push_back(std::make_unique<MaxScorer>());
  scorers.push_back(std::make_unique<AverageScorer>());
  {
    std::vector<double> weights(c.m);
    for (size_t i = 0; i < c.m; ++i) {
      weights[i] = 0.25 + static_cast<double>(i);
    }
    scorers.push_back(std::make_unique<WeightedSumScorer>(
        WeightedSumScorer::Make(std::move(weights)).ValueOrDie()));
  }

  AlgorithmOptions options;
  options.score_floor = DbFloor(db);

  for (const auto& scorer : scorers) {
    const TopKQuery query{c.k, scorer.get()};
    const TopKResult naive = MakeAlgorithm(AlgorithmKind::kNaive, options)
                                 ->Execute(db, query)
                                 .ValueOrDie();
    ASSERT_EQ(naive.items.size(), c.k);

    for (AlgorithmKind kind : AllAlgorithmKinds()) {
      if (kind == AlgorithmKind::kTput && scorer->name() != "sum") {
        continue;  // TPUT is sum-only by design (validated separately)
      }
      auto algorithm = MakeAlgorithm(kind, options);
      const Result<TopKResult> result = algorithm->Execute(db, query);
      ASSERT_TRUE(result.ok()) << ToString(kind) << "/" << scorer->name()
                               << ": " << result.status().ToString();
      const std::vector<Score> got = result.ValueUnsafe().Scores();
      const std::vector<Score> want = naive.Scores();
      ASSERT_EQ(got.size(), want.size()) << ToString(kind);
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_DOUBLE_EQ(got[i], want[i])
            << ToString(kind) << "/" << scorer->name() << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CorrectnessTest,
    ::testing::Values(
        GridCase{DatabaseKind::kUniform, 2, 50, 1},
        GridCase{DatabaseKind::kUniform, 2, 200, 5},
        GridCase{DatabaseKind::kUniform, 3, 200, 10},
        GridCase{DatabaseKind::kUniform, 5, 500, 5},
        GridCase{DatabaseKind::kUniform, 8, 500, 20},
        GridCase{DatabaseKind::kUniform, 4, 1000, 3},
        GridCase{DatabaseKind::kGaussian, 2, 200, 5},
        GridCase{DatabaseKind::kGaussian, 5, 500, 10},
        GridCase{DatabaseKind::kGaussian, 8, 300, 20},
        GridCase{DatabaseKind::kCorrelated, 3, 200, 5},
        GridCase{DatabaseKind::kCorrelated, 5, 500, 20},
        GridCase{DatabaseKind::kCorrelated, 8, 400, 10},
        GridCase{DatabaseKind::kZipf, 3, 200, 5},
        GridCase{DatabaseKind::kZipf, 5, 500, 20}),
    CaseName);

// Edge cases around k.
TEST(CorrectnessEdgeTest, KEqualsOne) {
  const Database db = MakeUniformDatabase(100, 4, 7);
  SumScorer sum;
  const TopKQuery query{1, &sum};
  const Score want = MakeAlgorithm(AlgorithmKind::kNaive)
                         ->Execute(db, query)
                         .ValueOrDie()
                         .items[0]
                         .score;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult result =
        MakeAlgorithm(kind)->Execute(db, query).ValueOrDie();
    EXPECT_DOUBLE_EQ(result.items[0].score, want) << ToString(kind);
  }
}

TEST(CorrectnessEdgeTest, KEqualsN) {
  const Database db = MakeUniformDatabase(40, 3, 11);
  SumScorer sum;
  const TopKQuery query{40, &sum};
  const std::vector<Score> want = MakeAlgorithm(AlgorithmKind::kNaive)
                                      ->Execute(db, query)
                                      .ValueOrDie()
                                      .Scores();
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const std::vector<Score> got =
        MakeAlgorithm(kind)->Execute(db, query).ValueOrDie().Scores();
    ASSERT_EQ(got.size(), want.size()) << ToString(kind);
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i], want[i]) << ToString(kind) << " rank " << i;
    }
  }
}

TEST(CorrectnessEdgeTest, SingleList) {
  // m = 1: the top-k are simply the first k entries of the list.
  const Database db = MakeUniformDatabase(100, 1, 13);
  SumScorer sum;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult result =
        MakeAlgorithm(kind)->Execute(db, TopKQuery{5, &sum}).ValueOrDie();
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(result.items[i].item, db.list(0).EntryAt(i + 1).item)
          << ToString(kind);
    }
  }
}

TEST(CorrectnessEdgeTest, SingleItem) {
  const Database db = MakeUniformDatabase(1, 4, 17);
  SumScorer sum;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult result =
        MakeAlgorithm(kind)->Execute(db, TopKQuery{1, &sum}).ValueOrDie();
    EXPECT_EQ(result.items[0].item, 0u) << ToString(kind);
  }
}

TEST(CorrectnessEdgeTest, DuplicateScoresEverywhere) {
  // All items tie in every list; any k-subset is a valid answer, and all
  // algorithms must return the same (maximal) score multiset.
  const Database db =
      Database::FromScoreMatrix(std::vector<std::vector<Score>>(
                                    20, std::vector<Score>(3, 1.0)))
          .ValueOrDie();
  SumScorer sum;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult result =
        MakeAlgorithm(kind)->Execute(db, TopKQuery{4, &sum}).ValueOrDie();
    for (const ResultItem& item : result.items) {
      EXPECT_DOUBLE_EQ(item.score, 3.0) << ToString(kind);
    }
  }
}

TEST(CorrectnessEdgeTest, ValidationRejectsBadQueries) {
  const Database db = MakeUniformDatabase(10, 2, 19);
  SumScorer sum;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    auto algorithm = MakeAlgorithm(kind);
    EXPECT_TRUE(
        algorithm->Execute(db, TopKQuery{0, &sum}).status().IsInvalid())
        << ToString(kind);
    EXPECT_TRUE(
        algorithm->Execute(db, TopKQuery{11, &sum}).status().IsInvalid())
        << ToString(kind);
    EXPECT_TRUE(
        algorithm->Execute(db, TopKQuery{1, nullptr}).status().IsInvalid())
        << ToString(kind);
  }
}

TEST(CorrectnessEdgeTest, ResultMetadataFilled) {
  const Database db = MakeUniformDatabase(200, 4, 23);
  SumScorer sum;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult result =
        MakeAlgorithm(kind)->Execute(db, TopKQuery{5, &sum}).ValueOrDie();
    EXPECT_GT(result.stats.TotalAccesses(), 0u) << ToString(kind);
    EXPECT_GT(result.execution_cost, 0.0) << ToString(kind);
    EXPECT_GE(result.elapsed_ms, 0.0) << ToString(kind);
    EXPECT_GT(result.stop_position, 0u) << ToString(kind);
  }
}

}  // namespace
}  // namespace topk
