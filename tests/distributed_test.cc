// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/coordinator.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

class DistributedTest : public ::testing::Test {
 protected:
  DistributedTest() : db_(MakeUniformDatabase(500, 4, 77)), query_{10, &sum_} {}

  Database db_;
  SumScorer sum_;
  TopKQuery query_;
  DistributedOptions options_;
};

TEST_F(DistributedTest, TaMatchesCentralized) {
  const auto central =
      MakeAlgorithm(AlgorithmKind::kTa)->Execute(db_, query_).ValueOrDie();
  const auto dist = RunDistributedTa(db_, query_, options_).ValueOrDie();
  EXPECT_EQ(dist.stop_position, central.stop_position);
  EXPECT_EQ(dist.access_stats, central.stats);
  ASSERT_EQ(dist.items.size(), central.items.size());
  for (size_t i = 0; i < central.items.size(); ++i) {
    EXPECT_EQ(dist.items[i].item, central.items[i].item);
    EXPECT_DOUBLE_EQ(dist.items[i].score, central.items[i].score);
  }
}

TEST_F(DistributedTest, BpaMatchesCentralized) {
  const auto central =
      MakeAlgorithm(AlgorithmKind::kBpa)->Execute(db_, query_).ValueOrDie();
  const auto dist = RunDistributedBpa(db_, query_, options_).ValueOrDie();
  EXPECT_EQ(dist.stop_position, central.stop_position);
  EXPECT_EQ(dist.access_stats, central.stats);
  for (size_t i = 0; i < central.items.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist.items[i].score, central.items[i].score);
  }
}

TEST_F(DistributedTest, Bpa2MatchesCentralized) {
  const auto central =
      MakeAlgorithm(AlgorithmKind::kBpa2)->Execute(db_, query_).ValueOrDie();
  const auto dist = RunDistributedBpa2(db_, query_, options_).ValueOrDie();
  EXPECT_EQ(dist.stop_position, central.stop_position);
  EXPECT_EQ(dist.access_stats, central.stats);
  for (size_t i = 0; i < central.items.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist.items[i].score, central.items[i].score);
  }
}

TEST_F(DistributedTest, TputMatchesCentralizedAnswers) {
  const auto central =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db_, query_).ValueOrDie();
  const auto dist = RunDistributedTput(db_, query_, options_).ValueOrDie();
  ASSERT_EQ(dist.items.size(), query_.k);
  for (size_t i = 0; i < query_.k; ++i) {
    EXPECT_DOUBLE_EQ(dist.items[i].score, central.items[i].score);
  }
}

TEST_F(DistributedTest, MessagesProportionalToAccesses) {
  // Per-access protocols: one request + one response per access (Section 6.1:
  // "the number of messages ... is proportional to the number of accesses").
  for (auto* run :
       {&RunDistributedTa, &RunDistributedBpa, &RunDistributedBpa2}) {
    const auto dist = run(db_, query_, options_).ValueOrDie();
    EXPECT_EQ(dist.network.messages, 2 * dist.access_stats.TotalAccesses());
  }
}

TEST_F(DistributedTest, Bpa2FewerMessagesThanBpaThanTa) {
  const auto ta = RunDistributedTa(db_, query_, options_).ValueOrDie();
  const auto bpa = RunDistributedBpa(db_, query_, options_).ValueOrDie();
  const auto bpa2 = RunDistributedBpa2(db_, query_, options_).ValueOrDie();
  EXPECT_LE(bpa.network.messages, ta.network.messages);
  EXPECT_LE(bpa2.network.messages, bpa.network.messages);
}

TEST_F(DistributedTest, Bpa2ShipsFewerBytesThanBpa) {
  // BPA ships positions and keeps the seen sets at the originator; BPA2
  // piggybacks only the best-position score. Per access BPA2 responses are
  // slightly larger, but it does far fewer accesses; total bytes must win.
  const auto bpa = RunDistributedBpa(db_, query_, options_).ValueOrDie();
  const auto bpa2 = RunDistributedBpa2(db_, query_, options_).ValueOrDie();
  EXPECT_LT(bpa2.network.bytes, bpa.network.bytes);
}

TEST_F(DistributedTest, TputUsesConstantRounds) {
  const auto dist = RunDistributedTput(db_, query_, options_).ValueOrDie();
  EXPECT_EQ(dist.network.rounds, 3u);  // one per phase
  // Bulk transfers: far fewer messages than per-access protocols.
  const auto ta = RunDistributedTa(db_, query_, options_).ValueOrDie();
  EXPECT_LT(dist.network.messages, ta.network.messages);
}

TEST_F(DistributedTest, SimulatedLatencyAccumulatesPerRound) {
  DistributedOptions slow;
  slow.network.rtt_ms = 10.0;
  const auto fast = RunDistributedBpa2(db_, query_, options_).ValueOrDie();
  const auto slowed = RunDistributedBpa2(db_, query_, slow).ValueOrDie();
  EXPECT_GT(slowed.network.simulated_ms, fast.network.simulated_ms);
  EXPECT_EQ(slowed.network.rounds, fast.network.rounds);
}

TEST_F(DistributedTest, ValidationErrors) {
  SumScorer sum;
  EXPECT_TRUE(RunDistributedTa(db_, TopKQuery{0, &sum}, options_)
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(RunDistributedBpa(db_, TopKQuery{501, &sum}, options_)
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(RunDistributedBpa2(db_, TopKQuery{1, nullptr}, options_)
                  .status()
                  .IsInvalid());
  MinScorer min;
  EXPECT_TRUE(RunDistributedTput(db_, TopKQuery{1, &min}, options_)
                  .status()
                  .IsNotImplemented());
}

TEST_F(DistributedTest, PaperFigure2AccessCountsSurviveDistribution) {
  const Database db = MakeFigure2Database();
  SumScorer sum;
  const TopKQuery query{3, &sum};
  const auto bpa = RunDistributedBpa(db, query, options_).ValueOrDie();
  const auto bpa2 = RunDistributedBpa2(db, query, options_).ValueOrDie();
  EXPECT_EQ(bpa.access_stats.TotalAccesses(), 63u);
  EXPECT_EQ(bpa2.access_stats.TotalAccesses(), 36u);
}

TEST_F(DistributedTest, WorksWithBPlusTreeOwners) {
  DistributedOptions options;
  options.tracker = TrackerKind::kBPlusTree;
  const auto a = RunDistributedBpa2(db_, query_, options_).ValueOrDie();
  const auto b = RunDistributedBpa2(db_, query_, options).ValueOrDie();
  EXPECT_EQ(a.access_stats, b.access_stats);
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.items[i].score, b.items[i].score);
  }
}

}  // namespace
}  // namespace topk
