// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Property tests: every tracker implementation must agree with a straightfor-
// ward reference model on arbitrary access streams, and the B+tree tracker's
// underlying tree must keep its structural invariants throughout.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tracker/best_position_tracker.h"
#include "tracker/bplus_tree_tracker.h"

namespace topk {
namespace {

// Reference model: linear scan over a bool vector.
class ReferenceModel {
 public:
  explicit ReferenceModel(size_t n) : seen_(n + 1, false) {}

  void MarkSeen(Position p) { seen_[p] = true; }

  Position best_position() const {
    Position bp = 0;
    while (bp + 1 < seen_.size() && seen_[bp + 1]) {
      ++bp;
    }
    return bp;
  }

  bool IsSeen(Position p) const { return seen_[p]; }

  size_t seen_count() const {
    size_t count = 0;
    for (bool b : seen_) {
      count += b;
    }
    return count;
  }

 private:
  std::vector<bool> seen_;
};

class TrackerPropertyTest : public ::testing::TestWithParam<TrackerKind> {};

TEST_P(TrackerPropertyTest, NameMatchesKind) {
  auto tracker = MakeTracker(GetParam(), 4);
  EXPECT_EQ(tracker->name(), ToString(GetParam()));
}

TEST_P(TrackerPropertyTest, AgreesWithModelOnRandomStreams) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextBounded(300);
    auto tracker = MakeTracker(GetParam(), n);
    ReferenceModel model(n);
    const int accesses = 1 + static_cast<int>(rng.NextBounded(3 * n));
    for (int a = 0; a < accesses; ++a) {
      const Position p = static_cast<Position>(1 + rng.NextBounded(n));
      tracker->MarkSeen(p);
      model.MarkSeen(p);
      ASSERT_EQ(tracker->best_position(), model.best_position())
          << "trial " << trial << " after marking " << p;
      ASSERT_EQ(tracker->seen_count(), model.seen_count());
    }
    for (Position p = 1; p <= n; ++p) {
      ASSERT_EQ(tracker->IsSeen(p), model.IsSeen(p)) << "position " << p;
    }
  }
}

TEST_P(TrackerPropertyTest, SortedScanReachesEveryPrefix) {
  const size_t n = 128;
  auto tracker = MakeTracker(GetParam(), n);
  for (Position p = 1; p <= n; ++p) {
    tracker->MarkSeen(p);
    ASSERT_EQ(tracker->best_position(), p);
  }
}

TEST_P(TrackerPropertyTest, ReverseScanAdvancesOnlyAtTheEnd) {
  const size_t n = 64;
  auto tracker = MakeTracker(GetParam(), n);
  for (Position p = n; p >= 2; --p) {
    tracker->MarkSeen(p);
    ASSERT_EQ(tracker->best_position(), 0u);
  }
  tracker->MarkSeen(1);
  EXPECT_EQ(tracker->best_position(), n);
}

TEST_P(TrackerPropertyTest, InterleavedRunsMergeCorrectly) {
  auto tracker = MakeTracker(GetParam(), 20);
  // Runs: {5..8}, {2..3}, then 1 bridges to 3, then 4 bridges to 8.
  for (Position p : {5, 6, 7, 8}) {
    tracker->MarkSeen(p);
  }
  EXPECT_EQ(tracker->best_position(), 0u);
  tracker->MarkSeen(2);
  tracker->MarkSeen(3);
  EXPECT_EQ(tracker->best_position(), 0u);
  tracker->MarkSeen(1);
  EXPECT_EQ(tracker->best_position(), 3u);
  tracker->MarkSeen(4);
  EXPECT_EQ(tracker->best_position(), 8u);
}

TEST_P(TrackerPropertyTest, ResetMakesTrackerReusable) {
  auto tracker = MakeTracker(GetParam(), 10);
  tracker->MarkSeen(1);
  tracker->MarkSeen(2);
  tracker->Reset();
  EXPECT_EQ(tracker->best_position(), 0u);
  EXPECT_EQ(tracker->seen_count(), 0u);
  tracker->MarkSeen(1);
  EXPECT_EQ(tracker->best_position(), 1u);
}

// A Reset()-then-reused tracker must be observationally identical to a
// freshly constructed one on arbitrary MarkSeen sequences — the contract the
// ExecutionContext pool relies on (and, for the bit array, the property that
// makes the O(1) epoch-stamped Reset sound).
TEST_P(TrackerPropertyTest, ResetReuseIsObservationallyFresh) {
  Rng rng(4242);
  const size_t n = 1 + rng.NextBounded(200);
  auto reused = MakeTracker(GetParam(), n);
  for (int cycle = 0; cycle < 12; ++cycle) {
    // Dirty the reused tracker with a random prefix, then reset it.
    const int dirt = static_cast<int>(rng.NextBounded(2 * n));
    for (int a = 0; a < dirt; ++a) {
      reused->MarkSeen(static_cast<Position>(1 + rng.NextBounded(n)));
    }
    reused->Reset();
    auto fresh = MakeTracker(GetParam(), n);
    ASSERT_EQ(reused->best_position(), fresh->best_position());
    ASSERT_EQ(reused->seen_count(), fresh->seen_count());
    const int accesses = 1 + static_cast<int>(rng.NextBounded(2 * n));
    for (int a = 0; a < accesses; ++a) {
      const Position p = static_cast<Position>(1 + rng.NextBounded(n));
      reused->MarkSeen(p);
      fresh->MarkSeen(p);
      ASSERT_EQ(reused->best_position(), fresh->best_position())
          << "cycle " << cycle << " after marking " << p;
      ASSERT_EQ(reused->seen_count(), fresh->seen_count());
    }
    for (Position p = 1; p <= n; ++p) {
      ASSERT_EQ(reused->IsSeen(p), fresh->IsSeen(p))
          << "cycle " << cycle << " position " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTrackers, TrackerPropertyTest,
                         ::testing::Values(TrackerKind::kBitArray,
                                           TrackerKind::kBPlusTree,
                                           TrackerKind::kSortedSet),
                         [](const ::testing::TestParamInfo<TrackerKind>& info) {
                           switch (info.param) {
                             case TrackerKind::kBitArray:
                               return std::string("BitArray");
                             case TrackerKind::kBPlusTree:
                               return std::string("BPlusTree");
                             case TrackerKind::kSortedSet:
                               return std::string("SortedSet");
                           }
                           return std::string("Unknown");
                         });

TEST(BPlusTreeTrackerTest, TreeInvariantsHoldUnderRandomMarks) {
  Rng rng(31337);
  BPlusTreeTracker tracker(5000);
  for (int i = 0; i < 20000; ++i) {
    tracker.MarkSeen(static_cast<Position>(1 + rng.NextBounded(5000)));
    if (i % 1000 == 0) {
      ASSERT_TRUE(tracker.tree().CheckInvariants().ok())
          << tracker.tree().CheckInvariants().ToString();
    }
  }
  ASSERT_TRUE(tracker.tree().CheckInvariants().ok());
}

TEST(TrackerFactoryTest, KindNames) {
  EXPECT_EQ(ToString(TrackerKind::kBitArray), "bit-array");
  EXPECT_EQ(ToString(TrackerKind::kBPlusTree), "b+tree");
  EXPECT_EQ(ToString(TrackerKind::kSortedSet), "sorted-set");
}

}  // namespace
}  // namespace topk
