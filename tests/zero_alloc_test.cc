// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Proves the zero-allocation hot path: once an ExecutionContext and TopKResult
// are warmed up, executing further queries performs no heap allocations at
// all. The global operator new is replaced with a counting hook (this is the
// whole program's allocator, so the counter also sees gtest's allocations —
// the tests only compare the counter across the measured query loop).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace {

std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) {
    return ptr;
  }
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}

namespace topk {
namespace {

// Runs `queries` executions of `kind` through a warmed context/result pair and
// returns the number of heap allocations the measured loop performed.
uint64_t AllocationsPerWarmedLoop(AlgorithmKind kind,
                                  const AlgorithmOptions& options,
                                  int queries, bool* all_ok) {
  const Database db = MakeUniformDatabase(10000, 5, 42);
  SumScorer sum;
  const TopKQuery query{20, &sum};
  auto algorithm = MakeAlgorithm(kind, options);
  ExecutionContext context;
  TopKResult result;
  *all_ok = true;
  for (int i = 0; i < 3; ++i) {  // warm-up: grows all reusable storage
    *all_ok &= algorithm->ExecuteInto(db, query, &context, &result).ok();
  }
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < queries; ++i) {
    *all_ok &= algorithm->ExecuteInto(db, query, &context, &result).ok();
  }
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(ZeroAllocTest, WarmedBpaQueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kBpa, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, WarmedMemoizedBpaQueriesDoNotAllocate) {
  AlgorithmOptions options;
  options.memoize_seen_items = true;
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kBpa, options, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, WarmedTaQueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kTa, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, WarmedBpa2QueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kBpa2, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, WarmedFaQueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kFa, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, WarmedNaiveQueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kNaive, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

// The no-random-access family keeps its candidate state in the flat
// CandidatePool of the ExecutionContext; once the pool (and its item->slot
// table) has grown to the workload's candidate count, further queries touch
// the allocator not at all.

TEST(ZeroAllocTest, WarmedNraQueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kNra, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, WarmedCaQueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kCa, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, WarmedTputQueriesDoNotAllocate) {
  bool all_ok = false;
  const uint64_t allocs =
      AllocationsPerWarmedLoop(AlgorithmKind::kTput, {}, 10, &all_ok);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocs, 0u);
}

// The pool's arena (mmap'd, hugepage-advised chunks — see core/pool_arena.h)
// obeys the same warm-up contract as the heap: it grows while the first
// queries size the pool (and its dual-heap group index) to the workload,
// then stays byte-stable across an unbounded epoch-reused query stream — no
// per-query mmap, madvise or heap allocation. This pins the contract the
// PR 5 arena migration must not break: ArenaVec growth and group-heap
// push_backs all hit retained capacity once warmed.
TEST(ZeroAllocTest, WarmedPoolQueriesDoNotGrowTheArena) {
  const Database db = MakeUniformDatabase(10000, 5, 42);
  SumScorer sum;
  const TopKQuery query{20, &sum};
  for (AlgorithmKind kind :
       {AlgorithmKind::kNra, AlgorithmKind::kCa, AlgorithmKind::kTput}) {
    SCOPED_TRACE(ToString(kind));
    auto algorithm = MakeAlgorithm(kind);
    ExecutionContext context;
    TopKResult result;
    for (int i = 0; i < 3; ++i) {  // warm-up: grows pool storage + arena
      ASSERT_TRUE(algorithm->ExecuteInto(db, query, &context, &result).ok());
    }
    const size_t reserved = context.pool().arena_bytes_reserved();
    const size_t used = context.pool().arena_bytes_used();
    const size_t chunks = context.pool().arena_chunks();
    EXPECT_GT(reserved, 0u);  // the pool arrays really live on the arena
    EXPECT_GE(reserved, used);
    const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(algorithm->ExecuteInto(db, query, &context, &result).ok());
    }
    EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
    EXPECT_EQ(context.pool().arena_bytes_reserved(), reserved);
    EXPECT_EQ(context.pool().arena_bytes_used(), used);
    EXPECT_EQ(context.pool().arena_chunks(), chunks);
  }
}

// Governance keeps the zero-allocation contract: arming limits (whether they
// trip or not) adds one predictable branch per round and never touches the
// allocator on a warmed context — including the anytime exit, which reuses
// the context's scratch and the result's retained capacity.
TEST(ZeroAllocTest, WarmedGovernedQueriesDoNotAllocate) {
  AlgorithmOptions options;
  options.governor.total_access_budget = uint64_t{1} << 40;  // armed, no trip
  options.governor.pool_byte_budget = size_t{1} << 40;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    SCOPED_TRACE(ToString(kind));
    bool all_ok = false;
    const uint64_t allocs = AllocationsPerWarmedLoop(kind, options, 5, &all_ok);
    EXPECT_TRUE(all_ok);
    EXPECT_EQ(allocs, 0u);
  }
}

TEST(ZeroAllocTest, WarmedTrippedQueriesDoNotAllocate) {
  AlgorithmOptions options;
  options.governor.total_access_budget = 500;  // trips on every algorithm
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    if (kind == AlgorithmKind::kNaive) {
      continue;  // the oracle ignores governance
    }
    SCOPED_TRACE(ToString(kind));
    bool all_ok = false;
    const uint64_t allocs = AllocationsPerWarmedLoop(kind, options, 5, &all_ok);
    EXPECT_TRUE(all_ok);
    EXPECT_EQ(allocs, 0u);
  }
}

TEST(ZeroAllocTest, WarmedFaultInjectedQueriesDoNotAllocate) {
  AlgorithmOptions options;
  options.fault_plan.transient_rate = 0.3;  // absorbed; answers stay exact
  options.fault_plan.spike_rate = 0.1;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    if (kind == AlgorithmKind::kNaive) {
      continue;  // the oracle ignores faults
    }
    SCOPED_TRACE(ToString(kind));
    bool all_ok = false;
    const uint64_t allocs = AllocationsPerWarmedLoop(kind, options, 5, &all_ok);
    EXPECT_TRUE(all_ok);
    EXPECT_EQ(allocs, 0u);
  }
}

TEST(ZeroAllocTest, HookCountsAllocations) {
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  auto* probe = new int(7);
  EXPECT_GE(g_alloc_count.load(std::memory_order_relaxed) - before, 1u);
  delete probe;
}

}  // namespace
}  // namespace topk
