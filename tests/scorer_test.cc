// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/scorer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"

namespace topk {
namespace {

TEST(ScorerTest, Sum) {
  SumScorer sum;
  EXPECT_DOUBLE_EQ(sum.Combine({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(sum.Combine({-1.0, 1.0}), 0.0);
  EXPECT_EQ(sum.name(), "sum");
}

TEST(ScorerTest, Min) {
  MinScorer min;
  EXPECT_DOUBLE_EQ(min.Combine({3.0, 1.0, 2.0}), 1.0);
  EXPECT_EQ(min.name(), "min");
}

TEST(ScorerTest, Max) {
  MaxScorer max;
  EXPECT_DOUBLE_EQ(max.Combine({3.0, 1.0, 2.0}), 3.0);
  EXPECT_EQ(max.name(), "max");
}

TEST(ScorerTest, Average) {
  AverageScorer avg;
  EXPECT_DOUBLE_EQ(avg.Combine({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(avg.name(), "average");
}

TEST(ScorerTest, WeightedSum) {
  WeightedSumScorer w =
      WeightedSumScorer::Make({0.5, 2.0, 0.0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(w.Combine({2.0, 3.0, 100.0}), 7.0);
  EXPECT_EQ(w.name(), "weighted-sum");
  EXPECT_EQ(w.weights().size(), 3u);
}

TEST(ScorerTest, WeightedSumRejectsNegativeWeights) {
  Result<WeightedSumScorer> r = WeightedSumScorer::Make({0.5, -1.0});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(ScorerTest, WeightedSumRejectsEmpty) {
  EXPECT_FALSE(WeightedSumScorer::Make({}).ok());
}

TEST(ScorerTest, FunctionScorer) {
  FunctionScorer f("euclid-ish", [](const Score* s, size_t n) {
    Score acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += s[i] * s[i];
    }
    return acc;
  });
  EXPECT_DOUBLE_EQ(f.Combine({3.0, 4.0}), 25.0);
  EXPECT_EQ(f.name(), "euclid-ish");
}

// Monotonicity property: raising any coordinate never lowers the output.
TEST(ScorerTest, BuiltinScorersAreMonotonic) {
  std::vector<std::unique_ptr<Scorer>> scorers;
  scorers.push_back(std::make_unique<SumScorer>());
  scorers.push_back(std::make_unique<MinScorer>());
  scorers.push_back(std::make_unique<MaxScorer>());
  scorers.push_back(std::make_unique<AverageScorer>());
  scorers.push_back(std::make_unique<WeightedSumScorer>(
      WeightedSumScorer::Make({0.3, 1.5, 0.0, 2.0}).ValueOrDie()));

  Rng rng(123);
  const size_t m = 4;
  for (const auto& scorer : scorers) {
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<Score> lo(m), hi(m);
      for (size_t i = 0; i < m; ++i) {
        lo[i] = rng.NextDouble(-10.0, 10.0);
        hi[i] = lo[i] + rng.NextDouble(0.0, 5.0);  // hi >= lo coordinate-wise
      }
      ASSERT_LE(scorer->Combine(lo), scorer->Combine(hi))
          << scorer->name() << " is not monotonic";
    }
  }
}

}  // namespace
}  // namespace topk
