// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Property tests for the paper's lemmas and theorems on randomly generated
// databases:
//   Lemma 1   — BPA performs no more sorted accesses than TA.
//   Lemma 2   — TA and BPA do (m-1) random accesses per sorted access.
//   Theorem 2 — execution cost of BPA <= execution cost of TA.
//   Theorem 5 — BPA2 never accesses a list position twice.
//   Theorem 7 — BPA2's total accesses <= BPA's.
//   (plus: FA never stops before TA; tracker choice does not change BPA/BPA2
//   semantics; memoization changes only access counts, never the stop
//   position.)

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

struct InvariantCase {
  DatabaseKind db_kind;
  size_t m;
  size_t n;
  size_t k;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<InvariantCase>& info) {
  const InvariantCase& c = info.param;
  return ToString(c.db_kind) + "_m" + std::to_string(c.m) + "_n" +
         std::to_string(c.n) + "_k" + std::to_string(c.k) + "_s" +
         std::to_string(c.seed);
}

Database MakeDb(const InvariantCase& c) {
  switch (c.db_kind) {
    case DatabaseKind::kUniform:
      return MakeUniformDatabase(c.n, c.m, c.seed);
    case DatabaseKind::kGaussian:
      return MakeGaussianDatabase(c.n, c.m, c.seed);
    case DatabaseKind::kCorrelated: {
      CorrelatedConfig config;
      config.n = c.n;
      config.m = c.m;
      config.alpha = 0.02;
      config.seed = c.seed;
      return MakeCorrelatedDatabase(config).ValueOrDie();
    }
    case DatabaseKind::kZipf:
      return MakeZipfDatabase(c.n, c.m, c.seed);
  }
  return Database();
}

class InvariantsTest : public ::testing::TestWithParam<InvariantCase> {
 protected:
  void SetUp() override {
    db_ = MakeDb(GetParam());
    query_ = TopKQuery{GetParam().k, &sum_};
  }

  TopKResult Run(AlgorithmKind kind, AlgorithmOptions options = {}) {
    return MakeAlgorithm(kind, options)->Execute(db_, query_).ValueOrDie();
  }

  Database db_;
  SumScorer sum_;
  TopKQuery query_;
};

TEST_P(InvariantsTest, Lemma1BpaSortedAccessesAtMostTa) {
  const TopKResult ta = Run(AlgorithmKind::kTa);
  const TopKResult bpa = Run(AlgorithmKind::kBpa);
  EXPECT_LE(bpa.stats.sorted_accesses, ta.stats.sorted_accesses);
  EXPECT_LE(bpa.stop_position, ta.stop_position);
}

TEST_P(InvariantsTest, Lemma2RandomAccessesProportionalToSorted) {
  const size_t m = GetParam().m;
  for (AlgorithmKind kind : {AlgorithmKind::kTa, AlgorithmKind::kBpa}) {
    const TopKResult result = Run(kind);
    EXPECT_EQ(result.stats.random_accesses,
              result.stats.sorted_accesses * (m - 1))
        << ToString(kind);
  }
}

TEST_P(InvariantsTest, Theorem2BpaCostAtMostTa) {
  const TopKResult ta = Run(AlgorithmKind::kTa);
  const TopKResult bpa = Run(AlgorithmKind::kBpa);
  EXPECT_LE(bpa.execution_cost, ta.execution_cost);
}

TEST_P(InvariantsTest, Theorem5Bpa2NeverReaccessesAPosition) {
  AlgorithmOptions options;
  options.audit_accesses = true;
  const TopKResult result = Run(AlgorithmKind::kBpa2, options);
  for (size_t i = 0; i < result.max_touches_per_list.size(); ++i) {
    EXPECT_LE(result.max_touches_per_list[i], 1u) << "list " << i;
  }
}

TEST_P(InvariantsTest, Theorem7Bpa2TotalAccessesAtMostBpa) {
  const TopKResult bpa = Run(AlgorithmKind::kBpa);
  const TopKResult bpa2 = Run(AlgorithmKind::kBpa2);
  EXPECT_LE(bpa2.stats.TotalAccesses(), bpa.stats.TotalAccesses());
}

TEST_P(InvariantsTest, Bpa2DirectAccessesEqualDistinctPositionsTouched) {
  // BPA and BPA2 see the same set of positions (Section 5.1); BPA2 touches
  // each exactly once, so its access total equals the number of distinct
  // (list, position) pairs it touched.
  AlgorithmOptions options;
  options.audit_accesses = true;
  const TopKResult result = Run(AlgorithmKind::kBpa2, options);
  // With max touches <= 1, total accesses == distinct touches by definition.
  EXPECT_EQ(result.stats.sorted_accesses, 0u);
}

TEST_P(InvariantsTest, FaStopsNoEarlierThanTa) {
  // TA's stopping position is <= FA's over any database (Fagin et al.).
  const TopKResult fa = Run(AlgorithmKind::kFa);
  const TopKResult ta = Run(AlgorithmKind::kTa);
  EXPECT_LE(ta.stop_position, fa.stop_position);
}

TEST_P(InvariantsTest, TrackerChoiceDoesNotChangeBpaSemantics) {
  TopKResult reference = Run(AlgorithmKind::kBpa);
  for (TrackerKind tracker :
       {TrackerKind::kBPlusTree, TrackerKind::kSortedSet}) {
    AlgorithmOptions options;
    options.tracker = tracker;
    const TopKResult result = Run(AlgorithmKind::kBpa, options);
    EXPECT_EQ(result.stats, reference.stats) << ToString(tracker);
    EXPECT_EQ(result.stop_position, reference.stop_position);
    ASSERT_EQ(result.items.size(), reference.items.size());
    for (size_t i = 0; i < result.items.size(); ++i) {
      EXPECT_EQ(result.items[i].item, reference.items[i].item);
    }
  }
}

TEST_P(InvariantsTest, TrackerChoiceDoesNotChangeBpa2Semantics) {
  TopKResult reference = Run(AlgorithmKind::kBpa2);
  for (TrackerKind tracker :
       {TrackerKind::kBPlusTree, TrackerKind::kSortedSet}) {
    AlgorithmOptions options;
    options.tracker = tracker;
    const TopKResult result = Run(AlgorithmKind::kBpa2, options);
    EXPECT_EQ(result.stats, reference.stats) << ToString(tracker);
    EXPECT_EQ(result.stop_position, reference.stop_position);
  }
}

TEST_P(InvariantsTest, MemoizationKeepsStopPositionLowersAccesses) {
  for (AlgorithmKind kind : {AlgorithmKind::kTa, AlgorithmKind::kBpa}) {
    AlgorithmOptions memo;
    memo.memoize_seen_items = true;
    const TopKResult plain = Run(kind);
    const TopKResult memoized = Run(kind, memo);
    EXPECT_EQ(memoized.stop_position, plain.stop_position) << ToString(kind);
    EXPECT_EQ(memoized.stats.sorted_accesses, plain.stats.sorted_accesses);
    EXPECT_LE(memoized.stats.random_accesses, plain.stats.random_accesses);
    // Same answers.
    ASSERT_EQ(memoized.items.size(), plain.items.size());
    for (size_t i = 0; i < plain.items.size(); ++i) {
      EXPECT_DOUBLE_EQ(memoized.items[i].score, plain.items[i].score);
    }
  }
}

TEST_P(InvariantsTest, NraUsesNoRandomAccesses) {
  AlgorithmOptions options;
  double floor = 0.0;
  for (size_t i = 0; i < db_.num_lists(); ++i) {
    floor = std::min(floor, db_.list(i).MinScore());
  }
  options.score_floor = floor;
  const TopKResult result = Run(AlgorithmKind::kNra, options);
  EXPECT_EQ(result.stats.random_accesses, 0u);
  EXPECT_EQ(result.stats.direct_accesses, 0u);
  EXPECT_GT(result.stats.sorted_accesses, 0u);
}

TEST_P(InvariantsTest, LambdaNeverExceedsDeltaEffect) {
  // Indirect check of λ <= δ: with identical inputs BPA must never scan
  // deeper than TA *and* must see every item TA's buffer returned.
  const TopKResult ta = Run(AlgorithmKind::kTa);
  const TopKResult bpa = Run(AlgorithmKind::kBpa);
  ASSERT_EQ(ta.items.size(), bpa.items.size());
  for (size_t i = 0; i < ta.items.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta.items[i].score, bpa.items[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantsTest,
    ::testing::Values(
        InvariantCase{DatabaseKind::kUniform, 2, 300, 5, 1},
        InvariantCase{DatabaseKind::kUniform, 3, 500, 10, 2},
        InvariantCase{DatabaseKind::kUniform, 4, 800, 20, 3},
        InvariantCase{DatabaseKind::kUniform, 6, 500, 10, 4},
        InvariantCase{DatabaseKind::kUniform, 8, 400, 5, 5},
        InvariantCase{DatabaseKind::kUniform, 10, 300, 3, 6},
        InvariantCase{DatabaseKind::kGaussian, 3, 500, 10, 7},
        InvariantCase{DatabaseKind::kGaussian, 5, 600, 20, 8},
        InvariantCase{DatabaseKind::kGaussian, 8, 300, 5, 9},
        InvariantCase{DatabaseKind::kCorrelated, 3, 400, 10, 10},
        InvariantCase{DatabaseKind::kCorrelated, 6, 600, 20, 11},
        InvariantCase{DatabaseKind::kCorrelated, 8, 500, 5, 12},
        InvariantCase{DatabaseKind::kZipf, 4, 500, 10, 13},
        InvariantCase{DatabaseKind::kZipf, 6, 400, 20, 14}),
    CaseName);

}  // namespace
}  // namespace topk
