// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "tracker/bitarray_tracker.h"

#include <gtest/gtest.h>

namespace topk {
namespace {

TEST(BitArrayTrackerTest, InitiallyEmpty) {
  BitArrayTracker tracker(10);
  EXPECT_EQ(tracker.best_position(), 0u);
  EXPECT_EQ(tracker.seen_count(), 0u);
  EXPECT_FALSE(tracker.IsSeen(1));
}

TEST(BitArrayTrackerTest, MarkFirstPositionAdvances) {
  BitArrayTracker tracker(10);
  tracker.MarkSeen(1);
  EXPECT_EQ(tracker.best_position(), 1u);
  EXPECT_TRUE(tracker.IsSeen(1));
}

TEST(BitArrayTrackerTest, GapBlocksAdvance) {
  BitArrayTracker tracker(10);
  tracker.MarkSeen(2);
  tracker.MarkSeen(3);
  EXPECT_EQ(tracker.best_position(), 0u);
  tracker.MarkSeen(1);
  EXPECT_EQ(tracker.best_position(), 3u);  // jumps over the filled run
}

TEST(BitArrayTrackerTest, PaperExample3Positions) {
  // Example 3, list L1 after step 1: seen {1, 4, 9} -> bp = 1.
  BitArrayTracker tracker(14);
  tracker.MarkSeen(1);
  tracker.MarkSeen(4);
  tracker.MarkSeen(9);
  EXPECT_EQ(tracker.best_position(), 1u);
  // After step 2: seen += {2, 7, 8} -> bp = 2.
  tracker.MarkSeen(2);
  tracker.MarkSeen(7);
  tracker.MarkSeen(8);
  EXPECT_EQ(tracker.best_position(), 2u);
  // After step 3: seen += {3, 5, 6} -> all of 1..9 seen -> bp = 9.
  tracker.MarkSeen(3);
  tracker.MarkSeen(5);
  tracker.MarkSeen(6);
  EXPECT_EQ(tracker.best_position(), 9u);
}

TEST(BitArrayTrackerTest, IdempotentMarks) {
  BitArrayTracker tracker(5);
  tracker.MarkSeen(1);
  tracker.MarkSeen(1);
  tracker.MarkSeen(1);
  EXPECT_EQ(tracker.seen_count(), 1u);
  EXPECT_EQ(tracker.best_position(), 1u);
}

TEST(BitArrayTrackerTest, FullListReachesN) {
  const size_t n = 100;
  BitArrayTracker tracker(n);
  for (Position p = n; p >= 1; --p) {
    tracker.MarkSeen(p);
  }
  EXPECT_EQ(tracker.best_position(), n);
  EXPECT_EQ(tracker.seen_count(), n);
}

TEST(BitArrayTrackerTest, ResetClearsState) {
  BitArrayTracker tracker(8);
  tracker.MarkSeen(1);
  tracker.MarkSeen(2);
  tracker.Reset();
  EXPECT_EQ(tracker.best_position(), 0u);
  EXPECT_EQ(tracker.seen_count(), 0u);
  EXPECT_FALSE(tracker.IsSeen(1));
  tracker.MarkSeen(1);
  EXPECT_EQ(tracker.best_position(), 1u);
}

TEST(BitArrayTrackerTest, WordBoundaries) {
  // Positions spanning the 64-bit word boundary.
  BitArrayTracker tracker(200);
  for (Position p = 1; p <= 130; ++p) {
    tracker.MarkSeen(p);
  }
  EXPECT_EQ(tracker.best_position(), 130u);
  EXPECT_TRUE(tracker.IsSeen(64));
  EXPECT_TRUE(tracker.IsSeen(65));
  EXPECT_TRUE(tracker.IsSeen(128));
  EXPECT_FALSE(tracker.IsSeen(131));
}

TEST(BitArrayTrackerTest, Name) {
  BitArrayTracker tracker(1);
  EXPECT_EQ(tracker.name(), "bit-array");
}

}  // namespace
}  // namespace topk
