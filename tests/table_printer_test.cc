// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace topk {
namespace {

TEST(TablePrinterTest, FormatsIntegers) {
  EXPECT_EQ(TablePrinter::FormatCell(42), "42");
  EXPECT_EQ(TablePrinter::FormatCell(uint64_t{7}), "7");
  EXPECT_EQ(TablePrinter::FormatCell(int64_t{-3}), "-3");
}

TEST(TablePrinterTest, FormatsIntegralDoublesWithoutFraction) {
  EXPECT_EQ(TablePrinter::FormatCell(3.0), "3");
  EXPECT_EQ(TablePrinter::FormatCell(-12.0), "-12");
}

TEST(TablePrinterTest, FormatsFractionalDoubles) {
  EXPECT_EQ(TablePrinter::FormatCell(2.5), "2.5");
  EXPECT_EQ(TablePrinter::FormatCell(0.125), "0.125");
}

TEST(TablePrinterTest, FormatsNan) {
  EXPECT_EQ(TablePrinter::FormatCell(std::nan("")), "nan");
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table("T");
  table.AddRow("m", "TA", "BPA");
  table.AddRow(2, 10.0, 5.0);
  std::ostringstream oss;
  table.PrintCsv(oss);
  EXPECT_EQ(oss.str(), "# T\nm,TA,BPA\n2,10,5\n");
}

TEST(TablePrinterTest, AlignedOutputContainsAllCells) {
  TablePrinter table;
  table.AddRow("col_a", "b");
  table.AddRow(1, 22222);
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("col_a"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);  // header separator
}

TEST(TablePrinterTest, EmptyTablePrintsTitleOnly) {
  TablePrinter table("only title");
  std::ostringstream oss;
  table.Print(oss);
  EXPECT_EQ(oss.str(), "only title\n");
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter table;
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow("h");
  table.AddRow(1);
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace topk
