// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/topk_buffer.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace topk {
namespace {

TEST(TopKBufferTest, FillsUpToK) {
  TopKBuffer buffer(2);
  EXPECT_FALSE(buffer.full());
  buffer.Offer(0, 1.0);
  EXPECT_EQ(buffer.size(), 1u);
  buffer.Offer(1, 2.0);
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.KthScore(), 1.0);
}

TEST(TopKBufferTest, EvictsWeakest) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 1.0);
  buffer.Offer(1, 2.0);
  buffer.Offer(2, 3.0);
  EXPECT_FALSE(buffer.Contains(0));
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_TRUE(buffer.Contains(2));
  EXPECT_DOUBLE_EQ(buffer.KthScore(), 2.0);
}

TEST(TopKBufferTest, RejectsWeakerThanKth) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 5.0);
  buffer.Offer(1, 4.0);
  buffer.Offer(2, 1.0);
  EXPECT_FALSE(buffer.Contains(2));
  EXPECT_DOUBLE_EQ(buffer.KthScore(), 4.0);
}

TEST(TopKBufferTest, ReofferingMemberIsNoop) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 5.0);
  buffer.Offer(0, 5.0);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TopKBufferTest, TieBreakPrefersSmallerItemId) {
  TopKBuffer buffer(2);
  buffer.Offer(5, 1.0);
  buffer.Offer(3, 1.0);
  buffer.Offer(1, 1.0);  // same score, smaller id: evicts item 5
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_TRUE(buffer.Contains(3));
  EXPECT_FALSE(buffer.Contains(5));
}

TEST(TopKBufferTest, ReofferEvictedSameScoreStaysOut) {
  TopKBuffer buffer(1);
  buffer.Offer(2, 1.0);
  buffer.Offer(1, 1.0);  // evicts 2 under tie-break
  EXPECT_TRUE(buffer.Contains(1));
  buffer.Offer(2, 1.0);  // weaker under tie-break: rejected
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_FALSE(buffer.Contains(2));
}

TEST(TopKBufferTest, HasKAbove) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 5.0);
  EXPECT_FALSE(buffer.HasKAbove(1.0));  // not full yet
  buffer.Offer(1, 4.0);
  EXPECT_TRUE(buffer.HasKAbove(3.9));
  // Strict at the boundary: a tie at the k-th score does not stop (an
  // unseen item tying it could precede a buffered item in id order).
  EXPECT_FALSE(buffer.HasKAbove(4.0));
  EXPECT_FALSE(buffer.HasKAbove(4.1));
}

TEST(TopKBufferTest, ToSortedItemsDescending) {
  TopKBuffer buffer(3);
  buffer.Offer(0, 1.0);
  buffer.Offer(1, 3.0);
  buffer.Offer(2, 2.0);
  const std::vector<ResultItem> items = buffer.ToSortedItems();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].item, 1u);
  EXPECT_EQ(items[1].item, 2u);
  EXPECT_EQ(items[2].item, 0u);
}

TEST(TopKBufferTest, ToSortedItemsTieOrder) {
  TopKBuffer buffer(3);
  buffer.Offer(7, 2.0);
  buffer.Offer(3, 2.0);
  buffer.Offer(5, 9.0);
  const std::vector<ResultItem> items = buffer.ToSortedItems();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].item, 5u);
  EXPECT_EQ(items[1].item, 3u);  // ties ascending by id
  EXPECT_EQ(items[2].item, 7u);
}

TEST(TopKBufferTest, ZeroKIsAlwaysEmpty) {
  TopKBuffer buffer(0);
  buffer.Offer(0, 1.0);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.full());  // vacuously
}

// Reference model of the buffer contract, backed by an ordered set (the
// pre-flat implementation).
class ReferenceBuffer {
 public:
  explicit ReferenceBuffer(size_t k) : k_(k) {}

  void Offer(ItemId item, Score score) {
    if (k_ == 0 || Contains(item)) {
      return;
    }
    if (entries_.size() < k_) {
      entries_.emplace(score, item);
      return;
    }
    const std::pair<Score, ItemId> candidate{score, item};
    if (WeakerFirst{}(*entries_.begin(), candidate)) {
      entries_.erase(entries_.begin());
      entries_.insert(candidate);
    }
  }

  bool Contains(ItemId item) const {
    for (const auto& e : entries_) {
      if (e.second == item) {
        return true;
      }
    }
    return false;
  }

  size_t size() const { return entries_.size(); }
  Score KthScore() const { return entries_.begin()->first; }

  std::vector<ResultItem> ToSortedItems() const {
    std::vector<ResultItem> items;
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      items.push_back(ResultItem{it->second, it->first});
    }
    return items;
  }

 private:
  struct WeakerFirst {
    bool operator()(const std::pair<Score, ItemId>& a,
                    const std::pair<Score, ItemId>& b) const {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second > b.second;
    }
  };

  size_t k_;
  std::set<std::pair<Score, ItemId>, WeakerFirst> entries_;
};

// The flat heap + probe-table implementation must agree with the reference on
// randomized streams full of ties, including across Reset() reuse cycles.
TEST(TopKBufferTest, RandomizedDifferentialAgainstReference) {
  Rng rng(20260730);
  TopKBuffer reused(1);  // reused across all trials via Reset
  for (int trial = 0; trial < 50; ++trial) {
    const size_t k = rng.NextBounded(12);
    reused.Reset(k);
    ReferenceBuffer reference(k);
    const size_t universe = 1 + rng.NextBounded(60);
    const int offers = 1 + static_cast<int>(rng.NextBounded(200));
    for (int o = 0; o < offers; ++o) {
      const ItemId item = static_cast<ItemId>(rng.NextBounded(universe));
      // Quantized scores force plenty of ties; keyed by item so re-offers are
      // deterministic like real overall scores.
      const Score score = static_cast<Score>((item * 7) % 5);
      reused.Offer(item, score);
      reference.Offer(item, score);
      ASSERT_EQ(reused.size(), reference.size()) << "trial " << trial;
      if (reused.size() > 0) {
        ASSERT_DOUBLE_EQ(reused.KthScore(), reference.KthScore());
      }
      for (ItemId probe = 0; probe < universe; ++probe) {
        ASSERT_EQ(reused.Contains(probe), reference.Contains(probe))
            << "trial " << trial << " item " << probe;
      }
    }
    const std::vector<ResultItem> got = reused.ToSortedItems();
    const std::vector<ResultItem> want = reference.ToSortedItems();
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].item, want[i].item) << "trial " << trial << " @" << i;
      ASSERT_DOUBLE_EQ(got[i].score, want[i].score);
    }
  }
}

TEST(TopKBufferTest, AppendSortedItemsAppends) {
  TopKBuffer buffer(2);
  buffer.Offer(4, 1.0);
  buffer.Offer(9, 3.0);
  std::vector<ResultItem> out = {ResultItem{1, 99.0}};
  buffer.AppendSortedItems(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].item, 1u);  // pre-existing entry untouched
  EXPECT_EQ(out[1].item, 9u);
  EXPECT_EQ(out[2].item, 4u);
}

TEST(TopKBufferTest, ManyOffersKeepExactlyTopK) {
  const size_t k = 10;
  TopKBuffer buffer(k);
  for (ItemId item = 0; item < 1000; ++item) {
    buffer.Offer(item, static_cast<Score>((item * 37) % 1000));
  }
  const std::vector<ResultItem> items = buffer.ToSortedItems();
  ASSERT_EQ(items.size(), k);
  // (item * 37) % 1000 hits 999 for some item; top-10 scores are 990..999.
  for (size_t i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(items[i].score, 999.0 - static_cast<double>(i));
  }
}

}  // namespace
}  // namespace topk
