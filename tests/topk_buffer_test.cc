// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/topk_buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace topk {
namespace {

TEST(TopKBufferTest, FillsUpToK) {
  TopKBuffer buffer(2);
  EXPECT_FALSE(buffer.full());
  buffer.Offer(0, 1.0);
  EXPECT_EQ(buffer.size(), 1u);
  buffer.Offer(1, 2.0);
  EXPECT_TRUE(buffer.full());
  EXPECT_DOUBLE_EQ(buffer.KthScore(), 1.0);
}

TEST(TopKBufferTest, EvictsWeakest) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 1.0);
  buffer.Offer(1, 2.0);
  buffer.Offer(2, 3.0);
  EXPECT_FALSE(buffer.Contains(0));
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_TRUE(buffer.Contains(2));
  EXPECT_DOUBLE_EQ(buffer.KthScore(), 2.0);
}

TEST(TopKBufferTest, RejectsWeakerThanKth) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 5.0);
  buffer.Offer(1, 4.0);
  buffer.Offer(2, 1.0);
  EXPECT_FALSE(buffer.Contains(2));
  EXPECT_DOUBLE_EQ(buffer.KthScore(), 4.0);
}

TEST(TopKBufferTest, ReofferingMemberIsNoop) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 5.0);
  buffer.Offer(0, 5.0);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TopKBufferTest, TieBreakPrefersSmallerItemId) {
  TopKBuffer buffer(2);
  buffer.Offer(5, 1.0);
  buffer.Offer(3, 1.0);
  buffer.Offer(1, 1.0);  // same score, smaller id: evicts item 5
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_TRUE(buffer.Contains(3));
  EXPECT_FALSE(buffer.Contains(5));
}

TEST(TopKBufferTest, ReofferEvictedSameScoreStaysOut) {
  TopKBuffer buffer(1);
  buffer.Offer(2, 1.0);
  buffer.Offer(1, 1.0);  // evicts 2 under tie-break
  EXPECT_TRUE(buffer.Contains(1));
  buffer.Offer(2, 1.0);  // weaker under tie-break: rejected
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_FALSE(buffer.Contains(2));
}

TEST(TopKBufferTest, HasKAtLeast) {
  TopKBuffer buffer(2);
  buffer.Offer(0, 5.0);
  EXPECT_FALSE(buffer.HasKAtLeast(1.0));  // not full yet
  buffer.Offer(1, 4.0);
  EXPECT_TRUE(buffer.HasKAtLeast(4.0));
  EXPECT_TRUE(buffer.HasKAtLeast(3.9));
  EXPECT_FALSE(buffer.HasKAtLeast(4.1));
}

TEST(TopKBufferTest, ToSortedItemsDescending) {
  TopKBuffer buffer(3);
  buffer.Offer(0, 1.0);
  buffer.Offer(1, 3.0);
  buffer.Offer(2, 2.0);
  const std::vector<ResultItem> items = buffer.ToSortedItems();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].item, 1u);
  EXPECT_EQ(items[1].item, 2u);
  EXPECT_EQ(items[2].item, 0u);
}

TEST(TopKBufferTest, ToSortedItemsTieOrder) {
  TopKBuffer buffer(3);
  buffer.Offer(7, 2.0);
  buffer.Offer(3, 2.0);
  buffer.Offer(5, 9.0);
  const std::vector<ResultItem> items = buffer.ToSortedItems();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].item, 5u);
  EXPECT_EQ(items[1].item, 3u);  // ties ascending by id
  EXPECT_EQ(items[2].item, 7u);
}

TEST(TopKBufferTest, ZeroKIsAlwaysEmpty) {
  TopKBuffer buffer(0);
  buffer.Offer(0, 1.0);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.full());  // vacuously
}

TEST(TopKBufferTest, ManyOffersKeepExactlyTopK) {
  const size_t k = 10;
  TopKBuffer buffer(k);
  for (ItemId item = 0; item < 1000; ++item) {
    buffer.Offer(item, static_cast<Score>((item * 37) % 1000));
  }
  const std::vector<ResultItem> items = buffer.ToSortedItems();
  ASSERT_EQ(items.size(), k);
  // (item * 37) % 1000 hits 999 for some item; top-10 scores are 990..999.
  for (size_t i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(items[i].score, 999.0 - static_cast<double>(i));
  }
}

}  // namespace
}  // namespace topk
