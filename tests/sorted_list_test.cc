// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/sorted_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace topk {
namespace {

TEST(SortedListTest, FromScoresSortsDescending) {
  SortedList list = SortedList::FromScores({0.2, 0.9, 0.5});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.EntryAt(1).item, 1u);
  EXPECT_DOUBLE_EQ(list.EntryAt(1).score, 0.9);
  EXPECT_EQ(list.EntryAt(2).item, 2u);
  EXPECT_EQ(list.EntryAt(3).item, 0u);
}

TEST(SortedListTest, TiesBrokenByAscendingItemId) {
  SortedList list = SortedList::FromScores({0.5, 0.5, 0.9, 0.5});
  EXPECT_EQ(list.EntryAt(1).item, 2u);
  EXPECT_EQ(list.EntryAt(2).item, 0u);
  EXPECT_EQ(list.EntryAt(3).item, 1u);
  EXPECT_EQ(list.EntryAt(4).item, 3u);
}

TEST(SortedListTest, LookupReturnsScoreAndPosition) {
  SortedList list = SortedList::FromScores({0.2, 0.9, 0.5});
  const ItemLookup lookup = list.Lookup(0);
  EXPECT_DOUBLE_EQ(lookup.score, 0.2);
  EXPECT_EQ(lookup.position, 3u);
  EXPECT_EQ(list.PositionOf(1), 1u);
  EXPECT_DOUBLE_EQ(list.ScoreOf(2), 0.5);
}

TEST(SortedListTest, PositionsAreOneBasedAndConsistent) {
  SortedList list = SortedList::FromScores({0.1, 0.4, 0.3, 0.8});
  for (Position p = 1; p <= list.size(); ++p) {
    const ListEntry& e = list.EntryAt(p);
    EXPECT_EQ(list.PositionOf(e.item), p);
    EXPECT_DOUBLE_EQ(list.ScoreOf(e.item), e.score);
  }
}

TEST(SortedListTest, MinMaxScore) {
  SortedList list = SortedList::FromScores({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(list.MaxScore(), 3.0);
  EXPECT_DOUBLE_EQ(list.MinScore(), 1.0);
}

TEST(SortedListTest, AllScoresNonNegative) {
  EXPECT_TRUE(SortedList::FromScores({0.0, 1.0}).AllScoresNonNegative());
  EXPECT_FALSE(SortedList::FromScores({-0.1, 1.0}).AllScoresNonNegative());
}

TEST(SortedListTest, FromEntriesAcceptsPermutation) {
  std::vector<ListEntry> entries{{2, 5.0}, {0, 9.0}, {1, 7.0}};
  Result<SortedList> result = SortedList::FromEntries(entries);
  ASSERT_TRUE(result.ok());
  const SortedList& list = result.ValueUnsafe();
  EXPECT_EQ(list.EntryAt(1).item, 0u);
  EXPECT_EQ(list.EntryAt(2).item, 1u);
  EXPECT_EQ(list.EntryAt(3).item, 2u);
}

TEST(SortedListTest, FromEntriesRejectsDuplicateItem) {
  std::vector<ListEntry> entries{{0, 5.0}, {0, 9.0}};
  Result<SortedList> result = SortedList::FromEntries(entries);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(SortedListTest, FromEntriesRejectsOutOfRangeItem) {
  std::vector<ListEntry> entries{{0, 5.0}, {5, 9.0}};
  Result<SortedList> result = SortedList::FromEntries(entries);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(SortedListTest, EntryAtCheckedBounds) {
  SortedList list = SortedList::FromScores({1.0, 2.0});
  EXPECT_TRUE(list.EntryAtChecked(1).ok());
  EXPECT_TRUE(list.EntryAtChecked(2).ok());
  EXPECT_TRUE(list.EntryAtChecked(0).status().IsOutOfRange());
  EXPECT_TRUE(list.EntryAtChecked(3).status().IsOutOfRange());
}

TEST(SortedListTest, LookupCheckedUnknownItem) {
  SortedList list = SortedList::FromScores({1.0, 2.0});
  EXPECT_TRUE(list.LookupChecked(1).ok());
  EXPECT_TRUE(list.LookupChecked(2).status().IsKeyError());
}

TEST(SortedListTest, EmptyList) {
  SortedList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
}

TEST(SortedListTest, SingleItem) {
  SortedList list = SortedList::FromScores({3.5});
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.EntryAt(1).item, 0u);
  EXPECT_EQ(list.PositionOf(0), 1u);
}

TEST(SortedListTest, NegativeScoresSupported) {
  SortedList list = SortedList::FromScores({-1.0, -3.0, 2.0});
  EXPECT_EQ(list.EntryAt(1).item, 2u);
  EXPECT_EQ(list.EntryAt(2).item, 0u);
  EXPECT_EQ(list.EntryAt(3).item, 1u);
  EXPECT_DOUBLE_EQ(list.MinScore(), -3.0);
}

TEST(SortedListTest, LargeListRoundTrip) {
  const size_t n = 10000;
  std::vector<Score> scores(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<Score>((i * 7919) % n);
  }
  SortedList list = SortedList::FromScores(scores);
  ASSERT_EQ(list.size(), n);
  // Descending order invariant.
  for (Position p = 2; p <= n; ++p) {
    ASSERT_GE(list.EntryAt(p - 1).score, list.EntryAt(p).score);
  }
  // Inverted index is total and consistent.
  for (ItemId item = 0; item < n; ++item) {
    ASSERT_EQ(list.EntryAt(list.PositionOf(item)).item, item);
  }
}

}  // namespace
}  // namespace topk
