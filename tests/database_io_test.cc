// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/database_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/database_generator.h"

namespace topk {
namespace {

void ExpectSameDatabase(const Database& a, const Database& b) {
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_lists(), b.num_lists());
  for (size_t li = 0; li < a.num_lists(); ++li) {
    for (Position p = 1; p <= a.num_items(); ++p) {
      ASSERT_EQ(a.list(li).EntryAt(p), b.list(li).EntryAt(p))
          << "list " << li << " position " << p;
    }
  }
}

TEST(DatabaseIoTest, CsvRoundTrip) {
  const Database db = MakeUniformDatabase(50, 3, 11);
  std::stringstream buffer;
  ASSERT_TRUE(WriteCsv(db, buffer).ok());
  Result<Database> loaded = ReadCsv(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabase(db, loaded.ValueUnsafe());
}

TEST(DatabaseIoTest, CsvRoundTripNegativeScores) {
  const Database db = MakeGaussianDatabase(30, 2, 12);
  std::stringstream buffer;
  ASSERT_TRUE(WriteCsv(db, buffer).ok());
  Result<Database> loaded = ReadCsv(buffer);
  ASSERT_TRUE(loaded.ok());
  ExpectSameDatabase(db, loaded.ValueUnsafe());
}

TEST(DatabaseIoTest, CsvAcceptsShuffledRows) {
  std::stringstream in(
      "item,list0,list1\n"
      "2,3.0,1.0\n"
      "0,1.0,3.0\n"
      "1,2.0,2.0\n");
  Result<Database> loaded = ReadCsv(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueUnsafe().num_items(), 3u);
  EXPECT_DOUBLE_EQ(loaded.ValueUnsafe().list(0).ScoreOf(2), 3.0);
}

TEST(DatabaseIoTest, CsvRejectsBadHeader) {
  std::stringstream in("id,list0\n0,1.0\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
}

TEST(DatabaseIoTest, CsvRejectsEmpty) {
  std::stringstream in("");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
}

TEST(DatabaseIoTest, CsvRejectsNoColumns) {
  std::stringstream in("item\n0\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
}

TEST(DatabaseIoTest, CsvRejectsDuplicateItem) {
  std::stringstream in("item,list0\n0,1.0\n0,2.0\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
}

TEST(DatabaseIoTest, CsvRejectsMissingItem) {
  std::stringstream in("item,list0\n0,1.0\n2,2.0\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
}

TEST(DatabaseIoTest, CsvRejectsRaggedRow) {
  std::stringstream in("item,list0,list1\n0,1.0\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
}

TEST(DatabaseIoTest, CsvRejectsExtraColumns) {
  std::stringstream in("item,list0\n0,1.0,2.0\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
}

TEST(DatabaseIoTest, CsvRejectsBadNumbers) {
  std::stringstream in("item,list0\nzero,1.0\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalid());
  std::stringstream in2("item,list0\n0,one\n");
  EXPECT_TRUE(ReadCsv(in2).status().IsInvalid());
}

TEST(DatabaseIoTest, BinaryRoundTrip) {
  const Database db = MakeUniformDatabase(200, 5, 13);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteBinary(db, buffer).ok());
  Result<Database> loaded = ReadBinary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabase(db, loaded.ValueUnsafe());
}

TEST(DatabaseIoTest, BinaryRejectsBadMagic) {
  std::stringstream buffer("not a database at all");
  EXPECT_TRUE(ReadBinary(buffer).status().IsInvalid());
}

TEST(DatabaseIoTest, BinaryRejectsTruncated) {
  const Database db = MakeUniformDatabase(20, 2, 14);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteBinary(db, buffer).ok());
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_TRUE(ReadBinary(cut).status().IsInvalid());
}

TEST(DatabaseIoTest, FileRoundTrip) {
  const Database db = MakeUniformDatabase(40, 2, 15);
  const std::string csv_path = ::testing::TempDir() + "/topk_io_test.csv";
  const std::string bin_path = ::testing::TempDir() + "/topk_io_test.bin";
  ASSERT_TRUE(WriteCsvFile(db, csv_path).ok());
  ASSERT_TRUE(WriteBinaryFile(db, bin_path).ok());
  Result<Database> from_csv = ReadCsvFile(csv_path);
  Result<Database> from_bin = ReadBinaryFile(bin_path);
  ASSERT_TRUE(from_csv.ok());
  ASSERT_TRUE(from_bin.ok());
  ExpectSameDatabase(db, from_csv.ValueUnsafe());
  ExpectSameDatabase(db, from_bin.ValueUnsafe());
}

TEST(DatabaseIoTest, MissingFilesFail) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path.csv").ok());
  EXPECT_FALSE(ReadBinaryFile("/nonexistent/path.bin").ok());
  const Database db = MakeUniformDatabase(5, 2, 16);
  EXPECT_FALSE(WriteCsvFile(db, "/nonexistent/dir/out.csv").ok());
  EXPECT_FALSE(WriteBinaryFile(db, "/nonexistent/dir/out.bin").ok());
}

}  // namespace
}  // namespace topk
