// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "gen/database_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "gen/distributions.h"

namespace topk {
namespace {

TEST(DistributionsTest, ZipfScoreShape) {
  EXPECT_DOUBLE_EQ(ZipfScore(1, 0.7), 1.0);
  EXPECT_LT(ZipfScore(2, 0.7), 1.0);
  // s(p) = 1/p^θ: doubling the rank divides the score by 2^θ.
  EXPECT_NEAR(ZipfScore(10, 0.7) / ZipfScore(20, 0.7), std::pow(2.0, 0.7),
              1e-12);
}

TEST(DistributionsTest, ZipfScoreVectorDescending) {
  const auto scores = ZipfScoreVector(100, 0.7);
  ASSERT_EQ(scores.size(), 100u);
  for (size_t i = 1; i < scores.size(); ++i) {
    ASSERT_LT(scores[i], scores[i - 1]);
  }
}

TEST(DistributionsTest, ZipfThetaZeroIsFlat) {
  const auto scores = ZipfScoreVector(10, 0.0);
  for (Score s : scores) {
    EXPECT_DOUBLE_EQ(s, 1.0);
  }
}

TEST(DistributionsTest, ZipfSamplerFavorsLowRanks) {
  Rng rng(55);
  ZipfSampler sampler(100, 1.0);
  std::vector<int> counts(101, 0);
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const Position p = sampler.Sample(&rng);
    ASSERT_GE(p, 1u);
    ASSERT_LE(p, 100u);
    ++counts[p];
  }
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // Rank 1 should receive roughly 1/H(100) of the mass (~19%).
  EXPECT_NEAR(static_cast<double>(counts[1]) / kDraws, 0.192, 0.02);
}

TEST(DistributionsTest, UniformVectorBounds) {
  Rng rng(56);
  const auto scores = UniformScoreVector(10000, &rng);
  for (Score s : scores) {
    ASSERT_GE(s, 0.0);
    ASSERT_LT(s, 1.0);
  }
}

TEST(DistributionsTest, GaussianVectorMoments) {
  Rng rng(57);
  const auto scores = GaussianScoreVector(100000, &rng);
  const double mean =
      std::accumulate(scores.begin(), scores.end(), 0.0) / scores.size();
  EXPECT_NEAR(mean, 0.0, 0.02);
}

TEST(GeneratorsTest, UniformDatabaseShapeAndDeterminism) {
  const Database a = MakeUniformDatabase(100, 5, 42);
  const Database b = MakeUniformDatabase(100, 5, 42);
  const Database c = MakeUniformDatabase(100, 5, 43);
  EXPECT_EQ(a.num_items(), 100u);
  EXPECT_EQ(a.num_lists(), 5u);
  // Same seed -> identical databases.
  for (size_t li = 0; li < 5; ++li) {
    for (Position p = 1; p <= 100; ++p) {
      ASSERT_EQ(a.list(li).EntryAt(p), b.list(li).EntryAt(p));
    }
  }
  // Different seed -> different content (with overwhelming probability).
  bool any_diff = false;
  for (Position p = 1; p <= 100 && !any_diff; ++p) {
    any_diff = !(a.list(0).EntryAt(p) == c.list(0).EntryAt(p));
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, GaussianDatabaseHasNegativeScores) {
  const Database db = MakeGaussianDatabase(1000, 2, 44);
  EXPECT_FALSE(db.AllScoresNonNegative());
}

TEST(GeneratorsTest, CorrelatedDatabaseValid) {
  CorrelatedConfig config;
  config.n = 300;
  config.m = 4;
  config.alpha = 0.01;
  config.seed = 45;
  const Database db = MakeCorrelatedDatabase(config).ValueOrDie();
  EXPECT_EQ(db.num_items(), 300u);
  EXPECT_EQ(db.num_lists(), 4u);
  EXPECT_TRUE(db.AllScoresNonNegative());
  // Every list is a permutation (constructed via FromEntries) with Zipf
  // scores: descending, max = 1.
  for (size_t li = 0; li < db.num_lists(); ++li) {
    EXPECT_DOUBLE_EQ(db.list(li).MaxScore(), 1.0);
  }
}

TEST(GeneratorsTest, CorrelatedDeterministicPerSeed) {
  CorrelatedConfig config;
  config.n = 200;
  config.m = 3;
  config.alpha = 0.05;
  config.seed = 46;
  const Database a = MakeCorrelatedDatabase(config).ValueOrDie();
  const Database b = MakeCorrelatedDatabase(config).ValueOrDie();
  for (size_t li = 0; li < 3; ++li) {
    for (Position p = 1; p <= 200; ++p) {
      ASSERT_EQ(a.list(li).EntryAt(p), b.list(li).EntryAt(p));
    }
  }
}

// Average absolute displacement between an item's positions in list 1 and
// list i. Low alpha must produce small displacement.
double MeanDisplacement(const Database& db) {
  double total = 0.0;
  size_t count = 0;
  for (size_t li = 1; li < db.num_lists(); ++li) {
    for (ItemId item = 0; item < db.num_items(); ++item) {
      const double p1 = db.list(0).PositionOf(item);
      const double pi = db.list(li).PositionOf(item);
      total += std::abs(p1 - pi);
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

TEST(GeneratorsTest, AlphaControlsCorrelationStrength) {
  CorrelatedConfig strong;
  strong.n = 2000;
  strong.m = 3;
  strong.alpha = 0.001;
  strong.seed = 47;
  CorrelatedConfig weak = strong;
  weak.alpha = 0.5;
  const double strong_disp =
      MeanDisplacement(MakeCorrelatedDatabase(strong).ValueOrDie());
  const double weak_disp =
      MeanDisplacement(MakeCorrelatedDatabase(weak).ValueOrDie());
  EXPECT_LT(strong_disp, weak_disp);
  EXPECT_LT(strong_disp, 10.0);   // offsets drawn from [1, 2]
  EXPECT_GT(weak_disp, 100.0);    // offsets up to 1000
}

TEST(GeneratorsTest, CorrelatedRejectsBadConfig) {
  CorrelatedConfig config;
  config.n = 0;
  config.m = 2;
  EXPECT_FALSE(MakeCorrelatedDatabase(config).ok());
  config.n = 10;
  config.m = 0;
  EXPECT_FALSE(MakeCorrelatedDatabase(config).ok());
  config.m = 2;
  config.alpha = 1.5;
  EXPECT_FALSE(MakeCorrelatedDatabase(config).ok());
  config.alpha = -0.1;
  EXPECT_FALSE(MakeCorrelatedDatabase(config).ok());
  config.alpha = 0.1;
  config.zipf_theta = -1.0;
  EXPECT_FALSE(MakeCorrelatedDatabase(config).ok());
}

TEST(GeneratorsTest, CorrelatedSingleList) {
  CorrelatedConfig config;
  config.n = 50;
  config.m = 1;
  config.alpha = 0.1;
  config.seed = 48;
  const Database db = MakeCorrelatedDatabase(config).ValueOrDie();
  EXPECT_EQ(db.num_lists(), 1u);
}

TEST(GeneratorsTest, ZipfDatabaseShapeScoresAndDeterminism) {
  const Database db = MakeZipfDatabase(200, 3, 77);
  EXPECT_EQ(db.num_lists(), 3u);
  EXPECT_EQ(db.num_items(), 200u);
  for (size_t i = 0; i < db.num_lists(); ++i) {
    // By-rank Zipf scores: position p carries exactly 1/p^0.7, independent
    // of which item landed there.
    for (Position p = 1; p <= 200; ++p) {
      EXPECT_DOUBLE_EQ(db.list(i).EntryAt(p).score, ZipfScore(p, 0.7));
    }
  }
  EXPECT_TRUE(db.AllScoresNonNegative());

  // Lists are independent permutations: with n = 200 the probability of two
  // identical lists is astronomically small.
  bool lists_differ = false;
  for (Position p = 1; p <= 200 && !lists_differ; ++p) {
    lists_differ = db.list(0).EntryAt(p).item != db.list(1).EntryAt(p).item;
  }
  EXPECT_TRUE(lists_differ);

  // Deterministic per seed, different across seeds.
  const Database same = MakeZipfDatabase(200, 3, 77);
  const Database other = MakeZipfDatabase(200, 3, 78);
  bool seeds_differ = false;
  for (Position p = 1; p <= 200; ++p) {
    EXPECT_EQ(db.list(0).EntryAt(p).item, same.list(0).EntryAt(p).item);
    seeds_differ |= db.list(0).EntryAt(p).item != other.list(0).EntryAt(p).item;
  }
  EXPECT_TRUE(seeds_differ);
}

TEST(GeneratorsTest, ZipfDatabaseThetaControlsSkew) {
  const Database flat = MakeZipfDatabase(100, 1, 5, /*theta=*/0.0);
  const Database skewed = MakeZipfDatabase(100, 1, 5, /*theta=*/1.0);
  EXPECT_DOUBLE_EQ(flat.list(0).MaxScore(), flat.list(0).MinScore());
  EXPECT_GT(skewed.list(0).MaxScore(), 10 * skewed.list(0).MinScore());
}

TEST(GeneratorsTest, DatabaseKindNames) {
  EXPECT_EQ(ToString(DatabaseKind::kUniform), "uniform");
  EXPECT_EQ(ToString(DatabaseKind::kGaussian), "gaussian");
  EXPECT_EQ(ToString(DatabaseKind::kCorrelated), "correlated");
  EXPECT_EQ(ToString(DatabaseKind::kZipf), "zipf");
}

}  // namespace
}  // namespace topk
