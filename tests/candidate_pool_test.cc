// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// CandidatePool unit and property tests: epoch-reset reuse across queries,
// growth beyond the initial table capacity, intrusive threshold-heap
// semantics (k-th lower bound, deterministic ties, erase/swap consistency),
// and a randomized differential against a std::unordered_map + full-sort
// reference model.

#include "core/candidate_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

TEST(CandidatePoolTest, InsertRecordsRowMaskAndKnownCount) {
  CandidatePool pool;
  pool.Reset(/*m=*/3, /*k=*/2, /*floor=*/-1.0);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.Contains(7));

  const uint32_t slot = pool.FindOrInsert(7);
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Contains(7));
  EXPECT_EQ(pool.item_at(slot), 7u);
  EXPECT_EQ(pool.mask(slot), 0u);
  EXPECT_EQ(pool.known_count(slot), 0u);
  // Unknown cells hold the floor.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(pool.row(slot)[i], -1.0);
  }

  EXPECT_TRUE(pool.SetSeen(slot, 1, 0.5));
  EXPECT_FALSE(pool.SetSeen(slot, 1, 0.5));  // already known
  EXPECT_EQ(pool.mask(slot), 0b010u);
  EXPECT_EQ(pool.known_count(slot), 1u);
  EXPECT_DOUBLE_EQ(pool.row(slot)[1], 0.5);
  EXPECT_DOUBLE_EQ(pool.row(slot)[0], -1.0);
  EXPECT_FALSE(pool.fully_known(slot));

  EXPECT_TRUE(pool.SetSeen(slot, 0, 0.25));
  EXPECT_TRUE(pool.SetSeen(slot, 2, 0.75));
  EXPECT_TRUE(pool.fully_known(slot));

  // FindOrInsert of an existing item returns the same slot.
  EXPECT_EQ(pool.FindOrInsert(7), slot);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, EpochResetForgetsCandidatesAndReusesStorage) {
  CandidatePool pool;
  for (int query = 0; query < 5; ++query) {
    pool.Reset(/*m=*/2, /*k=*/3, /*floor=*/0.0);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(pool.heap_size(), 0u);
    for (ItemId item = 0; item < 50; ++item) {
      EXPECT_FALSE(pool.Contains(item)) << "stale candidate after reset";
      const uint32_t slot = pool.FindOrInsert(item);
      pool.SetSeen(slot, 0, 1.0 + item + query);
      pool.OfferLower(slot, 1.0 + item + query);
    }
    EXPECT_EQ(pool.size(), 50u);
    ASSERT_TRUE(pool.HeapFull());
    // k = 3 best lower bounds are the three largest items this query.
    EXPECT_DOUBLE_EQ(pool.KthLower(), 1.0 + 47 + query);
  }
}

TEST(CandidatePoolTest, ResetAdaptsToNewListCountAndFloor) {
  CandidatePool pool;
  pool.Reset(/*m=*/4, /*k=*/1, /*floor=*/0.0);
  pool.SetSeen(pool.FindOrInsert(3), 3, 9.0);

  pool.Reset(/*m=*/2, /*k=*/1, /*floor=*/-7.5);
  const uint32_t slot = pool.FindOrInsert(3);
  EXPECT_EQ(pool.mask(slot), 0u);
  EXPECT_DOUBLE_EQ(pool.row(slot)[0], -7.5);
  EXPECT_DOUBLE_EQ(pool.row(slot)[1], -7.5);
}

TEST(CandidatePoolTest, GrowsBeyondInitialCapacity) {
  CandidatePool pool;
  pool.Reset(/*m=*/1, /*k=*/5, /*floor=*/0.0);
  // Far beyond the initial table (1024 cells at load factor 1/2).
  constexpr ItemId kCount = 20000;
  for (ItemId item = 0; item < kCount; ++item) {
    const uint32_t slot = pool.FindOrInsert(item * 3 + 1);
    pool.SetSeen(slot, 0, static_cast<Score>(item));
    pool.OfferLower(slot, static_cast<Score>(item));
  }
  EXPECT_EQ(pool.size(), static_cast<size_t>(kCount));
  for (ItemId item = 0; item < kCount; ++item) {
    const uint32_t slot = pool.FindSlot(item * 3 + 1);
    ASSERT_NE(slot, CandidatePool::kNoSlot) << "item lost in growth";
    EXPECT_DOUBLE_EQ(pool.row(slot)[0], static_cast<Score>(item));
  }
  EXPECT_DOUBLE_EQ(pool.KthLower(), static_cast<Score>(kCount - 5));
}

TEST(CandidatePoolTest, ThresholdHeapTracksKthLowerWithDeterministicTies) {
  CandidatePool pool;
  pool.Reset(/*m=*/1, /*k=*/2, /*floor=*/0.0);
  const auto offer = [&](ItemId item, Score lower) {
    const uint32_t slot = pool.FindOrInsert(item);
    pool.OfferLower(slot, lower);
  };
  offer(10, 5.0);
  EXPECT_FALSE(pool.HeapFull());
  offer(20, 5.0);
  ASSERT_TRUE(pool.HeapFull());
  // Equal bounds: the larger id is the weaker (k-th) entry.
  EXPECT_DOUBLE_EQ(pool.KthLower(), 5.0);
  EXPECT_EQ(pool.KthItem(), 20u);

  // A smaller-id tie displaces the larger-id member.
  offer(15, 5.0);
  EXPECT_DOUBLE_EQ(pool.KthLower(), 5.0);
  EXPECT_EQ(pool.KthItem(), 15u);
  EXPECT_FALSE(pool.InHeap(pool.FindSlot(20)));

  // A strictly larger bound displaces the weakest member.
  offer(30, 6.0);
  EXPECT_EQ(pool.KthItem(), 10u);

  // Members update in place when their bound grows.
  offer(10, 7.0);
  EXPECT_DOUBLE_EQ(pool.KthLower(), 6.0);
  EXPECT_EQ(pool.KthItem(), 30u);

  std::vector<ItemId> items;
  pool.AppendHeapItems(&items);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 10u);  // 7.0
  EXPECT_EQ(items[1], 30u);  // 6.0
}

TEST(CandidatePoolTest, EraseSwapsLastSlotAndKeepsIndexConsistent) {
  CandidatePool pool;
  pool.Reset(/*m=*/2, /*k=*/1, /*floor=*/0.0);
  for (ItemId item = 0; item < 10; ++item) {
    const uint32_t slot = pool.FindOrInsert(item);
    pool.SetSeen(slot, 0, static_cast<Score>(item));
  }
  // Make item 9 the sole heap member so erases below never touch the heap.
  pool.OfferLower(pool.FindSlot(9), 9.0);

  pool.Erase(pool.FindSlot(0));
  pool.Erase(pool.FindSlot(5));
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_FALSE(pool.Contains(0));
  EXPECT_FALSE(pool.Contains(5));
  for (ItemId item : {1u, 2u, 3u, 4u, 6u, 7u, 8u, 9u}) {
    const uint32_t slot = pool.FindSlot(item);
    ASSERT_NE(slot, CandidatePool::kNoSlot) << "item " << item;
    EXPECT_EQ(pool.item_at(slot), item);
    EXPECT_DOUBLE_EQ(pool.row(slot)[0], static_cast<Score>(item));
  }
  // The heap member survived the swaps with a valid backlink.
  EXPECT_TRUE(pool.InHeap(pool.FindSlot(9)));
  EXPECT_DOUBLE_EQ(pool.KthLower(), 9.0);
  EXPECT_EQ(pool.KthItem(), 9u);
}

TEST(CandidatePoolTest, PeakSizeTracksHighWaterMarkAcrossErasesAndResets) {
  CandidatePool pool;
  pool.Reset(/*m=*/2, /*k=*/1, /*floor=*/0.0);
  EXPECT_EQ(pool.peak_size(), 0u);
  for (ItemId item = 0; item < 10; ++item) {
    pool.SetSeen(pool.FindOrInsert(item), 0, 1.0);
  }
  pool.OfferLower(pool.FindSlot(9), 1.0);  // heap member; erases avoid it
  EXPECT_EQ(pool.peak_size(), 10u);
  pool.Erase(pool.FindSlot(0));
  pool.Erase(pool.FindSlot(1));
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_EQ(pool.peak_size(), 10u);  // the peak never shrinks...
  pool.FindOrInsert(100);
  EXPECT_EQ(pool.peak_size(), 10u);  // ...and re-inserts only raise it
  pool.FindOrInsert(101);
  pool.FindOrInsert(102);
  EXPECT_EQ(pool.peak_size(), 11u);  // past the old high-water mark
  pool.Reset(/*m=*/2, /*k=*/1, /*floor=*/0.0);
  EXPECT_EQ(pool.peak_size(), 0u);  // a reset forgets the mark
}

// Reference model: hash map of rows plus a full sort for the k-th lower
// bound, mirroring the seed implementation's per-query bookkeeping.
struct ReferenceCandidate {
  std::vector<Score> scores;
  std::vector<bool> known;
};

TEST(CandidatePoolTest, DifferentialAgainstUnorderedMapReference) {
  Rng rng(2024);
  for (int round = 0; round < 40; ++round) {
    const size_t m = 1 + rng.NextBounded(6);
    const size_t k = 1 + rng.NextBounded(8);
    const Score floor = rng.NextBool() ? 0.0 : -2.0;
    const size_t universe = 1 + rng.NextBounded(300);

    CandidatePool pool;
    pool.Reset(m, k, floor);
    std::unordered_map<ItemId, ReferenceCandidate> reference;

    const auto reference_lower = [&](const ReferenceCandidate& c) {
      Score sum = 0.0;
      for (size_t i = 0; i < m; ++i) {
        sum += c.known[i] ? c.scores[i] : floor;
      }
      return sum;
    };

    const size_t ops = 200 + rng.NextBounded(800);
    for (size_t op = 0; op < ops; ++op) {
      const ItemId item = static_cast<ItemId>(rng.NextBounded(universe));
      const size_t list = rng.NextBounded(m);
      const Score score = floor + rng.NextDouble() * 4.0;

      const uint32_t slot = pool.FindOrInsert(item);
      auto [it, inserted] = reference.try_emplace(
          item, ReferenceCandidate{std::vector<Score>(m, 0.0),
                                   std::vector<bool>(m, false)});
      const bool newly = !it->second.known[list];
      EXPECT_EQ(pool.SetSeen(slot, list, score), newly);
      if (newly) {
        it->second.known[list] = true;
        it->second.scores[list] = score;
        Score sum = 0.0;
        for (size_t i = 0; i < m; ++i) {
          sum += pool.row(slot)[i];
        }
        EXPECT_DOUBLE_EQ(sum, reference_lower(it->second));
        pool.OfferLower(slot, sum);
      }
    }

    ASSERT_EQ(pool.size(), reference.size());
    // k-th best (lower, id) pair from the reference by full sort.
    std::vector<std::pair<Score, ItemId>> all;
    for (const auto& [item, cand] : reference) {
      all.push_back({reference_lower(cand), item});
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    });
    if (reference.size() >= k) {
      ASSERT_TRUE(pool.HeapFull());
      EXPECT_DOUBLE_EQ(pool.KthLower(), all[k - 1].first) << "round " << round;
      EXPECT_EQ(pool.KthItem(), all[k - 1].second) << "round " << round;
      std::vector<ItemId> heap_items;
      pool.AppendHeapItems(&heap_items);
      ASSERT_EQ(heap_items.size(), k);
      for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(heap_items[i], all[i].second) << "rank " << i;
      }
    } else {
      EXPECT_EQ(pool.heap_size(), reference.size());
    }

    // Erase every non-heap candidate (the pruning pattern of NRA/CA);
    // membership and rows must stay consistent throughout.
    for (uint32_t slot = 0; slot < pool.size();) {
      if (pool.InHeap(slot)) {
        ++slot;
        continue;
      }
      pool.Erase(slot);
    }
    EXPECT_EQ(pool.size(), pool.heap_size());
    for (size_t rank = 0; rank < pool.heap_size(); ++rank) {
      const ItemId item = all[rank].second;
      const uint32_t slot = pool.FindSlot(item);
      ASSERT_NE(slot, CandidatePool::kNoSlot);
      const auto& cand = reference.at(item);
      for (size_t i = 0; i < m; ++i) {
        EXPECT_DOUBLE_EQ(pool.row(slot)[i],
                         cand.known[i] ? cand.scores[i] : floor);
      }
    }
  }
}

// --- per-mask group index ---

// Strength order of the group heaps (and the threshold heap): higher lower
// bound first, ties to the smaller item id.
bool Stronger(Score lower_a, ItemId item_a, Score lower_b, ItemId item_b) {
  if (lower_a != lower_b) {
    return lower_a > lower_b;
  }
  return item_a < item_b;
}

// Brute-force verification of the whole group index against the flat
// candidate store: membership (every non-heap candidate is registered in the
// group of its exact mask), per-group counts, both heap invariants of every
// dual-heap group (strongest at the max root, weakest at the min root), the
// group extrema, and min-side/max-side membership agreement.
void ExpectGroupIndexConsistent(const CandidatePool& pool) {
  std::vector<size_t> expected_count(pool.num_groups(), 0);
  size_t grouped = 0;
  for (uint32_t slot = 0; slot < pool.size(); ++slot) {
    const uint32_t g = pool.group_of(slot);
    if (pool.InHeap(slot)) {
      EXPECT_EQ(g, CandidatePool::kNoGroup)
          << "heap member " << pool.item_at(slot) << " is also grouped";
      continue;
    }
    ASSERT_NE(g, CandidatePool::kNoGroup)
        << "candidate " << pool.item_at(slot) << " is in neither structure";
    ASSERT_LT(g, pool.num_groups());
    EXPECT_EQ(pool.group_mask(g), pool.mask(slot))
        << "candidate " << pool.item_at(slot) << " grouped under wrong mask";
    ++expected_count[g];
    ++grouped;
  }

  size_t member_total = 0;
  for (size_t g = 0; g < pool.num_groups(); ++g) {
    const auto& members = pool.group_members(g);
    ASSERT_EQ(members.size(), expected_count[g]) << "group " << g;
    member_total += members.size();
    for (size_t pos = 0; pos < members.size(); ++pos) {
      EXPECT_EQ(pool.group_of(members[pos]), g);
      if (pos > 0) {
        const size_t parent = (pos - 1) / 2;
        EXPECT_FALSE(Stronger(
            pool.lower(members[pos]), pool.item_at(members[pos]),
            pool.lower(members[parent]), pool.item_at(members[parent])))
            << "group " << g << " max heap violated at position " << pos;
      }
    }
    if (!members.empty()) {
      uint32_t best = members[0];
      for (uint32_t slot : members) {
        if (Stronger(pool.lower(slot), pool.item_at(slot), pool.lower(best),
                     pool.item_at(best))) {
          best = slot;
        }
      }
      EXPECT_EQ(members[0], best)
          << "group " << g << " max root is not the strongest member";
    }

    // Min side of the dual heap: a lazily-invalidated entry heap. The heap
    // invariant must hold over the *stored* keys (stale entries included,
    // keys can repeat across re-registrations, so non-strict), every live
    // member must own exactly one live entry carrying its current key, and
    // the root's stored key must minorize every live member — which makes
    // the weakest live member reachable by popping stale roots only.
    // Lazily-built indexes (TPUT) carry no min side at all.
    const auto& min_entries = pool.group_min_entries(g);
    if (!pool.has_min_side()) {
      EXPECT_EQ(min_entries.size(), 0u)
          << "group " << g << " grew a min side in lazy mode";
      continue;
    }
    for (size_t pos = 1; pos < min_entries.size(); ++pos) {
      const size_t parent = (pos - 1) / 2;
      EXPECT_FALSE(Stronger(min_entries[parent].lower,
                            min_entries[parent].item, min_entries[pos].lower,
                            min_entries[pos].item))
          << "group " << g << " min heap violated at position " << pos;
    }
    std::vector<size_t> live_entries_per_member(members.size(), 0);
    for (size_t pos = 0; pos < min_entries.size(); ++pos) {
      const auto& entry = min_entries[pos];
      if (!pool.MinEntryLive(entry)) {
        continue;
      }
      const uint32_t slot = pool.FindSlot(entry.item);
      ASSERT_NE(slot, CandidatePool::kNoSlot);
      EXPECT_EQ(pool.group_of(slot), g)
          << "live entry for item " << entry.item << " in the wrong group";
      // A live entry's stored key is bit-identical to the member's current
      // key (keys are immutable while registered).
      EXPECT_EQ(entry.lower, pool.lower(slot));
      bool counted = false;
      for (size_t i = 0; i < members.size(); ++i) {
        if (members[i] == slot) {
          ++live_entries_per_member[i];
          counted = true;
          break;
        }
      }
      EXPECT_TRUE(counted) << "live entry for a slot outside the max side";
    }
    for (size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(live_entries_per_member[i], 1u)
          << "member " << pool.item_at(members[i]) << " of group " << g
          << " owns " << live_entries_per_member[i] << " live entries";
    }
    if (!members.empty()) {
      // Brute-force weakest live member vs the stored-key minimum: the root
      // minorizes it (equal when the root itself is live).
      uint32_t weakest = members[0];
      for (uint32_t slot : members) {
        if (Stronger(pool.lower(weakest), pool.item_at(weakest),
                     pool.lower(slot), pool.item_at(slot))) {
          weakest = slot;
        }
      }
      ASSERT_FALSE(min_entries.empty());
      EXPECT_FALSE(Stronger(min_entries[0].lower, min_entries[0].item,
                            pool.lower(weakest), pool.item_at(weakest)))
          << "group " << g << " min root is stronger than a live member";
    }
  }
  EXPECT_EQ(member_total, grouped);
}

TEST(CandidatePoolTest, GroupIndexMatchesBruteForceUnderRandomizedOps) {
  Rng rng(4711);
  for (int round = 0; round < 30; ++round) {
    const size_t m = 1 + rng.NextBounded(6);
    const size_t k = 1 + rng.NextBounded(6);
    const size_t universe = 1 + rng.NextBounded(150);
    CandidatePool pool;
    // Alternate CA's dual-heap mode (min side on) with NRA's max-side-only
    // mode: the consistency check covers the min side's lazy-invalidation
    // invariants in the former and its absence in the latter.
    pool.Reset(m, k, /*floor=*/0.0, /*eager_groups=*/true,
               /*dual_heap=*/round % 2 == 0);

    const size_t ops = 100 + rng.NextBounded(600);
    for (size_t op = 0; op < ops; ++op) {
      const uint64_t action = rng.NextBounded(10);
      if (action < 8) {
        // Combine: record one local score and publish the new bound — the
        // SetSeen/OfferLower protocol of the run loops, including mask
        // promotion between groups and threshold-heap displacement.
        const ItemId item = static_cast<ItemId>(rng.NextBounded(universe));
        const uint32_t slot = pool.FindOrInsert(item);
        if (pool.SetSeen(slot, rng.NextBounded(m),
                         1.0 + rng.NextDouble() * 4.0)) {
          Score sum = 0.0;
          for (size_t i = 0; i < m; ++i) {
            sum += pool.row(slot)[i];
          }
          pool.OfferLower(slot, sum);
        }
      } else if (action == 8 && pool.size() > 0) {
        // Erase a random non-heap candidate (CA's pruning pattern).
        const uint32_t slot =
            static_cast<uint32_t>(rng.NextBounded(pool.size()));
        if (!pool.InHeap(slot)) {
          pool.Erase(slot);
        }
      } else if (pool.size() > 0) {
        // Re-publish an unchanged bound (legal: bounds are non-decreasing);
        // the registration must stay unique.
        const uint32_t slot =
            static_cast<uint32_t>(rng.NextBounded(pool.size()));
        if (pool.lower(slot) >
            -std::numeric_limits<Score>::infinity()) {
          pool.OfferLower(slot, pool.lower(slot));
        }
      }
      if (op % 64 == 0) {
        ExpectGroupIndexConsistent(pool);
      }
    }
    ExpectGroupIndexConsistent(pool);
  }
}

TEST(CandidatePoolTest, GroupIndexSurvivesEpochReuse) {
  CandidatePool pool;
  for (int query = 0; query < 4; ++query) {
    pool.Reset(/*m=*/3, /*k=*/2, /*floor=*/0.0, /*eager_groups=*/true,
               /*dual_heap=*/true);
    for (ItemId item = 0; item < 40; ++item) {
      const uint32_t slot = pool.FindOrInsert(item);
      pool.SetSeen(slot, item % 3, 1.0 + item);
      pool.OfferLower(slot, 1.0 + item);
    }
    ExpectGroupIndexConsistent(pool);
    // Three single-list masks, all candidates outside the k=2 heap grouped.
    EXPECT_EQ(pool.num_groups(), 3u);
    size_t members = 0;
    for (size_t g = 0; g < pool.num_groups(); ++g) {
      members += pool.group_members(g).size();
    }
    EXPECT_EQ(members, 38u);
  }
}

TEST(CandidatePoolTest, LazyGroupModeDefersRegistrationToBuildGroups) {
  CandidatePool pool;
  pool.Reset(/*m=*/2, /*k=*/2, /*floor=*/0.0, /*eager_groups=*/false);
  for (ItemId item = 0; item < 30; ++item) {
    const uint32_t slot = pool.FindOrInsert(item);
    pool.SetSeen(slot, item % 2, 1.0 + item);
    pool.OfferLower(slot, 1.0 + item);
  }
  // Nothing registered while lazy: TPUT's phases 1-2 never pay for the index.
  EXPECT_EQ(pool.num_groups(), 0u);
  for (uint32_t slot = 0; slot < pool.size(); ++slot) {
    EXPECT_EQ(pool.group_of(slot), CandidatePool::kNoGroup);
  }

  pool.BuildGroups();
  ExpectGroupIndexConsistent(pool);
  EXPECT_EQ(pool.num_groups(), 2u);
  size_t members = 0;
  for (size_t g = 0; g < pool.num_groups(); ++g) {
    members += pool.group_members(g).size();
  }
  EXPECT_EQ(members, 28u);  // 30 candidates minus the k=2 heap
  pool.BuildGroups();  // idempotent
  ExpectGroupIndexConsistent(pool);
}

// --- the 64-list mask-word cap ---

TEST(CandidatePoolTest, PoolAlgorithmsRejectMoreListsThanTheMaskWord) {
  // 65 lists: one more than the single 64-bit seen-mask word covers.
  const Database db = MakeUniformDatabase(/*n=*/4, /*m=*/65, /*seed=*/9);
  SumScorer sum;
  for (AlgorithmKind kind :
       {AlgorithmKind::kNra, AlgorithmKind::kCa, AlgorithmKind::kTput}) {
    const auto status =
        MakeAlgorithm(kind)->Execute(db, TopKQuery{2, &sum}).status();
    EXPECT_TRUE(status.IsNotImplemented()) << ToString(kind);
    const std::string text = status.ToString();
    EXPECT_NE(text.find("64"), std::string::npos) << text;
    EXPECT_NE(text.find("single 64-bit word"), std::string::npos) << text;
    EXPECT_NE(text.find("got 65"), std::string::npos) << text;
  }
  // The mask-free algorithms are unaffected by list count.
  EXPECT_TRUE(MakeAlgorithm(AlgorithmKind::kTa)
                  ->Execute(db, TopKQuery{2, &sum})
                  .ok());
}

}  // namespace
}  // namespace topk
