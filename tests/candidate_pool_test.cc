// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// CandidatePool unit and property tests: epoch-reset reuse across queries,
// growth beyond the initial table capacity, intrusive threshold-heap
// semantics (k-th lower bound, deterministic ties, erase/swap consistency),
// and a randomized differential against a std::unordered_map + full-sort
// reference model.

#include "core/candidate_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace topk {
namespace {

TEST(CandidatePoolTest, InsertRecordsRowMaskAndKnownCount) {
  CandidatePool pool;
  pool.Reset(/*m=*/3, /*k=*/2, /*floor=*/-1.0);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.Contains(7));

  const uint32_t slot = pool.FindOrInsert(7);
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Contains(7));
  EXPECT_EQ(pool.item_at(slot), 7u);
  EXPECT_EQ(pool.mask(slot), 0u);
  EXPECT_EQ(pool.known_count(slot), 0u);
  // Unknown cells hold the floor.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(pool.row(slot)[i], -1.0);
  }

  EXPECT_TRUE(pool.SetSeen(slot, 1, 0.5));
  EXPECT_FALSE(pool.SetSeen(slot, 1, 0.5));  // already known
  EXPECT_EQ(pool.mask(slot), 0b010u);
  EXPECT_EQ(pool.known_count(slot), 1u);
  EXPECT_DOUBLE_EQ(pool.row(slot)[1], 0.5);
  EXPECT_DOUBLE_EQ(pool.row(slot)[0], -1.0);
  EXPECT_FALSE(pool.fully_known(slot));

  EXPECT_TRUE(pool.SetSeen(slot, 0, 0.25));
  EXPECT_TRUE(pool.SetSeen(slot, 2, 0.75));
  EXPECT_TRUE(pool.fully_known(slot));

  // FindOrInsert of an existing item returns the same slot.
  EXPECT_EQ(pool.FindOrInsert(7), slot);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, EpochResetForgetsCandidatesAndReusesStorage) {
  CandidatePool pool;
  for (int query = 0; query < 5; ++query) {
    pool.Reset(/*m=*/2, /*k=*/3, /*floor=*/0.0);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(pool.heap_size(), 0u);
    for (ItemId item = 0; item < 50; ++item) {
      EXPECT_FALSE(pool.Contains(item)) << "stale candidate after reset";
      const uint32_t slot = pool.FindOrInsert(item);
      pool.SetSeen(slot, 0, 1.0 + item + query);
      pool.OfferLower(slot, 1.0 + item + query);
    }
    EXPECT_EQ(pool.size(), 50u);
    ASSERT_TRUE(pool.HeapFull());
    // k = 3 best lower bounds are the three largest items this query.
    EXPECT_DOUBLE_EQ(pool.KthLower(), 1.0 + 47 + query);
  }
}

TEST(CandidatePoolTest, ResetAdaptsToNewListCountAndFloor) {
  CandidatePool pool;
  pool.Reset(/*m=*/4, /*k=*/1, /*floor=*/0.0);
  pool.SetSeen(pool.FindOrInsert(3), 3, 9.0);

  pool.Reset(/*m=*/2, /*k=*/1, /*floor=*/-7.5);
  const uint32_t slot = pool.FindOrInsert(3);
  EXPECT_EQ(pool.mask(slot), 0u);
  EXPECT_DOUBLE_EQ(pool.row(slot)[0], -7.5);
  EXPECT_DOUBLE_EQ(pool.row(slot)[1], -7.5);
}

TEST(CandidatePoolTest, GrowsBeyondInitialCapacity) {
  CandidatePool pool;
  pool.Reset(/*m=*/1, /*k=*/5, /*floor=*/0.0);
  // Far beyond the initial table (1024 cells at load factor 1/2).
  constexpr ItemId kCount = 20000;
  for (ItemId item = 0; item < kCount; ++item) {
    const uint32_t slot = pool.FindOrInsert(item * 3 + 1);
    pool.SetSeen(slot, 0, static_cast<Score>(item));
    pool.OfferLower(slot, static_cast<Score>(item));
  }
  EXPECT_EQ(pool.size(), static_cast<size_t>(kCount));
  for (ItemId item = 0; item < kCount; ++item) {
    const uint32_t slot = pool.FindSlot(item * 3 + 1);
    ASSERT_NE(slot, CandidatePool::kNoSlot) << "item lost in growth";
    EXPECT_DOUBLE_EQ(pool.row(slot)[0], static_cast<Score>(item));
  }
  EXPECT_DOUBLE_EQ(pool.KthLower(), static_cast<Score>(kCount - 5));
}

TEST(CandidatePoolTest, ThresholdHeapTracksKthLowerWithDeterministicTies) {
  CandidatePool pool;
  pool.Reset(/*m=*/1, /*k=*/2, /*floor=*/0.0);
  const auto offer = [&](ItemId item, Score lower) {
    const uint32_t slot = pool.FindOrInsert(item);
    pool.OfferLower(slot, lower);
  };
  offer(10, 5.0);
  EXPECT_FALSE(pool.HeapFull());
  offer(20, 5.0);
  ASSERT_TRUE(pool.HeapFull());
  // Equal bounds: the larger id is the weaker (k-th) entry.
  EXPECT_DOUBLE_EQ(pool.KthLower(), 5.0);
  EXPECT_EQ(pool.KthItem(), 20u);

  // A smaller-id tie displaces the larger-id member.
  offer(15, 5.0);
  EXPECT_DOUBLE_EQ(pool.KthLower(), 5.0);
  EXPECT_EQ(pool.KthItem(), 15u);
  EXPECT_FALSE(pool.InHeap(pool.FindSlot(20)));

  // A strictly larger bound displaces the weakest member.
  offer(30, 6.0);
  EXPECT_EQ(pool.KthItem(), 10u);

  // Members update in place when their bound grows.
  offer(10, 7.0);
  EXPECT_DOUBLE_EQ(pool.KthLower(), 6.0);
  EXPECT_EQ(pool.KthItem(), 30u);

  std::vector<ItemId> items;
  pool.AppendHeapItems(&items);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 10u);  // 7.0
  EXPECT_EQ(items[1], 30u);  // 6.0
}

TEST(CandidatePoolTest, EraseSwapsLastSlotAndKeepsIndexConsistent) {
  CandidatePool pool;
  pool.Reset(/*m=*/2, /*k=*/1, /*floor=*/0.0);
  for (ItemId item = 0; item < 10; ++item) {
    const uint32_t slot = pool.FindOrInsert(item);
    pool.SetSeen(slot, 0, static_cast<Score>(item));
  }
  // Make item 9 the sole heap member so erases below never touch the heap.
  pool.OfferLower(pool.FindSlot(9), 9.0);

  pool.Erase(pool.FindSlot(0));
  pool.Erase(pool.FindSlot(5));
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_FALSE(pool.Contains(0));
  EXPECT_FALSE(pool.Contains(5));
  for (ItemId item : {1u, 2u, 3u, 4u, 6u, 7u, 8u, 9u}) {
    const uint32_t slot = pool.FindSlot(item);
    ASSERT_NE(slot, CandidatePool::kNoSlot) << "item " << item;
    EXPECT_EQ(pool.item_at(slot), item);
    EXPECT_DOUBLE_EQ(pool.row(slot)[0], static_cast<Score>(item));
  }
  // The heap member survived the swaps with a valid backlink.
  EXPECT_TRUE(pool.InHeap(pool.FindSlot(9)));
  EXPECT_DOUBLE_EQ(pool.KthLower(), 9.0);
  EXPECT_EQ(pool.KthItem(), 9u);
}

// Reference model: hash map of rows plus a full sort for the k-th lower
// bound, mirroring the seed implementation's per-query bookkeeping.
struct ReferenceCandidate {
  std::vector<Score> scores;
  std::vector<bool> known;
};

TEST(CandidatePoolTest, DifferentialAgainstUnorderedMapReference) {
  Rng rng(2024);
  for (int round = 0; round < 40; ++round) {
    const size_t m = 1 + rng.NextBounded(6);
    const size_t k = 1 + rng.NextBounded(8);
    const Score floor = rng.NextBool() ? 0.0 : -2.0;
    const size_t universe = 1 + rng.NextBounded(300);

    CandidatePool pool;
    pool.Reset(m, k, floor);
    std::unordered_map<ItemId, ReferenceCandidate> reference;

    const auto reference_lower = [&](const ReferenceCandidate& c) {
      Score sum = 0.0;
      for (size_t i = 0; i < m; ++i) {
        sum += c.known[i] ? c.scores[i] : floor;
      }
      return sum;
    };

    const size_t ops = 200 + rng.NextBounded(800);
    for (size_t op = 0; op < ops; ++op) {
      const ItemId item = static_cast<ItemId>(rng.NextBounded(universe));
      const size_t list = rng.NextBounded(m);
      const Score score = floor + rng.NextDouble() * 4.0;

      const uint32_t slot = pool.FindOrInsert(item);
      auto [it, inserted] = reference.try_emplace(
          item, ReferenceCandidate{std::vector<Score>(m, 0.0),
                                   std::vector<bool>(m, false)});
      const bool newly = !it->second.known[list];
      EXPECT_EQ(pool.SetSeen(slot, list, score), newly);
      if (newly) {
        it->second.known[list] = true;
        it->second.scores[list] = score;
        Score sum = 0.0;
        for (size_t i = 0; i < m; ++i) {
          sum += pool.row(slot)[i];
        }
        EXPECT_DOUBLE_EQ(sum, reference_lower(it->second));
        pool.OfferLower(slot, sum);
      }
    }

    ASSERT_EQ(pool.size(), reference.size());
    // k-th best (lower, id) pair from the reference by full sort.
    std::vector<std::pair<Score, ItemId>> all;
    for (const auto& [item, cand] : reference) {
      all.push_back({reference_lower(cand), item});
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    });
    if (reference.size() >= k) {
      ASSERT_TRUE(pool.HeapFull());
      EXPECT_DOUBLE_EQ(pool.KthLower(), all[k - 1].first) << "round " << round;
      EXPECT_EQ(pool.KthItem(), all[k - 1].second) << "round " << round;
      std::vector<ItemId> heap_items;
      pool.AppendHeapItems(&heap_items);
      ASSERT_EQ(heap_items.size(), k);
      for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(heap_items[i], all[i].second) << "rank " << i;
      }
    } else {
      EXPECT_EQ(pool.heap_size(), reference.size());
    }

    // Erase every non-heap candidate (the pruning pattern of NRA/CA);
    // membership and rows must stay consistent throughout.
    for (uint32_t slot = 0; slot < pool.size();) {
      if (pool.InHeap(slot)) {
        ++slot;
        continue;
      }
      pool.Erase(slot);
    }
    EXPECT_EQ(pool.size(), pool.heap_size());
    for (size_t rank = 0; rank < pool.heap_size(); ++rank) {
      const ItemId item = all[rank].second;
      const uint32_t slot = pool.FindSlot(item);
      ASSERT_NE(slot, CandidatePool::kNoSlot);
      const auto& cand = reference.at(item);
      for (size_t i = 0; i < m; ++i) {
        EXPECT_DOUBLE_EQ(pool.row(slot)[i],
                         cand.known[i] ? cand.scores[i] : floor);
      }
    }
  }
}

}  // namespace
}  // namespace topk
