// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Query governance: deadlines, access/memory budgets, cooperative
// cancellation, fault injection, and the anytime-result contract. The core
// properties certified here:
//
//  * Determinism — a governed or fault-injected run with a fixed seed and
//    budget produces byte-identical partial results (items, scores, theta,
//    completion, access counts) across reruns and across fresh vs warmed
//    contexts.
//  * Soundness — every returned score is a lower bound on the item's true
//    overall score, every unreturned item's true score is bounded by
//    unreturned_upper_bound, and theta >= 1 relates the two per Fagin.
//  * Absorption — transient faults and latency spikes never change the
//    answer (only permanent deaths remove data).
//  * StrictMode — degradation surfaces as a Status error instead.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "core/candidate_bounds.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

constexpr size_t kN = 4000;
constexpr size_t kM = 4;
constexpr size_t kK = 25;

// Every governed algorithm; Naive is the oracle and ignores governance.
const std::vector<AlgorithmKind>& GovernedKinds() {
  static const std::vector<AlgorithmKind> kKinds = {
      AlgorithmKind::kFa,   AlgorithmKind::kTa,   AlgorithmKind::kBpa,
      AlgorithmKind::kBpa2, AlgorithmKind::kTput, AlgorithmKind::kNra,
      AlgorithmKind::kCa,
  };
  return kKinds;
}

Database MakeDb() { return MakeUniformDatabase(kN, kM, /*seed=*/42); }

double TrueScore(const Database& db, const Scorer& scorer,
                 std::vector<Score>* scratch, ItemId item) {
  for (size_t i = 0; i < db.num_lists(); ++i) {
    (*scratch)[i] = db.list(i).ScoreOf(item);
  }
  return scorer.Combine(scratch->data(), db.num_lists());
}

TopKResult MustRun(AlgorithmKind kind, const AlgorithmOptions& options,
                   const Database& db, const TopKQuery& query,
                   ExecutionContext* context) {
  auto algorithm = MakeAlgorithm(kind, options);
  auto result = algorithm->Execute(db, query, context);
  EXPECT_TRUE(result.ok()) << ToString(kind) << ": "
                           << result.status().ToString();
  return std::move(result).ValueOrDie();
}

// Sound anytime result: returned scores are certified lower bounds, the
// unreturned bound covers every item not in the answer, and theta ties the
// two together (Fagin's theta-approximation).
void CheckAnytimeSoundness(AlgorithmKind kind, const Database& db,
                           const Scorer& scorer, const TopKResult& result) {
  SCOPED_TRACE(ToString(kind));
  const double eps = 1e-9;
  std::vector<Score> scratch(db.num_lists());
  ASSERT_GE(result.theta, 1.0);
  std::vector<bool> returned(db.num_items(), false);
  for (const ResultItem& item : result.items) {
    returned[item.item] = true;
    const double truth = TrueScore(db, scorer, &scratch, item.item);
    EXPECT_LE(item.score, truth + eps)
        << "returned score must be a lower bound for item " << item.item;
    EXPECT_GE(truth + eps, result.kth_lower_bound)
        << "returned item " << item.item << " below the certified k-th bound";
  }
  for (ItemId item = 0; item < static_cast<ItemId>(db.num_items()); ++item) {
    if (returned[item]) {
      continue;
    }
    const double truth = TrueScore(db, scorer, &scratch, item);
    ASSERT_LE(truth, result.unreturned_upper_bound + eps)
        << "unreturned item " << item << " exceeds the certified upper bound";
    if (result.kth_lower_bound > 0.0) {
      ASSERT_LE(truth, result.theta * result.kth_lower_bound + eps)
          << "theta does not cover unreturned item " << item;
    }
  }
}

// Byte-identical outcome: the determinism contract for governed and
// fault-injected runs.
void ExpectSameOutcome(const TopKResult& a, const TopKResult& b) {
  EXPECT_EQ(a.completion, b.completion);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].item, b.items[i].item);
    EXPECT_EQ(a.items[i].score, b.items[i].score);
  }
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.kth_lower_bound, b.kth_lower_bound);
  EXPECT_EQ(a.unreturned_upper_bound, b.unreturned_upper_bound);
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.stop_position, b.stop_position);
  EXPECT_EQ(a.failed_over, b.failed_over);
  EXPECT_EQ(a.dead_lists, b.dead_lists);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
}

TEST(CompletionTest, ToStringCoversEveryReason) {
  EXPECT_STREQ(ToString(Completion::kExact), "exact");
  EXPECT_STREQ(ToString(Completion::kDeadline), "deadline");
  EXPECT_STREQ(ToString(Completion::kAccessBudget), "access-budget");
  EXPECT_STREQ(ToString(Completion::kMemoryBudget), "memory-budget");
  EXPECT_STREQ(ToString(Completion::kCancelled), "cancelled");
  EXPECT_STREQ(ToString(Completion::kListFailure), "list-failure");
}

TEST(QueryGovernorTest, UnarmedChargeIsFree) {
  QueryGovernor governor;
  AccessStats stats;
  stats.sorted_accesses = uint64_t{1} << 40;
  EXPECT_EQ(governor.Charge(stats, size_t{1} << 40, 1e12), Completion::kExact);
}

TEST(QueryGovernorTest, CancellationWorksUnarmedAndIsClearedByArm) {
  QueryGovernor governor;
  governor.RequestCancel();
  EXPECT_EQ(governor.Charge(AccessStats{}, 0, 0.0), Completion::kCancelled);
  governor.Arm(GovernorLimits{});  // arming clears the stale cancel
  EXPECT_EQ(governor.Charge(AccessStats{}, 0, 0.0), Completion::kExact);
}

TEST(QueryGovernorTest, BudgetKindsTripIndependently) {
  QueryGovernor governor;
  GovernorLimits limits;
  limits.sorted_access_budget = 10;
  limits.random_access_budget = 20;
  limits.total_access_budget = 25;
  limits.pool_byte_budget = 1000;
  governor.Arm(limits);

  AccessStats stats;
  EXPECT_EQ(governor.Charge(stats, 0, 0.0), Completion::kExact);
  // Direct accesses (BPA2) count toward the sorted budget.
  stats.sorted_accesses = 4;
  stats.direct_accesses = 6;
  EXPECT_EQ(governor.Charge(stats, 0, 0.0), Completion::kAccessBudget);
  stats = AccessStats{};
  stats.random_accesses = 20;
  EXPECT_EQ(governor.Charge(stats, 0, 0.0), Completion::kAccessBudget);
  // Total budget: every kind below its own cap, the sum over it.
  stats = AccessStats{};
  stats.sorted_accesses = 5;
  stats.direct_accesses = 4;
  stats.random_accesses = 19;
  EXPECT_EQ(governor.Charge(stats, 0, 0.0), Completion::kAccessBudget);
  stats = AccessStats{};
  EXPECT_EQ(governor.Charge(stats, 999, 0.0), Completion::kExact);
  EXPECT_EQ(governor.Charge(stats, 1000, 0.0), Completion::kMemoryBudget);
}

TEST(QueryGovernorTest, VirtualLatencyCountsAgainstTheDeadline) {
  QueryGovernor governor;
  GovernorLimits limits;
  limits.deadline_ms = 1e6;  // far away on the wall clock
  governor.Arm(limits);
  EXPECT_EQ(governor.Charge(AccessStats{}, 0, 0.0), Completion::kExact);
  EXPECT_EQ(governor.Charge(AccessStats{}, 0, 2e6), Completion::kDeadline);
}

TEST(GovernanceTest, AccessBudgetTripsDeterministicallyAcrossContexts) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  for (AlgorithmKind kind : GovernedKinds()) {
    SCOPED_TRACE(ToString(kind));
    AlgorithmOptions options;
    options.score_floor = DeriveScoreFloor(db);
    options.governor.total_access_budget = 150;
    ExecutionContext context;
    const TopKResult first = MustRun(kind, options, db, query, &context);
    EXPECT_EQ(first.completion, Completion::kAccessBudget);
    EXPECT_LE(first.items.size(), query.k);
    CheckAnytimeSoundness(kind, db, scorer, first);

    // Byte-identical on a warmed context and on a fresh one.
    const TopKResult warmed = MustRun(kind, options, db, query, &context);
    ExpectSameOutcome(first, warmed);
    ExecutionContext fresh;
    const TopKResult refreshed = MustRun(kind, options, db, query, &fresh);
    ExpectSameOutcome(first, refreshed);
  }
}

TEST(GovernanceTest, GenerousLimitsLeaveTheAnswerExactAndUntouched) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  for (AlgorithmKind kind : GovernedKinds()) {
    SCOPED_TRACE(ToString(kind));
    AlgorithmOptions plain;
    plain.score_floor = DeriveScoreFloor(db);
    AlgorithmOptions governed = plain;
    governed.governor.total_access_budget = uint64_t{1} << 40;
    governed.governor.deadline_ms = 1e9;
    governed.governor.pool_byte_budget = size_t{1} << 40;
    ExecutionContext context;
    const TopKResult baseline = MustRun(kind, plain, db, query, &context);
    const TopKResult governed_result =
        MustRun(kind, governed, db, query, &context);
    EXPECT_EQ(governed_result.completion, Completion::kExact);
    EXPECT_EQ(governed_result.theta, 1.0);
    ExpectSameOutcome(baseline, governed_result);
  }
}

TEST(GovernanceTest, DeadlineTripsViaInjectedLatency) {
  // Deterministic deadline: every access suffers a 10ms virtual spike while
  // the deadline is 5ms, so the first round boundary trips without depending
  // on the wall clock.
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  for (AlgorithmKind kind : GovernedKinds()) {
    SCOPED_TRACE(ToString(kind));
    AlgorithmOptions options;
    options.score_floor = DeriveScoreFloor(db);
    options.governor.deadline_ms = 5.0;
    options.fault_plan.spike_rate = 1.0;
    options.fault_plan.spike_ms = 10.0;
    ExecutionContext context;
    const TopKResult result = MustRun(kind, options, db, query, &context);
    EXPECT_EQ(result.completion, Completion::kDeadline);
    EXPECT_GT(result.stats.TotalAccesses(), 0u);
    CheckAnytimeSoundness(kind, db, scorer, result);
    const TopKResult rerun = MustRun(kind, options, db, query, &context);
    ExpectSameOutcome(result, rerun);
  }
}

TEST(GovernanceTest, PoolByteBudgetTripsThePoolAlgorithms) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  for (AlgorithmKind kind :
       {AlgorithmKind::kNra, AlgorithmKind::kCa, AlgorithmKind::kTput}) {
    SCOPED_TRACE(ToString(kind));
    AlgorithmOptions options;
    options.score_floor = DeriveScoreFloor(db);
    options.governor.pool_byte_budget = 1;
    ExecutionContext context;
    const TopKResult result = MustRun(kind, options, db, query, &context);
    EXPECT_EQ(result.completion, Completion::kMemoryBudget);
    CheckAnytimeSoundness(kind, db, scorer, result);
  }
}

TEST(GovernanceTest, StrictModeConvertsDegradationIntoAnError) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  options.governor.total_access_budget = 100;
  options.governor.strict = true;
  for (AlgorithmKind kind : GovernedKinds()) {
    SCOPED_TRACE(ToString(kind));
    ExecutionContext context;
    auto algorithm = MakeAlgorithm(kind, options);
    auto result = algorithm->Execute(db, query, &context);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsResourceExhausted())
        << result.status().ToString();
    EXPECT_NE(result.status().ToString().find("StrictMode"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(GovernanceTest, StrictModeAcceptsExactCompletions) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  options.governor.total_access_budget = uint64_t{1} << 40;
  options.governor.strict = true;
  for (AlgorithmKind kind : GovernedKinds()) {
    SCOPED_TRACE(ToString(kind));
    ExecutionContext context;
    const TopKResult result = MustRun(kind, options, db, query, &context);
    EXPECT_EQ(result.completion, Completion::kExact);
  }
}

TEST(GovernanceTest, CooperativeCancellationStopsARunningQuery) {
  // A second thread requests cancellation while a deep NRA scan runs. The
  // cancel flag is sticky until the next Arm, so even extreme scheduling
  // cannot lose the request — the run either observes it at a round boundary
  // (anytime result tagged kCancelled) or the cancel landed before arming
  // and the run stays exact. Both are legal; a cancelled run must carry
  // sound bounds.
  const Database db = MakeUniformDatabase(/*n=*/200000, /*m=*/4, /*seed=*/7);
  SumScorer scorer;
  const TopKQuery query{/*k=*/100, &scorer};
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  ExecutionContext context;
  auto algorithm = MakeAlgorithm(AlgorithmKind::kNra, options);
  std::thread canceller([&context] { context.governor().RequestCancel(); });
  auto result = algorithm->Execute(db, query, &context);
  canceller.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TopKResult& run = result.ValueOrDie();
  if (run.completion != Completion::kExact) {
    EXPECT_EQ(run.completion, Completion::kCancelled);
    CheckAnytimeSoundness(AlgorithmKind::kNra, db, scorer, run);
  }
}

TEST(FaultInjectionTest, TransientFaultsAndSpikesNeverChangeTheAnswer) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  for (AlgorithmKind kind : GovernedKinds()) {
    SCOPED_TRACE(ToString(kind));
    AlgorithmOptions plain;
    plain.score_floor = DeriveScoreFloor(db);
    AlgorithmOptions shaken = plain;
    shaken.fault_plan.seed = 99;
    shaken.fault_plan.transient_rate = 0.5;
    shaken.fault_plan.max_retries = 4;
    shaken.fault_plan.spike_rate = 0.25;
    shaken.fault_plan.spike_ms = 0.5;
    ExecutionContext context;
    const TopKResult baseline = MustRun(kind, plain, db, query, &context);
    const TopKResult faulty = MustRun(kind, shaken, db, query, &context);
    EXPECT_EQ(faulty.completion, Completion::kExact);
    EXPECT_GT(faulty.fault_retries, 0u);
    EXPECT_EQ(faulty.dead_lists, 0u);
    EXPECT_FALSE(faulty.failed_over);
    // Same items, same scores, same access counts — faults were absorbed.
    EXPECT_EQ(baseline.Items(), faulty.Items());
    EXPECT_EQ(baseline.Scores(), faulty.Scores());
    EXPECT_TRUE(baseline.stats == faulty.stats);
  }
}

TEST(FaultInjectionTest, TargetedKillDegradesOrFailsOverDeterministically) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  AlgorithmOptions oracle_options;
  ExecutionContext oracle_context;
  const TopKResult oracle = MustRun(AlgorithmKind::kNaive, oracle_options, db,
                                    query, &oracle_context);
  for (AlgorithmKind kind : GovernedKinds()) {
    SCOPED_TRACE(ToString(kind));
    AlgorithmOptions options;
    options.score_floor = DeriveScoreFloor(db);
    options.fault_plan.kill_list = 1;
    options.fault_plan.kill_after_accesses = 40;
    ExecutionContext context;
    const TopKResult first = MustRun(kind, options, db, query, &context);
    EXPECT_EQ(first.dead_lists, 1u);
    // Random-access algorithms cannot serve the query without list 1 and
    // must have failed over to NRA over the survivors.
    if (kind != AlgorithmKind::kNra && kind != AlgorithmKind::kCa) {
      EXPECT_TRUE(first.failed_over);
    }
    if (first.completion == Completion::kExact) {
      // Exactness despite the death is legal when the stop rule certified
      // the answer over the survivors — then it must BE the exact top-k.
      ASSERT_EQ(first.items.size(), query.k);
      for (size_t i = 0; i < query.k; ++i) {
        EXPECT_EQ(first.items[i].item, oracle.items[i].item);
        EXPECT_NEAR(first.items[i].score, oracle.items[i].score, 1e-9);
      }
    } else {
      EXPECT_EQ(first.completion, Completion::kListFailure);
      CheckAnytimeSoundness(kind, db, scorer, first);
    }
    const TopKResult warmed = MustRun(kind, options, db, query, &context);
    ExpectSameOutcome(first, warmed);
    ExecutionContext fresh;
    const TopKResult refreshed = MustRun(kind, options, db, query, &fresh);
    ExpectSameOutcome(first, refreshed);
  }
}

TEST(FaultInjectionTest, StrictModeRejectsAListFailure) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  options.governor.strict = true;
  options.governor.total_access_budget = uint64_t{1} << 40;  // arm, never trip
  // Every list dies almost immediately: nothing can stay exact.
  options.fault_plan.death_rate = 1.0;
  options.fault_plan.death_min_accesses = 1;
  options.fault_plan.death_max_accesses = 4;
  ExecutionContext context;
  auto algorithm = MakeAlgorithm(AlgorithmKind::kNra, options);
  auto result = algorithm->Execute(db, query, &context);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("StrictMode"), std::string::npos);
}

TEST(FaultInjectionTest, FaultPlanIsIncompatibleWithAccessAuditing) {
  const Database db = MakeDb();
  SumScorer scorer;
  const TopKQuery query{kK, &scorer};
  AlgorithmOptions options;
  options.audit_accesses = true;
  options.fault_plan.transient_rate = 0.1;
  ExecutionContext context;
  auto algorithm = MakeAlgorithm(AlgorithmKind::kTa, options);
  auto result = algorithm->Execute(db, query, &context);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
  EXPECT_NE(result.status().ToString().find("audit_accesses"),
            std::string::npos);
}

}  // namespace
}  // namespace topk
