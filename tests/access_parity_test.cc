// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Access-pattern parity pins for the candidate-pool family (NRA, CA, TPUT).
//
// The per-mask group index (PR 3) re-implements the stop rules, CA's victim
// selection and TPUT's τ2 filter on group aggregates instead of per-candidate
// sweeps. Those are pure perf transformations: stop positions, sorted/random
// access counts and the deterministic result sequence must be *identical* to
// the pre-optimization sweeps. This file pins the paper-fixture values
// measured on the PR 2 implementation (the plain O(pool) sweeps); any future
// drift in the group machinery shows up here as a changed stop position or
// access count, not as a silent perf-vs-semantics trade.
//
// A second section re-checks the invariant dynamically: on generated
// databases, NRA/CA/TPUT must produce bit-identical access statistics across
// repeated runs (warmed pool reuse included) — the group index has no
// warm-state dependence.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/candidate_bounds.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

struct ParityPin {
  int figure;  // 1 or 2
  size_t k;
  AlgorithmKind kind;
  Position stop_position;
  uint64_t sorted_accesses;
  uint64_t random_accesses;
};

// Measured on the PR 2 implementation (per-candidate stop-rule sweeps),
// Figures 1 and 2, sum scoring. See tools/parity_dump.cc for the harness
// that produced them.
const ParityPin kPins[] = {
    {1, 1, AlgorithmKind::kNra, 8, 24, 0},
    {1, 1, AlgorithmKind::kCa, 8, 24, 2},
    {1, 1, AlgorithmKind::kTput, 11, 33, 0},
    {2, 1, AlgorithmKind::kNra, 8, 24, 0},
    {2, 1, AlgorithmKind::kCa, 8, 24, 3},
    {2, 1, AlgorithmKind::kTput, 11, 33, 0},
    {1, 2, AlgorithmKind::kNra, 8, 24, 0},
    {1, 2, AlgorithmKind::kCa, 8, 24, 2},
    {1, 2, AlgorithmKind::kTput, 11, 33, 0},
    {2, 2, AlgorithmKind::kNra, 14, 42, 0},
    {2, 2, AlgorithmKind::kCa, 12, 36, 5},
    {2, 2, AlgorithmKind::kTput, 11, 33, 0},
    {1, 3, AlgorithmKind::kNra, 8, 24, 0},
    {1, 3, AlgorithmKind::kCa, 8, 24, 2},
    {1, 3, AlgorithmKind::kTput, 11, 33, 0},
    {2, 3, AlgorithmKind::kNra, 14, 42, 0},
    {2, 3, AlgorithmKind::kCa, 12, 36, 5},
    {2, 3, AlgorithmKind::kTput, 11, 33, 0},
    {1, 8, AlgorithmKind::kNra, 14, 42, 0},
    {1, 8, AlgorithmKind::kCa, 12, 36, 4},
    {1, 8, AlgorithmKind::kTput, 8, 24, 4},
    {2, 8, AlgorithmKind::kNra, 14, 42, 0},
    {2, 8, AlgorithmKind::kCa, 12, 36, 4},
    {2, 8, AlgorithmKind::kTput, 8, 24, 6},
    {1, 14, AlgorithmKind::kNra, 14, 42, 0},
    {1, 14, AlgorithmKind::kCa, 14, 42, 4},
    {1, 14, AlgorithmKind::kTput, 14, 42, 0},
    {2, 14, AlgorithmKind::kNra, 14, 42, 0},
    {2, 14, AlgorithmKind::kCa, 14, 42, 5},
    {2, 14, AlgorithmKind::kTput, 14, 42, 0},
};

TEST(AccessParityTest, PaperFixtureStopPositionsAndAccessCountsArePinned) {
  const Database fig1 = MakeFigure1Database();
  const Database fig2 = MakeFigure2Database();
  SumScorer sum;
  for (const ParityPin& pin : kPins) {
    const Database& db = pin.figure == 1 ? fig1 : fig2;
    const auto result = MakeAlgorithm(pin.kind)
                            ->Execute(db, TopKQuery{pin.k, &sum})
                            .ValueOrDie();
    const std::string label = ToString(pin.kind) + " fig" +
                              std::to_string(pin.figure) + " k=" +
                              std::to_string(pin.k);
    EXPECT_EQ(result.stop_position, pin.stop_position) << label;
    EXPECT_EQ(result.stats.sorted_accesses, pin.sorted_accesses) << label;
    EXPECT_EQ(result.stats.random_accesses, pin.random_accesses) << label;
    EXPECT_EQ(result.stats.direct_accesses, 0u) << label;
  }
}

TEST(AccessParityTest, Figure1Top3MatchesThePaper) {
  const Database db = MakeFigure1Database();
  SumScorer sum;
  for (AlgorithmKind kind :
       {AlgorithmKind::kNra, AlgorithmKind::kCa, AlgorithmKind::kTput}) {
    const auto result =
        MakeAlgorithm(kind)->Execute(db, TopKQuery{3, &sum}).ValueOrDie();
    ASSERT_EQ(result.items.size(), 3u) << ToString(kind);
    EXPECT_EQ(result.items[0].item, 7u) << ToString(kind);  // d8 = 71
    EXPECT_DOUBLE_EQ(result.items[0].score, 71.0) << ToString(kind);
    EXPECT_DOUBLE_EQ(result.items[1].score, 70.0) << ToString(kind);
    EXPECT_DOUBLE_EQ(result.items[2].score, 70.0) << ToString(kind);
  }
}

// The access pattern is a pure function of (database, query): repeated runs
// through one warmed ExecutionContext must reproduce identical statistics
// and results — the group index carries no state across queries.
TEST(AccessParityTest, WarmedReRunsReproduceAccessCountsExactly) {
  const Database uniform = MakeUniformDatabase(600, 4, 77);
  const Database gaussian = MakeGaussianDatabase(400, 3, 78);
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(gaussian);
  SumScorer sum;
  for (const Database* db : {&uniform, &gaussian}) {
    for (AlgorithmKind kind :
         {AlgorithmKind::kNra, AlgorithmKind::kCa, AlgorithmKind::kTput}) {
      const auto algorithm = MakeAlgorithm(kind, options);
      ExecutionContext context;
      TopKResult first;
      ASSERT_TRUE(algorithm
                      ->ExecuteInto(*db, TopKQuery{9, &sum}, &context, &first)
                      .ok());
      for (int run = 0; run < 3; ++run) {
        TopKResult again;
        ASSERT_TRUE(
            algorithm->ExecuteInto(*db, TopKQuery{9, &sum}, &context, &again)
                .ok());
        EXPECT_EQ(again.stop_position, first.stop_position) << ToString(kind);
        EXPECT_EQ(again.stats.sorted_accesses, first.stats.sorted_accesses)
            << ToString(kind);
        EXPECT_EQ(again.stats.random_accesses, first.stats.random_accesses)
            << ToString(kind);
        ASSERT_EQ(again.items.size(), first.items.size()) << ToString(kind);
        for (size_t i = 0; i < first.items.size(); ++i) {
          EXPECT_EQ(again.items[i], first.items[i]) << ToString(kind);
        }
      }
    }
  }
}

// Governance parity: a default (off) governor is not merely equivalent — it
// compiles to the very same ungoverned loop, and an *armed* governor whose
// limits never trip only observes at round boundaries. Both must reproduce
// the ungoverned fingerprint exactly: stop position, every access counter,
// and the deterministic result sequence.
TEST(AccessParityTest, GovernanceOffOrUntrippedLeavesTheFingerprintIdentical) {
  const Database db = MakeUniformDatabase(600, 4, 77);
  SumScorer sum;
  const TopKQuery query{9, &sum};

  AlgorithmOptions off;  // default: governor off
  AlgorithmOptions armed = off;
  armed.governor.deadline_ms = 1e9;
  armed.governor.sorted_access_budget = uint64_t{1} << 40;
  armed.governor.random_access_budget = uint64_t{1} << 40;
  armed.governor.total_access_budget = uint64_t{1} << 40;
  armed.governor.pool_byte_budget = size_t{1} << 40;

  for (AlgorithmKind kind :
       {AlgorithmKind::kNra, AlgorithmKind::kCa, AlgorithmKind::kTput,
        AlgorithmKind::kFa, AlgorithmKind::kTa, AlgorithmKind::kBpa,
        AlgorithmKind::kBpa2}) {
    const auto baseline =
        MakeAlgorithm(kind, off)->Execute(db, query).ValueOrDie();
    EXPECT_EQ(baseline.completion, Completion::kExact) << ToString(kind);
    const auto governed =
        MakeAlgorithm(kind, armed)->Execute(db, query).ValueOrDie();
    EXPECT_EQ(governed.completion, Completion::kExact) << ToString(kind);
    EXPECT_EQ(governed.stop_position, baseline.stop_position)
        << ToString(kind);
    EXPECT_TRUE(governed.stats == baseline.stats) << ToString(kind);
    ASSERT_EQ(governed.items.size(), baseline.items.size()) << ToString(kind);
    for (size_t i = 0; i < baseline.items.size(); ++i) {
      EXPECT_EQ(governed.items[i], baseline.items[i]) << ToString(kind);
    }
  }
}

}  // namespace
}  // namespace topk
