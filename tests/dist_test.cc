// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Tests of the distributed layer: ListOwner serving semantics, transport
// fault determinism, and the Coordinator's two acceptance bars —
//
//  1. parity: fault-free distributed BPA/TPUT return byte-identical
//     items/scores (same tie order) and identical logical access counts to
//     the single-node engine;
//  2. robustness: under injected owner death and delays every query still
//     returns, within its governor deadline, a θ-certified answer (θ >= 1,
//     θ == 1 iff certified exact), deterministically replayable from the
//     fault seed.

#include "dist/coordinator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/algorithms.h"
#include "dist/fault_injecting_transport.h"
#include "dist/in_process_transport.h"
#include "dist/list_owner.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

// ---- ListOwner ----

TEST(ListOwnerTest, HelloAdvertisesCatalog) {
  const Database db = MakeUniformDatabase(100, 3, 7);
  const ListOwner owner(&db, {0, 2});
  Request request;
  request.type = MessageType::kHello;
  Reply reply;
  ASSERT_TRUE(owner.Serve(request, &reply).ok());
  ASSERT_EQ(reply.catalog.size(), 2u);
  EXPECT_EQ(reply.catalog[0].list_index, 0u);
  EXPECT_EQ(reply.catalog[1].list_index, 2u);
  EXPECT_EQ(reply.catalog[0].num_items, 100u);
  EXPECT_DOUBLE_EQ(reply.catalog[0].max_score, db.list(0).MaxScore());
  EXPECT_DOUBLE_EQ(reply.catalog[1].min_score, db.list(2).MinScore());
}

TEST(ListOwnerTest, WindowServesConsecutiveRows) {
  const Database db = MakeUniformDatabase(50, 2, 3);
  const ListOwner owner(&db, {1});
  Request request;
  request.type = MessageType::kSortedWindow;
  request.list_index = 1;
  request.start = 11;
  request.max_entries = 8;
  Reply reply;
  ASSERT_TRUE(owner.Serve(request, &reply).ok());
  ASSERT_EQ(reply.entries.size(), 8u);
  for (size_t off = 0; off < reply.entries.size(); ++off) {
    const ListEntry expected = db.list(1).EntryAt(11 + off);
    EXPECT_EQ(reply.entries[off].item, expected.item);
    EXPECT_DOUBLE_EQ(reply.entries[off].score, expected.score);
  }
}

TEST(ListOwnerTest, WindowClampsAtListEnd) {
  const Database db = MakeUniformDatabase(20, 2, 3);
  const ListOwner owner(&db, {0});
  Request request;
  request.type = MessageType::kSortedWindow;
  request.list_index = 0;
  request.start = 18;
  request.max_entries = 64;
  Reply reply;
  ASSERT_TRUE(owner.Serve(request, &reply).ok());
  EXPECT_EQ(reply.entries.size(), 3u);  // positions 18, 19, 20
}

TEST(ListOwnerTest, DrainIncludesFirstBelowThresholdEntry) {
  const Database db = MakeUniformDatabase(200, 2, 11);
  const ListOwner owner(&db, {0});
  const Score threshold = db.list(0).EntryAt(50).score;
  Request request;
  request.type = MessageType::kDrain;
  request.list_index = 0;
  request.start = 1;
  request.max_entries = 200;
  request.threshold = threshold;
  Reply reply;
  ASSERT_TRUE(owner.Serve(request, &reply).ok());
  ASSERT_TRUE(reply.drained_to_threshold);
  // Every entry but the last is >= threshold; the last is the first one
  // strictly below it (the coordinator's cursor must end below the
  // threshold, exactly like a local sorted scan's).
  ASSERT_GE(reply.entries.size(), 1u);
  for (size_t off = 0; off + 1 < reply.entries.size(); ++off) {
    EXPECT_GE(reply.entries[off].score, threshold);
  }
  EXPECT_LT(reply.entries.back().score, threshold);
}

TEST(ListOwnerTest, LookupAnswersInRequestOrder) {
  const Database db = MakeUniformDatabase(60, 3, 5);
  const ListOwner owner(&db, {2});
  Request request;
  request.type = MessageType::kRandomLookup;
  request.list_index = 2;
  request.items = {7, 3, 42};
  Reply reply;
  ASSERT_TRUE(owner.Serve(request, &reply).ok());
  ASSERT_EQ(reply.lookups.size(), 3u);
  for (size_t idx = 0; idx < request.items.size(); ++idx) {
    const ItemLookup expected = db.list(2).Lookup(request.items[idx]);
    EXPECT_DOUBLE_EQ(reply.lookups[idx].score, expected.score);
    EXPECT_EQ(reply.lookups[idx].position, expected.position);
  }
}

TEST(ListOwnerTest, RejectsForeignListAndBadPositions) {
  const Database db = MakeUniformDatabase(30, 3, 5);
  const ListOwner owner(&db, {0});
  Request request;
  request.type = MessageType::kSortedWindow;
  request.list_index = 1;  // not owned
  request.start = 1;
  request.max_entries = 4;
  Reply reply;
  EXPECT_TRUE(owner.Serve(request, &reply).IsInvalid());
  request.list_index = 0;
  request.start = 31;  // outside [1, n]
  EXPECT_TRUE(owner.Serve(request, &reply).IsOutOfRange());
}

// ---- FaultInjectingTransport ----

TEST(FaultTransportTest, SameSeedSameSchedule) {
  const Database db = MakeUniformDatabase(100, 3, 17);
  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.3;
  plan.delay_rate = 0.3;
  plan.duplicate_rate = 0.2;

  const auto run = [&](std::vector<int>* outcomes) {
    FaultInjectingTransport transport(&inner, plan);
    Request request;
    request.type = MessageType::kHello;
    Reply reply;
    CallResult call;
    for (int t = 0; t < 50; ++t) {
      const Status status = transport.Call(t % 3, request, &reply, &call);
      outcomes->push_back(status.ok()
                              ? static_cast<int>(call.duplicate_replies) +
                                    (call.latency_ms > 1.0 ? 10 : 0)
                              : -1);
    }
  };
  std::vector<int> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
}

TEST(FaultTransportTest, TargetedKillStopsOwnerAfterBudget) {
  const Database db = MakeUniformDatabase(100, 2, 17);
  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.kill_owner = 1;
  plan.kill_after_messages = 3;
  FaultInjectingTransport transport(&inner, plan);
  Request request;
  request.type = MessageType::kHello;
  Reply reply;
  CallResult call;
  // The first three messages are served (the one reaching the death point
  // included); every later call fails.
  for (int t = 0; t < 3; ++t) {
    EXPECT_TRUE(transport.Call(1, request, &reply, &call).ok());
  }
  EXPECT_TRUE(transport.Call(1, request, &reply, &call).IsUnavailable());
  EXPECT_FALSE(transport.OwnerAlive(1));
  EXPECT_TRUE(transport.OwnerAlive(0));
  EXPECT_EQ(transport.fault_stats().dead_owners, 1u);
}

TEST(FaultTransportTest, ValidateRejectsBadPlans) {
  TransportFaultPlan plan;
  plan.drop_rate = 1.5;
  EXPECT_TRUE(plan.Validate("DistBPA", 3).IsInvalid());
  plan = TransportFaultPlan{};
  plan.kill_owner = 3;
  EXPECT_TRUE(plan.Validate("DistBPA", 3).IsInvalid());
  plan = TransportFaultPlan{};
  plan.death_min_messages = 0;
  EXPECT_TRUE(plan.Validate("DistBPA", 3).IsInvalid());
  plan = TransportFaultPlan{};
  plan.kill_owners = {0, 5};  // second entry out of range
  EXPECT_TRUE(plan.Validate("DistBPA", 3).IsInvalid());
  plan = TransportFaultPlan{};
  plan.flap_revive_calls = 2;  // flapping with no death source never flaps
  EXPECT_TRUE(plan.Validate("DistBPA", 3).IsInvalid());
  plan = TransportFaultPlan{};
  plan.flap_revive_calls = 2;
  plan.kill_owner = 1;
  EXPECT_TRUE(plan.Validate("DistBPA", 3).ok());
}

// ---- Coordinator: fault-free parity ----

struct ParityCase {
  size_t n;
  size_t m;
  size_t k;
  uint64_t seed;
};

class DistParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DistParityTest, BpaMatchesSingleNodeExactly) {
  const ParityCase param = GetParam();
  const Database db = MakeUniformDatabase(param.n, param.m, param.seed);
  SumScorer sum;
  const TopKQuery query{param.k, &sum};

  // Single-node reference: the memoized variant (each item resolved once) —
  // the same discipline the coordinator's wire protocol implements. Items,
  // scores and stop depth are identical to the non-memoized run; access
  // counts are the memoized ones.
  AlgorithmOptions options;
  options.memoize_seen_items = true;
  const TopKResult reference =
      MakeAlgorithm(AlgorithmKind::kBpa, options)->Execute(db, query)
          .ValueOrDie();

  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult dist = coordinator.ExecuteBpa(query).ValueOrDie();

  ASSERT_EQ(dist.items.size(), reference.items.size());
  for (size_t i = 0; i < reference.items.size(); ++i) {
    EXPECT_EQ(dist.items[i].item, reference.items[i].item) << "rank " << i;
    EXPECT_DOUBLE_EQ(dist.items[i].score, reference.items[i].score);
  }
  EXPECT_EQ(dist.stop_position, reference.stop_position);
  EXPECT_EQ(dist.min_best_position, reference.min_best_position);
  EXPECT_EQ(dist.stats.sorted_accesses, reference.stats.sorted_accesses);
  EXPECT_EQ(dist.stats.random_accesses, reference.stats.random_accesses);
  EXPECT_EQ(dist.completion, Completion::kExact);
  EXPECT_DOUBLE_EQ(dist.theta, 1.0);
  EXPECT_FALSE(dist.failed_over);
}

TEST_P(DistParityTest, TputMatchesSingleNodeExactly) {
  const ParityCase param = GetParam();
  const Database db = MakeUniformDatabase(param.n, param.m, param.seed);
  SumScorer sum;
  const TopKQuery query{param.k, &sum};

  const TopKResult reference =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, query).ValueOrDie();

  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult dist = coordinator.ExecuteTput(query).ValueOrDie();

  ASSERT_EQ(dist.items.size(), reference.items.size());
  for (size_t i = 0; i < reference.items.size(); ++i) {
    EXPECT_EQ(dist.items[i].item, reference.items[i].item) << "rank " << i;
    EXPECT_DOUBLE_EQ(dist.items[i].score, reference.items[i].score);
  }
  EXPECT_EQ(dist.stop_position, reference.stop_position);
  EXPECT_EQ(dist.stats.sorted_accesses, reference.stats.sorted_accesses);
  EXPECT_EQ(dist.stats.random_accesses, reference.stats.random_accesses);
  EXPECT_EQ(dist.completion, Completion::kExact);
  EXPECT_DOUBLE_EQ(dist.theta, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistParityTest,
    ::testing::Values(ParityCase{60, 2, 1, 1}, ParityCase{200, 3, 5, 2},
                      ParityCase{500, 4, 10, 3}, ParityCase{500, 4, 10, 4},
                      ParityCase{1000, 5, 20, 5}, ParityCase{300, 6, 50, 6},
                      ParityCase{120, 3, 120, 7}));

TEST(DistCoordinatorTest, WindowSizeDoesNotChangeAnswers) {
  const Database db = MakeUniformDatabase(400, 4, 9);
  SumScorer sum;
  const TopKQuery query{8, &sum};
  InProcessTransport transport = InProcessTransport::PerListOwners(db);

  DistOptions wide;
  wide.window_rows = 256;
  Coordinator a(&transport, wide);
  ASSERT_TRUE(a.Connect().ok());
  DistOptions narrow;
  narrow.window_rows = 3;
  Coordinator b(&transport, narrow);
  ASSERT_TRUE(b.Connect().ok());

  const TopKResult wide_bpa = a.ExecuteBpa(query).ValueOrDie();
  const TopKResult narrow_bpa = b.ExecuteBpa(query).ValueOrDie();
  ASSERT_EQ(wide_bpa.items.size(), narrow_bpa.items.size());
  for (size_t i = 0; i < wide_bpa.items.size(); ++i) {
    EXPECT_EQ(wide_bpa.items[i].item, narrow_bpa.items[i].item);
    EXPECT_DOUBLE_EQ(wide_bpa.items[i].score, narrow_bpa.items[i].score);
  }
  EXPECT_EQ(wide_bpa.stats.sorted_accesses, narrow_bpa.stats.sorted_accesses);

  const TopKResult wide_tput = a.ExecuteTput(query).ValueOrDie();
  const TopKResult narrow_tput = b.ExecuteTput(query).ValueOrDie();
  ASSERT_EQ(wide_tput.items.size(), narrow_tput.items.size());
  for (size_t i = 0; i < wide_tput.items.size(); ++i) {
    EXPECT_EQ(wide_tput.items[i].item, narrow_tput.items[i].item);
    EXPECT_DOUBLE_EQ(wide_tput.items[i].score, narrow_tput.items[i].score);
  }
  // Narrower windows cost more messages for the same logical accesses.
  EXPECT_EQ(wide_tput.stats.sorted_accesses,
            narrow_tput.stats.sorted_accesses);
}

TEST(DistCoordinatorTest, MultiListOwnersMatchPerListOwners) {
  const Database db = MakeUniformDatabase(300, 4, 13);
  SumScorer sum;
  const TopKQuery query{6, &sum};

  InProcessTransport per_list = InProcessTransport::PerListOwners(db);
  Coordinator a(&per_list, DistOptions{});
  ASSERT_TRUE(a.Connect().ok());

  InProcessTransport packed;
  packed.AddOwner(ListOwner(&db, {0, 1}));
  packed.AddOwner(ListOwner(&db, {2, 3}));
  Coordinator b(&packed, DistOptions{});
  ASSERT_TRUE(b.Connect().ok());
  EXPECT_EQ(b.num_lists(), 4u);

  const TopKResult fine = a.ExecuteBpa(query).ValueOrDie();
  const TopKResult coarse = b.ExecuteBpa(query).ValueOrDie();
  ASSERT_EQ(fine.items.size(), coarse.items.size());
  for (size_t i = 0; i < fine.items.size(); ++i) {
    EXPECT_EQ(fine.items[i].item, coarse.items[i].item);
    EXPECT_DOUBLE_EQ(fine.items[i].score, coarse.items[i].score);
  }
}

TEST(DistCoordinatorTest, WorksOnPaperFigure1) {
  const Database db = MakeFigure1Database();
  SumScorer sum;
  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult bpa = coordinator.ExecuteBpa(TopKQuery{3, &sum})
                             .ValueOrDie();
  EXPECT_EQ(bpa.items[0].item, 7u);  // d8
  EXPECT_DOUBLE_EQ(bpa.items[0].score, 71.0);
  const TopKResult tput = coordinator.ExecuteTput(TopKQuery{3, &sum})
                              .ValueOrDie();
  EXPECT_EQ(tput.items[0].item, 7u);
  EXPECT_DOUBLE_EQ(tput.items[0].score, 71.0);
}

TEST(DistCoordinatorTest, BpaSupportsGenericScorers) {
  const Database db = MakeUniformDatabase(150, 3, 21);
  MinScorer min;
  const TopKQuery query{5, &min};
  AlgorithmOptions options;
  options.memoize_seen_items = true;
  const TopKResult reference =
      MakeAlgorithm(AlgorithmKind::kBpa, options)->Execute(db, query)
          .ValueOrDie();
  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult dist = coordinator.ExecuteBpa(query).ValueOrDie();
  ASSERT_EQ(dist.items.size(), reference.items.size());
  for (size_t i = 0; i < reference.items.size(); ++i) {
    EXPECT_EQ(dist.items[i].item, reference.items[i].item);
    EXPECT_DOUBLE_EQ(dist.items[i].score, reference.items[i].score);
  }
  EXPECT_EQ(dist.stop_position, reference.stop_position);
}

TEST(DistCoordinatorTest, TputRejectsNonSumScorer) {
  const Database db = MakeUniformDatabase(40, 3, 2);
  MinScorer min;
  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  EXPECT_TRUE(coordinator.ExecuteTput(TopKQuery{3, &min})
                  .status()
                  .IsNotImplemented());
}

TEST(DistCoordinatorTest, CountsMessagesAndBytes) {
  const Database db = MakeUniformDatabase(300, 3, 31);
  SumScorer sum;
  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult result =
      coordinator.ExecuteBpa(TopKQuery{5, &sum}).ValueOrDie();
  const DistStats& stats = coordinator.stats();
  EXPECT_GT(stats.messages_sent, 0u);
  EXPECT_EQ(stats.messages_sent, stats.replies_received);
  EXPECT_GE(stats.bytes_sent, stats.messages_sent * kWireHeaderBytes);
  EXPECT_GT(stats.bytes_received, stats.bytes_sent);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.owner_deaths, 0u);
  // Batching: far fewer messages than logical accesses.
  EXPECT_LT(stats.messages_sent, result.stats.TotalAccesses());
  EXPECT_GT(stats.virtual_ms, 0.0);
}

// ---- Coordinator: faults ----

TEST(DistFaultTest, DropsAreRetriedTransparently) {
  const Database db = MakeUniformDatabase(400, 3, 5);
  SumScorer sum;
  const TopKQuery query{5, &sum};
  const TopKResult reference =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, query).ValueOrDie();

  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 0.20;  // well within a 4-attempt budget
  FaultInjectingTransport transport(&inner, plan);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult dist = coordinator.ExecuteTput(query).ValueOrDie();

  // Recovery is invisible to the answer: same items, same scores.
  ASSERT_EQ(dist.items.size(), reference.items.size());
  for (size_t i = 0; i < reference.items.size(); ++i) {
    EXPECT_EQ(dist.items[i].item, reference.items[i].item);
    EXPECT_DOUBLE_EQ(dist.items[i].score, reference.items[i].score);
  }
  EXPECT_EQ(dist.completion, Completion::kExact);
  // A dropped primary is rescued by its hedge when one fires in time, by a
  // backed-off retry otherwise; either way the loss shows in the wire
  // ledger as a sent message with no reply.
  EXPECT_GT(transport.fault_stats().dropped_messages, 0u);
  const DistStats& stats = coordinator.stats();
  EXPECT_GT(stats.retries + stats.hedges, 0u);
  EXPECT_GT(stats.messages_sent, stats.replies_received);
  EXPECT_EQ(dist.fault_retries, stats.retries);
}

TEST(DistFaultTest, SameSeedSameRun) {
  const Database db = MakeUniformDatabase(400, 4, 5);
  SumScorer sum;
  const TopKQuery query{8, &sum};
  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.seed = 99;
  plan.drop_rate = 0.08;
  plan.delay_rate = 0.2;
  plan.delay_ms = 2.0;
  plan.duplicate_rate = 0.1;

  const auto run = [&](TopKResult* result, DistStats* stats) {
    FaultInjectingTransport transport(&inner, plan);
    Coordinator coordinator(&transport, DistOptions{});
    ASSERT_TRUE(coordinator.Connect().ok());
    *result = coordinator.ExecuteBpa(query).ValueOrDie();
    *stats = coordinator.stats();
  };
  TopKResult first_result, second_result;
  DistStats first_stats, second_stats;
  run(&first_result, &first_stats);
  run(&second_result, &second_stats);

  ASSERT_EQ(first_result.items.size(), second_result.items.size());
  for (size_t i = 0; i < first_result.items.size(); ++i) {
    EXPECT_EQ(first_result.items[i].item, second_result.items[i].item);
    EXPECT_DOUBLE_EQ(first_result.items[i].score,
                     second_result.items[i].score);
  }
  EXPECT_EQ(first_stats.messages_sent, second_stats.messages_sent);
  EXPECT_EQ(first_stats.retries, second_stats.retries);
  EXPECT_EQ(first_stats.hedges, second_stats.hedges);
  EXPECT_EQ(first_stats.duplicate_replies, second_stats.duplicate_replies);
  EXPECT_DOUBLE_EQ(first_stats.virtual_ms, second_stats.virtual_ms);
}

TEST(DistFaultTest, DelaysTriggerHedging) {
  const Database db = MakeUniformDatabase(600, 4, 5);
  SumScorer sum;
  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.seed = 3;
  plan.delay_rate = 0.25;
  plan.delay_ms = 50.0;  // way past any p99-derived hedge timeout
  FaultInjectingTransport transport(&inner, plan);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult result =
      coordinator.ExecuteTput(TopKQuery{10, &sum}).ValueOrDie();
  EXPECT_EQ(result.completion, Completion::kExact);
  EXPECT_GT(coordinator.stats().hedges, 0u);
  EXPECT_GT(coordinator.stats().hedge_wins, 0u);
}

TEST(DistFaultTest, OwnerDeathDegradesToCertifiedAnswer) {
  const Database db = MakeUniformDatabase(500, 4, 23);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  const TopKResult truth =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();

  for (const bool tput : {false, true}) {
    InProcessTransport inner = InProcessTransport::PerListOwners(db);
    TransportFaultPlan plan;
    plan.kill_owner = 2;
    plan.kill_after_messages = 6;
    FaultInjectingTransport transport(&inner, plan);
    Coordinator coordinator(&transport, DistOptions{});
    ASSERT_TRUE(coordinator.Connect().ok());
    // Connect's handshake consumed some of owner 2's message budget; the
    // query's early windows exhaust the rest.
    const TopKResult result =
        (tput ? coordinator.ExecuteTput(query) : coordinator.ExecuteBpa(query))
            .ValueOrDie();

    EXPECT_TRUE(result.failed_over);
    EXPECT_EQ(result.completion, Completion::kListFailure);
    EXPECT_GE(result.dead_lists, 1u);
    EXPECT_GE(coordinator.stats().owner_deaths, 1u);
    EXPECT_GE(result.theta, 1.0);
    // θ-certification soundness against ground truth: every returned score
    // is a lower bound on the item's true score, and no unreturned item's
    // true score exceeds the certified upper bound.
    for (const ResultItem& item : result.items) {
      EXPECT_LE(item.score, truth.items[0].score + 1e-9);
      EXPECT_GE(result.unreturned_upper_bound + 1e-12,
                result.kth_lower_bound);
    }
    std::vector<bool> returned(db.num_items(), false);
    for (const ResultItem& item : result.items) {
      returned[item.item] = true;
    }
    std::vector<Score> row(db.num_lists());
    for (ItemId item = 0; item < db.num_items(); ++item) {
      for (size_t j = 0; j < db.num_lists(); ++j) {
        row[j] = db.list(j).Lookup(item).score;
      }
      const Score true_score = sum.Combine(row.data(), row.size());
      if (!returned[item]) {
        EXPECT_LE(true_score, result.unreturned_upper_bound + 1e-9)
            << "item " << item;
      }
    }
  }
}

TEST(DistFaultTest, DegradedRunRespectsGovernorDeadline) {
  const Database db = MakeUniformDatabase(2000, 4, 29);
  SumScorer sum;
  const TopKQuery query{10, &sum};

  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.seed = 11;
  plan.kill_owner = 1;
  plan.kill_after_messages = 4;
  plan.delay_rate = 0.5;
  plan.delay_ms = 1.0;
  FaultInjectingTransport transport(&inner, plan);
  DistOptions options;
  options.governor.deadline_ms = 30.0;
  Coordinator coordinator(&transport, options);
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult result = coordinator.ExecuteBpa(query).ValueOrDie();

  // The query returns despite death + delays, under the deadline (virtual
  // time is charged at round boundaries, so allow one round of overshoot),
  // with a certified answer.
  EXPECT_NE(result.completion, Completion::kExact);
  EXPECT_GE(result.theta, 1.0);
  EXPECT_LT(coordinator.stats().virtual_ms, 2.0 * 30.0);
  EXPECT_TRUE(std::isfinite(result.kth_lower_bound) ||
              result.items.empty());
}

TEST(DistFaultTest, AllOwnersDeadStillReturnsCertified) {
  const Database db = MakeUniformDatabase(200, 3, 31);
  SumScorer sum;
  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.seed = 5;
  plan.owner_death_rate = 1.0;  // every owner dies within the death window
  plan.death_min_messages = 2;
  plan.death_max_messages = 8;
  FaultInjectingTransport transport(&inner, plan);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  const TopKResult result =
      coordinator.ExecuteTput(TopKQuery{5, &sum}).ValueOrDie();
  EXPECT_EQ(result.completion, Completion::kListFailure);
  EXPECT_GE(result.theta, 1.0);
  EXPECT_GE(result.dead_lists, 1u);
}

// ---- Replica groups: parity, failover ladder, health tracking ----

// Shared check: `dist` is byte-identical to the single-node reference —
// same items, same scores (same tie order), same stop depth, same logical
// access counts — and certified exact.
void ExpectExactParity(const TopKResult& dist, const TopKResult& reference) {
  ASSERT_EQ(dist.items.size(), reference.items.size());
  for (size_t i = 0; i < reference.items.size(); ++i) {
    EXPECT_EQ(dist.items[i].item, reference.items[i].item) << "rank " << i;
    EXPECT_DOUBLE_EQ(dist.items[i].score, reference.items[i].score);
  }
  EXPECT_EQ(dist.stop_position, reference.stop_position);
  EXPECT_EQ(dist.stats.sorted_accesses, reference.stats.sorted_accesses);
  EXPECT_EQ(dist.stats.random_accesses, reference.stats.random_accesses);
  EXPECT_EQ(dist.completion, Completion::kExact);
  EXPECT_DOUBLE_EQ(dist.theta, 1.0);
}

TEST(DistReplicaTest, FaultFreeR2MatchesSingleNodeExactly) {
  const Database db = MakeUniformDatabase(500, 4, 3);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  AlgorithmOptions memoized;
  memoized.memoize_seen_items = true;
  const TopKResult bpa_reference =
      MakeAlgorithm(AlgorithmKind::kBpa, memoized)->Execute(db, query)
          .ValueOrDie();
  const TopKResult tput_reference =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, query).ValueOrDie();

  InProcessTransport transport = InProcessTransport::PerListOwners(db, 2);
  DistOptions options;
  options.replication_factor = 2;
  Coordinator coordinator(&transport, options);
  ASSERT_TRUE(coordinator.Connect().ok());

  ExpectExactParity(coordinator.ExecuteBpa(query).ValueOrDie(),
                    bpa_reference);
  ExpectExactParity(coordinator.ExecuteTput(query).ValueOrDie(),
                    tput_reference);
  // A fault-free run never leaves replica 0: no failovers, no breaker
  // activity, no probes. The health machinery is pure bookkeeping.
  const DistStats& stats = coordinator.stats();
  EXPECT_EQ(stats.replica_failovers, 0u);
  EXPECT_EQ(stats.breaker_opens, 0u);
  EXPECT_EQ(stats.probes_sent, 0u);
  EXPECT_EQ(stats.groups_lost, 0u);
}

TEST(DistReplicaTest, FaultFreeR2KeepsTheUnreplicatedWireTimeline) {
  // Sticky primaries pin every fault-free RPC to replica 0, whose owners sit
  // at the same indices as the unreplicated topology — so R = 2 costs the
  // same messages, bytes and virtual time as R = 1 until something fails.
  const Database db = MakeUniformDatabase(400, 4, 9);
  SumScorer sum;
  const TopKQuery query{8, &sum};

  InProcessTransport flat = InProcessTransport::PerListOwners(db);
  Coordinator r1(&flat, DistOptions{});
  ASSERT_TRUE(r1.Connect().ok());
  const TopKResult first = r1.ExecuteBpa(query).ValueOrDie();

  InProcessTransport wide = InProcessTransport::PerListOwners(db, 2);
  DistOptions options;
  options.replication_factor = 2;
  Coordinator r2(&wide, options);
  ASSERT_TRUE(r2.Connect().ok());
  const TopKResult second = r2.ExecuteBpa(query).ValueOrDie();

  ExpectExactParity(second, first);
  EXPECT_EQ(r2.stats().messages_sent, r1.stats().messages_sent);
  EXPECT_EQ(r2.stats().bytes_sent, r1.stats().bytes_sent);
  EXPECT_DOUBLE_EQ(r2.stats().virtual_ms, r1.stats().virtual_ms);
}

TEST(DistReplicaTest, MidQueryReplicaKillStaysExact) {
  // The headline robustness bar: kill the primary replica of one list
  // mid-query; the failover ladder (hedge to the sibling, breaker re-pick,
  // cursor handoff at the exact sorted position) keeps the answer
  // byte-identical to the single-node run — not merely certified.
  const Database db = MakeUniformDatabase(500, 4, 23);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  AlgorithmOptions memoized;
  memoized.memoize_seen_items = true;
  const TopKResult bpa_reference =
      MakeAlgorithm(AlgorithmKind::kBpa, memoized)->Execute(db, query)
          .ValueOrDie();
  const TopKResult tput_reference =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, query).ValueOrDie();

  for (const bool tput : {false, true}) {
    InProcessTransport inner = InProcessTransport::PerListOwners(db, 2);
    TransportFaultPlan plan;
    // The handshake consumes the primary's whole budget: every query RPC to
    // list 2 finds it dead, so the breaker trips and the sibling takes over.
    plan.kill_owner = InProcessTransport::OwnerIndex(4, 2, 0);
    plan.kill_after_messages = 1;
    FaultInjectingTransport transport(&inner, plan);
    DistOptions options;
    options.replication_factor = 2;
    options.governor.deadline_ms = 500.0;
    Coordinator coordinator(&transport, options);
    ASSERT_TRUE(coordinator.Connect().ok());
    const TopKResult result =
        (tput ? coordinator.ExecuteTput(query) : coordinator.ExecuteBpa(query))
            .ValueOrDie();

    ExpectExactParity(result, tput ? tput_reference : bpa_reference);
    const DistStats& stats = coordinator.stats();
    // The sibling took over as primary at least once, via the breaker.
    EXPECT_GE(stats.replica_failovers, 1u);
    EXPECT_GE(stats.breaker_opens, 1u);
    EXPECT_EQ(stats.groups_lost, 0u);
    // Hedge wins can absorb every primary failure before the retry budget
    // concludes death, so owner_deaths may legitimately stay 0 here — the
    // ladder's whole point is that the answer never notices either way.
  }
}

TEST(DistReplicaTest, CursorHandoffExactAtEveryKillPoint) {
  // Sweep the death point across the query so the handoff lands in every
  // phase — handshake, early windows, drains, random lookups. The survivor
  // resumes the sorted cursor at the exact position every time.
  const Database db = MakeUniformDatabase(400, 4, 9);
  SumScorer sum;
  const TopKQuery query{8, &sum};
  AlgorithmOptions memoized;
  memoized.memoize_seen_items = true;
  const TopKResult reference =
      MakeAlgorithm(AlgorithmKind::kBpa, memoized)->Execute(db, query)
          .ValueOrDie();

  for (const uint64_t kill_after : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SCOPED_TRACE(kill_after);
    InProcessTransport inner = InProcessTransport::PerListOwners(db, 2);
    TransportFaultPlan plan;
    plan.kill_owner = InProcessTransport::OwnerIndex(4, 1, 0);
    plan.kill_after_messages = kill_after;
    FaultInjectingTransport transport(&inner, plan);
    DistOptions options;
    options.replication_factor = 2;
    options.governor.deadline_ms = 500.0;
    Coordinator coordinator(&transport, options);
    ASSERT_TRUE(coordinator.Connect().ok());
    const TopKResult result = coordinator.ExecuteBpa(query).ValueOrDie();
    ExpectExactParity(result, reference);
    EXPECT_EQ(coordinator.stats().groups_lost, 0u);
  }
}

TEST(DistReplicaTest, BreakerScheduleIsDeterministic) {
  // Breaker opens, half-open probes, failovers and flapping recoveries are
  // all driven by seeded draws and virtual time — two runs of the same plan
  // agree counter-for-counter.
  const Database db = MakeUniformDatabase(600, 4, 29);
  SumScorer sum;
  const TopKQuery query{8, &sum};
  TransportFaultPlan plan;
  plan.seed = 17;
  plan.drop_rate = 0.05;
  plan.delay_rate = 0.2;
  plan.delay_ms = 2.0;
  plan.owner_death_rate = 0.5;
  plan.death_min_messages = 2;
  plan.death_max_messages = 20;
  plan.flap_revive_calls = 3;

  const auto run = [&](TopKResult* result, DistStats* stats) {
    InProcessTransport inner = InProcessTransport::PerListOwners(db, 2);
    FaultInjectingTransport transport(&inner, plan);
    DistOptions options;
    options.replication_factor = 2;
    options.governor.deadline_ms = 400.0;
    Coordinator coordinator(&transport, options);
    ASSERT_TRUE(coordinator.Connect().ok());
    *result = coordinator.ExecuteBpa(query).ValueOrDie();
    *stats = coordinator.stats();
  };
  TopKResult first_result, second_result;
  DistStats first, second;
  run(&first_result, &first);
  run(&second_result, &second);

  ASSERT_EQ(first_result.items.size(), second_result.items.size());
  for (size_t i = 0; i < first_result.items.size(); ++i) {
    EXPECT_EQ(first_result.items[i].item, second_result.items[i].item);
    EXPECT_DOUBLE_EQ(first_result.items[i].score,
                     second_result.items[i].score);
  }
  EXPECT_EQ(first.messages_sent, second.messages_sent);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.hedges, second.hedges);
  EXPECT_EQ(first.replica_failovers, second.replica_failovers);
  EXPECT_EQ(first.breaker_opens, second.breaker_opens);
  EXPECT_EQ(first.probes_sent, second.probes_sent);
  EXPECT_EQ(first.groups_lost, second.groups_lost);
  EXPECT_DOUBLE_EQ(first.virtual_ms, second.virtual_ms);
  // The plan actually exercised the health machinery (half of eight owners
  // flap at this seed).
  EXPECT_GT(first.breaker_opens, 0u);
}

TEST(DistReplicaTest, WholeGroupDeathDegradesToCertifiedAnswer) {
  // Correlated failure: both replicas of one list die. No ladder rung can
  // save an extinct group, so the query degrades exactly like PR 8's
  // single-owner death — θ-certified NRA over the survivors.
  const Database db = MakeUniformDatabase(500, 4, 23);
  SumScorer sum;
  const TopKQuery query{10, &sum};

  for (const bool tput : {false, true}) {
    InProcessTransport inner = InProcessTransport::PerListOwners(db, 2);
    TransportFaultPlan plan;
    plan.kill_owners = {InProcessTransport::OwnerIndex(4, 1, 0),
                        InProcessTransport::OwnerIndex(4, 1, 1)};
    plan.kill_after_messages = 4;
    FaultInjectingTransport transport(&inner, plan);
    DistOptions options;
    options.replication_factor = 2;
    Coordinator coordinator(&transport, options);
    ASSERT_TRUE(coordinator.Connect().ok());
    const TopKResult result =
        (tput ? coordinator.ExecuteTput(query) : coordinator.ExecuteBpa(query))
            .ValueOrDie();

    EXPECT_TRUE(result.failed_over);
    EXPECT_EQ(result.completion, Completion::kListFailure);
    EXPECT_GE(result.dead_lists, 1u);
    EXPECT_GE(result.theta, 1.0);
    const DistStats& stats = coordinator.stats();
    EXPECT_GE(stats.owner_deaths, 2u);
    EXPECT_GE(stats.groups_lost, 1u);
  }
}

TEST(DistReplicaTest, ChaosSoakExactOrCertifiedUnderDeadline) {
  // Seeded chaos across drops, delays, flapping deaths and both replication
  // levels: every query must return inside the governor deadline with a
  // certified answer, and any run that claims exactness must BE exact.
  const Database db = MakeUniformDatabase(600, 4, 29);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  AlgorithmOptions memoized;
  memoized.memoize_seen_items = true;
  const TopKResult reference =
      MakeAlgorithm(AlgorithmKind::kBpa, memoized)->Execute(db, query)
          .ValueOrDie();

  for (const size_t replicas : {size_t{1}, size_t{2}}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      SCOPED_TRACE(::testing::Message()
                   << "replicas " << replicas << " seed " << seed);
      InProcessTransport inner =
          InProcessTransport::PerListOwners(db, replicas);
      TransportFaultPlan plan;
      plan.seed = seed;
      plan.drop_rate = 0.05;
      plan.delay_rate = 0.3;
      plan.delay_ms = 2.0;
      plan.owner_death_rate = 0.15;
      plan.death_min_messages = 2;
      plan.death_max_messages = 40;
      plan.flap_revive_calls = 2;
      FaultInjectingTransport transport(&inner, plan);
      DistOptions options;
      options.replication_factor = static_cast<uint32_t>(replicas);
      options.governor.deadline_ms = 250.0;
      Coordinator coordinator(&transport, options);
      ASSERT_TRUE(coordinator.Connect().ok());
      const Result<TopKResult> run = coordinator.ExecuteBpa(query);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      const TopKResult& result = run.ValueOrDie();

      EXPECT_GE(result.theta, 1.0);
      EXPECT_LT(coordinator.stats().virtual_ms, 2.0 * 250.0);
      if (result.completion == Completion::kExact) {
        ExpectExactParity(result, reference);
      } else {
        EXPECT_GE(result.theta, 1.0);
        EXPECT_TRUE(std::isfinite(result.unreturned_upper_bound) ||
                    result.items.empty());
      }
    }
  }
}

TEST(DistReplicaTest, ConnectRejectsMismatchedReplicaCounts) {
  const Database db = MakeUniformDatabase(100, 3, 7);
  // One owner per list, but the options promise two replicas each.
  InProcessTransport flat = InProcessTransport::PerListOwners(db);
  DistOptions two;
  two.replication_factor = 2;
  Coordinator under(&flat, two);
  EXPECT_TRUE(under.Connect().IsInvalid());
  // Two owners per list, but the options promise one.
  InProcessTransport wide = InProcessTransport::PerListOwners(db, 2);
  Coordinator over(&wide, DistOptions{});
  EXPECT_TRUE(over.Connect().IsInvalid());
}

TEST(DistReplicaTest, ConnectRejectsDivergentReplicaCatalogs) {
  // Replicas must mirror the same list: a sibling serving a different
  // database is a misconfiguration, not a failover target.
  const Database db = MakeUniformDatabase(100, 2, 7);
  const Database impostor = MakeUniformDatabase(100, 2, 8);
  InProcessTransport transport;
  transport.AddOwner(ListOwner(&db, {0}));
  transport.AddOwner(ListOwner(&db, {1}));
  transport.AddOwner(ListOwner(&impostor, {0}));
  transport.AddOwner(ListOwner(&impostor, {1}));
  DistOptions options;
  options.replication_factor = 2;
  Coordinator coordinator(&transport, options);
  EXPECT_TRUE(coordinator.Connect().IsInvalid());
}

// ---- Fault transport: replica-aware plans ----

// Pins the death-window contract documented in fault_injecting_transport.h:
// every owner's death point counts ITS OWN served messages, so interleaved
// traffic to a sibling never drags another owner's window forward.
TEST(DistFaultTransportTest, DeathWindowsCountPerOwnerMessages) {
  const Database db = MakeUniformDatabase(50, 2, 3);
  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.kill_owners = {0, 1};
  plan.kill_after_messages = 2;
  FaultInjectingTransport transport(&inner, plan);
  Request request;
  request.type = MessageType::kHello;
  Reply reply;
  CallResult call;

  EXPECT_TRUE(transport.Call(0, request, &reply, &call).ok());  // 0: 1 of 2
  EXPECT_TRUE(transport.Call(1, request, &reply, &call).ok());  // 1: 1 of 2
  EXPECT_TRUE(transport.Call(0, request, &reply, &call).ok());  // 0: 2 of 2
  // Owner 0 has served its window; owner 1 has one message left even though
  // the transport as a whole carried three.
  EXPECT_TRUE(transport.Call(0, request, &reply, &call).IsUnavailable());
  EXPECT_FALSE(transport.OwnerAlive(0));
  EXPECT_TRUE(transport.Call(1, request, &reply, &call).ok());  // 1: 2 of 2
  EXPECT_TRUE(transport.Call(1, request, &reply, &call).IsUnavailable());
  EXPECT_FALSE(transport.OwnerAlive(1));
  EXPECT_EQ(transport.fault_stats().dead_owners, 2u);
}

TEST(DistFaultTransportTest, FlappingRevivesAfterExactRejectionWindow) {
  const Database db = MakeUniformDatabase(50, 1, 3);
  InProcessTransport inner = InProcessTransport::PerListOwners(db);
  TransportFaultPlan plan;
  plan.kill_owner = 0;
  plan.kill_after_messages = 2;
  plan.flap_revive_calls = 3;
  FaultInjectingTransport transport(&inner, plan);
  Request request;
  request.type = MessageType::kHello;
  Reply reply;
  CallResult call;

  // Serves its window, rejects exactly flap_revive_calls calls (the last
  // rejection is the one that revives it), then serves again.
  EXPECT_TRUE(transport.Call(0, request, &reply, &call).ok());
  EXPECT_TRUE(transport.Call(0, request, &reply, &call).ok());
  for (int down = 0; down < 3; ++down) {
    EXPECT_TRUE(transport.Call(0, request, &reply, &call).IsUnavailable());
  }
  EXPECT_TRUE(transport.OwnerAlive(0));
  EXPECT_TRUE(transport.Call(0, request, &reply, &call).ok());
  EXPECT_EQ(transport.fault_stats().owner_revivals, 1u);
  EXPECT_EQ(transport.fault_stats().dead_owners, 1u);

  // The redrawn death point is capped by the targeted kill, so the owner
  // dies again within two served messages and flaps through the same
  // exact-width down window.
  int served_after_revival = 1;
  while (transport.Call(0, request, &reply, &call).ok()) {
    ++served_after_revival;
  }
  EXPECT_LE(served_after_revival, 2);
  EXPECT_EQ(transport.fault_stats().dead_owners, 2u);
  for (int down = 0; down < 2; ++down) {
    EXPECT_TRUE(transport.Call(0, request, &reply, &call).IsUnavailable());
  }
  EXPECT_TRUE(transport.OwnerAlive(0));
  EXPECT_EQ(transport.fault_stats().owner_revivals, 2u);
}

// ---- DistOptions validation ----

TEST(DistOptionsTest, ValidateRejectsBadKnobs) {
  DistOptions options;
  EXPECT_TRUE(options.Validate("DistBPA", 0).IsInvalid());
  options = DistOptions{};
  options.window_rows = 0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.rpc_max_attempts = 0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.hedge_floor_ms = 0.0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.rpc_deadline_ms = 0.0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.hedge_multiplier = 0.5;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.replication_factor = 0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.breaker_failures = 0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.breaker_open_ms = -1.0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.ewma_alpha = 0.0;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  options.ewma_alpha = 1.5;
  EXPECT_TRUE(options.Validate("DistBPA", 3).IsInvalid());
  options = DistOptions{};
  EXPECT_TRUE(options.Validate("DistBPA", 3).ok());
}

TEST(DistCoordinatorTest, RejectsQueriesBeforeConnect) {
  const Database db = MakeUniformDatabase(50, 3, 2);
  SumScorer sum;
  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  EXPECT_TRUE(coordinator.ExecuteBpa(TopKQuery{3, &sum}).status().IsInvalid());
}

TEST(DistCoordinatorTest, RejectsBadK) {
  const Database db = MakeUniformDatabase(50, 3, 2);
  SumScorer sum;
  InProcessTransport transport = InProcessTransport::PerListOwners(db);
  Coordinator coordinator(&transport, DistOptions{});
  ASSERT_TRUE(coordinator.Connect().ok());
  EXPECT_TRUE(coordinator.ExecuteBpa(TopKQuery{0, &sum}).status().IsInvalid());
  EXPECT_TRUE(
      coordinator.ExecuteBpa(TopKQuery{51, &sum}).status().IsInvalid());
}

}  // namespace
}  // namespace topk
