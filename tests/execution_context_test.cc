// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// ExecutionContext reuse must be observationally invisible: a context carried
// across queries — of different algorithms, databases, shapes and k — must
// produce results and access counts identical to a fresh per-query context.

#include "core/execution_context.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

void ExpectSameExecution(const TopKResult& fresh, const TopKResult& reused,
                         const std::string& label) {
  ASSERT_EQ(fresh.items.size(), reused.items.size()) << label;
  for (size_t i = 0; i < fresh.items.size(); ++i) {
    EXPECT_EQ(fresh.items[i].item, reused.items[i].item) << label << " @" << i;
    EXPECT_DOUBLE_EQ(fresh.items[i].score, reused.items[i].score)
        << label << " @" << i;
  }
  EXPECT_EQ(fresh.stats, reused.stats) << label;
  EXPECT_EQ(fresh.stop_position, reused.stop_position) << label;
  EXPECT_EQ(fresh.min_best_position, reused.min_best_position) << label;
}

TEST(ExecutionContextTest, ReuseAcrossQueriesMatchesFreshContexts) {
  const Database db = MakeUniformDatabase(500, 4, 99);
  SumScorer sum;
  ExecutionContext reused;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    auto algorithm = MakeAlgorithm(kind);
    for (size_t k : {1u, 7u, 20u, 3u}) {  // k shrinks and grows
      const TopKQuery query{k, &sum};
      const TopKResult fresh = algorithm->Execute(db, query).ValueOrDie();
      const TopKResult via_reuse =
          algorithm->Execute(db, query, &reused).ValueOrDie();
      ExpectSameExecution(fresh, via_reuse,
                          ToString(kind) + " k=" + std::to_string(k));
    }
  }
}

TEST(ExecutionContextTest, ReuseAcrossDatabasesAndTrackerKinds) {
  SumScorer sum;
  MinScorer min;
  ExecutionContext reused;
  Rng rng(7);
  // Databases of very different shape, visited repeatedly so the context must
  // both grow and (logically) shrink between queries.
  std::vector<Database> dbs;
  dbs.push_back(MakeUniformDatabase(50, 6, 1));
  dbs.push_back(MakeUniformDatabase(900, 2, 2));
  dbs.push_back(MakeUniformDatabase(300, 4, 3));
  const TrackerKind tracker_kinds[] = {
      TrackerKind::kBitArray, TrackerKind::kBPlusTree, TrackerKind::kSortedSet};
  for (int round = 0; round < 3; ++round) {
    for (const Database& db : dbs) {
      for (TrackerKind tracker : tracker_kinds) {
        AlgorithmOptions options;
        options.tracker = tracker;
        const size_t k = 1 + rng.NextBounded(db.num_items() / 2);
        const Scorer* scorer = (round % 2 == 0)
                                   ? static_cast<const Scorer*>(&sum)
                                   : static_cast<const Scorer*>(&min);
        const TopKQuery query{k, scorer};
        for (AlgorithmKind kind :
             {AlgorithmKind::kBpa, AlgorithmKind::kBpa2, AlgorithmKind::kTa}) {
          auto algorithm = MakeAlgorithm(kind, options);
          const TopKResult fresh = algorithm->Execute(db, query).ValueOrDie();
          const TopKResult via_reuse =
              algorithm->Execute(db, query, &reused).ValueOrDie();
          ExpectSameExecution(fresh, via_reuse,
                              ToString(kind) + " tracker " + ToString(tracker));
        }
      }
    }
  }
}

TEST(ExecutionContextTest, ExecuteIntoReusesResultStorage) {
  const Database db = MakeUniformDatabase(400, 3, 5);
  SumScorer sum;
  auto algorithm = MakeAlgorithm(AlgorithmKind::kBpa);
  ExecutionContext context;
  TopKResult result;
  for (size_t k : {10u, 4u, 10u}) {
    const TopKQuery query{k, &sum};
    ASSERT_TRUE(algorithm->ExecuteInto(db, query, &context, &result).ok());
    const TopKResult fresh = algorithm->Execute(db, query).ValueOrDie();
    ExpectSameExecution(fresh, result, "ExecuteInto k=" + std::to_string(k));
  }
}

TEST(ExecutionContextTest, ExecuteIntoReportsValidationErrors) {
  const Database db = MakeUniformDatabase(50, 2, 5);
  SumScorer sum;
  auto algorithm = MakeAlgorithm(AlgorithmKind::kTa);
  ExecutionContext context;
  TopKResult result;
  EXPECT_TRUE(algorithm->ExecuteInto(db, TopKQuery{0, &sum}, &context, &result)
                  .IsInvalid());
  EXPECT_TRUE(
      algorithm->ExecuteInto(db, TopKQuery{51, &sum}, &context, &result)
          .IsInvalid());
  EXPECT_TRUE(
      algorithm->ExecuteInto(db, TopKQuery{5, nullptr}, &context, &result)
          .IsInvalid());
  // The context stays usable after failed validations.
  EXPECT_TRUE(
      algorithm->ExecuteInto(db, TopKQuery{5, &sum}, &context, &result).ok());
  EXPECT_EQ(result.items.size(), 5u);
}

TEST(ScoreMemoTest, ResetForgetsEntriesInConstantTime) {
  ScoreMemo memo;
  memo.Reset(100);
  EXPECT_FALSE(memo.Contains(7));
  memo.Put(7, 1.5);
  ASSERT_TRUE(memo.Contains(7));
  EXPECT_DOUBLE_EQ(memo.Get(7), 1.5);
  memo.Reset(100);
  EXPECT_FALSE(memo.Contains(7));
  // Growth keeps old entries stale and new entries unset.
  memo.Put(99, 2.0);
  memo.Reset(200);
  EXPECT_FALSE(memo.Contains(99));
  EXPECT_FALSE(memo.Contains(199));
  memo.Put(199, 3.0);
  EXPECT_TRUE(memo.Contains(199));
}

TEST(ScoreMemoTest, ManyResetCyclesStayCorrect) {
  ScoreMemo memo;
  for (uint32_t cycle = 0; cycle < 1000; ++cycle) {
    memo.Reset(16);
    const ItemId item = cycle % 16;
    EXPECT_FALSE(memo.Contains(item)) << "cycle " << cycle;
    memo.Put(item, static_cast<Score>(cycle));
    EXPECT_TRUE(memo.Contains(item));
    EXPECT_DOUBLE_EQ(memo.Get(item), static_cast<Score>(cycle));
  }
}

}  // namespace
}  // namespace topk
