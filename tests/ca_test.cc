// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/ca_algorithm.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

TEST(CaTest, MatchesNaiveOnUniform) {
  const Database db = MakeUniformDatabase(400, 4, 31);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto ca =
      MakeAlgorithm(AlgorithmKind::kCa)->Execute(db, query).ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(ca.items[i].score, naive.items[i].score);
  }
}

TEST(CaTest, FarFewerRandomAccessesThanTa) {
  const Database db = MakeUniformDatabase(5000, 6, 32);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  const auto ta =
      MakeAlgorithm(AlgorithmKind::kTa)->Execute(db, query).ValueOrDie();
  const auto ca =
      MakeAlgorithm(AlgorithmKind::kCa)->Execute(db, query).ValueOrDie();
  // CA resolves one candidate every cr/cs rows; TA resolves every row entry.
  EXPECT_LT(ca.stats.random_accesses, ta.stats.random_accesses / 4);
}

TEST(CaTest, StopsEarlierThanNraInRows) {
  const Database db = MakeUniformDatabase(3000, 4, 33);
  SumScorer sum;
  const TopKQuery query{5, &sum};
  const auto nra =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, query).ValueOrDie();
  const auto ca =
      MakeAlgorithm(AlgorithmKind::kCa)->Execute(db, query).ValueOrDie();
  EXPECT_LE(ca.stop_position, nra.stop_position);
}

TEST(CaTest, RejectsScoresBelowFloor) {
  const Database db = MakeGaussianDatabase(100, 3, 34);
  SumScorer sum;
  EXPECT_TRUE(MakeAlgorithm(AlgorithmKind::kCa)
                  ->Execute(db, TopKQuery{3, &sum})
                  .status()
                  .IsInvalid());
}

TEST(CaTest, GaussianWithExplicitFloor) {
  const Database db = MakeGaussianDatabase(300, 3, 35);
  double floor = 0.0;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    floor = std::min(floor, db.list(i).MinScore());
  }
  AlgorithmOptions options;
  options.score_floor = floor;
  SumScorer sum;
  const TopKQuery query{5, &sum};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto ca = MakeAlgorithm(AlgorithmKind::kCa, options)
                      ->Execute(db, query)
                      .ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(ca.items[i].score, naive.items[i].score);
  }
}

TEST(CaTest, WorksOnPaperFigure1) {
  const Database db = MakeFigure1Database();
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kCa)->Execute(db, TopKQuery{3, &sum})
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(result.items[0].score, 71.0);
  EXPECT_DOUBLE_EQ(result.items[1].score, 70.0);
  EXPECT_DOUBLE_EQ(result.items[2].score, 70.0);
}

TEST(CaTest, UnitCostModelDegeneratesTowardPerRowResolution) {
  // With cr == cs, h = 1: CA resolves a candidate every row.
  const Database db = MakeUniformDatabase(500, 3, 36);
  SumScorer sum;
  AlgorithmOptions options;
  options.cost_model = CostModel::Unit();
  const auto result = MakeAlgorithm(AlgorithmKind::kCa, options)
                          ->Execute(db, TopKQuery{5, &sum})
                          .ValueOrDie();
  ASSERT_EQ(result.items.size(), 5u);
  const auto naive = MakeAlgorithm(AlgorithmKind::kNaive)
                         ->Execute(db, TopKQuery{5, &sum})
                         .ValueOrDie();
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(result.items[i].score, naive.items[i].score);
  }
}

TEST(CaTest, MinScorerSupported) {
  const Database db = MakeUniformDatabase(200, 3, 37);
  MinScorer min;
  const TopKQuery query{5, &min};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto ca =
      MakeAlgorithm(AlgorithmKind::kCa)->Execute(db, query).ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(ca.items[i].score, naive.items[i].score);
  }
}

}  // namespace
}  // namespace topk
