// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"

namespace topk {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueUnsafe(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Invalid("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrReturnsAlternativeOnError) {
  Result<int> err(Status::Invalid("x"));
  EXPECT_EQ(err.ValueOr(42), 42);
  Result<int> ok(3);
  EXPECT_EQ(ok.ValueOr(42), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueUnsafe();
  EXPECT_EQ(*p, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::Invalid(x, " is odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  TOPK_ASSIGN_OR_RETURN(int h, Half(x));
  TOPK_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagatesSuccess) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueUnsafe(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesFirstError) {
  Result<int> r = Quarter(7);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "7 is odd");
}

TEST(ResultTest, AssignOrReturnPropagatesNestedError) {
  Result<int> r = Quarter(6);  // 6 -> 3 -> odd
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "3 is odd");
}

Status UseReturnNotOk(bool fail) {
  TOPK_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOk) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_TRUE(UseReturnNotOk(true).IsInternal());
}

}  // namespace
}  // namespace topk
