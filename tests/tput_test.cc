// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/tput_algorithm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

TEST(TputTest, MatchesNaiveOnUniform) {
  const Database db = MakeUniformDatabase(500, 5, 99);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto tput =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, query).ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(tput.items[i].score, naive.items[i].score);
  }
}

TEST(TputTest, MatchesNaiveOnCorrelated) {
  CorrelatedConfig config;
  config.n = 400;
  config.m = 4;
  config.alpha = 0.01;
  config.seed = 5;
  const Database db = MakeCorrelatedDatabase(config).ValueOrDie();
  SumScorer sum;
  const TopKQuery query{20, &sum};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto tput =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, query).ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(tput.items[i].score, naive.items[i].score);
  }
}

TEST(TputTest, RejectsNonSumScorer) {
  const Database db = MakeUniformDatabase(50, 3, 1);
  MinScorer min;
  const auto status =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, TopKQuery{3, &min})
          .status();
  EXPECT_TRUE(status.IsNotImplemented());
}

TEST(TputTest, RejectsScoresBelowFloor) {
  const Database db = MakeGaussianDatabase(50, 3, 1);  // has negatives
  SumScorer sum;
  const auto status =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, TopKQuery{3, &sum})
          .status();
  EXPECT_TRUE(status.IsInvalid());
}

TEST(TputTest, AcceptsGaussianWithExplicitFloor) {
  const Database db = MakeGaussianDatabase(200, 3, 2);
  double floor = 0.0;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    floor = std::min(floor, db.list(i).MinScore());
  }
  AlgorithmOptions options;
  options.score_floor = floor;
  SumScorer sum;
  const TopKQuery query{5, &sum};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto tput = MakeAlgorithm(AlgorithmKind::kTput, options)
                        ->Execute(db, query)
                        .ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(tput.items[i].score, naive.items[i].score);
  }
}

TEST(TputTest, UsesThreePhaseAccessPattern) {
  const Database db = MakeUniformDatabase(1000, 4, 3);
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, TopKQuery{10, &sum})
          .ValueOrDie();
  // Phase 1+2 do sorted accesses; phase 3 does random accesses.
  EXPECT_GT(result.stats.sorted_accesses, 0u);
  EXPECT_EQ(result.stats.direct_accesses, 0u);
  // Phase 1 reads at least k rows in every list.
  EXPECT_GE(result.stats.sorted_accesses, 4u * 10u);
}

TEST(TputTest, WorksOnPaperFigure1) {
  const Database db = MakeFigure1Database();
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, TopKQuery{3, &sum})
          .ValueOrDie();
  EXPECT_EQ(result.items[0].item, 7u);  // d8
  EXPECT_DOUBLE_EQ(result.items[0].score, 71.0);
}

TEST(TputTest, KEqualsNReturnsEverything) {
  const Database db = MakeUniformDatabase(30, 3, 4);
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, TopKQuery{30, &sum})
          .ValueOrDie();
  EXPECT_EQ(result.items.size(), 30u);
}

// The paper's Section 7 remark: a list full of values just above TPUT's
// threshold forces TPUT to fetch (nearly) the whole list, while BPA2 stays
// adaptive. Construct such an adversarial database.
TEST(TputTest, AdversarialFlatListForcesDeepScan) {
  const size_t n = 500;
  const size_t m = 3;
  std::vector<std::vector<Score>> scores(n, std::vector<Score>(m));
  Rng rng(12);
  for (size_t i = 0; i < n; ++i) {
    scores[i][0] = rng.NextDouble();       // normal list
    scores[i][1] = rng.NextDouble();       // normal list
    scores[i][2] = 0.90 + 1e-6 * i;        // flat list, all above τ1/m
  }
  const Database db = Database::FromScoreMatrix(scores).ValueOrDie();
  SumScorer sum;
  const TopKQuery query{5, &sum};
  const auto tput =
      MakeAlgorithm(AlgorithmKind::kTput)->Execute(db, query).ValueOrDie();
  const auto bpa2 =
      MakeAlgorithm(AlgorithmKind::kBpa2)->Execute(db, query).ValueOrDie();
  // Correct on both, but TPUT pays far more accesses.
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(tput.items[i].score, naive.items[i].score);
    EXPECT_DOUBLE_EQ(bpa2.items[i].score, naive.items[i].score);
  }
  EXPECT_GT(tput.stats.TotalAccesses(), bpa2.stats.TotalAccesses());
}

}  // namespace
}  // namespace topk
