// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Regression tests for the strict flag parsers — notably the ERANGE
// saturation bug: strtoull/strtod report out-of-range values only via errno,
// so without the check `--n 99999999999999999999999` silently became
// ULLONG_MAX and was measured (and labeled) as a 2^64-item workload.

#include "common/flag_parse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace topk {
namespace {

TEST(ParseFlagU64, AcceptsPlainIntegers) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseFlagU64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseFlagU64("123456789", &v));
  EXPECT_EQ(v, 123456789u);
  EXPECT_TRUE(ParseFlagU64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
}

TEST(ParseFlagU64, RejectsOverflowInsteadOfSaturating) {
  uint64_t v = 0;
  // One past UINT64_MAX: strtoull saturates and sets errno = ERANGE.
  EXPECT_FALSE(ParseFlagU64("18446744073709551616", &v));
  EXPECT_FALSE(ParseFlagU64("99999999999999999999999", &v));
}

TEST(ParseFlagU64, RejectsMalformedInput) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseFlagU64("", &v));
  EXPECT_FALSE(ParseFlagU64("-3", &v));
  EXPECT_FALSE(ParseFlagU64("+3", &v));
  EXPECT_FALSE(ParseFlagU64(" 3", &v));
  EXPECT_FALSE(ParseFlagU64("3x", &v));
  EXPECT_FALSE(ParseFlagU64("x3", &v));
}

TEST(ParseFlagSize, RoundTripsAndRejectsOverflow) {
  size_t v = 0;
  EXPECT_TRUE(ParseFlagSize("1000000", &v));
  EXPECT_EQ(v, 1000000u);
  EXPECT_FALSE(ParseFlagSize("99999999999999999999999", &v));
}

TEST(ParseFlagDouble, AcceptsFiniteNonNegative) {
  double v = 0.0;
  EXPECT_TRUE(ParseFlagDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(ParseFlagDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseFlagDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(ParseFlagDouble, RejectsOutOfRangeValues) {
  double v = 0.0;
  // Overflow: strtod saturates to +inf (caught by the finiteness check).
  EXPECT_FALSE(ParseFlagDouble("1e999", &v));
  // Underflow: strtod silently flushes toward zero with errno = ERANGE —
  // the regression this suite pins.
  EXPECT_FALSE(ParseFlagDouble("1e-999", &v));
}

TEST(ParseFlagDouble, RejectsMalformedInput) {
  double v = 0.0;
  EXPECT_FALSE(ParseFlagDouble("", &v));
  EXPECT_FALSE(ParseFlagDouble("-1.5", &v));
  EXPECT_FALSE(ParseFlagDouble("nan", &v));
  EXPECT_FALSE(ParseFlagDouble("inf", &v));
  EXPECT_FALSE(ParseFlagDouble("2.5ms", &v));
}

TEST(FlagValue, HandlesBothFlagShapes) {
  const char* argv_equals[] = {const_cast<char*>("--n=42")};
  int i = 0;
  EXPECT_STREQ(FlagValue("--n=42", "--n", &i, 1,
                         const_cast<char**>(argv_equals)),
               "42");

  const char* argv_space[] = {const_cast<char*>("--n"),
                              const_cast<char*>("42")};
  i = 0;
  EXPECT_STREQ(
      FlagValue("--n", "--n", &i, 2, const_cast<char**>(argv_space)), "42");
  EXPECT_EQ(i, 1);  // consumed the value token

  // A following "--" token is another flag, not this flag's value.
  const char* argv_next_flag[] = {const_cast<char*>("--n"),
                                  const_cast<char*>("--k")};
  i = 0;
  EXPECT_EQ(FlagValue("--n", "--n", &i, 2, const_cast<char**>(argv_next_flag)),
            nullptr);
}

}  // namespace
}  // namespace topk
