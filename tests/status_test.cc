// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace topk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidCarriesMessage) {
  Status st = Status::Invalid("bad k = ", 42);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k = 42");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k = 42");
}

TEST(StatusTest, KeyError) {
  Status st = Status::KeyError("item ", 7, " missing");
  EXPECT_TRUE(st.IsKeyError());
  EXPECT_EQ(st.message(), "item 7 missing");
}

TEST(StatusTest, OutOfRange) {
  Status st = Status::OutOfRange("position 0");
  EXPECT_TRUE(st.IsOutOfRange());
}

TEST(StatusTest, NotImplemented) {
  Status st = Status::NotImplemented("nope");
  EXPECT_TRUE(st.IsNotImplemented());
}

TEST(StatusTest, Internal) {
  Status st = Status::Internal("bug");
  EXPECT_TRUE(st.IsInternal());
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status st = Status::Invalid("x");
  Status copy = st;
  EXPECT_EQ(st, copy);
  EXPECT_TRUE(copy.IsInvalid());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_NE(Status::Invalid("a"), Status::Invalid("b"));
  EXPECT_NE(Status::Invalid("a"), Status::KeyError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream oss;
  oss << Status::OutOfRange("pos 9");
  EXPECT_EQ(oss.str(), "Out of range: pos 9");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "Invalid argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kKeyError), "Key error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "Out of range");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "Not implemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

TEST(StatusTest, AbortOnOkIsNoop) {
  Status::OK().Abort();  // must not abort
}

}  // namespace
}  // namespace topk
