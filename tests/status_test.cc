// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/status.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/query_governor.h"
#include "core/topk_algorithm.h"
#include "dist/coordinator.h"
#include "dist/fault_injecting_transport.h"
#include "gen/database_generator.h"
#include "lists/fault_injection.h"
#include "lists/scorer.h"

namespace topk {
namespace {

// True when `status` is an error whose message contains every fragment —
// the rejection-message contract: name the algorithm, the limit, and the
// observed value.
::testing::AssertionResult MentionsAll(
    const Status& status, std::initializer_list<const char*> fragments) {
  if (status.ok()) {
    return ::testing::AssertionFailure() << "status is OK";
  }
  for (const char* fragment : fragments) {
    if (status.message().find(fragment) == std::string::npos) {
      return ::testing::AssertionFailure()
             << "message \"" << status.message() << "\" lacks \"" << fragment
             << "\"";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidCarriesMessage) {
  Status st = Status::Invalid("bad k = ", 42);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k = 42");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k = 42");
}

TEST(StatusTest, KeyError) {
  Status st = Status::KeyError("item ", 7, " missing");
  EXPECT_TRUE(st.IsKeyError());
  EXPECT_EQ(st.message(), "item 7 missing");
}

TEST(StatusTest, OutOfRange) {
  Status st = Status::OutOfRange("position 0");
  EXPECT_TRUE(st.IsOutOfRange());
}

TEST(StatusTest, NotImplemented) {
  Status st = Status::NotImplemented("nope");
  EXPECT_TRUE(st.IsNotImplemented());
}

TEST(StatusTest, Internal) {
  Status st = Status::Internal("bug");
  EXPECT_TRUE(st.IsInternal());
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status st = Status::Invalid("x");
  Status copy = st;
  EXPECT_EQ(st, copy);
  EXPECT_TRUE(copy.IsInvalid());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_NE(Status::Invalid("a"), Status::Invalid("b"));
  EXPECT_NE(Status::Invalid("a"), Status::KeyError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream oss;
  oss << Status::OutOfRange("pos 9");
  EXPECT_EQ(oss.str(), "Out of range: pos 9");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "Invalid argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kKeyError), "Key error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "Out of range");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "Not implemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

TEST(StatusTest, AbortOnOkIsNoop) {
  Status::OK().Abort();  // must not abort
}

TEST(StatusTest, ResourceExhaustedAndUnavailable) {
  Status exhausted = Status::ResourceExhausted("budget spent");
  EXPECT_TRUE(exhausted.IsResourceExhausted());
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "Resource exhausted: budget spent");
  Status unavailable = Status::Unavailable("list died");
  EXPECT_TRUE(unavailable.IsUnavailable());
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: list died");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "Resource exhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

// ---- Rejection-message contract -------------------------------------------
// Every validation failure names the algorithm, the offending limit/knob, and
// the observed value — one test case per message.

TEST(RejectionMessageTest, QueryWithoutScorer) {
  Database db = MakeUniformDatabase(32, 2, 1);
  auto status = MakeAlgorithm(AlgorithmKind::kTa)
                    ->Execute(db, TopKQuery{1, nullptr})
                    .status();
  EXPECT_TRUE(status.IsInvalid());
  EXPECT_TRUE(MentionsAll(status, {"TA", "Scorer", "nullptr"}));
}

TEST(RejectionMessageTest, ZeroK) {
  Database db = MakeUniformDatabase(32, 2, 1);
  SumScorer scorer;
  auto status = MakeAlgorithm(AlgorithmKind::kNra)
                    ->Execute(db, TopKQuery{0, &scorer})
                    .status();
  EXPECT_TRUE(status.IsInvalid());
  EXPECT_TRUE(MentionsAll(status, {"NRA", "k must be >= 1", "k = 0"}));
}

TEST(RejectionMessageTest, KBeyondDatabaseSize) {
  Database db = MakeUniformDatabase(32, 2, 1);
  SumScorer scorer;
  auto status = MakeAlgorithm(AlgorithmKind::kBpa)
                    ->Execute(db, TopKQuery{33, &scorer})
                    .status();
  EXPECT_TRUE(status.IsInvalid());
  EXPECT_TRUE(MentionsAll(status, {"BPA", "k = 33", "n = 32"}));
}

TEST(RejectionMessageTest, GovernorDeadlineNaN) {
  GovernorLimits limits;
  limits.deadline_ms = std::nan("");
  EXPECT_TRUE(
      MentionsAll(limits.Validate("CA"), {"CA", "deadline_ms", "finite"}));
}

TEST(RejectionMessageTest, GovernorDeadlineInfinite) {
  GovernorLimits limits;
  limits.deadline_ms = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(
      MentionsAll(limits.Validate("TA"), {"TA", "deadline_ms", "finite"}));
}

TEST(RejectionMessageTest, GovernorDeadlineNegative) {
  GovernorLimits limits;
  limits.deadline_ms = -3.0;
  EXPECT_TRUE(MentionsAll(limits.Validate("FA"),
                          {"FA", "deadline_ms must be >= 0", "-3"}));
}

TEST(RejectionMessageTest, FaultTransientRateOutOfRange) {
  FaultPlan plan;
  plan.transient_rate = 1.5;
  EXPECT_TRUE(MentionsAll(plan.Validate("TA", 4),
                          {"TA", "transient_rate", "[0, 1]", "1.5"}));
}

TEST(RejectionMessageTest, FaultSpikeRateOutOfRange) {
  FaultPlan plan;
  plan.spike_rate = -0.25;
  EXPECT_TRUE(MentionsAll(plan.Validate("NRA", 4),
                          {"NRA", "spike_rate", "[0, 1]", "-0.25"}));
}

TEST(RejectionMessageTest, FaultDeathRateOutOfRange) {
  FaultPlan plan;
  plan.death_rate = 2.0;
  EXPECT_TRUE(
      MentionsAll(plan.Validate("CA", 4), {"CA", "death_rate", "[0, 1]", "2"}));
}

TEST(RejectionMessageTest, FaultRetriesBelowOne) {
  FaultPlan plan;
  plan.max_retries = 0;
  EXPECT_TRUE(MentionsAll(plan.Validate("BPA2", 4),
                          {"BPA2", "max_retries must be >= 1", "0"}));
}

TEST(RejectionMessageTest, FaultSpikeMsNegative) {
  FaultPlan plan;
  plan.spike_ms = -1.0;
  EXPECT_TRUE(MentionsAll(plan.Validate("FA", 4),
                          {"FA", "spike_ms must be >= 0", "-1"}));
}

TEST(RejectionMessageTest, FaultDeathWindowInverted) {
  FaultPlan plan;
  plan.death_min_accesses = 10;
  plan.death_max_accesses = 5;
  EXPECT_TRUE(MentionsAll(plan.Validate("TPUT", 4),
                          {"TPUT", "death window", "[10, 5]"}));
}

TEST(RejectionMessageTest, FaultKillListBeyondLastIndex) {
  FaultPlan plan;
  plan.kill_list = 4;
  EXPECT_TRUE(MentionsAll(plan.Validate("TA", 4),
                          {"TA", "kill_list = 4", "last list index 3"}));
}

TEST(RejectionMessageTest, FaultKillAfterZero) {
  FaultPlan plan;
  plan.kill_list = 0;
  plan.kill_after_accesses = 0;
  EXPECT_TRUE(MentionsAll(plan.Validate("BPA", 4),
                          {"BPA", "kill_after_accesses must be >= 1", "0"}));
}

TEST(RejectionMessageTest, DistZeroOwners) {
  DistOptions options;
  EXPECT_TRUE(MentionsAll(options.Validate("DistBPA", 0),
                          {"DistBPA", "at least one", "num_owners = 0"}));
}

TEST(RejectionMessageTest, DistZeroWindowRows) {
  DistOptions options;
  options.window_rows = 0;
  EXPECT_TRUE(MentionsAll(options.Validate("DistTPUT", 3),
                          {"DistTPUT", "window_rows must be >= 1",
                           "window_rows = 0"}));
}

TEST(RejectionMessageTest, DistRpcDeadlineNotPositive) {
  DistOptions options;
  options.rpc_deadline_ms = 0.0;
  EXPECT_TRUE(MentionsAll(options.Validate("DistBPA", 3),
                          {"DistBPA", "rpc_deadline_ms", "finite and > 0",
                           "rpc_deadline_ms = 0"}));
}

TEST(RejectionMessageTest, DistRetryBudgetBelowOne) {
  DistOptions options;
  options.rpc_max_attempts = 0;
  EXPECT_TRUE(MentionsAll(options.Validate("DistBPA", 3),
                          {"DistBPA", "retry budget",
                           "rpc_max_attempts must be >= 1",
                           "rpc_max_attempts = 0"}));
}

TEST(RejectionMessageTest, DistHedgeFloorNotPositive) {
  DistOptions options;
  options.hedge_floor_ms = -1.0;
  EXPECT_TRUE(MentionsAll(options.Validate("DistTPUT", 3),
                          {"DistTPUT", "hedge timeout floor",
                           "hedge_floor_ms = -1"}));
}

TEST(RejectionMessageTest, DistHedgeMultiplierBelowOne) {
  DistOptions options;
  options.hedge_multiplier = 0.5;
  EXPECT_TRUE(MentionsAll(options.Validate("DistBPA", 3),
                          {"DistBPA", "hedge_multiplier must be >= 1",
                           "hedge_multiplier = 0.5"}));
}

TEST(RejectionMessageTest, DistReplicationFactorZero) {
  DistOptions options;
  options.replication_factor = 0;
  EXPECT_TRUE(MentionsAll(options.Validate("DistBPA", 3),
                          {"DistBPA", "replication_factor must be >= 1",
                           "replication_factor = 0"}));
}

TEST(RejectionMessageTest, DistBreakerFailuresZero) {
  DistOptions options;
  options.breaker_failures = 0;
  EXPECT_TRUE(MentionsAll(options.Validate("DistTPUT", 3),
                          {"DistTPUT", "breaker_failures must be >= 1",
                           "breaker_failures = 0"}));
}

TEST(RejectionMessageTest, DistBreakerOpenMsNegative) {
  DistOptions options;
  options.breaker_open_ms = -2.0;
  EXPECT_TRUE(MentionsAll(options.Validate("DistBPA", 3),
                          {"DistBPA", "breaker_open_ms must be finite and >= 0",
                           "breaker_open_ms = -2"}));
}

TEST(RejectionMessageTest, DistEwmaAlphaOutOfRange) {
  DistOptions options;
  options.ewma_alpha = 1.5;
  EXPECT_TRUE(MentionsAll(options.Validate("DistTPUT", 3),
                          {"DistTPUT", "ewma_alpha must be in (0, 1]",
                           "ewma_alpha = 1.5"}));
}

TEST(RejectionMessageTest, TransportDropRateOutOfRange) {
  TransportFaultPlan plan;
  plan.drop_rate = 1.5;
  EXPECT_TRUE(MentionsAll(plan.Validate("DistBPA", 3),
                          {"DistBPA", "drop_rate", "[0, 1]",
                           "drop_rate = 1.5"}));
}

TEST(RejectionMessageTest, TransportKillOwnerBeyondLastIndex) {
  TransportFaultPlan plan;
  plan.kill_owner = 3;
  EXPECT_TRUE(MentionsAll(plan.Validate("DistTPUT", 3),
                          {"DistTPUT", "kill_owner = 3",
                           "last owner index 2"}));
}

TEST(RejectionMessageTest, TransportKillAfterZero) {
  TransportFaultPlan plan;
  plan.kill_owner = 0;
  plan.kill_after_messages = 0;
  EXPECT_TRUE(MentionsAll(plan.Validate("DistBPA", 3),
                          {"DistBPA", "kill_after_messages must be >= 1",
                           "kill_after_messages = 0"}));
}

TEST(RejectionMessageTest, TransportDeathWindowInverted) {
  TransportFaultPlan plan;
  plan.death_min_messages = 8;
  plan.death_max_messages = 2;
  EXPECT_TRUE(MentionsAll(plan.Validate("DistTPUT", 3),
                          {"DistTPUT", "death window", "[8, 2]"}));
}

TEST(RejectionMessageTest, TransportKillOwnersEntryBeyondLastIndex) {
  TransportFaultPlan plan;
  plan.kill_owners = {1, 4};
  EXPECT_TRUE(MentionsAll(plan.Validate("DistBPA", 3),
                          {"DistBPA", "kill_owners entry 4",
                           "last owner index 2"}));
}

TEST(RejectionMessageTest, TransportFlapWithoutDeathSource) {
  TransportFaultPlan plan;
  plan.flap_revive_calls = 2;
  EXPECT_TRUE(MentionsAll(plan.Validate("DistTPUT", 3),
                          {"DistTPUT", "flap_revive_calls = 2",
                           "needs a death source"}));
}

TEST(RejectionMessageTest, FaultPlanConflictsWithAudit) {
  Database db = MakeUniformDatabase(32, 2, 1);
  SumScorer scorer;
  AlgorithmOptions options;
  options.audit_accesses = true;
  options.fault_plan.spike_rate = 0.5;
  auto status = MakeAlgorithm(AlgorithmKind::kTa, options)
                    ->Execute(db, TopKQuery{1, &scorer})
                    .status();
  EXPECT_TRUE(status.IsInvalid());
  EXPECT_TRUE(MentionsAll(status, {"TA", "fault_plan", "audit_accesses"}));
}

}  // namespace
}  // namespace topk
