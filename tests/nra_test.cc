// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/nra_algorithm.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

TEST(NraTest, MatchesNaiveOnUniform) {
  const Database db = MakeUniformDatabase(400, 4, 21);
  SumScorer sum;
  const TopKQuery query{10, &sum};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto nra =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, query).ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(nra.items[i].score, naive.items[i].score);
  }
}

TEST(NraTest, PerformsOnlySortedAccesses) {
  const Database db = MakeUniformDatabase(400, 4, 22);
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, TopKQuery{5, &sum})
          .ValueOrDie();
  EXPECT_EQ(result.stats.random_accesses, 0u);
  EXPECT_EQ(result.stats.direct_accesses, 0u);
  EXPECT_GT(result.stats.sorted_accesses, 0u);
}

TEST(NraTest, RejectsScoresBelowDefaultFloor) {
  const Database db = MakeGaussianDatabase(100, 3, 23);
  SumScorer sum;
  const auto status =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, TopKQuery{3, &sum})
          .status();
  EXPECT_TRUE(status.IsInvalid());
}

TEST(NraTest, GaussianWorksWithExplicitFloor) {
  const Database db = MakeGaussianDatabase(300, 3, 24);
  double floor = 0.0;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    floor = std::min(floor, db.list(i).MinScore());
  }
  AlgorithmOptions options;
  options.score_floor = floor;
  SumScorer sum;
  const TopKQuery query{5, &sum};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto nra = MakeAlgorithm(AlgorithmKind::kNra, options)
                       ->Execute(db, query)
                       .ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(nra.items[i].score, naive.items[i].score);
  }
}

TEST(NraTest, WorksOnPaperFigure1) {
  const Database db = MakeFigure1Database();
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, TopKQuery{3, &sum})
          .ValueOrDie();
  EXPECT_EQ(result.items[0].item, 7u);  // d8 = 71
  EXPECT_DOUBLE_EQ(result.items[0].score, 71.0);
  EXPECT_DOUBLE_EQ(result.items[1].score, 70.0);
  EXPECT_DOUBLE_EQ(result.items[2].score, 70.0);
}

TEST(NraTest, StopsBeforeFullScanOnSkewedData) {
  // Zipf-like scores make the top items separable early; NRA should not need
  // the whole list.
  CorrelatedConfig config;
  config.n = 1000;
  config.m = 3;
  config.alpha = 0.005;
  config.seed = 9;
  const Database db = MakeCorrelatedDatabase(config).ValueOrDie();
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, TopKQuery{5, &sum})
          .ValueOrDie();
  EXPECT_LT(result.stop_position, 1000u);
}

TEST(NraTest, MinScorerSupported) {
  const Database db = MakeUniformDatabase(200, 3, 25);
  MinScorer min;
  const TopKQuery query{5, &min};
  const auto naive =
      MakeAlgorithm(AlgorithmKind::kNaive)->Execute(db, query).ValueOrDie();
  const auto nra =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, query).ValueOrDie();
  for (size_t i = 0; i < query.k; ++i) {
    EXPECT_DOUBLE_EQ(nra.items[i].score, naive.items[i].score);
  }
}

TEST(NraTest, KEqualsNScansToTheEnd) {
  const Database db = MakeUniformDatabase(64, 3, 26);
  SumScorer sum;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kNra)->Execute(db, TopKQuery{64, &sum})
          .ValueOrDie();
  EXPECT_EQ(result.items.size(), 64u);
}

}  // namespace
}  // namespace topk
