// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/database.h"

#include <gtest/gtest.h>

#include <vector>

#include "lists/scorer.h"

namespace topk {
namespace {

Database TwoByThree() {
  // scores[item][list]
  return Database::FromScoreMatrix({{1.0, 6.0},
                                    {2.0, 5.0},
                                    {3.0, 4.0}})
      .ValueOrDie();
}

TEST(DatabaseTest, FromScoreMatrixShape) {
  Database db = TwoByThree();
  EXPECT_EQ(db.num_lists(), 2u);
  EXPECT_EQ(db.num_items(), 3u);
}

TEST(DatabaseTest, ListsAreSorted) {
  Database db = TwoByThree();
  EXPECT_EQ(db.list(0).EntryAt(1).item, 2u);  // 3.0 is top of list 0
  EXPECT_EQ(db.list(1).EntryAt(1).item, 0u);  // 6.0 is top of list 1
}

TEST(DatabaseTest, MakeRejectsEmpty) {
  Result<Database> r = Database::Make({});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(DatabaseTest, MakeRejectsEmptyLists) {
  Result<Database> r = Database::Make({SortedList{}});
  ASSERT_FALSE(r.ok());
}

TEST(DatabaseTest, MakeRejectsSizeMismatch) {
  std::vector<SortedList> lists;
  lists.push_back(SortedList::FromScores({1.0, 2.0}));
  lists.push_back(SortedList::FromScores({1.0, 2.0, 3.0}));
  Result<Database> r = Database::Make(std::move(lists));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(DatabaseTest, FromScoreMatrixRejectsRagged) {
  Result<Database> r = Database::FromScoreMatrix({{1.0, 2.0}, {3.0}});
  ASSERT_FALSE(r.ok());
}

TEST(DatabaseTest, FromScoreMatrixRejectsEmpty) {
  EXPECT_FALSE(Database::FromScoreMatrix({}).ok());
  EXPECT_FALSE(Database::FromScoreMatrix({{}}).ok());
}

TEST(DatabaseTest, OverallScore) {
  Database db = TwoByThree();
  SumScorer sum;
  const Score s = db.OverallScore(
      0, [&](const std::vector<Score>& v) { return sum.Combine(v); });
  EXPECT_DOUBLE_EQ(s, 7.0);
}

TEST(DatabaseTest, AllScoresNonNegative) {
  EXPECT_TRUE(TwoByThree().AllScoresNonNegative());
  Database with_neg =
      Database::FromScoreMatrix({{-1.0, 1.0}, {2.0, 3.0}}).ValueOrDie();
  EXPECT_FALSE(with_neg.AllScoresNonNegative());
}

TEST(DatabaseTest, EveryItemInEveryList) {
  Database db = TwoByThree();
  for (size_t li = 0; li < db.num_lists(); ++li) {
    for (ItemId item = 0; item < db.num_items(); ++item) {
      const Position p = db.list(li).PositionOf(item);
      ASSERT_GE(p, 1u);
      ASSERT_LE(p, db.num_items());
    }
  }
}

}  // namespace
}  // namespace topk
