// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// All-seven-algorithm differential harness. Hundreds of small randomized
// databases — uniform/gaussian/correlated score distributions, optionally
// quantized so that score ties and duplicates are everywhere, plus an
// adversarial "nasty" family (constant lists, signed scores, tiny n) — are
// run through every algorithm and compared against the naive full scan
// *exactly*: identical item sequences under the deterministic (score desc,
// item id asc) result order, not just identical score multisets. The grid
// sweeps k ∈ {1, 2, n-1, n} and m ∈ {1, 2, 5} as the paper's degenerate
// corners.
//
// On top of the differential, paper invariants are fuzzed:
//  * TA/BPA threshold monotonicity (δ and λ never increase along a scan);
//  * NRA bound soundness (the k-th lower bound never decreases, the unseen
//    upper bound never increases, and the final k-th lower bound never
//    exceeds the exact k-th score);
//  * BPA dominance (Lemma 1/Theorem 2) and BPA2's no-reaccess Theorem 5.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/algorithms.h"
#include "core/candidate_bounds.h"
#include "lists/scorer.h"

namespace topk {
namespace {

enum class Distribution { kUniform, kGaussian, kCorrelated };

const char* Name(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kGaussian:
      return "gaussian";
    case Distribution::kCorrelated:
      return "correlated";
  }
  return "?";
}

// Random database of n items and m lists drawn from `dist`; when `ties` is
// set, scores are quantized to a coarse grid so equal aggregate scores (and
// equal local scores within and across lists) are the norm, not the
// exception.
Database MakeFuzzDatabase(Rng* rng, size_t n, size_t m, Distribution dist,
                          bool ties) {
  std::vector<std::vector<Score>> scores(n, std::vector<Score>(m));
  std::vector<double> base(n);
  for (auto& b : base) {
    b = rng->NextDouble();
  }
  const double levels = 2.0 + static_cast<double>(rng->NextBounded(3));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      double s = 0.0;
      switch (dist) {
        case Distribution::kUniform:
          s = rng->NextDouble();
          break;
        case Distribution::kGaussian:
          s = rng->NextGaussian(0.0, 2.0);
          break;
        case Distribution::kCorrelated:
          s = 0.8 * base[i] + 0.2 * rng->NextDouble();
          break;
      }
      scores[i][j] = ties ? std::round(s * levels) / levels : s;
    }
  }
  return Database::FromScoreMatrix(scores).ValueOrDie();
}

// The adversarial family of the original harness: per-list styles mixing
// continuous, heavily quantized, constant and signed scores.
Database RandomNastyDatabase(Rng* rng) {
  const size_t n = 1 + rng->NextBounded(40);
  const size_t m = 1 + rng->NextBounded(6);
  std::vector<std::vector<Score>> scores(n, std::vector<Score>(m));
  for (size_t j = 0; j < m; ++j) {
    const uint64_t style = rng->NextBounded(4);
    for (size_t i = 0; i < n; ++i) {
      switch (style) {
        case 0:
          scores[i][j] = rng->NextDouble();
          break;
        case 1:
          scores[i][j] = static_cast<double>(rng->NextBounded(4));  // ties
          break;
        case 2:
          scores[i][j] = 7.25;  // constant list: all positions tie
          break;
        default:
          scores[i][j] = rng->NextDouble(-5.0, 5.0);  // negatives
          break;
      }
    }
  }
  return Database::FromScoreMatrix(scores).ValueOrDie();
}

// Runs every algorithm on (db, k, scorer) and asserts the exact naive item
// sequence and scores. `label` is appended to failure messages.
void ExpectAllAlgorithmsExactlyMatchNaive(const Database& db, size_t k,
                                          const Scorer& scorer,
                                          const std::string& label) {
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  const TopKQuery query{k, &scorer};
  const TopKResult naive = MakeAlgorithm(AlgorithmKind::kNaive, options)
                               ->Execute(db, query)
                               .ValueOrDie();
  const std::vector<ItemId> want_items = naive.Items();
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    if (kind == AlgorithmKind::kTput && scorer.name() != "sum") {
      continue;
    }
    const Result<TopKResult> result =
        MakeAlgorithm(kind, options)->Execute(db, query);
    ASSERT_TRUE(result.ok()) << ToString(kind) << " " << label << ": "
                             << result.status().ToString();
    const TopKResult& got = result.ValueUnsafe();
    ASSERT_EQ(got.items.size(), want_items.size()) << ToString(kind);
    for (size_t i = 0; i < want_items.size(); ++i) {
      ASSERT_EQ(got.items[i].item, want_items[i])
          << ToString(kind) << " rank " << i << " " << label
          << " (exact item sequence, not just scores)";
      ASSERT_NEAR(got.items[i].score, naive.items[i].score, 1e-9)
          << ToString(kind) << " rank " << i << " " << label;
    }
  }
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// The grid of the issue: three distributions x tie injection x m in
// {1, 2, 5} x k in {1, 2, n-1, n}, exact item sequences for all seven.
TEST_P(FuzzDifferentialTest, ExactResultSetsAcrossGrid) {
  Rng rng(GetParam());
  SumScorer sum;
  MinScorer min;
  AverageScorer average;
  const Scorer* scorers[] = {&sum, &min, &average};

  for (Distribution dist : {Distribution::kUniform, Distribution::kGaussian,
                            Distribution::kCorrelated}) {
    for (size_t m : {size_t{1}, size_t{2}, size_t{5}}) {
      for (bool ties : {false, true}) {
        const size_t n = 8 + rng.NextBounded(33);  // 8 .. 40
        const Database db = MakeFuzzDatabase(&rng, n, m, dist, ties);
        size_t ks[] = {1, 2, n - 1, n};
        for (size_t k : ks) {
          if (k < 1 || k > n) {
            continue;
          }
          for (const Scorer* scorer : scorers) {
            ExpectAllAlgorithmsExactlyMatchNaive(
                db, k, *scorer,
                std::string(Name(dist)) + (ties ? "+ties" : "") + " n=" +
                    std::to_string(n) + " m=" + std::to_string(m) + " k=" +
                    std::to_string(k) + " " + scorer->name());
          }
        }
      }
    }
  }
}

TEST_P(FuzzDifferentialTest, ExactResultSetsOnNastyDatabases) {
  Rng rng(GetParam() ^ 0x5eed);
  SumScorer sum;
  MinScorer min;
  MaxScorer max;
  AverageScorer average;
  const Scorer* scorers[] = {&sum, &min, &max, &average};
  for (int round = 0; round < 25; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    const size_t n = db.num_items();
    const size_t k = 1 + rng.NextBounded(n);  // anywhere in [1, n]
    for (const Scorer* scorer : scorers) {
      ExpectAllAlgorithmsExactlyMatchNaive(
          db, k, *scorer,
          "nasty n=" + std::to_string(n) + " m=" +
              std::to_string(db.num_lists()) + " k=" + std::to_string(k) +
              " " + scorer->name());
    }
  }
}

TEST_P(FuzzDifferentialTest, TaAndBpaThresholdsAreMonotoneUnderFuzz) {
  Rng rng(GetParam() ^ 0x7777);
  SumScorer sum;
  AlgorithmOptions options;
  options.collect_trace = true;
  for (int round = 0; round < 15; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    options.score_floor = DeriveScoreFloor(db);
    const size_t k = 1 + rng.NextBounded(db.num_items());
    for (AlgorithmKind kind : {AlgorithmKind::kTa, AlgorithmKind::kBpa}) {
      const TopKResult result = MakeAlgorithm(kind, options)
                                    ->Execute(db, TopKQuery{k, &sum})
                                    .ValueOrDie();
      for (size_t i = 1; i < result.trace.size(); ++i) {
        ASSERT_LE(result.trace[i].threshold, result.trace[i - 1].threshold)
            << ToString(kind) << " threshold rose at row " << i;
      }
    }
  }
}

TEST_P(FuzzDifferentialTest, NraBoundsAreSoundUnderFuzz) {
  Rng rng(GetParam() ^ 0x4444);
  SumScorer sum;
  AlgorithmOptions options;
  options.collect_trace = true;
  for (int round = 0; round < 15; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    options.score_floor = DeriveScoreFloor(db);
    const size_t k = 1 + rng.NextBounded(db.num_items());
    const TopKResult result = MakeAlgorithm(AlgorithmKind::kNra, options)
                                  ->Execute(db, TopKQuery{k, &sum})
                                  .ValueOrDie();
    ASSERT_FALSE(result.trace.empty());
    for (size_t i = 1; i < result.trace.size(); ++i) {
      // Unseen-item upper bound (f over the last seen row) never grows.
      ASSERT_LE(result.trace[i].threshold, result.trace[i - 1].threshold)
          << "NRA unseen upper bound rose at check " << i;
      // The k-th best lower bound never shrinks once the heap is full.
      if (!std::isnan(result.trace[i - 1].kth_score)) {
        ASSERT_FALSE(std::isnan(result.trace[i].kth_score));
        ASSERT_GE(result.trace[i].kth_score + 1e-12,
                  result.trace[i - 1].kth_score)
            << "NRA k-th lower bound shrank at check " << i;
      }
    }
    // Lower bounds never overshoot the truth: the final k-th lower bound is
    // at most the exact k-th overall score.
    const StopRuleTrace& last = result.trace.back();
    if (!std::isnan(last.kth_score)) {
      ASSERT_LE(last.kth_score, result.items.back().score + 1e-9);
    }
  }
}

TEST_P(FuzzDifferentialTest, DominanceInvariantsHold) {
  Rng rng(GetParam() ^ 0xabcdef);
  SumScorer sum;
  for (int round = 0; round < 25; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    const size_t k = 1 + rng.NextBounded(db.num_items());
    const TopKQuery query{k, &sum};
    const TopKResult ta =
        MakeAlgorithm(AlgorithmKind::kTa)->Execute(db, query).ValueOrDie();
    const TopKResult bpa =
        MakeAlgorithm(AlgorithmKind::kBpa)->Execute(db, query).ValueOrDie();
    const TopKResult bpa2 =
        MakeAlgorithm(AlgorithmKind::kBpa2)->Execute(db, query).ValueOrDie();
    ASSERT_LE(bpa.stats.sorted_accesses, ta.stats.sorted_accesses);
    ASSERT_LE(bpa.execution_cost, ta.execution_cost);
    ASSERT_LE(bpa2.stats.TotalAccesses(), bpa.stats.TotalAccesses());
  }
}

TEST_P(FuzzDifferentialTest, Bpa2NeverReaccessesUnderFuzz) {
  Rng rng(GetParam() ^ 0x123456);
  SumScorer sum;
  AlgorithmOptions options;
  options.audit_accesses = true;
  for (int round = 0; round < 15; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    const size_t k = 1 + rng.NextBounded(db.num_items());
    const TopKResult result = MakeAlgorithm(AlgorithmKind::kBpa2, options)
                                  ->Execute(db, TopKQuery{k, &sum})
                                  .ValueOrDie();
    for (uint32_t touches : result.max_touches_per_list) {
      ASSERT_LE(touches, 1u);
    }
  }
}

// Governance/fault-injection sweep: random access budgets and random fault
// schedules (transient faults, latency spikes, list deaths) over random
// databases, for all seven algorithms. Whatever the degradation, the
// θ-certificate must stay sound against the naive oracle's true scores:
// every returned score is a lower bound, every unreturned item's true score
// is covered by unreturned_upper_bound (and by θ · kth_lower_bound), and an
// exact completion must BE the exact deterministic top-k. A rerun on a fresh
// context must reproduce the partial result byte-for-byte.
TEST_P(FuzzDifferentialTest, GovernedAndFaultedBoundsAreSoundVsNaive) {
  Rng rng(GetParam() ^ 0x60f3);
  SumScorer sum;
  const double eps = 1e-9;
  for (int round = 0; round < 12; ++round) {
    const Distribution dist =
        round % 2 == 0 ? Distribution::kUniform : Distribution::kGaussian;
    const size_t n = 16 + rng.NextBounded(49);  // 16 .. 64
    const size_t m = 1 + rng.NextBounded(5);
    const Database db = MakeFuzzDatabase(&rng, n, m, dist, round % 3 == 0);
    const size_t k = 1 + rng.NextBounded(n);
    const TopKQuery query{k, &sum};
    AlgorithmOptions options;
    options.score_floor = DeriveScoreFloor(db);
    options.governor.total_access_budget = 1 + rng.NextBounded(400);
    options.fault_plan.seed = rng.NextBounded(1 << 20);
    options.fault_plan.transient_rate = 0.25 * rng.NextDouble();
    options.fault_plan.spike_rate = 0.25 * rng.NextDouble();
    options.fault_plan.spike_ms = 0.01;
    options.fault_plan.death_rate =
        round % 2 == 0 ? 0.4 * rng.NextDouble() : 0.0;
    options.fault_plan.death_min_accesses = 1;
    options.fault_plan.death_max_accesses = 1 + rng.NextBounded(64);

    const TopKResult naive = MakeAlgorithm(AlgorithmKind::kNaive, options)
                                 ->Execute(db, query)
                                 .ValueOrDie();
    std::vector<Score> truth(n);
    std::vector<Score> locals(m);
    for (ItemId item = 0; item < static_cast<ItemId>(n); ++item) {
      for (size_t j = 0; j < m; ++j) {
        locals[j] = db.list(j).ScoreOf(item);
      }
      truth[item] = sum.Combine(locals.data(), m);
    }

    const std::string label = "round " + std::to_string(round) + " n=" +
                              std::to_string(n) + " m=" + std::to_string(m) +
                              " k=" + std::to_string(k) + " budget=" +
                              std::to_string(options.governor.total_access_budget);
    for (AlgorithmKind kind : AllAlgorithmKinds()) {
      if (kind == AlgorithmKind::kNaive) {
        continue;
      }
      SCOPED_TRACE(ToString(kind) + " " + label);
      const Result<TopKResult> run = MakeAlgorithm(kind, options)->Execute(db, query);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      const TopKResult& got = run.ValueUnsafe();
      ASSERT_LE(got.items.size(), k);
      ASSERT_GE(got.theta, 1.0);
      if (got.completion == Completion::kExact) {
        ASSERT_EQ(got.theta, 1.0);
        ASSERT_EQ(got.Items(), naive.Items());
        for (size_t i = 0; i < k; ++i) {
          ASSERT_NEAR(got.items[i].score, naive.items[i].score, eps);
        }
      } else {
        std::vector<bool> returned(n, false);
        for (const ResultItem& item : got.items) {
          returned[item.item] = true;
          ASSERT_LE(item.score, truth[item.item] + eps)
              << "returned score is not a lower bound for item " << item.item;
        }
        for (ItemId item = 0; item < static_cast<ItemId>(n); ++item) {
          if (returned[item]) {
            continue;
          }
          ASSERT_LE(truth[item], got.unreturned_upper_bound + eps)
              << "unreturned item " << item << " beats the certificate";
          if (got.kth_lower_bound > 0.0) {
            ASSERT_LE(truth[item], got.theta * got.kth_lower_bound + eps)
                << "theta fails to cover unreturned item " << item;
          }
        }
      }
      // Deterministic degradation: a fresh run reproduces the partial result
      // byte-for-byte (same seed, same schedule, same budget).
      const TopKResult again =
          MakeAlgorithm(kind, options)->Execute(db, query).ValueOrDie();
      ASSERT_EQ(again.completion, got.completion);
      ASSERT_EQ(again.Items(), got.Items());
      ASSERT_EQ(again.Scores(), got.Scores());
      ASSERT_EQ(again.theta, got.theta);
      ASSERT_EQ(again.kth_lower_bound, got.kth_lower_bound);
      ASSERT_EQ(again.unreturned_upper_bound, got.unreturned_upper_bound);
      ASSERT_TRUE(again.stats == got.stats);
      ASSERT_EQ(again.failed_over, got.failed_over);
      ASSERT_EQ(again.dead_lists, got.dead_lists);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace topk
