// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Differential fuzzing: hundreds of small random databases with adversarial
// properties (duplicate scores, constant lists, tiny n, extreme k, every
// scorer) — every algorithm must return the naive scan's top-k score
// multiset, and the BPA/TA dominance invariants must hold on every instance.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/algorithms.h"
#include "lists/scorer.h"

namespace topk {
namespace {

// Random database with deliberately nasty score patterns.
Database RandomNastyDatabase(Rng* rng) {
  const size_t n = 1 + rng->NextBounded(40);
  const size_t m = 1 + rng->NextBounded(6);
  std::vector<std::vector<Score>> scores(n, std::vector<Score>(m));
  // Score "style" per list: continuous, heavily quantized (many ties),
  // constant, or signed.
  for (size_t j = 0; j < m; ++j) {
    const uint64_t style = rng->NextBounded(4);
    for (size_t i = 0; i < n; ++i) {
      switch (style) {
        case 0:
          scores[i][j] = rng->NextDouble();
          break;
        case 1:
          scores[i][j] = static_cast<double>(rng->NextBounded(4));  // ties
          break;
        case 2:
          scores[i][j] = 7.25;  // constant list: all positions tie
          break;
        default:
          scores[i][j] = rng->NextDouble(-5.0, 5.0);  // negatives
          break;
      }
    }
  }
  return Database::FromScoreMatrix(scores).ValueOrDie();
}

double FloorOf(const Database& db) {
  double floor = 0.0;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    floor = std::min(floor, db.list(i).MinScore());
  }
  return floor;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, AllAlgorithmsMatchNaive) {
  Rng rng(GetParam());
  std::vector<std::unique_ptr<Scorer>> scorers;
  scorers.push_back(std::make_unique<SumScorer>());
  scorers.push_back(std::make_unique<MinScorer>());
  scorers.push_back(std::make_unique<MaxScorer>());
  scorers.push_back(std::make_unique<AverageScorer>());

  for (int round = 0; round < 25; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    const size_t n = db.num_items();
    const size_t k = 1 + rng.NextBounded(n);  // anywhere in [1, n]
    AlgorithmOptions options;
    options.score_floor = FloorOf(db);

    for (const auto& scorer : scorers) {
      const TopKQuery query{k, scorer.get()};
      const std::vector<Score> want =
          MakeAlgorithm(AlgorithmKind::kNaive, options)
              ->Execute(db, query)
              .ValueOrDie()
              .Scores();
      for (AlgorithmKind kind : AllAlgorithmKinds()) {
        if (kind == AlgorithmKind::kTput && scorer->name() != "sum") {
          continue;
        }
        const Result<TopKResult> result =
            MakeAlgorithm(kind, options)->Execute(db, query);
        ASSERT_TRUE(result.ok())
            << ToString(kind) << " n=" << n << " k=" << k << " scorer "
            << scorer->name() << ": " << result.status().ToString();
        const std::vector<Score> got = result.ValueUnsafe().Scores();
        ASSERT_EQ(got.size(), want.size()) << ToString(kind);
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_NEAR(got[i], want[i], 1e-9)
              << ToString(kind) << " rank " << i << " n=" << n << " k=" << k
              << " m=" << db.num_lists() << " scorer " << scorer->name();
        }
      }
    }
  }
}

TEST_P(FuzzDifferentialTest, DominanceInvariantsHold) {
  Rng rng(GetParam() ^ 0xabcdef);
  SumScorer sum;
  for (int round = 0; round < 25; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    const size_t k = 1 + rng.NextBounded(db.num_items());
    const TopKQuery query{k, &sum};
    const TopKResult ta =
        MakeAlgorithm(AlgorithmKind::kTa)->Execute(db, query).ValueOrDie();
    const TopKResult bpa =
        MakeAlgorithm(AlgorithmKind::kBpa)->Execute(db, query).ValueOrDie();
    const TopKResult bpa2 =
        MakeAlgorithm(AlgorithmKind::kBpa2)->Execute(db, query).ValueOrDie();
    ASSERT_LE(bpa.stats.sorted_accesses, ta.stats.sorted_accesses);
    ASSERT_LE(bpa.execution_cost, ta.execution_cost);
    ASSERT_LE(bpa2.stats.TotalAccesses(), bpa.stats.TotalAccesses());
  }
}

TEST_P(FuzzDifferentialTest, Bpa2NeverReaccessesUnderFuzz) {
  Rng rng(GetParam() ^ 0x123456);
  SumScorer sum;
  AlgorithmOptions options;
  options.audit_accesses = true;
  for (int round = 0; round < 15; ++round) {
    const Database db = RandomNastyDatabase(&rng);
    const size_t k = 1 + rng.NextBounded(db.num_items());
    const TopKResult result = MakeAlgorithm(AlgorithmKind::kBpa2, options)
                                  ->Execute(db, TopKQuery{k, &sum})
                                  .ValueOrDie();
    for (uint32_t touches : result.max_touches_per_list) {
      ASSERT_LE(touches, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace topk
