// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/list_owner.h"

#include <gtest/gtest.h>

#include "lists/sorted_list.h"

namespace topk {
namespace {

SortedList FiveItems() {
  // Sorted order: item 4 (50), 3 (40), 2 (30), 1 (20), 0 (10).
  return SortedList::FromScores({10.0, 20.0, 30.0, 40.0, 50.0});
}

TEST(ListOwnerTest, SortedNextWalksTheList) {
  const SortedList list = FiveItems();
  ListOwnerNode owner(&list, TrackerKind::kBitArray);
  const OwnerEntry first = owner.SortedNext();
  EXPECT_EQ(first.item, 4u);
  EXPECT_DOUBLE_EQ(first.score, 50.0);
  EXPECT_EQ(first.position, 1u);
  const OwnerEntry second = owner.SortedNext();
  EXPECT_EQ(second.item, 3u);
  EXPECT_EQ(second.position, 2u);
  EXPECT_EQ(owner.stats().sorted_accesses, 2u);
  EXPECT_FALSE(owner.SortedExhausted());
}

TEST(ListOwnerTest, SortedExhaustion) {
  const SortedList list = FiveItems();
  ListOwnerNode owner(&list, TrackerKind::kBitArray);
  for (int i = 0; i < 5; ++i) {
    owner.SortedNext();
  }
  EXPECT_TRUE(owner.SortedExhausted());
}

TEST(ListOwnerTest, RandomCountsAndReturnsLookup) {
  const SortedList list = FiveItems();
  ListOwnerNode owner(&list, TrackerKind::kBitArray);
  const ItemLookup lookup = owner.Random(0);
  EXPECT_DOUBLE_EQ(lookup.score, 10.0);
  EXPECT_EQ(lookup.position, 5u);
  EXPECT_EQ(owner.stats().random_accesses, 1u);
}

TEST(ListOwnerTest, BestPositionStartsAtZeroWithTopScore) {
  const SortedList list = FiveItems();
  ListOwnerNode owner(&list, TrackerKind::kBitArray);
  EXPECT_EQ(owner.best_position(), 0u);
  EXPECT_DOUBLE_EQ(owner.BestPositionScore(), 50.0);  // valid upper bound
  EXPECT_FALSE(owner.BestPositionAtEnd());
}

TEST(ListOwnerTest, DirectNextAlwaysHitsSmallestUnseenPosition) {
  const SortedList list = FiveItems();
  ListOwnerNode owner(&list, TrackerKind::kBitArray);
  const auto r1 = owner.DirectNext();
  EXPECT_EQ(r1.position, 1u);
  EXPECT_EQ(r1.best_position, 1u);
  EXPECT_DOUBLE_EQ(r1.best_position_score, 50.0);
  // A random access marking position 2 advances bp; the next direct access
  // skips to position 3.
  const auto rand = owner.RandomWithBestPosition(3);  // item 3 at position 2
  EXPECT_EQ(rand.best_position, 2u);
  EXPECT_DOUBLE_EQ(rand.best_position_score, 40.0);
  const auto r2 = owner.DirectNext();
  EXPECT_EQ(r2.position, 3u);
  EXPECT_EQ(r2.item, 2u);
  EXPECT_EQ(r2.best_position, 3u);
  EXPECT_EQ(owner.stats().direct_accesses, 2u);
  EXPECT_EQ(owner.stats().random_accesses, 1u);
}

TEST(ListOwnerTest, RandomBeyondGapDoesNotAdvanceBestPosition) {
  const SortedList list = FiveItems();
  ListOwnerNode owner(&list, TrackerKind::kBitArray);
  const auto rand = owner.RandomWithBestPosition(0);  // position 5
  EXPECT_EQ(rand.best_position, 0u);
  EXPECT_DOUBLE_EQ(rand.best_position_score, 50.0);
}

TEST(ListOwnerTest, BestPositionAtEndAfterFullCoverage) {
  const SortedList list = FiveItems();
  ListOwnerNode owner(&list, TrackerKind::kBPlusTree);
  while (!owner.BestPositionAtEnd()) {
    owner.DirectNext();
  }
  EXPECT_EQ(owner.best_position(), 5u);
  EXPECT_EQ(owner.stats().direct_accesses, 5u);
  EXPECT_DOUBLE_EQ(owner.BestPositionScore(), 10.0);
}

TEST(ListOwnerTest, WorksWithEveryTrackerKind) {
  const SortedList list = FiveItems();
  for (TrackerKind kind : {TrackerKind::kBitArray, TrackerKind::kBPlusTree,
                           TrackerKind::kSortedSet}) {
    ListOwnerNode owner(&list, kind);
    owner.DirectNext();
    owner.RandomWithBestPosition(3);
    EXPECT_EQ(owner.best_position(), 2u) << ToString(kind);
  }
}

}  // namespace
}  // namespace topk
