// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/access_engine.h"

#include <gtest/gtest.h>

#include "lists/access_stats.h"
#include "lists/database.h"

namespace topk {
namespace {

Database SmallDb() {
  // 4 items, 2 lists.
  return Database::FromScoreMatrix({{4.0, 1.0},
                                    {3.0, 2.0},
                                    {2.0, 3.0},
                                    {1.0, 4.0}})
      .ValueOrDie();
}

TEST(AccessEngineTest, SortedAccessWalksDescending) {
  Database db = SmallDb();
  AccessEngine engine(db);
  const AccessedEntry e1 = engine.SortedAccess(0);
  EXPECT_EQ(e1.item, 0u);
  EXPECT_DOUBLE_EQ(e1.score, 4.0);
  EXPECT_EQ(e1.position, 1u);
  const AccessedEntry e2 = engine.SortedAccess(0);
  EXPECT_EQ(e2.item, 1u);
  EXPECT_EQ(e2.position, 2u);
  EXPECT_EQ(engine.stats().sorted_accesses, 2u);
}

TEST(AccessEngineTest, CursorsAreIndependentPerList) {
  Database db = SmallDb();
  AccessEngine engine(db);
  engine.SortedAccess(0);
  engine.SortedAccess(0);
  engine.SortedAccess(1);
  EXPECT_EQ(engine.SortedDepth(0), 2u);
  EXPECT_EQ(engine.SortedDepth(1), 1u);
  EXPECT_EQ(engine.MaxSortedDepth(), 2u);
}

TEST(AccessEngineTest, SortedExhaustion) {
  Database db = SmallDb();
  AccessEngine engine(db);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(engine.SortedExhausted(0));
    engine.SortedAccess(0);
  }
  EXPECT_TRUE(engine.SortedExhausted(0));
  EXPECT_FALSE(engine.SortedExhausted(1));
}

TEST(AccessEngineTest, RandomAccessCountsAndReturns) {
  Database db = SmallDb();
  AccessEngine engine(db);
  const ItemLookup lookup = engine.RandomAccess(1, 0);
  EXPECT_DOUBLE_EQ(lookup.score, 1.0);
  EXPECT_EQ(lookup.position, 4u);
  EXPECT_EQ(engine.stats().random_accesses, 1u);
  EXPECT_EQ(engine.stats().sorted_accesses, 0u);
}

TEST(AccessEngineTest, DirectAccessCountsAndReturns) {
  Database db = SmallDb();
  AccessEngine engine(db);
  const AccessedEntry e = engine.DirectAccess(1, 2);
  EXPECT_EQ(e.item, 2u);
  EXPECT_DOUBLE_EQ(e.score, 3.0);
  EXPECT_EQ(e.position, 2u);
  EXPECT_EQ(engine.stats().direct_accesses, 1u);
}

TEST(AccessEngineTest, AuditCountsTouches) {
  Database db = SmallDb();
  AccessEngine engine(db, /*audit=*/true);
  engine.SortedAccess(0);            // touches list 0 pos 1
  engine.DirectAccess(0, 1);         // touches list 0 pos 1 again
  engine.RandomAccess(0, 0);         // item 0 is at pos 1 in list 0
  EXPECT_EQ(engine.TouchCount(0, 1), 3u);
  EXPECT_EQ(engine.TouchCount(0, 2), 0u);
  EXPECT_EQ(engine.MaxTouchCount(0), 3u);
  EXPECT_EQ(engine.MaxTouchCount(1), 0u);
}

TEST(AccessEngineTest, StatsAggregate) {
  Database db = SmallDb();
  AccessEngine engine(db);
  engine.SortedAccess(0);
  engine.RandomAccess(1, 2);
  engine.RandomAccess(1, 3);
  engine.DirectAccess(0, 4);
  const AccessStats& stats = engine.stats();
  EXPECT_EQ(stats.sorted_accesses, 1u);
  EXPECT_EQ(stats.random_accesses, 2u);
  EXPECT_EQ(stats.direct_accesses, 1u);
  EXPECT_EQ(stats.TotalAccesses(), 4u);
}

TEST(AccessStatsTest, CostModelPaperDefault) {
  const CostModel model = CostModel::PaperDefault(1 << 16);
  EXPECT_DOUBLE_EQ(model.sorted_cost, 1.0);
  EXPECT_DOUBLE_EQ(model.random_cost, 16.0);  // log2(65536)
  AccessStats stats;
  stats.sorted_accesses = 10;
  stats.random_accesses = 3;
  stats.direct_accesses = 2;  // billed like random accesses
  EXPECT_DOUBLE_EQ(model.ExecutionCost(stats), 10.0 + 5 * 16.0);
}

TEST(AccessStatsTest, UnitCostModelCountsAccesses) {
  const CostModel model = CostModel::Unit();
  AccessStats stats;
  stats.sorted_accesses = 4;
  stats.random_accesses = 5;
  stats.direct_accesses = 6;
  EXPECT_DOUBLE_EQ(model.ExecutionCost(stats), 15.0);
}

TEST(AccessStatsTest, AdditionAndEquality) {
  AccessStats a{1, 2, 3};
  AccessStats b{10, 20, 30};
  AccessStats c = a + b;
  EXPECT_EQ(c, (AccessStats{11, 22, 33}));
  c += a;
  EXPECT_EQ(c, (AccessStats{12, 24, 36}));
}

TEST(AccessStatsTest, ToStringMentionsAllCounters) {
  AccessStats stats{1, 2, 3};
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("sorted=1"), std::string::npos);
  EXPECT_NE(s.find("random=2"), std::string::npos);
  EXPECT_NE(s.find("direct=3"), std::string::npos);
  EXPECT_NE(s.find("total=6"), std::string::npos);
}

}  // namespace
}  // namespace topk
