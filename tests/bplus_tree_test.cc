// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "tracker/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace topk {
namespace {

using SmallTree = BPlusTreeT<4, 4>;  // tiny fanout to force deep trees

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_FALSE(tree.Contains(1));
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Seek(0).Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, SingleInsert) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(5));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Contains(5));
  EXPECT_FALSE(tree.Contains(4));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(5));
  EXPECT_FALSE(tree.Insert(5));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, LeafSplitGrowsHeight) {
  SmallTree tree;
  for (uint32_t k = 1; k <= 4; ++k) {
    tree.Insert(k);
  }
  EXPECT_EQ(tree.height(), 1);
  tree.Insert(5);  // forces a root split
  EXPECT_EQ(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (uint32_t k = 1; k <= 5; ++k) {
    EXPECT_TRUE(tree.Contains(k));
  }
}

TEST(BPlusTreeTest, SequentialAscendingInserts) {
  SmallTree tree;
  const uint32_t n = 1000;
  for (uint32_t k = 1; k <= n; ++k) {
    ASSERT_TRUE(tree.Insert(k));
  }
  EXPECT_EQ(tree.size(), n);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  for (uint32_t k = 1; k <= n; ++k) {
    ASSERT_TRUE(tree.Contains(k));
  }
  EXPECT_FALSE(tree.Contains(0));
  EXPECT_FALSE(tree.Contains(n + 1));
  EXPECT_GE(tree.height(), 4);  // fanout 4 over 1000 keys must be deep
}

TEST(BPlusTreeTest, SequentialDescendingInserts) {
  SmallTree tree;
  const uint32_t n = 1000;
  for (uint32_t k = n; k >= 1; --k) {
    ASSERT_TRUE(tree.Insert(k));
  }
  EXPECT_EQ(tree.size(), n);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  uint32_t expected = 1;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key(), expected++);
  }
  EXPECT_EQ(expected, n + 1);
}

TEST(BPlusTreeTest, RandomInsertsMatchStdSet) {
  SmallTree tree;
  std::set<uint32_t> oracle;
  Rng rng(2024);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(2000));
    const bool inserted_tree = tree.Insert(key);
    const bool inserted_set = oracle.insert(key).second;
    ASSERT_EQ(inserted_tree, inserted_set) << "key " << key;
  }
  ASSERT_EQ(tree.size(), oracle.size());
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  // Iteration equals the oracle's order.
  auto oit = oracle.begin();
  for (auto it = tree.Begin(); it.Valid(); it.Next(), ++oit) {
    ASSERT_NE(oit, oracle.end());
    ASSERT_EQ(it.key(), *oit);
  }
  EXPECT_EQ(oit, oracle.end());
  // Contains agrees on hits and misses.
  for (uint32_t key = 0; key < 2000; ++key) {
    ASSERT_EQ(tree.Contains(key), oracle.count(key) > 0) << "key " << key;
  }
}

TEST(BPlusTreeTest, SeekSemantics) {
  SmallTree tree;
  for (uint32_t k : {10u, 20u, 30u, 40u, 50u}) {
    tree.Insert(k);
  }
  EXPECT_EQ(tree.Seek(10).key(), 10u);
  EXPECT_EQ(tree.Seek(11).key(), 20u);
  EXPECT_EQ(tree.Seek(0).key(), 10u);
  EXPECT_EQ(tree.Seek(50).key(), 50u);
  EXPECT_FALSE(tree.Seek(51).Valid());
}

TEST(BPlusTreeTest, SeekAgreesWithOracleLowerBound) {
  SmallTree tree;
  std::set<uint32_t> oracle;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBounded(5000));
    tree.Insert(key);
    oracle.insert(key);
  }
  for (uint32_t probe = 0; probe < 5100; probe += 13) {
    auto it = tree.Seek(probe);
    auto oit = oracle.lower_bound(probe);
    if (oit == oracle.end()) {
      ASSERT_FALSE(it.Valid()) << "probe " << probe;
    } else {
      ASSERT_TRUE(it.Valid()) << "probe " << probe;
      ASSERT_EQ(it.key(), *oit) << "probe " << probe;
    }
  }
}

TEST(BPlusTreeTest, IteratorWalksLeafChainAcrossSplits) {
  SmallTree tree;
  // Insert in an order designed to split leaves repeatedly.
  for (uint32_t k = 0; k < 200; k += 2) {
    tree.Insert(k);
  }
  for (uint32_t k = 1; k < 200; k += 2) {
    tree.Insert(k);
  }
  uint32_t expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key(), expected++);
  }
  EXPECT_EQ(expected, 200u);
}

TEST(BPlusTreeTest, ClearResets) {
  SmallTree tree;
  for (uint32_t k = 1; k <= 100; ++k) {
    tree.Insert(k);
  }
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.Insert(1));
  EXPECT_TRUE(tree.Contains(1));
}

TEST(BPlusTreeTest, MoveConstruction) {
  SmallTree tree;
  for (uint32_t k = 1; k <= 50; ++k) {
    tree.Insert(k);
  }
  SmallTree moved(std::move(tree));
  EXPECT_EQ(moved.size(), 50u);
  EXPECT_TRUE(moved.Contains(25));
  EXPECT_TRUE(moved.CheckInvariants().ok());
}

TEST(BPlusTreeTest, DefaultFanoutLargeScale) {
  BPlusTree tree;
  const uint32_t n = 200000;
  for (uint32_t k = 0; k < n; ++k) {
    // Insert in a scrambled but deterministic order.
    tree.Insert((k * 2654435761u) % n);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_LE(tree.height(), 4);  // fanout 64: 64^3 >> 200k
}

}  // namespace
}  // namespace topk
