// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// TopKServer: submission/completion plumbing, admission control (both shed
// policies), watchdog deadline cancellation with certified anytime answers,
// and the warmed-worker steady state (arena byte stability). The scorers
// below give the tests deterministic handles on worker timing: GateScorer
// parks a worker mid-query until released, SlowScorer stretches every
// aggregation so a deadline reliably lands mid-run.

#include "core/topk_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

/// Sum scorer whose first aggregation blocks until Open() — pins one worker
/// inside a query so tests can fill the admission queue deterministically.
class GateScorer final : public Scorer {
 public:
  using Scorer::Combine;

  Score Combine(const Score* scores, size_t count) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      entered_ = true;
      entered_cv_.notify_all();
      open_cv_.wait(lock, [&] { return open_; });
    }
    Score total = 0.0;
    for (size_t i = 0; i < count; ++i) {
      total += scores[i];
    }
    return total;
  }

  std::string name() const override { return "gate-sum"; }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    open_cv_.notify_all();
  }

  /// Blocks until a worker is parked inside Combine.
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_; });
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable open_cv_;
  mutable std::condition_variable entered_cv_;
  mutable bool open_ = false;
  mutable bool entered_ = false;
};

/// Sum scorer that sleeps per aggregation, stretching each algorithm round so
/// a millisecond-scale deadline reliably expires mid-run.
class SlowScorer final : public Scorer {
 public:
  using Scorer::Combine;

  explicit SlowScorer(std::chrono::microseconds delay) : delay_(delay) {}

  Score Combine(const Score* scores, size_t count) const override {
    std::this_thread::sleep_for(delay_);
    Score total = 0.0;
    for (size_t i = 0; i < count; ++i) {
      total += scores[i];
    }
    return total;
  }

  std::string name() const override { return "slow-sum"; }

 private:
  std::chrono::microseconds delay_;
};

class TopKServerTest : public ::testing::Test {
 protected:
  TopKServerTest() : db_(MakeUniformDatabase(600, 4, 9042)) {}

  Database db_;
  SumScorer sum_;
};

TEST_F(TopKServerTest, SubmittedRequestsCompleteWithExactResults) {
  ServerOptions options;
  options.num_threads = 2;
  TopKServer server(&db_, options);

  std::vector<std::future<Result<TopKResult>>> futures;
  for (size_t i = 0; i < 12; ++i) {
    ServerRequest request;
    request.kind = (i % 2 == 0) ? AlgorithmKind::kBpa : AlgorithmKind::kTa;
    request.query = TopKQuery{1 + i, &sum_};
    futures.push_back(server.Submit(request));
  }
  auto bpa = MakeAlgorithm(AlgorithmKind::kBpa);
  auto ta = MakeAlgorithm(AlgorithmKind::kTa);
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<TopKResult> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.ValueUnsafe().completion, Completion::kExact);
    const TopKAlgorithm& direct = (i % 2 == 0) ? *bpa : *ta;
    const TopKResult want =
        direct.Execute(db_, TopKQuery{1 + i, &sum_}).ValueOrDie();
    EXPECT_EQ(got.ValueUnsafe().Items(), want.Items()) << "request " << i;
    EXPECT_EQ(got.ValueUnsafe().stats, want.stats) << "request " << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.shed_rejected + stats.shed_degraded, 0u);
}

TEST_F(TopKServerTest, CallbacksFireInSubmissionOrderOnOneWorker) {
  ServerOptions options;
  options.num_threads = 1;  // single worker => FIFO completion
  TopKServer server(&db_, options);

  std::mutex mu;
  std::vector<size_t> order;
  std::condition_variable cv;
  const size_t kRequests = 8;
  for (size_t i = 0; i < kRequests; ++i) {
    ServerRequest request;
    request.kind = AlgorithmKind::kNra;
    request.query = TopKQuery{5 + i, &sum_};
    ASSERT_TRUE(server.SubmitWithCallback(request, [&, i](Result<TopKResult> r) {
      ASSERT_TRUE(r.ok());
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      cv.notify_all();
    }));
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return order.size() == kRequests; });
  for (size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST_F(TopKServerTest, FullQueueRejectsUnderRejectPolicy) {
  GateScorer gate;
  ServerOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.shed_policy = ShedPolicy::kReject;
  TopKServer server(&db_, options);

  // Request 1 parks the only worker; request 2 fills the queue.
  auto running = server.Submit(ServerRequest{
      AlgorithmKind::kTa, TopKQuery{3, &gate}, 0.0});
  gate.AwaitEntered();
  auto queued = server.Submit(ServerRequest{
      AlgorithmKind::kTa, TopKQuery{3, &sum_}, 0.0});

  // Request 3 finds the queue full and is rejected immediately.
  auto shed = server.Submit(ServerRequest{
      AlgorithmKind::kTa, TopKQuery{3, &sum_}, 0.0});
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Result<TopKResult> shed_result = shed.get();
  EXPECT_FALSE(shed_result.ok());
  EXPECT_TRUE(shed_result.status().IsResourceExhausted())
      << shed_result.status().ToString();

  gate.Open();
  EXPECT_TRUE(running.get().ok());
  EXPECT_TRUE(queued.get().ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(TopKServerTest, FullQueueServesDegradedAnytimeAnswer) {
  GateScorer gate;
  ServerOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.shed_policy = ShedPolicy::kServeDegraded;
  options.degraded_access_budget = 32;  // far below the exact run's cost
  TopKServer server(&db_, options);

  auto running = server.Submit(ServerRequest{
      AlgorithmKind::kTa, TopKQuery{3, &gate}, 0.0});
  gate.AwaitEntered();
  auto queued = server.Submit(ServerRequest{
      AlgorithmKind::kTa, TopKQuery{3, &sum_}, 0.0});

  // Request 3 is served inline on this thread under the degraded budget: an
  // ok() anytime result whose certificate names the tripped budget.
  auto shed = server.Submit(ServerRequest{
      AlgorithmKind::kNra, TopKQuery{10, &sum_}, 0.0});
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Result<TopKResult> degraded = shed.get();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded.ValueUnsafe().completion, Completion::kAccessBudget);
  EXPECT_GE(degraded.ValueUnsafe().theta, 1.0);
  EXPECT_LE(degraded.ValueUnsafe().stats.TotalAccesses(), 32u + 64u)
      << "budget enforced at round granularity only";

  gate.Open();
  EXPECT_TRUE(running.get().ok());
  EXPECT_TRUE(queued.get().ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_degraded, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST_F(TopKServerTest, OverdueInFlightRequestIsCancelledWithCertificate) {
  SlowScorer slow(std::chrono::microseconds(500));
  ServerOptions options;
  options.num_threads = 1;
  TopKServer server(&db_, options);

  // Without the deadline this TA run takes hundreds of milliseconds (every
  // aggregation sleeps); with it, the watchdog cancels within a couple of
  // watchdog periods past 20 ms and the worker returns the anytime answer.
  ServerRequest request;
  request.kind = AlgorithmKind::kTa;
  request.query = TopKQuery{20, &slow};
  request.deadline_ms = 20.0;
  Result<TopKResult> got = server.Submit(request).get();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const TopKResult& result = got.ValueUnsafe();
  EXPECT_EQ(result.completion, Completion::kDeadline);
  EXPECT_GE(result.theta, 1.0);
  EXPECT_TRUE(result.theta >= 1.0 || std::isinf(result.theta));
  // The certificate relates the bounds: nothing unreturned can beat
  // theta * (weakest returned lower bound).
  if (!result.items.empty() && result.kth_lower_bound > 0.0) {
    EXPECT_LE(result.unreturned_upper_bound,
              result.theta * result.kth_lower_bound + 1e-9);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// The self-healing watchdog handshake: ExecuteInto's Arm() clears the cancel
// flag at run start, so a RequestCancel that lands between slot publication
// and Arm would be lost if delivered only once. The watchdog re-cancels every
// still-overdue slot each pass, so the cancel must arrive eventually no
// matter how the first delivery interleaves with Arm. A parked worker plus a
// deadline far shorter than the park forces that window every iteration;
// under TSan this also proves the slot-mutex/atomic discipline of the
// re-cancel path.
TEST_F(TopKServerTest, WatchdogRecancelSurvivesArmRace) {
  for (int iteration = 0; iteration < 25; ++iteration) {
    GateScorer gate;
    ServerOptions options;
    options.num_threads = 1;
    options.watchdog_period_ms = 0.25;
    TopKServer server(&db_, options);

    ServerRequest request;
    request.kind = AlgorithmKind::kTa;
    request.query = TopKQuery{3, &gate};
    request.deadline_ms = 1.0;
    auto future = server.Submit(request);
    // The worker is parked inside the query's first aggregation; the 1 ms
    // deadline expires while it sits there, so the watchdog fires (and keeps
    // re-firing) across the park. Whether its first cancel raced Arm's clear
    // or not, the flag must be set by the time the worker resumes.
    gate.AwaitEntered();
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    gate.Open();

    Result<TopKResult> got = future.get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const TopKResult& result = got.ValueUnsafe();
    EXPECT_EQ(result.completion, Completion::kDeadline)
        << "iteration " << iteration;
    EXPECT_GE(result.theta, 1.0) << "iteration " << iteration;
    EXPECT_EQ(server.stats().deadline_cancelled, 1u)
        << "iteration " << iteration;
  }
}

TEST_F(TopKServerTest, RequestOverdueAtDequeueFailsWithoutExecuting) {
  GateScorer gate;
  ServerOptions options;
  options.num_threads = 1;
  TopKServer server(&db_, options);

  auto running = server.Submit(ServerRequest{
      AlgorithmKind::kTa, TopKQuery{3, &gate}, 0.0});
  gate.AwaitEntered();
  // Queued behind the parked worker with a deadline far shorter than the
  // park: expired before a worker ever picks it up.
  ServerRequest doomed;
  doomed.kind = AlgorithmKind::kBpa;
  doomed.query = TopKQuery{3, &sum_};
  doomed.deadline_ms = 5.0;
  auto expired = server.Submit(doomed);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.Open();

  Result<TopKResult> expired_result = expired.get();
  EXPECT_FALSE(expired_result.ok());
  EXPECT_TRUE(expired_result.status().IsResourceExhausted())
      << expired_result.status().ToString();
  EXPECT_TRUE(running.get().ok());
  EXPECT_EQ(server.stats().expired_at_dequeue, 1u);
}

TEST_F(TopKServerTest, StopAnswersEverythingAdmitted) {
  std::vector<std::future<Result<TopKResult>>> futures;
  {
    ServerOptions options;
    options.num_threads = 2;
    TopKServer server(&db_, options);
    for (size_t i = 0; i < 16; ++i) {
      ServerRequest request;
      request.kind = AlgorithmKind::kBpa2;
      request.query = TopKQuery{1 + (i % 10), &sum_};
      futures.push_back(server.Submit(request));
    }
    // Destructor: stops admission, drains the queue, joins the workers.
  }
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().ok());
  }
}

TEST_F(TopKServerTest, SubmitAfterStopIsRefused) {
  ServerOptions options;
  options.num_threads = 1;
  TopKServer server(&db_, options);
  server.Stop();
  auto refused = server.Submit(ServerRequest{
      AlgorithmKind::kTa, TopKQuery{3, &sum_}, 0.0});
  Result<TopKResult> result = refused.get();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

// The serving steady state reuses each worker's warmed context: after the
// first pass over a fixed workload the pool arena must not grow by a single
// byte. (The future/promise plumbing allocates per request by design; the
// execution path itself is what must stay allocation-free.)
TEST_F(TopKServerTest, WarmedWorkerArenaIsByteStableAcrossRequests) {
  ServerOptions options;
  options.num_threads = 1;
  TopKServer server(&db_, options);

  auto run_wave = [&] {
    std::vector<std::future<Result<TopKResult>>> futures;
    for (size_t i = 0; i < 6; ++i) {
      ServerRequest request;
      request.kind = (i % 2 == 0) ? AlgorithmKind::kNra : AlgorithmKind::kCa;
      request.query = TopKQuery{8 + i, &sum_};
      futures.push_back(server.Submit(request));
    }
    for (auto& future : futures) {
      ASSERT_TRUE(future.get().ok());
    }
  };

  run_wave();  // warm-up sizes the arena to the workload
  const size_t warmed_bytes =
      server.worker_context(0).pool().arena_bytes_reserved();
  EXPECT_GT(warmed_bytes, 0u);
  for (int wave = 0; wave < 3; ++wave) {
    run_wave();
    EXPECT_EQ(server.worker_context(0).pool().arena_bytes_reserved(),
              warmed_bytes)
        << "wave " << wave;
  }
}

}  // namespace
}  // namespace topk
