// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reproduces Lemma 3 / Theorem 3 *exactly*: over the adversarial family of
// gen/adversarial.h, BPA stops at position u while TA scans to (m-1)*u, so
// BPA's sorted and random access counts (and execution cost) are exactly
// (m-1) times lower.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/algorithms.h"
#include "gen/adversarial.h"
#include "lists/scorer.h"

namespace topk {
namespace {

struct SeparationCase {
  size_t m;
  size_t u;
  size_t n;
  size_t k;
};

std::string CaseName(const ::testing::TestParamInfo<SeparationCase>& info) {
  const SeparationCase& c = info.param;
  std::string name = "m";
  name += std::to_string(c.m);
  name += "_u";
  name += std::to_string(c.u);
  name += "_n";
  name += std::to_string(c.n);
  name += "_k";
  name += std::to_string(c.k);
  return name;
}

class SeparationTest : public ::testing::TestWithParam<SeparationCase> {
 protected:
  void SetUp() override {
    Lemma3Config config;
    config.m = GetParam().m;
    config.u = GetParam().u;
    config.n = GetParam().n;
    Result<Database> db = MakeLemma3Database(config);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).ValueUnsafe();
    query_ = TopKQuery{GetParam().k, &sum_};
  }

  TopKResult Run(AlgorithmKind kind) {
    return MakeAlgorithm(kind)->Execute(db_, query_).ValueOrDie();
  }

  Database db_;
  SumScorer sum_;
  TopKQuery query_;
};

TEST_P(SeparationTest, BpaStopsAtExactlyU) {
  EXPECT_EQ(Run(AlgorithmKind::kBpa).stop_position, GetParam().u);
}

TEST_P(SeparationTest, TaStopsAtExactlyMMinus1TimesU) {
  EXPECT_EQ(Run(AlgorithmKind::kTa).stop_position,
            (GetParam().m - 1) * GetParam().u);
}

TEST_P(SeparationTest, SortedAccessRatioIsExactlyMMinus1) {
  const TopKResult ta = Run(AlgorithmKind::kTa);
  const TopKResult bpa = Run(AlgorithmKind::kBpa);
  EXPECT_EQ(ta.stats.sorted_accesses,
            bpa.stats.sorted_accesses * (GetParam().m - 1));
  EXPECT_EQ(ta.stats.random_accesses,
            bpa.stats.random_accesses * (GetParam().m - 1));
}

TEST_P(SeparationTest, ExecutionCostRatioIsExactlyMMinus1) {
  const TopKResult ta = Run(AlgorithmKind::kTa);
  const TopKResult bpa = Run(AlgorithmKind::kBpa);
  EXPECT_DOUBLE_EQ(ta.execution_cost,
                   bpa.execution_cost * (GetParam().m - 1));
}

TEST_P(SeparationTest, Bpa2StopsInURounds) {
  EXPECT_EQ(Run(AlgorithmKind::kBpa2).stop_position, GetParam().u);
}

TEST_P(SeparationTest, AnswersMatchNaive) {
  const TopKResult naive = Run(AlgorithmKind::kNaive);
  for (AlgorithmKind kind :
       {AlgorithmKind::kFa, AlgorithmKind::kTa, AlgorithmKind::kBpa,
        AlgorithmKind::kBpa2, AlgorithmKind::kTput, AlgorithmKind::kNra,
        AlgorithmKind::kCa}) {
    const TopKResult result = Run(kind);
    ASSERT_EQ(result.items.size(), naive.items.size()) << ToString(kind);
    for (size_t i = 0; i < naive.items.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.items[i].score, naive.items[i].score)
          << ToString(kind) << " rank " << i;
    }
  }
}

TEST_P(SeparationTest, FaStopsNoEarlierThanTa) {
  EXPECT_GE(Run(AlgorithmKind::kFa).stop_position,
            Run(AlgorithmKind::kTa).stop_position);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeparationTest,
    ::testing::Values(SeparationCase{3, 1, 50, 1},
                      SeparationCase{3, 3, 100, 3},
                      SeparationCase{3, 10, 200, 20},
                      SeparationCase{4, 3, 100, 5},
                      SeparationCase{4, 7, 150, 10},
                      SeparationCase{5, 3, 120, 8},
                      SeparationCase{5, 5, 200, 25},
                      SeparationCase{6, 4, 150, 6},
                      SeparationCase{8, 3, 200, 10},
                      SeparationCase{8, 6, 400, 24},
                      SeparationCase{9, 4, 300, 12}),
    CaseName);

TEST(Lemma3ConfigTest, RejectsDegenerateParameters) {
  Lemma3Config config;
  config.m = 2;
  config.u = 3;
  config.n = 100;
  EXPECT_TRUE(MakeLemma3Database(config).status().IsInvalid());
  config.m = 3;
  config.u = 0;
  EXPECT_TRUE(MakeLemma3Database(config).status().IsInvalid());
  config.u = 5;
  config.n = 15;  // < m*u + 1 = 16
  EXPECT_TRUE(MakeLemma3Database(config).status().IsInvalid());
}

TEST(Lemma3ConfigTest, MinimumNAccepted) {
  Lemma3Config config;
  config.m = 3;
  config.u = 2;
  config.n = 7;  // exactly m*u + 1
  EXPECT_TRUE(MakeLemma3Database(config).ok())
      << MakeLemma3Database(config).status().ToString();
}

TEST(Lemma3ConfigTest, GeneratedDatabaseIsValidAndNonNegative) {
  Lemma3Config config;
  config.m = 5;
  config.u = 4;
  config.n = 60;
  const Database db = MakeLemma3Database(config).ValueOrDie();
  EXPECT_EQ(db.num_lists(), 5u);
  EXPECT_EQ(db.num_items(), 60u);
  EXPECT_TRUE(db.AllScoresNonNegative());
  for (size_t li = 0; li < db.num_lists(); ++li) {
    for (Position p = 2; p <= db.num_items(); ++p) {
      ASSERT_GT(db.list(li).EntryAt(p - 1).score, db.list(li).EntryAt(p).score)
          << "list " << li << " position " << p;
    }
  }
}

}  // namespace
}  // namespace topk
