// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/dht.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

TEST(DhtRingTest, RejectsEmptyRing) {
  EXPECT_TRUE(DhtRing::Make(0, 1).status().IsInvalid());
}

TEST(DhtRingTest, SingleNodeOwnsEverything) {
  const DhtRing ring = DhtRing::Make(1, 7).ValueOrDie();
  EXPECT_EQ(ring.OwnerOf(0), 0u);
  EXPECT_EQ(ring.OwnerOf(UINT64_MAX), 0u);
  const auto route = ring.Route(0, 12345);
  EXPECT_EQ(route.node_index, 0u);
  EXPECT_EQ(route.hops, 0u);
}

TEST(DhtRingTest, OwnerIsSuccessor) {
  const DhtRing ring = DhtRing::Make(16, 11).ValueOrDie();
  // Key exactly at a node id belongs to that node.
  for (size_t i = 0; i < ring.num_nodes(); ++i) {
    EXPECT_EQ(ring.OwnerOf(ring.node_id(i)), i);
  }
  // Key one past a node id belongs to the next node (mod wrap).
  for (size_t i = 0; i + 1 < ring.num_nodes(); ++i) {
    EXPECT_EQ(ring.OwnerOf(ring.node_id(i) + 1), i + 1);
  }
  EXPECT_EQ(ring.OwnerOf(ring.node_id(ring.num_nodes() - 1) + 1), 0u);
}

TEST(DhtRingTest, RoutingFindsTheOwnerFromEveryStart) {
  const DhtRing ring = DhtRing::Make(64, 13).ValueOrDie();
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t key = rng.NextUint64();
    const size_t owner = ring.OwnerOf(key);
    const size_t start = static_cast<size_t>(rng.NextBounded(64));
    const auto route = ring.Route(start, key);
    ASSERT_EQ(route.node_index, owner) << "key " << key;
    ASSERT_LE(route.hops, DhtRing::kHopLimit);
  }
}

TEST(DhtRingTest, HopsAreLogarithmic) {
  // Chord guarantee: O(log N) hops. Check the empirical mean is well under
  // 2*log2(N) for a large ring.
  const size_t n = 1024;
  const DhtRing ring = DhtRing::Make(n, 17).ValueOrDie();
  Rng rng(5);
  double total_hops = 0;
  const int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t key = rng.NextUint64();
    const size_t start = static_cast<size_t>(rng.NextBounded(n));
    total_hops += static_cast<double>(ring.Route(start, key).hops);
  }
  const double mean = total_hops / kTrials;
  EXPECT_LT(mean, 2.0 * std::log2(static_cast<double>(n)));
  EXPECT_GT(mean, 1.0);  // routing does real work on a 1024-node ring
}

TEST(DhtRingTest, HashKeyIsDeterministicAndSpread) {
  EXPECT_EQ(DhtRing::HashKey(3), DhtRing::HashKey(3));
  EXPECT_NE(DhtRing::HashKey(3), DhtRing::HashKey(4));
}

class DhtTopKTest : public ::testing::Test {
 protected:
  DhtTopKTest() : db_(MakeUniformDatabase(400, 4, 55)), query_{10, &sum_} {
    options_.num_nodes = 32;
    options_.ring_seed = 3;
  }

  Database db_;
  SumScorer sum_;
  TopKQuery query_;
  DhtTopKOptions options_;
};

TEST_F(DhtTopKTest, Bpa2OverDhtMatchesCentralized) {
  const auto central =
      MakeAlgorithm(AlgorithmKind::kBpa2)->Execute(db_, query_).ValueOrDie();
  const auto dht = RunDhtBpa2(db_, query_, options_).ValueOrDie();
  EXPECT_EQ(dht.access_stats, central.stats);
  ASSERT_EQ(dht.items.size(), central.items.size());
  for (size_t i = 0; i < central.items.size(); ++i) {
    EXPECT_EQ(dht.items[i].item, central.items[i].item);
    EXPECT_DOUBLE_EQ(dht.items[i].score, central.items[i].score);
  }
}

TEST_F(DhtTopKTest, RoutingCostIsChargedOncePerList) {
  const auto dht = RunDhtBpa2(db_, query_, options_).ValueOrDie();
  // At most kHopLimit per list, typically ~log2(32) each; and messages equal
  // hops (one forward per hop).
  EXPECT_LE(dht.routing_hops, db_.num_lists() * DhtRing::kHopLimit);
  EXPECT_EQ(dht.routing_messages, dht.routing_hops);
}

TEST_F(DhtTopKTest, GatherAllMatchesAnswersButMovesTheWholeLists) {
  const auto gather = RunDhtGatherAll(db_, query_, options_).ValueOrDie();
  const auto bpa2 = RunDhtBpa2(db_, query_, options_).ValueOrDie();
  ASSERT_EQ(gather.items.size(), bpa2.items.size());
  for (size_t i = 0; i < gather.items.size(); ++i) {
    EXPECT_DOUBLE_EQ(gather.items[i].score, bpa2.items[i].score);
  }
  // The strawman reads every entry; BPA2 reads a fraction.
  EXPECT_EQ(gather.access_stats.sorted_accesses,
            db_.num_items() * db_.num_lists());
  EXPECT_LT(bpa2.access_stats.TotalAccesses(),
            gather.access_stats.sorted_accesses);
  // ... and the strawman's payload dwarfs BPA2's on this database.
  EXPECT_GT(gather.network.bytes, 0u);
}

TEST_F(DhtTopKTest, ValidationErrors) {
  EXPECT_TRUE(RunDhtBpa2(db_, TopKQuery{0, &sum_}, options_)
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(RunDhtBpa2(db_, TopKQuery{1, nullptr}, options_)
                  .status()
                  .IsInvalid());
  DhtTopKOptions bad = options_;
  bad.num_nodes = 0;
  EXPECT_TRUE(RunDhtBpa2(db_, query_, bad).status().IsInvalid());
}

TEST_F(DhtTopKTest, DeterministicPerRingSeed) {
  const auto a = RunDhtBpa2(db_, query_, options_).ValueOrDie();
  const auto b = RunDhtBpa2(db_, query_, options_).ValueOrDie();
  EXPECT_EQ(a.routing_hops, b.routing_hops);
  EXPECT_EQ(a.network.messages, b.network.messages);
}

TEST_F(DhtTopKTest, MoreNodesMoreRoutingWork) {
  DhtTopKOptions big = options_;
  big.num_nodes = 1024;
  const auto small_ring = RunDhtBpa2(db_, query_, options_).ValueOrDie();
  const auto big_ring = RunDhtBpa2(db_, query_, big).ValueOrDie();
  // Protocol traffic is ring-size independent; only routing grows.
  EXPECT_EQ(small_ring.network.messages, big_ring.network.messages);
  EXPECT_GE(big_ring.routing_hops, small_ring.routing_hops);
}

}  // namespace
}  // namespace topk
