// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Execution-trace tests: replay the paper's threshold tables exactly.
//  * Figure 1.b lists TA's threshold at positions 1..10 as
//    88, 84, 80, 75, 72, 63, 52, 42, 36, 33 — TA stops at 6, so its trace is
//    the first six values.
//  * Example 3 walks BPA's best-positions overall score λ through
//    88 (bp=1,1,1), 84 (bp=2,2,2), 43 (bp=9,9,6).
//  * Figure 2's threshold column is 88, 84, 80, 77, 74, 71, 52.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

TopKResult RunTraced(const Database& db, AlgorithmKind kind, size_t k = 3) {
  AlgorithmOptions options;
  options.collect_trace = true;
  SumScorer sum;
  return MakeAlgorithm(kind, options)->Execute(db, TopKQuery{k, &sum})
      .ValueOrDie();
}

TEST(TraceTest, Figure1TaThresholdColumn) {
  const TopKResult result = RunTraced(MakeFigure1Database(),
                                      AlgorithmKind::kTa);
  const std::vector<double> expected = {88, 84, 80, 75, 72, 63};
  ASSERT_EQ(result.trace.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.trace[i].position, i + 1);
    EXPECT_DOUBLE_EQ(result.trace[i].threshold, expected[i]) << "row " << i;
  }
  // The buffer is full (k = 3 items) from the very first row.
  for (const StopRuleTrace& row : result.trace) {
    EXPECT_EQ(row.buffer_size, 3u);
    EXPECT_FALSE(std::isnan(row.kth_score));
  }
  // Y's k-th score at the stop row meets the threshold.
  EXPECT_GE(result.trace.back().kth_score, result.trace.back().threshold);
}

TEST(TraceTest, Figure1BpaLambdaSequenceFromExample3) {
  const TopKResult result = RunTraced(MakeFigure1Database(),
                                      AlgorithmKind::kBpa);
  const std::vector<double> expected = {88, 84, 43};
  ASSERT_EQ(result.trace.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].threshold, expected[i]) << "row " << i;
  }
  // Example 3's best positions at the stop: bp1 = 9, bp2 = 9, bp3 = 6.
  EXPECT_EQ(result.trace.back().min_best_position, 6u);
  // Before the stop the best position equals the scan depth.
  EXPECT_EQ(result.trace[0].min_best_position, 1u);
  EXPECT_EQ(result.trace[1].min_best_position, 2u);
}

TEST(TraceTest, Figure1Bpa2LambdaPerRound) {
  const TopKResult result = RunTraced(MakeFigure1Database(),
                                      AlgorithmKind::kBpa2);
  const std::vector<double> expected = {88, 84, 43};
  ASSERT_EQ(result.trace.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].threshold, expected[i]) << "round " << i;
  }
}

TEST(TraceTest, Figure2TaThresholdColumn) {
  const TopKResult result = RunTraced(MakeFigure2Database(),
                                      AlgorithmKind::kTa);
  const std::vector<double> expected = {88, 84, 80, 77, 74, 71, 52};
  ASSERT_EQ(result.trace.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].threshold, expected[i]) << "row " << i;
  }
}

TEST(TraceTest, Figure2BpaLambdaPlateausThenDrops) {
  const TopKResult result = RunTraced(MakeFigure2Database(),
                                      AlgorithmKind::kBpa);
  const std::vector<double> expected = {88, 84, 71, 71, 71, 71, 33};
  ASSERT_EQ(result.trace.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].threshold, expected[i]) << "row " << i;
  }
}

TEST(TraceTest, Figure2Bpa2FourRounds) {
  const TopKResult result = RunTraced(MakeFigure2Database(),
                                      AlgorithmKind::kBpa2);
  const std::vector<double> expected = {88, 84, 71, 33};
  ASSERT_EQ(result.trace.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.trace[i].threshold, expected[i]) << "round " << i;
  }
}

TEST(TraceTest, LambdaNeverExceedsDeltaAtEqualDepth) {
  // Lemma 1's inner inequality λ <= δ, checked row by row on a random
  // database (BPA and TA scan identical prefixes row-for-row).
  const Database db = MakeUniformDatabase(500, 5, 321);
  const TopKResult ta = RunTraced(db, AlgorithmKind::kTa, 10);
  const TopKResult bpa = RunTraced(db, AlgorithmKind::kBpa, 10);
  const size_t rows = std::min(ta.trace.size(), bpa.trace.size());
  ASSERT_GT(rows, 0u);
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_LE(bpa.trace[i].threshold, ta.trace[i].threshold + 1e-12)
        << "row " << i;
  }
}

TEST(TraceTest, ThresholdsAreNonIncreasingForTa) {
  const Database db = MakeUniformDatabase(400, 4, 654);
  const TopKResult ta = RunTraced(db, AlgorithmKind::kTa, 5);
  for (size_t i = 1; i < ta.trace.size(); ++i) {
    ASSERT_LE(ta.trace[i].threshold, ta.trace[i - 1].threshold);
  }
}

TEST(TraceTest, TraceDisabledByDefault) {
  SumScorer sum;
  const TopKResult result = MakeAlgorithm(AlgorithmKind::kTa)
                                ->Execute(MakeFigure1Database(),
                                          TopKQuery{3, &sum})
                                .ValueOrDie();
  EXPECT_TRUE(result.trace.empty());
}

TEST(TraceTest, TraceLengthMatchesStopPosition) {
  const Database db = MakeUniformDatabase(300, 3, 987);
  for (AlgorithmKind kind : {AlgorithmKind::kTa, AlgorithmKind::kBpa}) {
    const TopKResult result = RunTraced(db, kind, 5);
    EXPECT_EQ(result.trace.size(), result.stop_position) << ToString(kind);
  }
}

}  // namespace
}  // namespace topk
