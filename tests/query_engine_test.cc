// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/query_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : db_(MakeUniformDatabase(600, 4, 2718)) {}

  std::vector<TopKQuery> MakeQueries(size_t count) {
    std::vector<TopKQuery> queries;
    for (size_t i = 0; i < count; ++i) {
      queries.push_back(TopKQuery{1 + (i % 25), &sum_});
    }
    return queries;
  }

  Database db_;
  SumScorer sum_;
};

TEST_F(QueryEngineTest, InlineBatchMatchesDirectExecution) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(8);
  const auto batch = engine.ExecuteBatch(AlgorithmKind::kBpa, queries);
  ASSERT_EQ(batch.size(), queries.size());
  auto algorithm = MakeAlgorithm(AlgorithmKind::kBpa);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << i;
    const TopKResult direct =
        algorithm->Execute(db_, queries[i]).ValueOrDie();
    ASSERT_EQ(batch[i].ValueUnsafe().items.size(), direct.items.size());
    for (size_t r = 0; r < direct.items.size(); ++r) {
      EXPECT_EQ(batch[i].ValueUnsafe().items[r].item, direct.items[r].item);
    }
    EXPECT_EQ(batch[i].ValueUnsafe().stats, direct.stats);
  }
}

TEST_F(QueryEngineTest, ParallelMatchesInline) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(40);
  const auto inline_results =
      engine.ExecuteBatch(AlgorithmKind::kBpa2, queries, 1);
  const auto parallel_results =
      engine.ExecuteBatch(AlgorithmKind::kBpa2, queries, 8);
  ASSERT_EQ(inline_results.size(), parallel_results.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(inline_results[i].ok());
    ASSERT_TRUE(parallel_results[i].ok());
    const auto& a = inline_results[i].ValueUnsafe();
    const auto& b = parallel_results[i].ValueUnsafe();
    EXPECT_EQ(a.stats, b.stats) << "query " << i;
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t r = 0; r < a.items.size(); ++r) {
      EXPECT_EQ(a.items[r].item, b.items[r].item);
      EXPECT_DOUBLE_EQ(a.items[r].score, b.items[r].score);
    }
  }
}

TEST_F(QueryEngineTest, PerQueryFailuresDoNotAbortTheBatch) {
  QueryEngine engine(&db_);
  std::vector<TopKQuery> queries = MakeQueries(3);
  queries.push_back(TopKQuery{db_.num_items() + 1, &sum_});  // invalid k
  queries.push_back(TopKQuery{5, nullptr});                  // missing scorer
  const auto results = engine.ExecuteBatch(AlgorithmKind::kTa, queries, 4);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(results[3].status().IsInvalid());
  EXPECT_TRUE(results[4].status().IsInvalid());
}

TEST_F(QueryEngineTest, EmptyBatch) {
  QueryEngine engine(&db_);
  const auto results = engine.ExecuteBatch(AlgorithmKind::kTa, {}, 4);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.last_batch_stats().TotalAccesses(), 0u);
}

TEST_F(QueryEngineTest, MoreThreadsThanQueries) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(2);
  const auto results = engine.ExecuteBatch(AlgorithmKind::kNaive, queries, 64);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
}

TEST_F(QueryEngineTest, BatchStatsAggregate) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(4);
  const auto results = engine.ExecuteBatch(AlgorithmKind::kTa, queries, 2);
  uint64_t expected = 0;
  for (const auto& r : results) {
    expected += r.ValueOrDie().stats.TotalAccesses();
  }
  EXPECT_EQ(engine.last_batch_stats().TotalAccesses(), expected);
}

TEST_F(QueryEngineTest, MixedScorersInOneBatch) {
  MinScorer min;
  MaxScorer max;
  QueryEngine engine(&db_);
  std::vector<TopKQuery> queries = {TopKQuery{5, &sum_}, TopKQuery{5, &min},
                                    TopKQuery{5, &max}};
  const auto results = engine.ExecuteBatch(AlgorithmKind::kBpa, queries, 3);
  auto naive = MakeAlgorithm(AlgorithmKind::kNaive);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    const TopKResult want = naive->Execute(db_, queries[i]).ValueOrDie();
    for (size_t r = 0; r < 5; ++r) {
      EXPECT_DOUBLE_EQ(results[i].ValueUnsafe().items[r].score,
                       want.items[r].score);
    }
  }
}

}  // namespace
}  // namespace topk
