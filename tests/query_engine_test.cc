// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/query_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "gen/database_generator.h"
#include "lists/scorer.h"

namespace topk {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : db_(MakeUniformDatabase(600, 4, 2718)) {}

  std::vector<TopKQuery> MakeQueries(size_t count) {
    std::vector<TopKQuery> queries;
    for (size_t i = 0; i < count; ++i) {
      queries.push_back(TopKQuery{1 + (i % 25), &sum_});
    }
    return queries;
  }

  Database db_;
  SumScorer sum_;
};

TEST_F(QueryEngineTest, InlineBatchMatchesDirectExecution) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(8);
  const BatchResult batch = engine.ExecuteBatch(AlgorithmKind::kBpa, queries);
  ASSERT_EQ(batch.results.size(), queries.size());
  auto algorithm = MakeAlgorithm(AlgorithmKind::kBpa);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch.results[i].ok()) << i;
    const TopKResult direct =
        algorithm->Execute(db_, queries[i]).ValueOrDie();
    ASSERT_EQ(batch.results[i].ValueUnsafe().items.size(),
              direct.items.size());
    for (size_t r = 0; r < direct.items.size(); ++r) {
      EXPECT_EQ(batch.results[i].ValueUnsafe().items[r].item,
                direct.items[r].item);
    }
    EXPECT_EQ(batch.results[i].ValueUnsafe().stats, direct.stats);
  }
}

TEST_F(QueryEngineTest, ParallelMatchesInline) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(40);
  const auto inline_results =
      engine.ExecuteBatch(AlgorithmKind::kBpa2, queries, 1).results;
  const auto parallel_results =
      engine.ExecuteBatch(AlgorithmKind::kBpa2, queries, 8).results;
  ASSERT_EQ(inline_results.size(), parallel_results.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(inline_results[i].ok());
    ASSERT_TRUE(parallel_results[i].ok());
    const auto& a = inline_results[i].ValueUnsafe();
    const auto& b = parallel_results[i].ValueUnsafe();
    EXPECT_EQ(a.stats, b.stats) << "query " << i;
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t r = 0; r < a.items.size(); ++r) {
      EXPECT_EQ(a.items[r].item, b.items[r].item);
      EXPECT_DOUBLE_EQ(a.items[r].score, b.items[r].score);
    }
  }
}

TEST_F(QueryEngineTest, PerQueryFailuresDoNotAbortTheBatch) {
  QueryEngine engine(&db_);
  std::vector<TopKQuery> queries = MakeQueries(3);
  queries.push_back(TopKQuery{db_.num_items() + 1, &sum_});  // invalid k
  queries.push_back(TopKQuery{5, nullptr});                  // missing scorer
  const auto results =
      engine.ExecuteBatch(AlgorithmKind::kTa, queries, 4).results;
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(results[3].status().IsInvalid());
  EXPECT_TRUE(results[4].status().IsInvalid());
}

TEST_F(QueryEngineTest, EmptyBatch) {
  QueryEngine engine(&db_);
  const BatchResult batch = engine.ExecuteBatch(AlgorithmKind::kTa, {}, 4);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.stats.TotalAccesses(), 0u);
  EXPECT_EQ(engine.last_batch_stats().TotalAccesses(), 0u);
}

TEST_F(QueryEngineTest, MoreThreadsThanQueries) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(2);
  const auto results =
      engine.ExecuteBatch(AlgorithmKind::kNaive, queries, 64).results;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
}

TEST_F(QueryEngineTest, BatchStatsAggregate) {
  QueryEngine engine(&db_);
  const auto queries = MakeQueries(4);
  const BatchResult batch = engine.ExecuteBatch(AlgorithmKind::kTa, queries, 2);
  uint64_t expected = 0;
  for (const auto& r : batch.results) {
    expected += r.ValueOrDie().stats.TotalAccesses();
  }
  EXPECT_EQ(batch.stats.TotalAccesses(), expected);
  // The deprecated accessor reports the same aggregate for a lone issuer.
  EXPECT_EQ(engine.last_batch_stats().TotalAccesses(), expected);
}

TEST_F(QueryEngineTest, MixedScorersInOneBatch) {
  MinScorer min;
  MaxScorer max;
  QueryEngine engine(&db_);
  std::vector<TopKQuery> queries = {TopKQuery{5, &sum_}, TopKQuery{5, &min},
                                    TopKQuery{5, &max}};
  const auto results =
      engine.ExecuteBatch(AlgorithmKind::kBpa, queries, 3).results;
  auto naive = MakeAlgorithm(AlgorithmKind::kNaive);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    const TopKResult want = naive->Execute(db_, queries[i]).ValueOrDie();
    for (size_t r = 0; r < 5; ++r) {
      EXPECT_DOUBLE_EQ(results[i].ValueUnsafe().items[r].score,
                       want.items[r].score);
    }
  }
}

// Regression for the PR 7 stats race: two issuer threads sharing one engine
// used to race on the mutable last_batch_stats_ / context-pool growth of the
// const ExecuteBatch. With BatchResult returned by value and leased context
// slots, both issuers must observe exactly their own batch's aggregate and
// every per-query answer must match a single-threaded run. Run under TSan to
// certify the absence of the data race, not just its invisibility.
TEST_F(QueryEngineTest, ConcurrentIssuersShareOneEngine) {
  QueryEngine engine(&db_);
  const auto queries_a = MakeQueries(24);
  auto queries_b = MakeQueries(17);
  queries_b.erase(queries_b.begin());  // different shapes on purpose
  const uint64_t want_a =
      engine.ExecuteBatch(AlgorithmKind::kBpa, queries_a, 1)
          .stats.TotalAccesses();
  const uint64_t want_b =
      engine.ExecuteBatch(AlgorithmKind::kNra, queries_b, 1)
          .stats.TotalAccesses();

  for (int round = 0; round < 4; ++round) {
    BatchResult got_a;
    BatchResult got_b;
    std::thread issuer_a([&] {
      got_a = engine.ExecuteBatch(AlgorithmKind::kBpa, queries_a, 2);
    });
    std::thread issuer_b([&] {
      got_b = engine.ExecuteBatch(AlgorithmKind::kNra, queries_b, 2);
    });
    issuer_a.join();
    issuer_b.join();
    EXPECT_EQ(got_a.stats.TotalAccesses(), want_a) << "round " << round;
    EXPECT_EQ(got_b.stats.TotalAccesses(), want_b) << "round " << round;
    for (const auto& r : got_a.results) {
      ASSERT_TRUE(r.ok());
    }
    for (const auto& r : got_b.results) {
      ASSERT_TRUE(r.ok());
    }
    // The deprecated aggregate belongs to whichever batch finished last.
    const uint64_t last = engine.last_batch_stats().TotalAccesses();
    EXPECT_TRUE(last == want_a || last == want_b) << last;
  }
}

}  // namespace
}  // namespace topk
