// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace topk {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, NextDoubleMeanIsAboutHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(19);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(23);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  const int kDraws = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(31);
  const int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += rng.NextGaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(37);
  const uint32_t n = 1000;
  std::vector<uint32_t> perm = rng.Permutation(n);
  ASSERT_EQ(perm.size(), n);
  std::vector<bool> seen(n, false);
  for (uint32_t v : perm) {
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, PermutationIsShuffled) {
  Rng rng(41);
  std::vector<uint32_t> perm = rng.Permutation(1000);
  // The identity permutation would have every element in place; a random one
  // has ~1 fixed point on average. Tolerate up to 50.
  int fixed = 0;
  for (uint32_t i = 0; i < perm.size(); ++i) {
    fixed += (perm[i] == i);
  }
  EXPECT_LT(fixed, 50);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(47);
  int heads = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    heads += rng.NextBool(0.25);
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.25, 0.01);
}

}  // namespace
}  // namespace topk
