// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Pins the paper's worked examples end to end:
//  * Figure 1 (Examples 1-3): FA stops at position 8, TA at 6, BPA at 3;
//    top-3 = {d8 (71), d3 (70), d5 (70)}; the exact access counts of
//    Section 4.2 ("For TA ... 18 sorted and 36 random; with BPA ... 9 and 18").
//  * Figure 2 (Section 5): BPA stops at position 7 with 63 total accesses;
//    BPA2 does 12 direct + 24 random = 36 accesses in 4 rounds;
//    top-3 = {d3 (70), d4 (68), d6 (66)}.

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

class PaperFigure1Test : public ::testing::Test {
 protected:
  PaperFigure1Test() : db_(MakeFigure1Database()) {}

  TopKResult Run(AlgorithmKind kind) {
    auto algorithm = MakeAlgorithm(kind);
    return algorithm->Execute(db_, TopKQuery{3, &sum_}).ValueOrDie();
  }

  Database db_;
  SumScorer sum_;
};

// d-indexes are 1-based in the paper; item ids are d-1.
constexpr ItemId d(int paper_index) { return static_cast<ItemId>(paper_index - 1); }

TEST_F(PaperFigure1Test, FixtureMatchesVisibleTable) {
  // Spot-check the transcription of Figure 1.a.
  EXPECT_EQ(db_.num_items(), kPaperFixtureItems);
  EXPECT_EQ(db_.num_lists(), 3u);
  EXPECT_EQ(db_.list(0).EntryAt(1).item, d(1));
  EXPECT_DOUBLE_EQ(db_.list(0).EntryAt(1).score, 30.0);
  EXPECT_EQ(db_.list(0).EntryAt(7).item, d(5));
  EXPECT_DOUBLE_EQ(db_.list(0).EntryAt(7).score, 17.0);
  EXPECT_EQ(db_.list(1).EntryAt(6).item, d(1));
  EXPECT_DOUBLE_EQ(db_.list(1).EntryAt(6).score, 21.0);
  EXPECT_EQ(db_.list(2).EntryAt(7).item, d(13));
  EXPECT_DOUBLE_EQ(db_.list(2).EntryAt(7).score, 15.0);
}

TEST_F(PaperFigure1Test, OverallScoresMatchFigure1c) {
  // Figure 1.c: overall scores of d1..d9.
  const double expected[] = {65, 63, 70, 66, 70, 60, 61, 71, 62};
  SumScorer sum;
  for (int i = 1; i <= 9; ++i) {
    const Score s = db_.OverallScore(
        d(i), [&](const std::vector<Score>& v) { return sum.Combine(v); });
    EXPECT_DOUBLE_EQ(s, expected[i - 1]) << "d" << i;
  }
}

TEST_F(PaperFigure1Test, NaiveTop3) {
  const TopKResult result = Run(AlgorithmKind::kNaive);
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].item, d(8));
  EXPECT_DOUBLE_EQ(result.items[0].score, 71.0);
  EXPECT_EQ(result.items[1].item, d(3));  // 70, tie broken by item id
  EXPECT_DOUBLE_EQ(result.items[1].score, 70.0);
  EXPECT_EQ(result.items[2].item, d(5));
  EXPECT_DOUBLE_EQ(result.items[2].score, 70.0);
}

TEST_F(PaperFigure1Test, FaStopsAtPosition8) {
  const TopKResult result = Run(AlgorithmKind::kFa);
  EXPECT_EQ(result.stop_position, 8u);
  // 8 rows x 3 lists under sorted access.
  EXPECT_EQ(result.stats.sorted_accesses, 24u);
  // Missing lists at stop: d2 (L1), d4 (L2), d7 (L3), d9 (L3), d13 (L1, L2).
  EXPECT_EQ(result.stats.random_accesses, 6u);
  EXPECT_EQ(result.items[0].item, d(8));
}

TEST_F(PaperFigure1Test, TaStopsAtPosition6WithPaperAccessCounts) {
  const TopKResult result = Run(AlgorithmKind::kTa);
  EXPECT_EQ(result.stop_position, 6u);
  // Section 4.2: "For TA, the total number of sorted accesses is 6*3=18 and
  // the number of random accesses is 18*2=36."
  EXPECT_EQ(result.stats.sorted_accesses, 18u);
  EXPECT_EQ(result.stats.random_accesses, 36u);
  EXPECT_EQ(result.items[0].item, d(8));
  EXPECT_DOUBLE_EQ(result.items[2].score, 70.0);
}

TEST_F(PaperFigure1Test, BpaStopsAtPosition3WithPaperAccessCounts) {
  const TopKResult result = Run(AlgorithmKind::kBpa);
  // Example 3: "BPA stops at position 3."
  EXPECT_EQ(result.stop_position, 3u);
  // Section 4.2: "With BPA, the number of sorted accesses and random accesses
  // is 3*3=9 and 9*2=18."
  EXPECT_EQ(result.stats.sorted_accesses, 9u);
  EXPECT_EQ(result.stats.random_accesses, 18u);
  // Example 3: best positions at stop are bp1=9, bp2=9, bp3=6.
  EXPECT_EQ(result.min_best_position, 6u);
}

TEST_F(PaperFigure1Test, Bpa2SeesSamePositionsInThreeRounds) {
  const TopKResult result = Run(AlgorithmKind::kBpa2);
  EXPECT_EQ(result.stop_position, 3u);  // rounds
  EXPECT_EQ(result.stats.direct_accesses, 9u);
  EXPECT_EQ(result.stats.random_accesses, 24u - 6u);  // 18
  EXPECT_EQ(result.stats.sorted_accesses, 0u);
  EXPECT_EQ(result.items[0].item, d(8));
}

TEST_F(PaperFigure1Test, AllAlgorithmsAgreeOnTop3Scores) {
  const TopKResult naive = Run(AlgorithmKind::kNaive);
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult result = Run(kind);
    ASSERT_EQ(result.items.size(), 3u) << ToString(kind);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(result.items[i].score, naive.items[i].score)
          << ToString(kind) << " rank " << i;
    }
  }
}

TEST_F(PaperFigure1Test, StoppingPositionOrderingFaTaBpa) {
  // The paper's headline on this database: BPA (3) < TA (6) < FA (8).
  const Position fa = Run(AlgorithmKind::kFa).stop_position;
  const Position ta = Run(AlgorithmKind::kTa).stop_position;
  const Position bpa = Run(AlgorithmKind::kBpa).stop_position;
  EXPECT_LT(bpa, ta);
  EXPECT_LT(ta, fa);
}

TEST_F(PaperFigure1Test, ExecutionCostBpaBelowTa) {
  const TopKResult ta = Run(AlgorithmKind::kTa);
  const TopKResult bpa = Run(AlgorithmKind::kBpa);
  EXPECT_LT(bpa.execution_cost, ta.execution_cost);
}

TEST_F(PaperFigure1Test, FullRankingWithCompletionItems) {
  auto algorithm = MakeAlgorithm(AlgorithmKind::kNaive);
  const TopKResult result =
      algorithm->Execute(db_, TopKQuery{kPaperFixtureItems, &sum_})
          .ValueOrDie();
  // d8,d3,d5,d4,d1,d2,d9,d7,d6 then completions d13(18),d11(16),d14(14),
  // d10(12),d12(7).
  const ItemId expected_items[] = {d(8),  d(3),  d(5),  d(4), d(1),
                                   d(2),  d(9),  d(7),  d(6), d(13),
                                   d(11), d(14), d(10), d(12)};
  const double expected_scores[] = {71, 70, 70, 66, 65, 63, 62,
                                    61, 60, 18, 16, 14, 12, 7};
  ASSERT_EQ(result.items.size(), kPaperFixtureItems);
  for (size_t i = 0; i < kPaperFixtureItems; ++i) {
    EXPECT_EQ(result.items[i].item, expected_items[i]) << "rank " << i;
    EXPECT_DOUBLE_EQ(result.items[i].score, expected_scores[i]) << "rank " << i;
  }
}

class PaperFigure2Test : public ::testing::Test {
 protected:
  PaperFigure2Test() : db_(MakeFigure2Database()) {}

  TopKResult Run(AlgorithmKind kind) {
    auto algorithm = MakeAlgorithm(kind);
    return algorithm->Execute(db_, TopKQuery{3, &sum_}).ValueOrDie();
  }

  Database db_;
  SumScorer sum_;
};

TEST_F(PaperFigure2Test, NaiveTop3) {
  const TopKResult result = Run(AlgorithmKind::kNaive);
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].item, d(3));
  EXPECT_DOUBLE_EQ(result.items[0].score, 70.0);
  EXPECT_EQ(result.items[1].item, d(4));
  EXPECT_DOUBLE_EQ(result.items[1].score, 68.0);
  EXPECT_EQ(result.items[2].item, d(6));
  EXPECT_DOUBLE_EQ(result.items[2].score, 66.0);
}

TEST_F(PaperFigure2Test, BpaStopsAtPosition7With63Accesses) {
  const TopKResult result = Run(AlgorithmKind::kBpa);
  // Section 5.1: "If we apply BPA on this example, it stops at position 7, so
  // it does 7*3 sorted accesses and 7*3*2 random accesses ... nbpa = 63."
  EXPECT_EQ(result.stop_position, 7u);
  EXPECT_EQ(result.stats.sorted_accesses, 21u);
  EXPECT_EQ(result.stats.random_accesses, 42u);
  EXPECT_EQ(result.stats.TotalAccesses(), 63u);
}

TEST_F(PaperFigure2Test, Bpa2Does36AccessesInFourRounds) {
  const TopKResult result = Run(AlgorithmKind::kBpa2);
  // Section 5.1: "If we apply BPA2, it does direct access to positions 1, 2,
  // 3 and 7 in all lists, so a total of 4*3 direct accesses and 4*3*2 random
  // accesses ... nbpa2 = 36."
  EXPECT_EQ(result.stop_position, 4u);  // rounds = positions 1, 2, 3, 7
  EXPECT_EQ(result.stats.direct_accesses, 12u);
  EXPECT_EQ(result.stats.random_accesses, 24u);
  EXPECT_EQ(result.stats.TotalAccesses(), 36u);
}

TEST_F(PaperFigure2Test, AccessRatioAboutMMinusOne) {
  // Theorem 8's example: nbpa ≈ 2 * nbpa2 for m = 3.
  const uint64_t bpa = Run(AlgorithmKind::kBpa).stats.TotalAccesses();
  const uint64_t bpa2 = Run(AlgorithmKind::kBpa2).stats.TotalAccesses();
  EXPECT_EQ(bpa, 63u);
  EXPECT_EQ(bpa2, 36u);
  EXPECT_NEAR(static_cast<double>(bpa) / static_cast<double>(bpa2), 1.75, 0.01);
}

TEST_F(PaperFigure2Test, Bpa2NeverTouchesAPositionTwice) {
  AlgorithmOptions options;
  options.audit_accesses = true;
  auto algorithm = MakeAlgorithm(AlgorithmKind::kBpa2, options);
  const TopKResult result =
      algorithm->Execute(db_, TopKQuery{3, &sum_}).ValueOrDie();
  ASSERT_EQ(result.max_touches_per_list.size(), 3u);
  for (uint32_t touches : result.max_touches_per_list) {
    EXPECT_LE(touches, 1u);  // Theorem 5
  }
}

TEST_F(PaperFigure2Test, BpaDoesReaccessPositions) {
  // Contrast with Theorem 5: plain BPA re-touches positions (that redundancy
  // motivates BPA2).
  AlgorithmOptions options;
  options.audit_accesses = true;
  auto algorithm = MakeAlgorithm(AlgorithmKind::kBpa, options);
  const TopKResult result =
      algorithm->Execute(db_, TopKQuery{3, &sum_}).ValueOrDie();
  uint32_t max_touches = 0;
  for (uint32_t touches : result.max_touches_per_list) {
    max_touches = std::max(max_touches, touches);
  }
  EXPECT_GT(max_touches, 1u);
}

TEST_F(PaperFigure2Test, TaAndAllOthersReturnSameScores) {
  const TopKResult naive = Run(AlgorithmKind::kNaive);
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const TopKResult result = Run(kind);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(result.items[i].score, naive.items[i].score)
          << ToString(kind);
    }
  }
}

TEST(PaperFixtureTest, ItemLabels) {
  EXPECT_EQ(PaperItemLabel(0), "d1");
  EXPECT_EQ(PaperItemLabel(13), "d14");
}

TEST(PaperFixtureTest, BothFixturesAreValidDatabases) {
  const Database f1 = MakeFigure1Database();
  const Database f2 = MakeFigure2Database();
  EXPECT_TRUE(f1.AllScoresNonNegative());
  EXPECT_TRUE(f2.AllScoresNonNegative());
  for (const Database* db : {&f1, &f2}) {
    for (size_t li = 0; li < db->num_lists(); ++li) {
      for (Position p = 2; p <= db->num_items(); ++p) {
        ASSERT_GE(db->list(li).EntryAt(p - 1).score,
                  db->list(li).EntryAt(p).score);
      }
    }
  }
}

}  // namespace
}  // namespace topk
