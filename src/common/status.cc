// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/status.h"

#include <cstdlib>
#include <iostream>

namespace topk {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const { Abort(""); }

void Status::Abort(std::string_view context) const {
  if (ok()) {
    return;
  }
  std::cerr << "-- fatal status";
  if (!context.empty()) {
    std::cerr << " (" << context << ")";
  }
  std::cerr << ": " << ToString() << std::endl;
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace topk
