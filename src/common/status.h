// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// A compact Status type in the style of Apache Arrow / RocksDB. Fallible library
// APIs return Status (or Result<T>, see result.h) instead of throwing exceptions.

#ifndef TOPK_COMMON_STATUS_H_
#define TOPK_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace topk {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,
  kOutOfRange = 3,
  kNotImplemented = 4,
  kInternal = 5,
  kResourceExhausted = 6,
  kUnavailable = 7,
};

/// Returns a human-readable name for a status code (e.g. "Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// The OK state carries no allocation; error states allocate a small shared
/// payload, so copying a Status is cheap either way.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  /// Builds an InvalidArgument status by streaming all arguments together.
  template <typename... Args>
  static Status Invalid(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }

  /// Builds a KeyError status (lookup of a non-existent item/position).
  template <typename... Args>
  static Status KeyError(Args&&... args) {
    return Make(StatusCode::kKeyError, std::forward<Args>(args)...);
  }

  /// Builds an OutOfRange status (index/position beyond list bounds).
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }

  /// Builds a NotImplemented status.
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }

  /// Builds an Internal status (invariant violation inside the library).
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }

  /// Builds a ResourceExhausted status (a query-governance limit — deadline,
  /// access budget, pool byte budget — stopped the run under StrictMode).
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }

  /// Builds an Unavailable status (a data source died mid-query; the answer
  /// could not be produced, or was degraded under StrictMode).
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use only where an
  /// error is a programming bug (e.g. in examples and benchmarks).
  void Abort() const;
  void Abort(std::string_view context) const;

  bool Equals(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

  friend bool operator==(const Status& a, const Status& b) { return a.Equals(b); }
  friend bool operator!=(const Status& a, const Status& b) { return !a.Equals(b); }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return Status(code, oss.str());
  }

  std::shared_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace topk

#endif  // TOPK_COMMON_STATUS_H_
