// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Deterministic pseudo-random number generation used by the workload generators
// and the benchmark harness. We implement xoshiro256++ (seeded via SplitMix64)
// instead of relying on std::mt19937 so that generated databases are
// reproducible across standard-library implementations.

#ifndef TOPK_COMMON_RNG_H_
#define TOPK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace topk {

/// SplitMix64: tiny PRNG used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit seed.
  explicit Rng(uint64_t seed = 0x5eed'0f'70'9aULL);

  /// Next 64 pseudo-random bits.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound); bound must be > 0. Uses rejection sampling
  /// to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box-Muller, cached spare).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// True with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) {
      return;
    }
    for (std::size_t i = values->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// A random permutation of {0, 1, ..., n-1}.
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace topk

#endif  // TOPK_COMMON_RNG_H_
