// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Result<T>: either a value of type T or an error Status (Arrow idiom).

#ifndef TOPK_COMMON_RESULT_H_
#define TOPK_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace topk {

/// Holds either a successfully computed value of type `T` or the Status
/// describing why the computation failed.
///
/// Typical use:
/// \code
///   Result<Database> db = Database::Make(lists);
///   if (!db.ok()) return db.status();
///   Use(db.ValueOrDie());
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from an error status. Aborts (in debug) if the status is OK,
  /// because an OK Result must carry a value.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok());
  }

  /// Constructs from a value.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status, or OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Const access to the value; the caller must have checked ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return std::get<T>(rep_);
  }

  /// Moves the value out; the caller must have checked ok().
  T ValueUnsafe() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  /// Returns the value or aborts the process with the error message. Intended
  /// for examples, benchmarks and tests where errors are programming bugs.
  const T& ValueOrDie() const& {
    if (!ok()) {
      std::get<Status>(rep_).Abort("Result::ValueOrDie");
    }
    return std::get<T>(rep_);
  }

  T ValueOrDie() && {
    if (!ok()) {
      std::get<Status>(rep_).Abort("Result::ValueOrDie");
    }
    return std::move(std::get<T>(rep_));
  }

  /// Returns the value, or `alternative` if this Result holds an error.
  T ValueOr(T alternative) const& {
    return ok() ? std::get<T>(rep_) : std::move(alternative);
  }

  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace topk

#endif  // TOPK_COMMON_RESULT_H_
