// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Minimal aligned-table printer used by the benchmark harness and examples to
// print figure/table series in a uniform, diff-friendly format.

#ifndef TOPK_COMMON_TABLE_PRINTER_H_
#define TOPK_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace topk {

/// Collects rows of string cells and prints them as an aligned text table and/or
/// as CSV. The first added row is treated as the header.
class TablePrinter {
 public:
  /// \param title printed above the table (e.g. "Figure 4: ...").
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  /// Adds a row of pre-formatted cells.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each element with FormatCell.
  template <typename... Ts>
  void AddRow(const Ts&... values) {
    AddRow(std::vector<std::string>{FormatCell(values)...});
  }

  /// Formats a value for a cell: integers verbatim, doubles with up to 4
  /// significant fractional digits (trailing zeros trimmed).
  static std::string FormatCell(const std::string& v) { return v; }
  static std::string FormatCell(const char* v) { return v; }
  static std::string FormatCell(double v);
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T>>>
  static std::string FormatCell(T v) {
    return std::to_string(v);
  }

  /// Prints the aligned table.
  void Print(std::ostream& os) const;

  /// Prints the same data as CSV (no alignment, comma-separated).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace topk

#endif  // TOPK_COMMON_TABLE_PRINTER_H_
