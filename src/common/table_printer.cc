// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace topk {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatCell(double v) {
  if (std::isnan(v)) {
    return "nan";
  }
  // Integral doubles print without a fractional part; otherwise keep a few
  // significant decimals.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[48];
  if (std::abs(v) >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  if (!title_.empty()) {
    os << title_ << "\n";
  }
  if (rows_.empty()) {
    return;
  }
  size_t cols = 0;
  for (const auto& row : rows_) {
    cols = std::max(cols, row.size());
  }
  std::vector<size_t> widths(cols, 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    os << "  ";
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
    if (r == 0) {
      size_t total = 2;
      for (size_t c = 0; c < cols; ++c) {
        total += widths[c] + (c + 1 < cols ? 2 : 0);
      }
      os << "  " << std::string(total, '-') << "\n";
    }
  }
  os.flush();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  if (!title_.empty()) {
    os << "# " << title_ << "\n";
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << ",";
      }
    }
    os << "\n";
  }
  os.flush();
}

}  // namespace topk
