// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Monotonic (steady-clock) stopwatch used for the paper's "response time"
// metric. Deliberately NOT wall-clock: elapsed times and armed deadlines must
// never jump backwards under NTP slew or manual clock changes.

#ifndef TOPK_COMMON_TIMER_H_
#define TOPK_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace topk {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  /// The clock every measurement is taken on. Public so callers mixing Timer
  /// readings with their own time points (deadline math in the serving layer)
  /// can name the same clock; must stay steady.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Timer must be monotonic: response times and deadlines break "
                "if the clock can be set backwards");

  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset().
  std::chrono::nanoseconds Elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_);
  }

  /// Elapsed time in fractional milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in fractional seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace topk

#endif  // TOPK_COMMON_TIMER_H_
