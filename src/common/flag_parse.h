// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Tiny shared command-line flag helpers for the CLI harnesses (bench_micro,
// parity_dump). Both accept the same flag shapes — `--flag=value` and
// `--flag value` — and both insist on strict numeric parses: a typoed flag
// must fail loudly rather than silently measuring (and labeling) a different
// workload.

#ifndef TOPK_COMMON_FLAG_PARSE_H_
#define TOPK_COMMON_FLAG_PARSE_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

namespace topk {

/// Value of flag `name` in `arg` (argv[*i]): handles "--flag=value" in place
/// and "--flag value" by consuming argv[*i + 1] (a following token starting
/// with "--" is another flag, not a value). Returns nullptr when `arg` is
/// not this flag.
inline const char* FlagValue(const std::string& arg, const char* name,
                             int* i, int argc, char** argv) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return argv[*i] + prefix.size();
  }
  if (arg == name && *i + 1 < argc &&
      std::string(argv[*i + 1]).rfind("--", 0) != 0) {
    return argv[++*i];
  }
  return nullptr;
}

/// Strict non-negative integer parse: trailing garbage, a sign, or a value
/// that does not fit uint64 makes the flag invalid. strtoull saturates to
/// ULLONG_MAX on overflow and only reports it via errno == ERANGE — without
/// the check, `--n 99999999999999999999999` would silently measure (and
/// label) a 2^64-item workload.
inline bool ParseFlagU64(const char* v, uint64_t* out) {
  if (*v < '0' || *v > '9') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(v, &end, 10);
  return end != v && *end == '\0' && errno != ERANGE;
}

inline bool ParseFlagSize(const char* v, size_t* out) {
  uint64_t u = 0;
  if (!ParseFlagU64(v, &u) || u > std::numeric_limits<size_t>::max()) {
    return false;
  }
  *out = static_cast<size_t>(u);
  return true;
}

/// Strict non-negative finite double parse (same contract as ParseFlagU64:
/// no sign, no trailing garbage, no out-of-range value). The finiteness
/// check already rejects overflow (strtod saturates to +inf); errno == ERANGE
/// additionally rejects underflowed values (e.g. 1e-999), which strtod
/// silently flushes toward zero.
inline bool ParseFlagDouble(const char* v, double* out) {
  if (*v < '0' || *v > '9') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(v, &end);
  return end != v && *end == '\0' && errno != ERANGE && *out >= 0.0 &&
         *out - *out == 0.0;
}

}  // namespace topk

#endif  // TOPK_COMMON_FLAG_PARSE_H_
