// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Small helper macros shared across the library.

#ifndef TOPK_COMMON_MACROS_H_
#define TOPK_COMMON_MACROS_H_

#define TOPK_CONCAT_IMPL(x, y) x##y
#define TOPK_CONCAT(x, y) TOPK_CONCAT_IMPL(x, y)

/// Evaluates an expression returning a Status; propagates non-OK statuses to the
/// caller. Usable in functions returning Status or Result<T>.
#define TOPK_RETURN_NOT_OK(expr)                    \
  do {                                              \
    ::topk::Status _st = (expr);                    \
    if (!_st.ok()) {                                \
      return _st;                                   \
    }                                               \
  } while (false)

#define TOPK_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) {                                  \
    return result_name.status();                            \
  }                                                         \
  lhs = std::move(result_name).ValueUnsafe();

/// Evaluates an expression returning Result<T>; on success assigns the value to
/// `lhs`, otherwise propagates the error Status.
#define TOPK_ASSIGN_OR_RETURN(lhs, rexpr) \
  TOPK_ASSIGN_OR_RETURN_IMPL(TOPK_CONCAT(_topk_result_, __COUNTER__), lhs, rexpr)

#endif  // TOPK_COMMON_MACROS_H_
