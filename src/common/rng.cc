// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace topk {

namespace {

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) {
    word = sm.Next();
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls into the largest multiple
  // of `bound` that fits in 64 bits.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1ULL));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller transform; u must be > 0 for the logarithm.
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  const double v = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u));
  const double angle = 2.0 * std::numbers::pi * v;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  Shuffle(&perm);
  return perm;
}

}  // namespace topk
