// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// The Threshold Algorithm (TA), paper Section 3.2 (Fagin/Lotem/Naor;
// Güntzer/Kießling/Balke; Nepal/Ramakrishna). Scans all lists in parallel;
// after each row computes the threshold δ = f(last scores seen under sorted
// access) and stops once the buffer holds k items with overall score >= δ.

#ifndef TOPK_CORE_TA_ALGORITHM_H_
#define TOPK_CORE_TA_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class TaAlgorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "TA"; }

 protected:
  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_TA_ALGORITHM_H_
