// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Fagin's Algorithm (FA), paper Section 3.1: scan the lists in parallel until
// at least k items have been seen in *all* lists under sorted access, then
// resolve the remaining local scores with random accesses.

#ifndef TOPK_CORE_FA_ALGORITHM_H_
#define TOPK_CORE_FA_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class FaAlgorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "FA"; }

 protected:
  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_FA_ALGORITHM_H_
