// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// CandidatePool: flat, epoch-stamped candidate bookkeeping for the
// no-random-access algorithm family (NRA, CA, TPUT).
//
// The pool replaces the per-query `std::unordered_map<ItemId, Candidate>` the
// seed implementations built: one open-addressing item→slot index (epoch
// stamped, so a reset is an O(1) epoch bump instead of a table clear) over a
// contiguous structure-of-arrays candidate store — per slot the m local
// scores (unknown cells pre-filled with the query's score floor), the
// seen-list bit mask, the known-list count and the cached lower bound. All
// storage is retained across queries and only ever grows, so a warmed pool
// serves an unbounded query stream without touching the heap allocator.
//
// On top of the store sit two index structures:
//
//  1. An intrusive threshold heap: the k best candidates ordered by
//     (lower bound, item id) — the paper's "k-th best lower bound" that NRA's
//     stopping rule and CA/TPUT's phase thresholds (τ1, τ2) are evaluated
//     against. Lower bounds only grow as knowledge accumulates, so the heap
//     is maintained incrementally (O(log k) per update via the slot→heap
//     position backlink) instead of being rebuilt per stop-rule check.
//
//  2. A per-mask group index over every candidate *outside* the threshold
//     heap. Fagin et al.'s NRA bound decomposition says a candidate's upper
//     bound is its lower bound plus the current depth scores of its unseen
//     lists — a function of the candidate's seen mask alone (for summation
//     scoring). Grouping candidates by mask therefore turns the stop-rule
//     sweep ("does any candidate still block?") and CA's victim selection
//     ("which unresolved candidate has the largest upper bound?") from
//     O(pool size) scans into O(#distinct masks) scans: each group maintains
//     an eagerly-compacted max-heap of its members keyed by the immutable
//     (lower bound, item id) pair — immutable because a candidate's lower
//     bound changes exactly when its mask changes, which moves it to another
//     group — whose root majorizes the whole group's upper bounds. Candidates
//     move between groups on SetSeen/OfferLower/Erase in O(log group size).
//     Threshold-heap members are deliberately absent from the groups: they
//     are the current answer and never block the stop rule; callers that
//     need them (CA's victim selection, TPUT's phase 3) scan the ≤ k heap
//     slots directly.
//
// Tie-breaking is deterministic everywhere: on equal lower bounds the smaller
// item id is the stronger candidate, matching TopKBuffer and the library-wide
// result order (descending score, ascending item id).

#ifndef TOPK_CORE_CANDIDATE_POOL_H_
#define TOPK_CORE_CANDIDATE_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "lists/types.h"

namespace topk {

/// Flat candidate set of one NRA/CA/TPUT execution. Not thread-safe; borrow
/// one per concurrent query (it lives in ExecutionContext). Supports at most
/// 64 lists (the seen mask is a single word).
class CandidatePool {
 public:
  static constexpr size_t kMaxLists = 64;
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr uint32_t kNoGroup = UINT32_MAX;

  /// Forgets all candidates and reconfigures for a query over `m` lists with
  /// a threshold heap of size `k`; `floor` pre-fills unknown score cells (the
  /// paper's lower-bound contribution for unseen lists). O(1) amortized: the
  /// item→slot and mask→group indexes are invalidated by an epoch bump, not
  /// cleared.
  ///
  /// `eager_groups` selects when the group index is maintained: eagerly on
  /// every OfferLower (NRA/CA, whose checks run against the groups every few
  /// rows) or deferred until one explicit BuildGroups() call (TPUT, which
  /// consults the groups exactly once, for its phase-3 τ2 filter — paying
  /// per-access re-registration for an index read once is a net loss).
  void Reset(size_t m, size_t k, Score floor, bool eager_groups = true);

  /// Registers every candidate outside the threshold heap in the group of
  /// its current mask (O(size) total). The one-shot complement of
  /// Reset(..., /*eager_groups=*/false); idempotent for already-registered
  /// candidates.
  void BuildGroups();

  /// Number of live candidates. Slots are dense: 0 .. size()-1.
  size_t size() const { return size_; }

  /// High-water mark of size() since the last Reset — what the query's
  /// bookkeeping actually cost in pool rows, independent of how much
  /// compaction erased since. The NRA compaction tests assert this stays
  /// far below n on DRAM-scale workloads.
  size_t peak_size() const { return peak_size_; }

  size_t num_lists() const { return m_; }

  bool Contains(ItemId item) const { return FindSlot(item) != kNoSlot; }

  /// Slot of `item`, or kNoSlot if the item is not a candidate.
  uint32_t FindSlot(ItemId item) const;

  /// Slot of `item`, inserting a fresh candidate (floor-filled row, empty
  /// mask, lower bound -inf, in neither the heap nor any group) if absent.
  uint32_t FindOrInsert(ItemId item);

  /// Records list `list_index`'s local score of the candidate. Returns true
  /// if the list was newly seen (mask bit set now), false if it was already
  /// known (the score is left untouched — local scores are deterministic, so
  /// a re-record carries the same value). A newly-seen list changes the
  /// candidate's mask, so it is deregistered from its group; the caller must
  /// publish the updated bound with OfferLower once the burst of SetSeen
  /// calls for this candidate is done (re-grouping it under the new mask).
  bool SetSeen(uint32_t slot, size_t list_index, Score score) {
    assert(slot < size_ && list_index < m_);
    const uint64_t bit = uint64_t{1} << list_index;
    if (masks_[slot] & bit) {
      return false;
    }
    if (group_of_[slot] != kNoGroup) {
      GroupRemove(slot);
    }
    masks_[slot] |= bit;
    rows_[static_cast<size_t>(slot) * m_ + list_index] = score;
    ++known_[slot];
    return true;
  }

  ItemId item_at(uint32_t slot) const { return items_[slot]; }
  uint64_t mask(uint32_t slot) const { return masks_[slot]; }
  uint32_t known_count(uint32_t slot) const { return known_[slot]; }
  bool fully_known(uint32_t slot) const { return known_[slot] == m_; }

  /// The candidate's m local scores; cells of unseen lists hold the floor,
  /// so Scorer::Combine over the row is exactly the paper's lower bound.
  const Score* row(uint32_t slot) const {
    return &rows_[static_cast<size_t>(slot) * m_];
  }

  // --- intrusive threshold heap (k best lower bounds) ---

  /// Publishes the candidate's current lower bound. Bounds must be
  /// non-decreasing per slot (knowledge only accumulates); the heap is
  /// updated in O(log k): sift if the slot is a member, replace the weakest
  /// member if the new bound beats it, no-op otherwise. The candidate ends up
  /// either in the heap or registered in the group of its current mask, and a
  /// member it displaces moves from the heap into its own mask's group.
  void OfferLower(uint32_t slot, Score lower);

  /// Number of heap members (<= k).
  size_t heap_size() const { return heap_.size(); }

  /// True when k candidates carry a published lower bound.
  bool HeapFull() const { return heap_.size() == k_; }

  /// The k-th best (i.e. weakest heap member's) lower bound — the paper's
  /// stopping/pruning threshold. Requires heap_size() > 0.
  Score KthLower() const { return lowers_[heap_.front()]; }

  /// Item id of the weakest heap member (largest id among candidates tied at
  /// KthLower() — the boundary of the deterministic result order). Requires
  /// heap_size() > 0.
  ItemId KthItem() const { return items_[heap_.front()]; }

  bool InHeap(uint32_t slot) const { return heap_pos_[slot] != kNoSlot; }

  /// The heap members' slots in heap order (callers that need the ≤ k
  /// current-answer candidates — CA's victim selection, TPUT's phase 3 —
  /// scan this directly; heap members are not in any group).
  const std::vector<uint32_t>& heap_slots() const { return heap_; }

  Score lower(uint32_t slot) const { return lowers_[slot]; }

  /// Appends the heap members' items ordered by (lower bound desc, item id
  /// asc). Allocation-free once the internal scratch has warmed up.
  void AppendHeapItems(std::vector<ItemId>* out) const;

  /// Removes a candidate that is not a heap member (pruned for good). The
  /// last slot is moved into the hole, so iteration by ascending slot must
  /// re-examine `slot` after an erase.
  void Erase(uint32_t slot);

  // --- per-mask group index (candidates outside the threshold heap) ---

  /// Number of mask groups materialized this query (groups whose members all
  /// left stay allocated with an empty member heap until the next Reset).
  size_t num_groups() const { return num_groups_; }

  /// Seen mask shared by every member of group `g`.
  uint64_t group_mask(size_t g) const { return groups_[g].mask; }

  /// The group's member slots as a binary max-heap ordered by
  /// (lower bound desc, item id asc): members[0] is the group's strongest
  /// candidate, and every subtree root majorizes its descendants — callers
  /// walk it top-down and prune whole subtrees against a bound threshold.
  /// Compaction is eager (members leave in O(log size) when their mask
  /// changes or they enter the threshold heap), so every entry is live.
  const std::vector<uint32_t>& group_members(size_t g) const {
    return groups_[g].members;
  }

  /// Group the slot is registered in, or kNoGroup for threshold-heap members
  /// and candidates whose OfferLower is still pending after SetSeen.
  uint32_t group_of(uint32_t slot) const { return group_of_[slot]; }

 private:
  struct Key {
    Score lower;
    ItemId item;
  };
  // `a` strictly weaker than `b`: smaller bound, or equal bound and larger
  // item id (mirrors TopKBuffer's deterministic tie-break).
  static bool Weaker(const Key& a, const Key& b) {
    if (a.lower != b.lower) {
      return a.lower < b.lower;
    }
    return a.item > b.item;
  }
  Key KeyOf(uint32_t slot) const { return Key{lowers_[slot], items_[slot]}; }

  void SiftUp(size_t pos);
  void SiftDown(size_t pos);

  size_t TableProbe(ItemId item) const;
  void TableInsert(ItemId item, uint32_t slot);
  void TableErase(ItemId item);
  void TableGrow();

  // One per-mask candidate group: the member slots form a strongest-at-root
  // binary heap under (lower, item id). Storage is retained across queries.
  struct Group {
    uint64_t mask = 0;
    std::vector<uint32_t> members;
  };

  /// Index of the group for `mask`, materializing it if needed.
  uint32_t FindOrCreateGroup(uint64_t mask);

  /// Registers the slot (not in any group, not in the heap) in the group of
  /// its current mask under its current (lower, item) key.
  void GroupInsert(uint32_t slot);

  /// Deregisters the slot from its group in O(log group size).
  void GroupRemove(uint32_t slot);

  void GroupSiftUp(Group& group, size_t pos);
  void GroupSiftDown(Group& group, size_t pos);
  void MaskTableGrow();

  size_t m_ = 0;
  size_t k_ = 0;
  Score floor_ = 0.0;
  bool eager_groups_ = true;
  size_t size_ = 0;
  size_t peak_size_ = 0;

  // SoA candidate store, indexed by slot < size_.
  std::vector<ItemId> items_;
  std::vector<uint64_t> masks_;
  std::vector<uint32_t> known_;
  std::vector<Score> lowers_;
  std::vector<Score> rows_;        // size_ * m_, strided by m_
  std::vector<uint32_t> heap_pos_;  // slot -> heap index, kNoSlot if outside
  std::vector<uint32_t> group_of_;  // slot -> group index, kNoGroup if none
  std::vector<uint32_t> group_pos_;  // slot -> index in its group's heap

  // Open-addressing item→slot index; a cell is live iff its stamp equals the
  // current epoch, so Reset never touches the table.
  std::vector<ItemId> table_items_;
  std::vector<uint32_t> table_slots_;
  std::vector<uint32_t> table_stamps_;
  size_t table_mask_ = 0;
  uint32_t epoch_ = 0;

  // Min-heap of slots: front = weakest of the k best (lower, item) pairs.
  std::vector<uint32_t> heap_;
  mutable std::vector<Key> emit_scratch_;  // for sorted emission

  // Mask groups: dense array of the groups materialized this query plus an
  // epoch-stamped open-addressing mask→group index.
  std::vector<Group> groups_;
  size_t num_groups_ = 0;
  std::vector<uint64_t> mask_table_masks_;
  std::vector<uint32_t> mask_table_groups_;
  std::vector<uint32_t> mask_table_stamps_;
  size_t mask_table_mask_ = 0;
};

}  // namespace topk

#endif  // TOPK_CORE_CANDIDATE_POOL_H_
