// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// CandidatePool: flat, epoch-stamped candidate bookkeeping for the
// no-random-access algorithm family (NRA, CA, TPUT).
//
// The pool replaces the per-query `std::unordered_map<ItemId, Candidate>` the
// seed implementations built: one open-addressing item→slot index (epoch
// stamped, so a reset is an O(1) epoch bump instead of a table clear) over a
// contiguous structure-of-arrays candidate store — per slot the m local
// scores (unknown cells pre-filled with the query's score floor), the
// seen-list bit mask, the known-list count and the cached lower bound. All
// storage is retained across queries and only ever grows, so a warmed pool
// serves an unbounded query stream without touching the heap allocator. At
// DRAM-resident n the arrays span tens of megabytes of randomly probed
// memory, so they live on the pool's own mmap'd arena with hugepage-advised
// chunks above a size threshold (see core/pool_arena.h) — the same TLB
// treatment the Database's item-major mirror gets.
//
// On top of the store sit two index structures:
//
//  1. An intrusive threshold heap: the k best candidates ordered by
//     (lower bound, item id) — the paper's "k-th best lower bound" that NRA's
//     stopping rule and CA/TPUT's phase thresholds (τ1, τ2) are evaluated
//     against. Lower bounds only grow as knowledge accumulates, so the heap
//     is maintained incrementally (O(log k) per update via the slot→heap
//     position backlink) instead of being rebuilt per stop-rule check.
//
//  2. A per-mask group index over every candidate *outside* the threshold
//     heap. Fagin et al.'s NRA bound decomposition says a candidate's upper
//     bound is its lower bound plus the current depth scores of its unseen
//     lists — a function of the candidate's seen mask alone (for summation
//     scoring). Grouping candidates by mask therefore turns the stop-rule
//     sweep ("does any candidate still block?") and CA's victim selection
//     ("which unresolved candidate has the largest upper bound?") from
//     O(pool size) scans into O(#distinct masks) scans. Groups are keyed by
//     the immutable (lower bound, item id) pair — immutable because a
//     candidate's lower bound changes exactly when its mask changes, which
//     moves it to another group — and carry up to two heap sides:
//
//       - a strongest-at-root *max side* (always present) whose root
//         majorizes the group's upper bounds: the stop-rule blocking checks,
//         CA's victim argmax, TPUT's τ2 filter and NRA's compaction walk it
//         top-down, pruning whole subtrees against a threshold, and
//       - an optional weakest-at-root *min side* whose root minorizes them:
//         CA's prune-and-erase stop check peels victims weakest-first off it
//         and stops the moment the root is provably above the prune
//         threshold, decoupling the pass's cost from the live-set size.
//
//     The two sides trade update discipline for their access patterns. The
//     max side is exact at all times: backlinked slots, O(log group) sift
//     surgery on every registration change (its walks need every array
//     entry live). The min side is **lazily invalidated**: entries are
//     self-contained (lower bound, item id, registration stamp) keys in a
//     plain binary min-heap; registering a member pushes one entry (usually
//     O(1) — a freshly grown bound is strong, so it stays at a leaf) and
//     deregistering merely re-stamps the slot, orphaning the entry where it
//     sits. A stamp mismatch is detected when a peel pops the entry (each
//     stale entry is popped exactly once — amortized against its own push)
//     or when a group's entry count exceeds twice its live membership and
//     the heap is rebuilt from the live members (amortized against the
//     staling deregistrations). Because a member's key is immutable while
//     it is registered, a live entry's stored bound is bit-identical to the
//     member's current bound — the peels classify with exactly the
//     arithmetic the pre-dual-heap sweeps used.
//
//     The min side is enabled per query (Reset's dual_heap) by the one
//     consumer whose peel frequency pays for the per-registration pushes:
//     CA. See Reset for the measured trade (an always-on min side — eagerly
//     backlinked or lazy — made NRA ~2x slower at n=1M, because NRA
//     registers ~10^6 times per query and peels only on its rare
//     watermark-triggered compactions). Lazy index mode (TPUT, which
//     consults the index exactly once and only ever walks strongest-first)
//     defers all registration to one BuildGroups() call. Threshold-heap
//     members are deliberately absent from the groups: they are the current
//     answer and never block the stop rule; callers that need them (CA's
//     victim selection, TPUT's phase 3) scan the ≤ k heap slots directly.
//
// Tie-breaking is deterministic everywhere: on equal lower bounds the smaller
// item id is the stronger candidate, matching TopKBuffer and the library-wide
// result order (descending score, ascending item id).

#ifndef TOPK_CORE_CANDIDATE_POOL_H_
#define TOPK_CORE_CANDIDATE_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pool_arena.h"
#include "lists/types.h"

namespace topk {

/// Flat candidate set of one NRA/CA/TPUT execution. Not thread-safe; borrow
/// one per concurrent query (it lives in ExecutionContext). Supports at most
/// 64 lists (the seen mask is a single word).
class CandidatePool {
 public:
  static constexpr size_t kMaxLists = 64;
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr uint32_t kNoGroup = UINT32_MAX;

  CandidatePool() = default;
  CandidatePool(const CandidatePool&) = delete;
  CandidatePool& operator=(const CandidatePool&) = delete;

  /// Forgets all candidates and reconfigures for a query over `m` lists with
  /// a threshold heap of size `k`; `floor` pre-fills unknown score cells (the
  /// paper's lower-bound contribution for unseen lists). O(1) amortized: the
  /// item→slot and mask→group indexes are invalidated by an epoch bump, not
  /// cleared.
  ///
  /// `eager_groups` selects when the group index is maintained: eagerly on
  /// every OfferLower (NRA/CA, whose checks run against the groups every few
  /// rows) or deferred until one explicit BuildGroups() call (TPUT, which
  /// consults the groups exactly once, for its phase-3 τ2 filter — paying
  /// per-access re-registration for an index read once is a net loss).
  ///
  /// `dual_heap` adds the min side to each group. It defaults to off because
  /// it is a consumer-driven trade: each registration pushes one min-side
  /// entry (~one cache miss for the sift-up's parent compare), which only
  /// pays off when the min side is peeled often relative to registrations.
  /// CA peels at every stop check (every cr/cs rows) — its peels turned an
  /// O(live set) sweep into the prunable tail and bought an order of
  /// magnitude at DRAM-resident n. NRA peels only on watermark-triggered
  /// compactions (a handful per query against ~10^6 registrations) — an
  /// always-on min side measured ~2x slower end-to-end for NRA at n=1M, so
  /// NRA runs max-side-only and compacts with the max-side walk. Requires
  /// eager_groups (a lazily-built index is read strongest-first once and
  /// never peeled).
  void Reset(size_t m, size_t k, Score floor, bool eager_groups = true,
             bool dual_heap = false);

  /// Registers every candidate outside the threshold heap in the group of
  /// its current mask (O(size) total). The one-shot complement of
  /// Reset(..., /*eager_groups=*/false); idempotent for already-registered
  /// candidates.
  void BuildGroups();

  /// Number of live candidates. Slots are dense: 0 .. size()-1.
  size_t size() const { return size_; }

  /// High-water mark of size() since the last Reset — what the query's
  /// bookkeeping actually cost in pool rows, independent of how much
  /// compaction erased since. The NRA compaction tests assert this stays
  /// far below n on DRAM-scale workloads.
  size_t peak_size() const { return peak_size_; }

  size_t num_lists() const { return m_; }

  /// Approximate bytes of live candidate state: the SoA row (m scores) plus
  /// fixed per-slot bookkeeping, times the current candidate count. This is
  /// what the governor's pool_byte_budget meters — the footprint of *this*
  /// query's candidates, deliberately not the arena capacity a warmed
  /// context retains from earlier queries.
  size_t LiveCandidateBytes() const {
    return size_ * (m_ * sizeof(Score) + kSlotOverheadBytes);
  }

  /// Per-slot bookkeeping outside the score row: item id, seen mask, lower
  /// bound, heap/group positions and the group-index entries (see the flat
  /// arrays below).
  static constexpr size_t kSlotOverheadBytes =
      sizeof(ItemId) + sizeof(uint64_t) + sizeof(Score) + 4 * sizeof(uint32_t);

  bool Contains(ItemId item) const { return FindSlot(item) != kNoSlot; }

  /// Slot of `item`, or kNoSlot if the item is not a candidate.
  uint32_t FindSlot(ItemId item) const;

  /// Pulls `item`'s primary probe cell toward the cache. The run loops call
  /// this for the item of the sorted row a few iterations ahead of use
  /// (decision-free and uncounted, like the TA/BPA mirror prefetches): at
  /// DRAM-resident n the open-addressing table spans tens of MB, so the
  /// FindOrInsert probe is otherwise a guaranteed stall per access. The
  /// whole probe cell (item, slot, stamp) is one 12-byte struct — one line,
  /// one prefetch.
  void PrefetchItem(ItemId item) const {
    __builtin_prefetch(&table_[HashItem(item) & table_mask_]);
  }

  /// Slot of `item`, inserting a fresh candidate (floor-filled row, empty
  /// mask, lower bound -inf, in neither the heap nor any group) if absent.
  uint32_t FindOrInsert(ItemId item);

  /// Records list `list_index`'s local score of the candidate. Returns true
  /// if the list was newly seen (mask bit set now), false if it was already
  /// known (the score is left untouched — local scores are deterministic, so
  /// a re-record carries the same value). A newly-seen list changes the
  /// candidate's mask, so it is deregistered from its group; the caller must
  /// publish the updated bound with OfferLower once the burst of SetSeen
  /// calls for this candidate is done (re-grouping it under the new mask).
  bool SetSeen(uint32_t slot, size_t list_index, Score score) {
    assert(slot < size_ && list_index < m_);
    const uint64_t bit = uint64_t{1} << list_index;
    if (masks_[slot] & bit) {
      return false;
    }
    if (group_of_[slot] != kNoGroup) {
      GroupRemove(slot);
    }
    masks_[slot] |= bit;
    rows_[static_cast<size_t>(slot) * m_ + list_index] = score;
    ++known_[slot];
    return true;
  }

  ItemId item_at(uint32_t slot) const { return items_[slot]; }
  uint64_t mask(uint32_t slot) const { return masks_[slot]; }
  uint32_t known_count(uint32_t slot) const { return known_[slot]; }
  bool fully_known(uint32_t slot) const { return known_[slot] == m_; }

  /// The candidate's m local scores; cells of unseen lists hold the floor,
  /// so Scorer::Combine over the row is exactly the paper's lower bound.
  const Score* row(uint32_t slot) const {
    return &rows_[static_cast<size_t>(slot) * m_];
  }

  // --- intrusive threshold heap (k best lower bounds) ---

  /// Publishes the candidate's current lower bound. Bounds must be
  /// non-decreasing per slot (knowledge only accumulates); the heap is
  /// updated in O(log k): sift if the slot is a member, replace the weakest
  /// member if the new bound beats it, no-op otherwise. The candidate ends up
  /// either in the heap or registered in the group of its current mask, and a
  /// member it displaces moves from the heap into its own mask's group.
  void OfferLower(uint32_t slot, Score lower);

  /// Number of heap members (<= k).
  size_t heap_size() const { return heap_.size(); }

  /// True when k candidates carry a published lower bound.
  bool HeapFull() const { return heap_.size() == k_; }

  /// The k-th best (i.e. weakest heap member's) lower bound — the paper's
  /// stopping/pruning threshold. Requires heap_size() > 0.
  Score KthLower() const { return lowers_[heap_.front()]; }

  /// Item id of the weakest heap member (largest id among candidates tied at
  /// KthLower() — the boundary of the deterministic result order). Requires
  /// heap_size() > 0.
  ItemId KthItem() const { return items_[heap_.front()]; }

  bool InHeap(uint32_t slot) const { return heap_pos_[slot] != kNoSlot; }

  /// The heap members' slots in heap order (callers that need the ≤ k
  /// current-answer candidates — CA's victim selection, TPUT's phase 3 —
  /// scan this directly; heap members are not in any group).
  const ArenaVec<uint32_t>& heap_slots() const { return heap_; }

  Score lower(uint32_t slot) const { return lowers_[slot]; }

  /// Appends the heap members' items ordered by (lower bound desc, item id
  /// asc). Allocation-free once the internal scratch has warmed up.
  void AppendHeapItems(std::vector<ItemId>* out) const;

  /// Removes a candidate that is not a heap member (pruned for good). The
  /// last slot is moved into the hole, so iteration by ascending slot must
  /// re-examine `slot` after an erase.
  void Erase(uint32_t slot);

  // --- per-mask group index (candidates outside the threshold heap) ---

  /// Number of mask groups materialized this query (groups whose members all
  /// left stay allocated with an empty member heap until the next Reset).
  size_t num_groups() const { return num_groups_; }

  /// Seen mask shared by every member of group `g`.
  uint64_t group_mask(size_t g) const { return groups_[g].mask; }

  /// The group's member slots as a binary max-heap ordered by
  /// (lower bound desc, item id asc): members[0] is the group's strongest
  /// candidate, and every subtree root majorizes its descendants — callers
  /// walk it top-down and prune whole subtrees against a bound threshold.
  /// Compaction is eager (members leave in O(log size) when their mask
  /// changes or they enter the threshold heap), so every entry is live.
  const ArenaVec<uint32_t>& group_members(size_t g) const {
    return groups_[g].members;
  }

  /// One entry of a group's min side: the member's immutable key plus the
  /// registration stamp that told it apart from every other (de)registration
  /// of this query. The entry is self-contained — peels and heap sifts never
  /// touch the slot arrays — and slot-independent, so Erase's slot moves
  /// need no min-side fixups.
  struct MinEntry {
    Score lower;
    ItemId item;
    uint64_t birth;
  };

  /// The min side of the dual heap: a weakest-at-root binary heap of the
  /// entries pushed by every registration into this group, including stale
  /// ones (members that have since deregistered; MinEntryLive tells them
  /// apart). The stored keys satisfy the heap invariant unconditionally, so
  /// min_entries[0] carries the smallest stored key and every live member's
  /// current key appears exactly once. Maintained in eager mode only (empty
  /// for a lazily-built index — TPUT never prunes).
  const ArenaVec<MinEntry>& group_min_entries(size_t g) const {
    return groups_[g].min_entries;
  }

  /// True iff the entry refers to a currently registered member (its stamp
  /// still matches — stamps are unique per (de)registration within a query,
  /// so a match certifies the member is registered, in the group the entry
  /// was pushed into, with lowers_[slot] bit-identical to entry.lower).
  bool MinEntryLive(const MinEntry& entry) const {
    const uint32_t slot = FindSlot(entry.item);
    return slot != kNoSlot && births_[slot] == entry.birth;
  }

  /// Pops the min side's root entry (requires a non-empty min side).
  void PopGroupMin(size_t g);

  /// Re-pushes an entry a peel popped but did not consume (a margin-band
  /// survivor). The entry must still be live.
  void PushGroupMin(size_t g, const MinEntry& entry);

  /// Scratch for the peels' popped-but-surviving entries; emptied, capacity
  /// retained on the arena. Fill through PushPeelScratch (growth must go
  /// through the pool's arena).
  ArenaVec<MinEntry>& PeelScratch() {
    peel_scratch_.clear();
    return peel_scratch_;
  }
  void PushPeelScratch(const MinEntry& entry) {
    peel_scratch_.push_back(arena_, entry);
  }

  /// True when the groups carry their min side (eager mode; see Reset).
  bool has_min_side() const { return dual_heap_; }

  /// Group the slot is registered in, or kNoGroup for threshold-heap members
  /// and candidates whose OfferLower is still pending after SetSeen.
  uint32_t group_of(uint32_t slot) const { return group_of_[slot]; }

  // --- arena introspection (see core/pool_arena.h) ---

  /// Bytes of address space the pool's arena has reserved. Monotone, and
  /// stable across warmed queries — the arena-growth test pins this.
  size_t arena_bytes_reserved() const { return arena_.bytes_reserved(); }
  size_t arena_bytes_used() const { return arena_.bytes_used(); }
  size_t arena_chunks() const { return arena_.num_chunks(); }

 private:
  struct Key {
    Score lower;
    ItemId item;
  };

  // Finalizing multiplicative hash over a 32-bit item id (same family as
  // TopKBuffer's). In the header so PrefetchItem inlines into the run loops.
  static size_t HashItem(ItemId item) {
    uint32_t h = item * 2654435761u;
    h ^= h >> 16;
    return h;
  }
  // `a` strictly weaker than `b`: smaller bound, or equal bound and larger
  // item id (mirrors TopKBuffer's deterministic tie-break).
  static bool Weaker(const Key& a, const Key& b) {
    if (a.lower != b.lower) {
      return a.lower < b.lower;
    }
    return a.item > b.item;
  }
  Key KeyOf(uint32_t slot) const { return Key{lowers_[slot], items_[slot]}; }

  void SiftUp(size_t pos);
  void SiftDown(size_t pos);

  size_t TableProbe(ItemId item) const;
  void TableInsert(ItemId item, uint32_t slot);
  void TableErase(ItemId item);
  void TableGrow();

  // One per-mask candidate group: the member slots form a strongest-at-root
  // binary heap in `members`; in eager mode `min_entries` holds the
  // weakest-at-root entry heap of the min side (live entries + lazily
  // invalidated stale ones). Storage is retained across queries.
  struct Group {
    uint64_t mask = 0;
    ArenaVec<uint32_t> members;
    ArenaVec<MinEntry> min_entries;
  };

  /// Index of the group for `mask`, materializing it if needed.
  uint32_t FindOrCreateGroup(uint64_t mask);

  /// Registers the slot (not in any group, not in the heap) in the group of
  /// its current mask under its current (lower, item) key: max-side sift
  /// insert plus, in eager mode, a fresh stamp and one min-side entry push.
  void GroupInsert(uint32_t slot);

  /// Deregisters the slot from its group: O(log group size) max-side
  /// surgery; the min side is invalidated for free by re-stamping the slot.
  void GroupRemove(uint32_t slot);

  void GroupSiftUp(Group& group, size_t pos);
  void GroupSiftDown(Group& group, size_t pos);
  static bool EntryWeaker(const MinEntry& a, const MinEntry& b) {
    return Weaker(Key{a.lower, a.item}, Key{b.lower, b.item});
  }
  void MinSiftUp(ArenaVec<MinEntry>& entries, size_t pos);
  void MinSiftDown(ArenaVec<MinEntry>& entries, size_t pos);
  /// Discards every stale entry by rebuilding the min side from the live
  /// max-side membership (triggered when stale entries outnumber live ones).
  void MinRebuild(Group& group);
  void MaskTableGrow();

  size_t m_ = 0;
  size_t k_ = 0;
  Score floor_ = 0.0;
  bool eager_groups_ = true;
  bool dual_heap_ = true;  // min sides maintained (eager mode)
  size_t size_ = 0;
  size_t peak_size_ = 0;

  // The arena behind every flat array below (and the group member heaps):
  // bump-allocated spans over mmap'd, hugepage-advised chunks, retained
  // across queries. Declared first so it outlives the views during
  // destruction.
  PoolArena arena_;

  // SoA candidate store, indexed by slot < size_.
  ArenaVec<ItemId> items_;
  ArenaVec<uint64_t> masks_;
  ArenaVec<uint32_t> known_;
  ArenaVec<Score> lowers_;
  ArenaVec<Score> rows_;        // size_ * m_, strided by m_
  ArenaVec<uint32_t> heap_pos_;  // slot -> heap index, kNoSlot if outside
  ArenaVec<uint32_t> group_of_;  // slot -> group index, kNoGroup if none
  ArenaVec<uint32_t> group_pos_;  // slot -> index in its group's max heap
  // Registration stamp of the slot: bumped on every group (de)registration,
  // so a min-side entry is live iff its stored stamp still matches. The
  // 64-bit counter never resets, making stamps unique for the pool's whole
  // lifetime — a stale entry can never be revived by a later registration,
  // not even across epochs or slot reuse.
  ArenaVec<uint64_t> births_;
  uint64_t birth_counter_ = 0;

  // Open-addressing item→slot index; a cell is live iff its stamp equals the
  // current epoch, so Reset never touches the table. The three fields live
  // in one packed 12-byte cell: a probe reads item, stamp and slot from one
  // cache line instead of three parallel arrays (three lines — measured on
  // the probe-bound NRA/TPUT n=1M loops).
  struct TableCell {
    ItemId item;
    uint32_t slot;
    uint32_t stamp;
  };
  ArenaVec<TableCell> table_;
  size_t table_mask_ = 0;
  uint32_t epoch_ = 0;

  // Min-heap of slots: front = weakest of the k best (lower, item) pairs.
  ArenaVec<uint32_t> heap_;
  mutable std::vector<Key> emit_scratch_;  // for sorted emission
  ArenaVec<MinEntry> peel_scratch_;        // peels' band survivors

  // Mask groups: dense array of the groups materialized this query plus an
  // epoch-stamped open-addressing mask→group index.
  std::vector<Group> groups_;
  size_t num_groups_ = 0;
  ArenaVec<uint64_t> mask_table_masks_;
  ArenaVec<uint32_t> mask_table_groups_;
  ArenaVec<uint32_t> mask_table_stamps_;
  size_t mask_table_mask_ = 0;
};

}  // namespace topk

#endif  // TOPK_CORE_CANDIDATE_POOL_H_
