// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// CA — the "Combined Algorithm" of Fagin, Lotem and Naor (the paper's
// reference [15]), included to complete the middleware-cost framework the
// paper builds on. CA interpolates between NRA and TA based on the cost
// ratio h = cr/cs: it scans like NRA, and once every h rows it spends the
// equivalent of one random access per list to fully resolve the unresolved
// candidate with the highest upper bound. With cr >> cs this avoids TA's
// per-row random-access storm while stopping far earlier than NRA.
//
// Like NRA, CA lower-bounds unknown local scores with the configured score
// floor (AlgorithmOptions::score_floor) and rejects databases violating it.

#ifndef TOPK_CORE_CA_ALGORITHM_H_
#define TOPK_CORE_CA_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class CaAlgorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "CA"; }

 protected:
  Status ValidateFor(const Database& db, const TopKQuery& query) const override;

  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_CA_ALGORITHM_H_
