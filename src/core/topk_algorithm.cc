// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/topk_algorithm.h"

#include <algorithm>

#include "common/macros.h"
#include "common/timer.h"
#include "core/bpa2_algorithm.h"
#include "core/bpa_algorithm.h"
#include "core/ca_algorithm.h"
#include "core/fa_algorithm.h"
#include "core/naive_algorithm.h"
#include "core/nra_algorithm.h"
#include "core/ta_algorithm.h"
#include "core/tput_algorithm.h"

namespace topk {

Status TopKAlgorithm::ValidateFor(const Database& /*db*/,
                                  const TopKQuery& /*query*/) const {
  return Status::OK();
}

Result<TopKResult> TopKAlgorithm::Execute(const Database& db,
                                          const TopKQuery& query) const {
  ExecutionContext context;
  return Execute(db, query, &context);
}

Result<TopKResult> TopKAlgorithm::Execute(const Database& db,
                                          const TopKQuery& query,
                                          ExecutionContext* context) const {
  TopKResult result;
  TOPK_RETURN_NOT_OK(ExecuteInto(db, query, context, &result));
  return result;
}

Status TopKAlgorithm::ExecuteInto(const Database& db, const TopKQuery& query,
                                  ExecutionContext* context,
                                  TopKResult* result) const {
  if (query.scorer == nullptr) {
    return Status::Invalid(name(),
                           ": query has no scoring function (a Scorer is "
                           "required); got scorer = nullptr");
  }
  if (query.k == 0) {
    return Status::Invalid(name(), ": k must be >= 1; got k = 0");
  }
  if (query.k > db.num_items()) {
    return Status::Invalid(name(), ": k = ", query.k,
                           " exceeds database size n = ", db.num_items());
  }
  TOPK_RETURN_NOT_OK(options_.governor.Validate(name().c_str()));
  TOPK_RETURN_NOT_OK(options_.fault_plan.Validate(name().c_str(),
                                                  db.num_lists()));
  if (options_.fault_plan.enabled() && options_.audit_accesses) {
    return Status::Invalid(
        name(),
        ": fault injection (fault_plan) cannot be combined with "
        "audit_accesses; the audit trail assumes the faithful engine path");
  }
  TOPK_RETURN_NOT_OK(ValidateFor(db, query));

  context->Prepare(db, options_.audit_accesses, query.k);
  context->governor().Arm(options_.governor);
  if (options_.fault_plan.enabled()) {
    context->faults().Arm(&context->engine(), options_.fault_plan);
  } else {
    context->faults().Disarm();
  }
  result->Clear();
  Timer timer;
  Status run_status = Run(db, query, context, result);
  if (run_status.IsUnavailable() && context->faults().armed()) {
    // A random-access algorithm lost a list permanently mid-run. Fail over
    // to NRA over the survivors: accesses already spent stay counted
    // (carried across the engine reset), the fault layer stays armed — dead
    // lists stay dead and the deterministic schedule continues — and the
    // governor keeps running down the same deadline and budgets.
    NraAlgorithm fallback_nra(options_);
    TopKAlgorithm& fallback = fallback_nra;  // protected Run/ValidateFor
    if (fallback.ValidateFor(db, query).ok()) {
      const AccessStats spent = context->engine().stats();
      context->Prepare(db, /*audit=*/false, query.k);
      context->engine().AddStats(spent);
      result->Clear();
      run_status = fallback.Run(db, query, context, result);
      result->failed_over = true;
    }
  }
  TOPK_RETURN_NOT_OK(run_status);
  result->elapsed_ms = timer.ElapsedMillis();

  const AccessEngine& engine = context->engine();
  result->stats = engine.stats();
  const CostModel model =
      options_.cost_model.value_or(CostModel::PaperDefault(db.num_items()));
  result->execution_cost = model.ExecutionCost(result->stats);

  if (options_.audit_accesses) {
    result->max_touches_per_list.resize(db.num_lists());
    for (size_t i = 0; i < db.num_lists(); ++i) {
      result->max_touches_per_list[i] = engine.MaxTouchCount(i);
    }
  }
  if (context->faults().armed()) {
    const FaultStats& faults = context->faults().fault_stats();
    result->dead_lists = faults.dead_lists;
    result->fault_retries = faults.transient_faults;
  }

  if (result->completion == Completion::kExact) {
    if (result->items.size() != query.k) {
      return Status::Internal(name(), " produced ", result->items.size(),
                              " items for k = ", query.k);
    }
  } else if (result->items.size() > query.k) {
    return Status::Internal(name(), " produced ", result->items.size(),
                            " items for k = ", query.k,
                            " (anytime results must not exceed k)");
  }
  std::sort(result->items.begin(), result->items.end(),
            [](const ResultItem& a, const ResultItem& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.item < b.item;
            });
  if (result->completion == Completion::kExact) {
    // Exact results collapse the certificate: the k-th score bounds both
    // sides and theta is exactly 1.
    const Score kth = result->items.back().score;
    result->kth_lower_bound = kth;
    result->unreturned_upper_bound = kth;
    result->theta = 1.0;
  } else if (options_.governor.strict) {
    // StrictMode: the caller wants exact answers only — surface the
    // degradation as an error instead of an anytime result.
    if (result->completion == Completion::kListFailure) {
      return Status::Unavailable(
          name(), ": ", result->dead_lists,
          " list(s) died permanently; StrictMode rejects the degraded ",
          "anytime answer (", result->items.size(), " of ", query.k,
          " items, theta = ", result->theta, ")");
    }
    return Status::ResourceExhausted(
        name(), ": stopped by ", ToString(result->completion), " after ",
        result->stats.TotalAccesses(),
        " accesses; StrictMode rejects the anytime answer (",
        result->items.size(), " of ", query.k,
        " items, theta = ", result->theta, ")");
  }
  return Status::OK();
}

std::string ToString(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNaive:
      return "Naive";
    case AlgorithmKind::kFa:
      return "FA";
    case AlgorithmKind::kTa:
      return "TA";
    case AlgorithmKind::kBpa:
      return "BPA";
    case AlgorithmKind::kBpa2:
      return "BPA2";
    case AlgorithmKind::kTput:
      return "TPUT";
    case AlgorithmKind::kNra:
      return "NRA";
    case AlgorithmKind::kCa:
      return "CA";
  }
  return "unknown";
}

std::unique_ptr<TopKAlgorithm> MakeAlgorithm(AlgorithmKind kind,
                                             AlgorithmOptions options) {
  switch (kind) {
    case AlgorithmKind::kNaive:
      return std::make_unique<NaiveAlgorithm>(std::move(options));
    case AlgorithmKind::kFa:
      return std::make_unique<FaAlgorithm>(std::move(options));
    case AlgorithmKind::kTa:
      return std::make_unique<TaAlgorithm>(std::move(options));
    case AlgorithmKind::kBpa:
      return std::make_unique<BpaAlgorithm>(std::move(options));
    case AlgorithmKind::kBpa2:
      return std::make_unique<Bpa2Algorithm>(std::move(options));
    case AlgorithmKind::kTput:
      return std::make_unique<TputAlgorithm>(std::move(options));
    case AlgorithmKind::kNra:
      return std::make_unique<NraAlgorithm>(std::move(options));
    case AlgorithmKind::kCa:
      return std::make_unique<CaAlgorithm>(std::move(options));
  }
  return nullptr;
}

const std::vector<AlgorithmKind>& AllAlgorithmKinds() {
  static const std::vector<AlgorithmKind> kAll = {
      AlgorithmKind::kNaive, AlgorithmKind::kFa,   AlgorithmKind::kTa,
      AlgorithmKind::kBpa,   AlgorithmKind::kBpa2, AlgorithmKind::kTput,
      AlgorithmKind::kNra,   AlgorithmKind::kCa,
  };
  return kAll;
}

}  // namespace topk
