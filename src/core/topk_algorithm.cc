// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/topk_algorithm.h"

#include <algorithm>

#include "common/macros.h"
#include "common/timer.h"
#include "core/bpa2_algorithm.h"
#include "core/bpa_algorithm.h"
#include "core/ca_algorithm.h"
#include "core/fa_algorithm.h"
#include "core/naive_algorithm.h"
#include "core/nra_algorithm.h"
#include "core/ta_algorithm.h"
#include "core/tput_algorithm.h"

namespace topk {

Status TopKAlgorithm::ValidateFor(const Database& /*db*/,
                                  const TopKQuery& /*query*/) const {
  return Status::OK();
}

Result<TopKResult> TopKAlgorithm::Execute(const Database& db,
                                          const TopKQuery& query) const {
  ExecutionContext context;
  return Execute(db, query, &context);
}

Result<TopKResult> TopKAlgorithm::Execute(const Database& db,
                                          const TopKQuery& query,
                                          ExecutionContext* context) const {
  TopKResult result;
  TOPK_RETURN_NOT_OK(ExecuteInto(db, query, context, &result));
  return result;
}

Status TopKAlgorithm::ExecuteInto(const Database& db, const TopKQuery& query,
                                  ExecutionContext* context,
                                  TopKResult* result) const {
  if (query.scorer == nullptr) {
    return Status::Invalid("query has no scoring function");
  }
  if (query.k == 0) {
    return Status::Invalid("k must be >= 1");
  }
  if (query.k > db.num_items()) {
    return Status::Invalid("k = ", query.k, " exceeds database size n = ",
                           db.num_items());
  }
  TOPK_RETURN_NOT_OK(ValidateFor(db, query));

  context->Prepare(db, options_.audit_accesses, query.k);
  result->Clear();
  Timer timer;
  TOPK_RETURN_NOT_OK(Run(db, query, context, result));
  result->elapsed_ms = timer.ElapsedMillis();

  const AccessEngine& engine = context->engine();
  result->stats = engine.stats();
  const CostModel model =
      options_.cost_model.value_or(CostModel::PaperDefault(db.num_items()));
  result->execution_cost = model.ExecutionCost(result->stats);

  if (options_.audit_accesses) {
    result->max_touches_per_list.resize(db.num_lists());
    for (size_t i = 0; i < db.num_lists(); ++i) {
      result->max_touches_per_list[i] = engine.MaxTouchCount(i);
    }
  }

  if (result->items.size() != query.k) {
    return Status::Internal(name(), " produced ", result->items.size(),
                            " items for k = ", query.k);
  }
  std::sort(result->items.begin(), result->items.end(),
            [](const ResultItem& a, const ResultItem& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.item < b.item;
            });
  return Status::OK();
}

std::string ToString(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNaive:
      return "Naive";
    case AlgorithmKind::kFa:
      return "FA";
    case AlgorithmKind::kTa:
      return "TA";
    case AlgorithmKind::kBpa:
      return "BPA";
    case AlgorithmKind::kBpa2:
      return "BPA2";
    case AlgorithmKind::kTput:
      return "TPUT";
    case AlgorithmKind::kNra:
      return "NRA";
    case AlgorithmKind::kCa:
      return "CA";
  }
  return "unknown";
}

std::unique_ptr<TopKAlgorithm> MakeAlgorithm(AlgorithmKind kind,
                                             AlgorithmOptions options) {
  switch (kind) {
    case AlgorithmKind::kNaive:
      return std::make_unique<NaiveAlgorithm>(std::move(options));
    case AlgorithmKind::kFa:
      return std::make_unique<FaAlgorithm>(std::move(options));
    case AlgorithmKind::kTa:
      return std::make_unique<TaAlgorithm>(std::move(options));
    case AlgorithmKind::kBpa:
      return std::make_unique<BpaAlgorithm>(std::move(options));
    case AlgorithmKind::kBpa2:
      return std::make_unique<Bpa2Algorithm>(std::move(options));
    case AlgorithmKind::kTput:
      return std::make_unique<TputAlgorithm>(std::move(options));
    case AlgorithmKind::kNra:
      return std::make_unique<NraAlgorithm>(std::move(options));
    case AlgorithmKind::kCa:
      return std::make_unique<CaAlgorithm>(std::move(options));
  }
  return nullptr;
}

const std::vector<AlgorithmKind>& AllAlgorithmKinds() {
  static const std::vector<AlgorithmKind> kAll = {
      AlgorithmKind::kNaive, AlgorithmKind::kFa,   AlgorithmKind::kTa,
      AlgorithmKind::kBpa,   AlgorithmKind::kBpa2, AlgorithmKind::kTput,
      AlgorithmKind::kNra,   AlgorithmKind::kCa,
  };
  return kAll;
}

}  // namespace topk
