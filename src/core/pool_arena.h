// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// PoolArena + ArenaVec: the memory backend of the CandidatePool's SoA arrays.
//
// At DRAM-resident n the pool's arrays (candidate rows, the open-addressing
// item→slot table, the group member heaps) span tens of megabytes that the
// run loops probe randomly — the same access pattern as the Database's
// item-major mirror, which PR 4 moved onto an mmap'd, MADV_HUGEPAGE-advised
// blob exactly because 4 KiB-paged random probes pay an L2-TLB miss / page
// walk on top of every data fetch. The arena gives the pool the same
// treatment: one bump allocator over a short chain of anonymous mappings,
// geometrically sized, with chunks at or above a 2 MiB threshold advised
// MADV_HUGEPAGE before first touch (best-effort, like the mirror; small pools
// stay on small un-advised chunks and never pay hugepage alignment waste).
//
// The arena only ever grows and never frees individual spans: an ArenaVec
// that outgrows its capacity bump-allocates a doubled span and abandons the
// old one (bounded waste — geometric growth retires at most one live-sized
// span per array), and the whole arena is released only when the pool is
// destroyed. This is the pool's existing retention contract (storage is kept
// across queries so a warmed pool serves an unbounded query stream without
// touching the allocator) made explicit in the allocator itself: a warmed
// pool performs no mmap, no malloc and no madvise, which the zero-allocation
// and arena-growth tests assert.

#ifndef TOPK_CORE_POOL_ARENA_H_
#define TOPK_CORE_POOL_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace topk {

/// Bump allocator over mmap'd chunks. Spans are 64-byte aligned (one span
/// never straddles a cache line it does not own) and are never individually
/// freed; the chunks are unmapped by the destructor. Not thread-safe — it
/// lives inside a CandidatePool, which is borrowed by one execution at a
/// time.
class PoolArena {
 public:
  /// First chunk size; subsequent chunks double. Small pools (unit tests,
  /// cache-resident workloads) stay within un-advised sub-2 MiB chunks.
  static constexpr size_t kFirstChunkBytes = size_t{256} << 10;

  /// Chunks at or above this size are advised MADV_HUGEPAGE before first
  /// touch — the "size threshold" of the hugepage treatment: in THP
  /// "madvise" mode the kernel backs the interior 2 MiB-aligned ranges with
  /// hugepages at fault time. Below it the advice could not produce a single
  /// hugepage anyway.
  static constexpr size_t kHugeAdviseBytes = size_t{2} << 20;

  PoolArena() = default;
  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;
  ~PoolArena() {
    for (const Chunk& chunk : chunks_) {
#ifdef __linux__
      if (chunk.mapped) {
        munmap(chunk.base, chunk.size);
        continue;
      }
#endif
      ::operator delete[](chunk.base, std::align_val_t{64});
    }
  }

  /// Bump-allocates `bytes` (64-byte aligned). Never fails softly: on mmap
  /// exhaustion it falls back to aligned operator new (which throws).
  void* Allocate(size_t bytes) {
    bytes = (bytes + 63) & ~size_t{63};
    if (chunks_.empty() || used_ + bytes > chunks_.back().size) {
      Grow(bytes);
    }
    void* span = static_cast<unsigned char*>(chunks_.back().base) + used_;
    used_ += bytes;
    bytes_used_ += bytes;
    return span;
  }

  /// Total bytes reserved across all chunks — stable across warmed queries
  /// (asserted by the arena-growth test in zero_alloc_test).
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Bytes handed out to live + retired spans (retired = abandoned by an
  /// ArenaVec that doubled past them; bounded by the geometric growth).
  size_t bytes_used() const { return bytes_used_; }

  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    void* base = nullptr;
    size_t size = 0;
    bool mapped = false;
  };

  void Grow(size_t min_bytes) {
    size_t size = chunks_.empty() ? kFirstChunkBytes : chunks_.back().size * 2;
    while (size < min_bytes) {
      size *= 2;
    }
    Chunk chunk;
    chunk.size = size;
#ifdef __linux__
    void* map = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map != MAP_FAILED) {
      if (size >= kHugeAdviseBytes) {
        madvise(map, size, MADV_HUGEPAGE);  // best-effort hint
      }
      chunk.base = map;
      chunk.mapped = true;
    }
#endif
    if (chunk.base == nullptr) {
      chunk.base = ::operator new[](size, std::align_val_t{64});
    }
    chunks_.push_back(chunk);
    used_ = 0;
    bytes_reserved_ += size;
  }

  std::vector<Chunk> chunks_;
  size_t used_ = 0;  // into chunks_.back()
  size_t bytes_reserved_ = 0;
  size_t bytes_used_ = 0;
};

/// Minimal growable array of a trivially-copyable T over a PoolArena: the
/// std::vector subset the CandidatePool uses, with growth redirected to the
/// arena (the mutating calls that can grow take the arena explicitly, so the
/// type stays a default-constructible 16-byte {pointer, size, capacity} —
/// cheap to hold per mask group). Elements added by resize() are
/// uninitialized unless a fill value is given, mirroring the pool's contract
/// that every cell is written before it is read.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec memcpy-moves its elements on growth");

 public:
  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }
  void pop_back() { --size_; }

  void push_back(PoolArena& arena, const T& value) {
    if (size_ == capacity_) {
      Reserve(arena, capacity_ == 0 ? kMinCapacity : capacity_ * 2);
    }
    data_[size_++] = value;
  }

  /// Grows (or shrinks) to `count` elements; new elements are uninitialized.
  void resize(PoolArena& arena, size_t count) {
    if (count > capacity_) {
      Reserve(arena, count);
    }
    size_ = count;
  }

  void resize(PoolArena& arena, size_t count, const T& fill) {
    const size_t old_size = size_;
    resize(arena, count);
    for (size_t i = old_size; i < count; ++i) {
      data_[i] = fill;
    }
  }

  /// Discards the contents and refills with `count` copies of `fill` (the
  /// open-addressing tables' rebuild primitive — no copy of the old cells).
  void assign(PoolArena& arena, size_t count, const T& fill) {
    if (count > capacity_) {
      data_ = static_cast<T*>(arena.Allocate(count * sizeof(T)));
      capacity_ = count;
    }
    size_ = count;
    for (size_t i = 0; i < count; ++i) {
      data_[i] = fill;
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  void Reserve(PoolArena& arena, size_t capacity) {
    T* grown = static_cast<T*>(arena.Allocate(capacity * sizeof(T)));
    if (size_ > 0) {
      std::memcpy(grown, data_, size_ * sizeof(T));
    }
    data_ = grown;
    capacity_ = capacity;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace topk

#endif  // TOPK_CORE_POOL_ARENA_H_
