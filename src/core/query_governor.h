// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// QueryGovernor: per-query execution limits — wall-clock deadline, access
// budgets, candidate-pool byte budget — plus cooperative cancellation.
//
// One governor lives in every ExecutionContext. ExecuteInto arms it from
// AlgorithmOptions::governor before each run; the algorithm loops call
// Charge() at their existing round boundaries (TA/BPA row loops, BPA2
// rounds, the NRA kCheckInterval batches, CA resolve batches, TPUT phase
// edges). When no limits are armed and no cancellation is pending, Charge()
// is one relaxed atomic load plus one branch — the hot path pays a single
// predictable test per round and the governor allocates nothing, ever.
//
// When a limit trips, the loop stops cleanly and certifies an *anytime*
// result (see CertifyAnytime below and the Completion/theta fields of
// TopKResult): every returned score is a proven lower bound, and theta is
// Fagin's approximation factor relating the best unreturned item to the
// weakest returned one.

#ifndef TOPK_CORE_QUERY_GOVERNOR_H_
#define TOPK_CORE_QUERY_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/status.h"
#include "core/topk_result.h"
#include "lists/access_stats.h"

namespace topk {

/// Per-query execution limits. All limits default to "unlimited"; a
/// default-constructed GovernorLimits arms nothing and changes nothing.
struct GovernorLimits {
  /// Wall-clock deadline in milliseconds, measured from the start of the run
  /// (ExecuteInto's arming point). Injected latency spikes from the fault
  /// layer count against it as virtual milliseconds. <= 0 disables.
  double deadline_ms = 0.0;

  /// Budgets on the number of accesses of each kind (0 disables). Direct
  /// accesses (BPA2) count toward the sorted budget — they play the same
  /// role in the paper's cost model as a position-addressed scan read.
  uint64_t sorted_access_budget = 0;
  uint64_t random_access_budget = 0;
  /// Budget on sorted + random + direct accesses together (0 disables).
  uint64_t total_access_budget = 0;

  /// Budget on the live candidate-pool footprint in bytes (NRA/CA/TPUT;
  /// 0 disables). Measures the candidates of *this* query, not the arena
  /// capacity retained by a warmed context.
  size_t pool_byte_budget = 0;

  /// StrictMode: when true, any degradation (a tripped limit, cancellation,
  /// or a permanent list failure) is converted by ExecuteInto into a Status
  /// error (ResourceExhausted / Unavailable) instead of an anytime result.
  bool strict = false;

  /// True when any limit is set (cancellation works regardless).
  bool enabled() const {
    return deadline_ms > 0.0 || sorted_access_budget != 0 ||
           random_access_budget != 0 || total_access_budget != 0 ||
           pool_byte_budget != 0;
  }

  /// Validates the limits for `algorithm`; messages name the algorithm, the
  /// limit and the observed value.
  Status Validate(const char* algorithm) const;
};

/// The per-context governor. Not copyable (holds the cancellation flag).
class QueryGovernor {
 public:
  /// The clock deadlines are armed and charged on. Must be monotonic: a
  /// wall clock stepping backwards would un-expire an armed deadline, and
  /// stepping forwards would spuriously cancel every in-flight query.
  using DeadlineClock = std::chrono::steady_clock;
  static_assert(DeadlineClock::is_steady,
                "deadline enforcement requires a monotonic clock");

  QueryGovernor() = default;
  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  /// Arms the governor for one run: captures the deadline's start time and
  /// clears any cancellation left over from a previous query. Called by
  /// ExecuteInto; cheap (no clock read unless a deadline is set).
  void Arm(const GovernorLimits& limits);

  /// The round-boundary check. Returns Completion::kExact while the run may
  /// continue; any other value names the first limit found exhausted
  /// (precedence: cancellation, deadline, access budgets, pool budget).
  /// `stats` are the run's access counts so far, `pool_bytes` the live
  /// candidate footprint (0 for pool-free algorithms), `virtual_ms` the
  /// injected latency accumulated by the fault layer.
  Completion Charge(const AccessStats& stats, size_t pool_bytes,
                    double virtual_ms) {
    if (cancel_.load(std::memory_order_relaxed)) {
      return Completion::kCancelled;
    }
    if (!armed_) {
      return Completion::kExact;
    }
    return ChargeSlow(stats, pool_bytes, virtual_ms);
  }

  /// Cooperative cancellation: may be called from any thread; the running
  /// query observes it at its next round boundary and stops with an anytime
  /// result tagged Completion::kCancelled. Cleared by the next Arm().
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool armed() const { return armed_; }
  const GovernorLimits& limits() const { return limits_; }

 private:
  Completion ChargeSlow(const AccessStats& stats, size_t pool_bytes,
                        double virtual_ms) const;

  GovernorLimits limits_;
  bool armed_ = false;
  std::atomic<bool> cancel_{false};
  DeadlineClock::time_point start_{};
};

/// Certifies an anytime result: records the completion reason, the bound
/// pair and Fagin's theta on `result`. `kth_lower` must be a certified lower
/// bound on every returned item's true score (-inf when nothing was
/// returned); `unreturned_upper` a certified upper bound on every unreturned
/// item's true score. The stored unreturned bound is widened to at least
/// kth_lower so that items proven weaker than the answer set (e.g. pruned
/// candidates) stay covered, and theta = unreturned_upper / kth_lower
/// clamped to [1, +inf] (with +inf when kth_lower <= 0 and the bound does
/// not already collapse).
void CertifyAnytime(Completion reason, Score kth_lower, Score unreturned_upper,
                    TopKResult* result);

}  // namespace topk

#endif  // TOPK_CORE_QUERY_GOVERNOR_H_
