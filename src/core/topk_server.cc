// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/topk_server.h"

#include <array>
#include <atomic>
#include <utility>

namespace topk {

namespace {

constexpr size_t kNumKinds = static_cast<size_t>(AlgorithmKind::kCa) + 1;

std::chrono::nanoseconds MillisToDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

TopKServer::TopKServer(const Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  if (options_.num_threads == 0) {
    options_.num_threads = 1;
  }
  if (options_.queue_capacity == 0) {
    options_.queue_capacity = 1;
  }
  shed_algorithms_.resize(kNumKinds);
  slots_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    slots_.push_back(std::make_unique<InflightSlot>());
  }
  // Materialize every worker context up front: worker_context(i) stays valid
  // from construction on, and no worker pays pool growth at first request.
  for (size_t i = 0; i < options_.num_threads; ++i) {
    contexts_.Get(i);
  }
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back(&TopKServer::WorkerLoop, this, i);
  }
  watchdog_ = std::thread(&TopKServer::WatchdogLoop, this);
}

TopKServer::~TopKServer() { Stop(); }

std::future<Result<TopKResult>> TopKServer::Submit(
    const ServerRequest& request) {
  auto promise = std::make_shared<std::promise<Result<TopKResult>>>();
  std::future<Result<TopKResult>> future = promise->get_future();
  Admit(request, [promise](Result<TopKResult> result) {
    promise->set_value(std::move(result));
  });
  return future;
}

bool TopKServer::SubmitWithCallback(const ServerRequest& request,
                                    Callback callback) {
  return Admit(request, std::move(callback));
}

bool TopKServer::Admit(const ServerRequest& request, Callback deliver) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  Pending pending;
  pending.request = request;
  pending.has_deadline = request.deadline_ms > 0.0;
  if (pending.has_deadline) {
    pending.deadline_at = Clock::now() + MillisToDuration(request.deadline_ms);
  }
  bool refused_stopping = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      refused_stopping = true;
    } else if (queue_.size() < options_.queue_capacity) {
      pending.deliver = std::move(deliver);
      queue_.push_back(std::move(pending));
      queue_cv_.notify_one();
      return true;
    }
  }
  // Refusal and shedding deliver outside the queue lock: a slow callback (or
  // a degraded inline execution) must never stall admission or the workers.
  if (refused_stopping) {
    counters_.failed.fetch_add(1, std::memory_order_relaxed);
    deliver(Result<TopKResult>(Status::Unavailable("server is stopping")));
    return false;
  }
  if (options_.shed_policy == ShedPolicy::kReject) {
    counters_.shed_rejected.fetch_add(1, std::memory_order_relaxed);
    counters_.failed.fetch_add(1, std::memory_order_relaxed);
    deliver(Result<TopKResult>(Status::ResourceExhausted(
        "admission queue full (", options_.queue_capacity,
        " pending); request rejected by shed policy")));
    return false;
  }
  counters_.shed_degraded.fetch_add(1, std::memory_order_relaxed);
  ServeDegraded(request, deliver);
  return false;
}

void TopKServer::ServeDegraded(const ServerRequest& request,
                               const Callback& deliver) {
  Result<TopKResult> result = [&]() -> Result<TopKResult> {
    std::lock_guard<std::mutex> lock(shed_mu_);
    auto& algorithm = shed_algorithms_[static_cast<size_t>(request.kind)];
    if (algorithm == nullptr) {
      AlgorithmOptions degraded = options_.algorithm_options;
      degraded.governor.total_access_budget = options_.degraded_access_budget;
      // Degraded mode exists to answer, not to error: anytime results even
      // when the server-wide options are strict.
      degraded.governor.strict = false;
      algorithm = MakeAlgorithm(request.kind, degraded);
    }
    return algorithm->Execute(*db_, request.query, &shed_context_);
  }();
  if (result.ok()) {
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.failed.fetch_add(1, std::memory_order_relaxed);
  }
  deliver(std::move(result));
}

void TopKServer::WorkerLoop(size_t worker_index) {
  ExecutionContext* context = contexts_.Get(worker_index);
  InflightSlot& slot = *slots_[worker_index];
  std::array<std::unique_ptr<TopKAlgorithm>, kNumKinds> algorithms;
  TopKResult scratch;
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and fully drained
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    if (pending.has_deadline && Clock::now() >= pending.deadline_at) {
      counters_.expired_at_dequeue.fetch_add(1, std::memory_order_relaxed);
      counters_.failed.fetch_add(1, std::memory_order_relaxed);
      pending.deliver(Result<TopKResult>(Status::ResourceExhausted(
          "deadline of ", pending.request.deadline_ms,
          " ms expired while the request was queued")));
      continue;
    }
    auto& algorithm = algorithms[static_cast<size_t>(pending.request.kind)];
    if (algorithm == nullptr) {
      algorithm = MakeAlgorithm(pending.request.kind,
                                options_.algorithm_options);
    }
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.governor = &context->governor();
      slot.deadline_at = pending.deadline_at;
      slot.has_deadline = pending.has_deadline;
      slot.deadline_fired = false;
    }
    scratch.Clear();
    const Status status = algorithm->ExecuteInto(*db_, pending.request.query,
                                                 context, &scratch);
    bool deadline_fired = false;
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      deadline_fired = slot.deadline_fired;
      slot.governor = nullptr;  // idle; the watchdog stops looking
    }
    if (status.ok()) {
      if (scratch.completion == Completion::kCancelled && deadline_fired) {
        // The watchdog, not a caller, pulled the cancel trigger: surface it
        // as the SLA event it is. The θ certificate is unaffected.
        scratch.completion = Completion::kDeadline;
        counters_.deadline_cancelled.fetch_add(1, std::memory_order_relaxed);
      }
      counters_.completed.fetch_add(1, std::memory_order_relaxed);
      pending.deliver(Result<TopKResult>(scratch));
    } else {
      if (deadline_fired) {
        counters_.deadline_cancelled.fetch_add(1, std::memory_order_relaxed);
      }
      counters_.failed.fetch_add(1, std::memory_order_relaxed);
      pending.deliver(Result<TopKResult>(status));
    }
  }
}

void TopKServer::WatchdogLoop() {
  const std::chrono::nanoseconds period =
      MillisToDuration(options_.watchdog_period_ms > 0.0
                           ? options_.watchdog_period_ms
                           : 0.5);
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    if (watchdog_cv_.wait_for(lock, period, [&] { return watchdog_stop_; })) {
      return;
    }
    const Clock::time_point now = Clock::now();
    for (const std::unique_ptr<InflightSlot>& slot : slots_) {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      if (slot->governor != nullptr && slot->has_deadline &&
          now >= slot->deadline_at) {
        // Re-cancelled on every pass while overdue: Arm() clears the flag at
        // run start, so a cancel that raced the arming is re-delivered one
        // period later instead of being lost.
        slot->governor->RequestCancel();
        slot->deadline_fired = true;
      }
    }
  }
}

void TopKServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

ServerStats TopKServer::stats() const {
  ServerStats out;
  out.submitted = counters_.submitted.load(std::memory_order_relaxed);
  out.completed = counters_.completed.load(std::memory_order_relaxed);
  out.failed = counters_.failed.load(std::memory_order_relaxed);
  out.shed_rejected = counters_.shed_rejected.load(std::memory_order_relaxed);
  out.shed_degraded = counters_.shed_degraded.load(std::memory_order_relaxed);
  out.expired_at_dequeue =
      counters_.expired_at_dequeue.load(std::memory_order_relaxed);
  out.deadline_cancelled =
      counters_.deadline_cancelled.load(std::memory_order_relaxed);
  return out;
}

}  // namespace topk
