// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// The O(m*n) baseline from the paper's introduction: scan every list fully,
// aggregate every item's overall score, return the k best. Used as the ground
// truth in tests and as the "no early termination" reference in benchmarks.

#ifndef TOPK_CORE_NAIVE_ALGORITHM_H_
#define TOPK_CORE_NAIVE_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class NaiveAlgorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "Naive"; }

 protected:
  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_NAIVE_ALGORITHM_H_
