// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/nra_algorithm.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/topk_buffer.h"

namespace topk {

namespace {

struct Candidate {
  std::vector<Score> scores;
  std::vector<bool> known;
  size_t known_count = 0;

  explicit Candidate(size_t m) : scores(m, 0.0), known(m, false) {}
};

}  // namespace

Status NraAlgorithm::ValidateFor(const Database& db,
                                 const TopKQuery& query) const {
  (void)query;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    if (db.list(i).MinScore() < options().score_floor) {
      return Status::Invalid(
          "NRA lower bounds assume scores >= score floor ",
          options().score_floor, "; list ", i, " has minimum ",
          db.list(i).MinScore(),
          " (set AlgorithmOptions::score_floor accordingly)");
    }
  }
  return Status::OK();
}

Status NraAlgorithm::Run(const Database& db, const TopKQuery& query,
                         ExecutionContext* context, TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const Score floor = options().score_floor;
  const Scorer& f = *query.scorer;

  AccessEngine* engine = &context->engine();

  // Stop-rule evaluation is O(#candidates); amortize it by evaluating every
  // kCheckInterval rows (correct — checking less often can only delay the
  // stop, never produce a wrong answer).
  constexpr Position kCheckInterval = 8;

  std::unordered_map<ItemId, Candidate> candidates;
  candidates.reserve(1024);
  std::vector<Score>& last_scores = context->last_scores();
  std::vector<Score>& tmp = context->bound_scores();

  auto bound = [&](const Candidate& c, bool upper) {
    for (size_t i = 0; i < m; ++i) {
      tmp[i] = c.known[i] ? c.scores[i] : (upper ? last_scores[i] : floor);
    }
    return f.Combine(tmp.data(), m);
  };

  std::vector<ItemId>& winners = context->ClearedItems();
  Position depth = 0;
  while (depth < n) {
    ++depth;
    for (size_t i = 0; i < m; ++i) {
      const AccessedEntry entry = engine->SortedAccess(i);
      last_scores[i] = entry.score;
      auto [it, inserted] = candidates.try_emplace(entry.item, Candidate(m));
      if (!it->second.known[i]) {
        it->second.known[i] = true;
        it->second.scores[i] = entry.score;
        ++it->second.known_count;
      }
    }
    if (depth % kCheckInterval != 0 && depth != n) {
      continue;
    }

    // k-th best lower bound across candidates.
    TopKBuffer& lower_k = context->ScratchBuffer(query.k);
    for (const auto& [item, cand] : candidates) {
      lower_k.Offer(item, bound(cand, /*upper=*/false));
    }
    if (!lower_k.full()) {
      continue;
    }
    const Score kth_lower = lower_k.KthScore();

    // Unseen items are bounded by the row threshold.
    const Score unseen_upper = f.Combine(last_scores.data(), m);
    bool can_stop = kth_lower >= unseen_upper;

    // Seen items outside the current top-k must not be able to overtake.
    // Items whose upper bound cannot reach kth_lower are pruned for good
    // (their upper bounds only shrink and kth_lower only grows).
    if (can_stop) {
      for (auto it = candidates.begin(); can_stop && it != candidates.end();
           ++it) {
        if (lower_k.Contains(it->first)) {
          continue;
        }
        if (bound(it->second, /*upper=*/true) > kth_lower) {
          can_stop = false;
        }
      }
    }
    // Prune hopeless candidates to keep the map small.
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (!lower_k.Contains(it->first) &&
          bound(it->second, /*upper=*/true) < kth_lower) {
        it = candidates.erase(it);
      } else {
        ++it;
      }
    }
    if (can_stop) {
      for (const ResultItem& ri : lower_k.ToSortedItems()) {
        winners.push_back(ri.item);
      }
      break;
    }
  }

  if (winners.empty()) {
    // Scanned to the bottom: every score is known; take the exact top-k.
    TopKBuffer& buffer = context->buffer();
    for (const auto& [item, cand] : candidates) {
      buffer.Offer(item, bound(cand, /*upper=*/false));
    }
    for (const ResultItem& ri : buffer.ToSortedItems()) {
      winners.push_back(ri.item);
    }
  }

  // Membership is certified; resolve exact winner scores for reporting
  // (uncounted — outside the NRA access model, see header).
  result->items.reserve(winners.size());
  for (ItemId item : winners) {
    for (size_t i = 0; i < m; ++i) {
      tmp[i] = db.list(i).ScoreOf(item);
    }
    result->items.push_back(ResultItem{item, f.Combine(tmp.data(), m)});
  }
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace topk
