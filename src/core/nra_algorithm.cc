// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/nra_algorithm.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/candidate_bounds.h"
#include "core/candidate_pool.h"
#include "core/list_io.h"

namespace topk {

namespace {

// Stop-rule cadence: the rule is evaluated every kCheckInterval rows
// (correct — checking less often can only delay the stop, never produce a
// wrong answer). Sorted access is round-batched on the same cadence: each
// round reads a block of kCheckInterval rows per list, which keeps one list's
// entries (and its cursor state) hot instead of touching all m lists per row.
// The pool state at a round boundary is identical to the row-major order's —
// the same (list, depth) prefix has been recorded and the threshold heap's
// membership is order-independent — so stop positions and access counts are
// unchanged.
constexpr Position kCheckInterval = 8;

// Templated on the access policy and the concrete scorer (like TA/BPA): the
// default configuration — raw list reads, summation scoring — inlines the
// whole row loop and evaluates the stop rule on the pool's per-mask group
// index in O(#groups) instead of sweeping every candidate. Non-summation
// scorers fall back to the per-candidate sweep (their bounds do not decompose
// per mask).
template <typename IoT, typename ScorerT>
Status RunNraLoop(const AlgorithmOptions& options, const Database& db,
                  const TopKQuery& query, ExecutionContext* context, IoT io,
                  TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const ScorerT& scorer = static_cast<const ScorerT&>(*query.scorer);

  // The group index serves only the summation stop rule; the generic-scorer
  // fallback sweeps per candidate, so it skips the index maintenance. NRA
  // leaves the groups' min side off: it would be pushed on each of ~n
  // registrations but peeled only by the rare watermark-triggered
  // compactions (see CandidatePool::Reset), so compaction walks the max
  // side instead.
  CandidatePool& pool =
      context->PreparePool(m, query.k, options.score_floor,
                           /*eager_groups=*/std::is_same_v<ScorerT, SumScorer>);
  std::vector<Score>& last_scores = context->last_scores();
  if constexpr (IoT::kFaultAware) {
    // A list can be dead before its first read (the NRA failover after a
    // random-access algorithm lost it) and then never writes its cursor
    // score; seed every cursor with the list maximum (an uncounted,
    // decision-free metadata read) so the bounds stay sound instead of
    // reading whatever the previous run left in the scratch buffer.
    for (size_t i = 0; i < m; ++i) {
      last_scores[i] = db.list(i).MaxScore();
    }
  }
  std::vector<Score>& tmp = context->bound_scores();
  const double margin = SummationErrorMargin(db, options.score_floor);

  std::vector<ItemId>& winners = context->ClearedItems();
  // Pool-compaction watermark: once the pool reaches it, candidates whose
  // upper bound is strictly below the k-th lower bound are erased (a
  // behavioral no-op for NRA, see GroupCompact) and the watermark resets to
  // 1.25x the surviving size — occupancy hugs the live population instead
  // of O(every seen item), the difference between ~k-digit pools and
  // n-sized pools at DRAM-scale n. The tight 1.25x productive schedule
  // (PR 4 shipped 2x) is affordable because a productive pass's walk is
  // dominated by the subtree-bulk victim collection it erases — the walk
  // amortizes against the erasures, so re-triggering at 1.25x live instead
  // of 2x only re-walks what genuinely survived.
  size_t compact_watermark =
      std::max<size_t>(options.nra_compaction_floor, 2 * query.k);
  int unproductive_passes = 0;  // consecutive; escalates the backoff
  QueryGovernor& governor = context->governor();
  Completion reason = Completion::kExact;
  Score unseen_upper = std::numeric_limits<Score>::infinity();
  Position depth = 0;
  while (depth < n) {
    const Position round_end =
        std::min<Position>(depth + kCheckInterval, static_cast<Position>(n));
    for (size_t i = 0; i < m; ++i) {
      for (Position d = depth + 1; d <= round_end; ++d) {
        if constexpr (IoT::kFaultAware) {
          // A dead list's scan freezes; its last_scores entry keeps
          // bounding the list's unseen entries (they all sit below the
          // frozen cursor), so every bound stays sound over the survivors.
          if (!io.SortedAlive(i)) {
            break;
          }
        }
        // Prefetch pipelining (same discipline as the TA/BPA mirror
        // prefetches): request the pool's probe cell for the item this list
        // reveals kPrefetchRowsAhead rows from now — the item id is read
        // straight off the list's sequential (cache-resident) item array,
        // uncounted and decision-free, so the access pattern is untouched
        // while the FindOrInsert probe's DRAM latency overlaps the rows in
        // between.
        if (d + kPrefetchRowsAhead <= n) {
          pool.PrefetchItem(db.list(i).items()[d - 1 + kPrefetchRowsAhead]);
        }
        const AccessedEntry entry = io.Sorted(i, d);
        last_scores[i] = entry.score;
        const uint32_t slot = pool.FindOrInsert(entry.item);
        if (pool.SetSeen(slot, i, entry.score)) {
          // The row's unknown cells hold the floor, so combining it is the
          // lower bound; bounds only grow, so the threshold heap and the
          // group index update incrementally instead of being rebuilt per
          // check.
          pool.OfferLower(slot, scorer.Combine(pool.row(slot), m));
        }
      }
    }
    depth = round_end;

    unseen_upper = scorer.Combine(last_scores.data(), m);
    if (options.collect_trace) {
      result->trace.push_back(StopRuleTrace{
          depth, unseen_upper,
          pool.HeapFull() ? pool.KthLower()
                          : std::numeric_limits<double>::quiet_NaN(),
          pool.heap_size(), 0});
    }
    if (!pool.HeapFull()) {
      // The round still consumed accesses (and possibly pool bytes), so the
      // governor must see it even though no stop rule can fire yet.
      if ((reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                    io.VirtualLatencyMs())) !=
          Completion::kExact) {
        break;
      }
      continue;
    }
    // Unseen items are bounded by the row threshold. Their ids are unknown,
    // so a tie could still displace the k-th buffered (score, id) pair —
    // the stop requires a strictly larger k-th lower bound (or a complete
    // scan, after which nothing is unseen). Seen candidates are checked
    // id-aware: the group walk (summation) and the fallback sweep both block
    // on any candidate whose (upper bound, id) still beats the weakest heap
    // member. This keeps the returned set exactly the deterministic
    // (score desc, item id asc) top-k.
    bool can_stop = pool.KthLower() > unseen_upper;
    if constexpr (IoT::kFaultAware) {
      // A full scan only certifies exactness when every list was actually
      // read to the bottom — dead cells never resolve.
      can_stop = can_stop || (depth == n && io.DeadLists() == 0);
    } else {
      can_stop = can_stop || depth == n;
    }
    if constexpr (std::is_same_v<ScorerT, SumScorer>) {
      // Deliberate trade vs the old sweep: disqualified candidates are never
      // erased (the group walk just skips their subtrees), so the pool grows
      // to every distinct seen item for the life of the query. Erasure is
      // observably a no-op for NRA — a re-seen erased candidate re-enters
      // with weaker knowledge and a provably sub-threshold bound — and
      // skipping it keeps the walk side-effect-free and early-exitable; the
      // memory trade is tracked in ROADMAP.md. The walk itself only runs
      // when the cheap threshold tests pass.
      if (can_stop &&
          GroupFindBlocker(pool, last_scores, options.score_floor, margin)) {
        can_stop = false;
      }
    } else {
      if (PruneAndFindBlocker(pool, scorer, last_scores, tmp)) {
        can_stop = false;
      }
    }
    if (can_stop) {
      pool.AppendHeapItems(&winners);
      break;
    }
    if constexpr (std::is_same_v<ScorerT, SumScorer>) {
      if (options.nra_pool_compaction && pool.size() >= compact_watermark) {
        const size_t before = pool.size();
        GroupCompact(pool, last_scores, options.score_floor, margin,
                     context->ClearedSlots());
        const size_t after = pool.size();
        // Productive passes (a quarter or more erased — on the compactable
        // shapes they erase 80%+) reset the watermark tight: 1.25x the
        // surviving live set (PR 4 shipped 2x), so occupancy hugs the live
        // population. The quarter bar also keeps marginally-dead pools out
        // of the tight schedule: resetting tight on a 10% erase makes the
        // live-heavy shapes churn (erase, re-see, re-insert) near the
        // productivity boundary. Unproductive passes back off with
        // escalation — 2x on the first, 4x from the second in a row: the
        // first unproductive pass is usually just the threshold heap not
        // being strong *yet* (its backoff bounds the peak, so it should be
        // gentle — on the gaussian n=1M smoke the peak is exactly the first
        // backoff's landing point), while a streak means the pool is
        // genuinely live (uniform m=5: hundreds of thousands of
        // partially-seen candidates block mid-scan) and each O(live) walk
        // has nothing to amortize it, so the ladder must outrun the pool.
        if (before - after >= before / 4) {
          unproductive_passes = 0;
          compact_watermark = std::max<size_t>(options.nra_compaction_floor,
                                               after + after / 4);
        } else {
          ++unproductive_passes;
          compact_watermark = std::max<size_t>(
              options.nra_compaction_floor,
              (unproductive_passes >= 2 ? 4 : 2) * before);
        }
      }
    }
    // Governance: one predictable branch per round when nothing is armed.
    // Placed after the stop check so an exact stop always wins.
    if ((reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                  io.VirtualLatencyMs())) !=
        Completion::kExact) {
      break;
    }
  }
  io.Flush();

  if constexpr (IoT::kFaultAware) {
    if (reason == Completion::kExact && winners.empty() &&
        io.DeadLists() > 0) {
      // The scan ran out of live rows without a certified stop: unseen data
      // remains behind the dead cursors, so the answer degrades.
      reason = Completion::kListFailure;
    }
  }
  if (reason != Completion::kExact) {
    // Anytime exit: report the threshold heap with its certified lower
    // bounds — NRA's contract charges every read, so a degraded answer gets
    // no uncounted raw-score resolution. The unreturned upper bound folds
    // the unseen-item threshold with the strongest surviving non-heap
    // candidate's upper bound.
    pool.AppendHeapItems(&winners);
    Score kth = std::numeric_limits<Score>::infinity();
    result->items.reserve(winners.size());
    for (ItemId item : winners) {
      const Score lower = pool.lower(pool.FindSlot(item));
      kth = std::min(kth, lower);
      result->items.push_back(ResultItem{item, lower});
    }
    if (result->items.empty()) {
      kth = -std::numeric_limits<Score>::infinity();
    }
    Score upper = unseen_upper;
    for (uint32_t slot = 0; slot < pool.size(); ++slot) {
      if (!pool.InHeap(slot)) {
        upper = std::max(
            upper, PoolUpperBound(pool, slot, scorer, last_scores, tmp));
      }
    }
    CertifyAnytime(reason, kth, upper, result);
    result->stop_position = depth;
    return Status::OK();
  }

  if (winners.empty()) {
    // Defensive: a full scan resolves every bound exactly, so the heap is the
    // exact top-k.
    pool.AppendHeapItems(&winners);
  }

  // Membership is certified; resolve exact winner scores for reporting
  // (uncounted — outside the NRA access model, see header).
  result->items.reserve(winners.size());
  for (ItemId item : winners) {
    for (size_t i = 0; i < m; ++i) {
      tmp[i] = db.list(i).ScoreOf(item);
    }
    result->items.push_back(ResultItem{item, scorer.Combine(tmp.data(), m)});
  }
  result->stop_position = depth;
  return Status::OK();
}

template <typename IoT>
Status DispatchNra(const AlgorithmOptions& options, const Database& db,
                   const TopKQuery& query, ExecutionContext* context, IoT io,
                   TopKResult* result) {
  if (dynamic_cast<const SumScorer*>(query.scorer) != nullptr) {
    return RunNraLoop<IoT, SumScorer>(options, db, query, context, io, result);
  }
  return RunNraLoop<IoT, Scorer>(options, db, query, context, io, result);
}

}  // namespace

Status NraAlgorithm::ValidateFor(const Database& db,
                                 const TopKQuery& query) const {
  (void)query;
  return ValidatePoolQuery("NRA", db, options().score_floor);
}

Status NraAlgorithm::Run(const Database& db, const TopKQuery& query,
                         ExecutionContext* context, TopKResult* result) const {
  if (options().audit_accesses) {
    return DispatchNra(options(), db, query, context,
                       EngineIo(&context->engine()), result);
  }
  if (context->faults().armed()) {
    return DispatchNra(options(), db, query, context,
                       FaultIo(&context->faults()), result);
  }
  return DispatchNra(options(), db, query, context,
                     RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
