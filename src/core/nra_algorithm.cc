// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/nra_algorithm.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/candidate_bounds.h"
#include "core/candidate_pool.h"
#include "core/list_io.h"

namespace topk {

namespace {

// Stop-rule cadence: the rule is evaluated every kCheckInterval rows
// (correct — checking less often can only delay the stop, never produce a
// wrong answer). Sorted access is round-batched on the same cadence: each
// round reads a block of kCheckInterval rows per list, which keeps one list's
// entries (and its cursor state) hot instead of touching all m lists per row.
// The pool state at a round boundary is identical to the row-major order's —
// the same (list, depth) prefix has been recorded and the threshold heap's
// membership is order-independent — so stop positions and access counts are
// unchanged.
constexpr Position kCheckInterval = 8;

// Templated on the access policy and the concrete scorer (like TA/BPA): the
// default configuration — raw list reads, summation scoring — inlines the
// whole row loop and evaluates the stop rule on the pool's per-mask group
// index in O(#groups) instead of sweeping every candidate. Non-summation
// scorers fall back to the per-candidate sweep (their bounds do not decompose
// per mask).
template <typename IoT, typename ScorerT>
Status RunNraLoop(const AlgorithmOptions& options, const Database& db,
                  const TopKQuery& query, ExecutionContext* context, IoT io,
                  TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const ScorerT& scorer = static_cast<const ScorerT&>(*query.scorer);

  // The group index serves only the summation stop rule; the generic-scorer
  // fallback sweeps per candidate, so it skips the index maintenance. NRA
  // leaves the groups' min side off: it would be pushed on each of ~n
  // registrations but peeled only by the rare watermark-triggered
  // compactions (see CandidatePool::Reset), so compaction walks the max
  // side instead.
  CandidatePool& pool =
      context->PreparePool(m, query.k, options.score_floor,
                           /*eager_groups=*/std::is_same_v<ScorerT, SumScorer>);
  std::vector<Score>& last_scores = context->last_scores();
  std::vector<Score>& tmp = context->bound_scores();
  const double margin = SummationErrorMargin(db, options.score_floor);

  std::vector<ItemId>& winners = context->ClearedItems();
  // Pool-compaction watermark: once the pool reaches it, candidates whose
  // upper bound is strictly below the k-th lower bound are erased (a
  // behavioral no-op for NRA, see GroupCompact) and the watermark resets to
  // 1.25x the surviving size — occupancy hugs the live population instead
  // of O(every seen item), the difference between ~k-digit pools and
  // n-sized pools at DRAM-scale n. The tight 1.25x productive schedule
  // (PR 4 shipped 2x) is affordable because a productive pass's walk is
  // dominated by the subtree-bulk victim collection it erases — the walk
  // amortizes against the erasures, so re-triggering at 1.25x live instead
  // of 2x only re-walks what genuinely survived.
  size_t compact_watermark =
      std::max<size_t>(options.nra_compaction_floor, 2 * query.k);
  int unproductive_passes = 0;  // consecutive; escalates the backoff
  Position depth = 0;
  while (depth < n) {
    const Position round_end =
        std::min<Position>(depth + kCheckInterval, static_cast<Position>(n));
    for (size_t i = 0; i < m; ++i) {
      for (Position d = depth + 1; d <= round_end; ++d) {
        // Prefetch pipelining (same discipline as the TA/BPA mirror
        // prefetches): request the pool's probe cell for the item this list
        // reveals kPrefetchRowsAhead rows from now — the item id is read
        // straight off the list's sequential (cache-resident) item array,
        // uncounted and decision-free, so the access pattern is untouched
        // while the FindOrInsert probe's DRAM latency overlaps the rows in
        // between.
        if (d + kPrefetchRowsAhead <= n) {
          pool.PrefetchItem(db.list(i).items()[d - 1 + kPrefetchRowsAhead]);
        }
        const AccessedEntry entry = io.Sorted(i, d);
        last_scores[i] = entry.score;
        const uint32_t slot = pool.FindOrInsert(entry.item);
        if (pool.SetSeen(slot, i, entry.score)) {
          // The row's unknown cells hold the floor, so combining it is the
          // lower bound; bounds only grow, so the threshold heap and the
          // group index update incrementally instead of being rebuilt per
          // check.
          pool.OfferLower(slot, scorer.Combine(pool.row(slot), m));
        }
      }
    }
    depth = round_end;

    const Score unseen_upper = scorer.Combine(last_scores.data(), m);
    if (options.collect_trace) {
      result->trace.push_back(StopRuleTrace{
          depth, unseen_upper,
          pool.HeapFull() ? pool.KthLower()
                          : std::numeric_limits<double>::quiet_NaN(),
          pool.heap_size(), 0});
    }
    if (!pool.HeapFull()) {
      continue;
    }
    // Unseen items are bounded by the row threshold. Their ids are unknown,
    // so a tie could still displace the k-th buffered (score, id) pair —
    // the stop requires a strictly larger k-th lower bound (or a complete
    // scan, after which nothing is unseen). Seen candidates are checked
    // id-aware: the group walk (summation) and the fallback sweep both block
    // on any candidate whose (upper bound, id) still beats the weakest heap
    // member. This keeps the returned set exactly the deterministic
    // (score desc, item id asc) top-k.
    bool can_stop = pool.KthLower() > unseen_upper || depth == n;
    if constexpr (std::is_same_v<ScorerT, SumScorer>) {
      // Deliberate trade vs the old sweep: disqualified candidates are never
      // erased (the group walk just skips their subtrees), so the pool grows
      // to every distinct seen item for the life of the query. Erasure is
      // observably a no-op for NRA — a re-seen erased candidate re-enters
      // with weaker knowledge and a provably sub-threshold bound — and
      // skipping it keeps the walk side-effect-free and early-exitable; the
      // memory trade is tracked in ROADMAP.md. The walk itself only runs
      // when the cheap threshold tests pass.
      if (can_stop &&
          GroupFindBlocker(pool, last_scores, options.score_floor, margin)) {
        can_stop = false;
      }
    } else {
      if (PruneAndFindBlocker(pool, scorer, last_scores, tmp)) {
        can_stop = false;
      }
    }
    if (can_stop) {
      pool.AppendHeapItems(&winners);
      break;
    }
    if constexpr (std::is_same_v<ScorerT, SumScorer>) {
      if (options.nra_pool_compaction && pool.size() >= compact_watermark) {
        const size_t before = pool.size();
        GroupCompact(pool, last_scores, options.score_floor, margin,
                     context->ClearedSlots());
        const size_t after = pool.size();
        // Productive passes (a quarter or more erased — on the compactable
        // shapes they erase 80%+) reset the watermark tight: 1.25x the
        // surviving live set (PR 4 shipped 2x), so occupancy hugs the live
        // population. The quarter bar also keeps marginally-dead pools out
        // of the tight schedule: resetting tight on a 10% erase makes the
        // live-heavy shapes churn (erase, re-see, re-insert) near the
        // productivity boundary. Unproductive passes back off with
        // escalation — 2x on the first, 4x from the second in a row: the
        // first unproductive pass is usually just the threshold heap not
        // being strong *yet* (its backoff bounds the peak, so it should be
        // gentle — on the gaussian n=1M smoke the peak is exactly the first
        // backoff's landing point), while a streak means the pool is
        // genuinely live (uniform m=5: hundreds of thousands of
        // partially-seen candidates block mid-scan) and each O(live) walk
        // has nothing to amortize it, so the ladder must outrun the pool.
        if (before - after >= before / 4) {
          unproductive_passes = 0;
          compact_watermark = std::max<size_t>(options.nra_compaction_floor,
                                               after + after / 4);
        } else {
          ++unproductive_passes;
          compact_watermark = std::max<size_t>(
              options.nra_compaction_floor,
              (unproductive_passes >= 2 ? 4 : 2) * before);
        }
      }
    }
  }
  io.Flush();

  if (winners.empty()) {
    // Defensive: a full scan resolves every bound exactly, so the heap is the
    // exact top-k.
    pool.AppendHeapItems(&winners);
  }

  // Membership is certified; resolve exact winner scores for reporting
  // (uncounted — outside the NRA access model, see header).
  result->items.reserve(winners.size());
  for (ItemId item : winners) {
    for (size_t i = 0; i < m; ++i) {
      tmp[i] = db.list(i).ScoreOf(item);
    }
    result->items.push_back(ResultItem{item, scorer.Combine(tmp.data(), m)});
  }
  result->stop_position = depth;
  return Status::OK();
}

template <typename IoT>
Status DispatchNra(const AlgorithmOptions& options, const Database& db,
                   const TopKQuery& query, ExecutionContext* context, IoT io,
                   TopKResult* result) {
  if (dynamic_cast<const SumScorer*>(query.scorer) != nullptr) {
    return RunNraLoop<IoT, SumScorer>(options, db, query, context, io, result);
  }
  return RunNraLoop<IoT, Scorer>(options, db, query, context, io, result);
}

}  // namespace

Status NraAlgorithm::ValidateFor(const Database& db,
                                 const TopKQuery& query) const {
  (void)query;
  return ValidatePoolQuery("NRA", db, options().score_floor);
}

Status NraAlgorithm::Run(const Database& db, const TopKQuery& query,
                         ExecutionContext* context, TopKResult* result) const {
  if (options().audit_accesses) {
    return DispatchNra(options(), db, query, context,
                       EngineIo(&context->engine()), result);
  }
  return DispatchNra(options(), db, query, context,
                     RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
