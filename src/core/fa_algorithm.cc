// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/fa_algorithm.h"

#include <vector>

#include "core/topk_buffer.h"

namespace topk {

Status FaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        ExecutionContext* context, TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();

  AccessEngine* engine = &context->engine();

  // Phase 1: sorted access in parallel until >= k items are seen in all lists.
  // seen_lists[d] counts the lists where d was seen under sorted access;
  // local[d*m + i] caches the local score revealed by that access.
  std::vector<uint16_t>& seen_lists = context->ZeroedCounts(n);
  std::vector<Score>& local = context->ZeroedScoreMatrix(n * m);
  std::vector<uint8_t>& known = context->ZeroedFlags(n * m);

  size_t fully_seen = 0;
  Position depth = 0;
  while (fully_seen < query.k && depth < n) {
    ++depth;
    for (size_t i = 0; i < m; ++i) {
      const AccessedEntry entry = engine->SortedAccess(i);
      const size_t cell = static_cast<size_t>(entry.item) * m + i;
      local[cell] = entry.score;
      known[cell] = 1;
      if (++seen_lists[entry.item] == m) {
        ++fully_seen;
      }
    }
  }

  // Phase 2: for every item seen somewhere, resolve missing local scores via
  // random access, aggregate, and keep the k best.
  TopKBuffer& buffer = context->buffer();
  std::vector<Score>& scores = context->local_scores();
  for (ItemId item = 0; item < n; ++item) {
    if (seen_lists[item] == 0) {
      continue;
    }
    for (size_t i = 0; i < m; ++i) {
      const size_t cell = static_cast<size_t>(item) * m + i;
      if (known[cell]) {
        scores[i] = local[cell];
      } else {
        scores[i] = engine->RandomAccess(i, item).score;
      }
    }
    buffer.Offer(item, query.scorer->Combine(scores.data(), m));
  }

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace topk
