// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/fa_algorithm.h"

#include <vector>

#include "core/topk_buffer.h"

namespace topk {

Status FaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        ExecutionContext* context, TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();

  AccessEngine* engine = &context->engine();

  // Phase 1: sorted access in parallel until >= k items are seen in all lists.
  // seen_lists[d] counts the lists where d was seen under sorted access;
  // local[d*m + i] caches the local score revealed by that access.
  std::vector<uint16_t>& seen_lists = context->ZeroedCounts(n);
  std::vector<Score>& local = context->ZeroedScoreMatrix(n * m);
  std::vector<uint8_t>& known = context->ZeroedFlags(n * m);
  std::vector<Score>& last_scores = context->last_scores();

  size_t fully_seen = 0;
  Position depth = 0;
  std::vector<ItemId>& row_items = context->ClearedItems();  // last row's items
  const auto scan_row = [&] {
    ++depth;
    row_items.clear();
    for (size_t i = 0; i < m; ++i) {
      const AccessedEntry entry = engine->SortedAccess(i);
      last_scores[i] = entry.score;
      row_items.push_back(entry.item);
      const size_t cell = static_cast<size_t>(entry.item) * m + i;
      local[cell] = entry.score;
      known[cell] = 1;
      if (++seen_lists[entry.item] == m) {
        ++fully_seen;
      }
    }
  };
  while (fully_seen < query.k && depth < n) {
    scan_row();
  }

  // Phase 2: for every item seen somewhere, resolve missing local scores via
  // random access, aggregate, and keep the k best.
  TopKBuffer& buffer = context->buffer();
  std::vector<Score>& scores = context->local_scores();
  const auto resolve_and_offer = [&](ItemId item) {
    for (size_t i = 0; i < m; ++i) {
      const size_t cell = static_cast<size_t>(item) * m + i;
      if (known[cell]) {
        scores[i] = local[cell];
      } else {
        scores[i] = engine->RandomAccess(i, item).score;
        local[cell] = scores[i];
        known[cell] = 1;
      }
    }
    buffer.Offer(item, query.scorer->Combine(scores.data(), m));
  };
  for (ItemId item = 0; item < n; ++item) {
    if (seen_lists[item] > 0) {
      resolve_and_offer(item);
    }
  }

  // Tie guard for the deterministic (score desc, item id asc) result order:
  // an item unseen in every list is bounded by f(last scores) and could tie
  // the k-th buffered score with a smaller id, so scan on until the boundary
  // is strict (or nothing is unseen). Every already-seen item is fully
  // resolved at this point, so each extra row only needs to resolve the (at
  // most m) items it reveals — re-resolving one costs no accesses and
  // re-offering its deterministic score is a no-op.
  while (depth < n &&
         !buffer.HasKAbove(query.scorer->Combine(last_scores.data(), m))) {
    scan_row();
    for (ItemId item : row_items) {
      resolve_and_offer(item);
    }
  }

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace topk
