// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/fa_algorithm.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/list_io.h"
#include "core/topk_buffer.h"

namespace topk {
namespace {

// Templated on the access policy: EngineIo is the default (FA leans on the
// engine's sorted cursors), FaultIo when a fault plan is armed. The loops'
// aliveness guards are `if constexpr`-eliminated for the fault-free policy.
template <typename IoT>
Status RunFaLoop(const AlgorithmOptions& /*options*/, const Database& db,
                 const TopKQuery& query, ExecutionContext* context, IoT io,
                 TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();

  // Phase 1: sorted access in parallel until >= k items are seen in all lists.
  // seen_lists[d] counts the lists where d was seen under sorted access;
  // local[d*m + i] caches the local score revealed by that access.
  std::vector<uint16_t>& seen_lists = context->ZeroedCounts(n);
  std::vector<Score>& local = context->ZeroedScoreMatrix(n * m);
  std::vector<uint8_t>& known = context->ZeroedFlags(n * m);
  std::vector<Score>& last_scores = context->last_scores();
  for (size_t i = 0; i < m; ++i) {
    // Cursor-score bound for lists a fault kills before their first read (an
    // uncounted, decision-free metadata read; overwritten by every access).
    last_scores[i] = db.list(i).MaxScore();
  }

  QueryGovernor& governor = context->governor();
  Completion reason = Completion::kExact;
  size_t fully_seen = 0;
  Position depth = 0;
  std::vector<ItemId>& row_items = context->ClearedItems();  // last row's items
  // Returns false when no list is left alive (the row made no progress).
  const auto scan_row = [&]() -> bool {
    ++depth;
    row_items.clear();
    [[maybe_unused]] bool progress = !IoT::kFaultAware;
    for (size_t i = 0; i < m; ++i) {
      if constexpr (IoT::kFaultAware) {
        // A dead list's scan freezes; its last_scores entry keeps bounding
        // its unseen entries (they sit below the frozen cursor).
        if (!io.SortedAlive(i)) {
          continue;
        }
        progress = true;
      }
      const AccessedEntry entry = io.Sorted(i, depth);
      last_scores[i] = entry.score;
      row_items.push_back(entry.item);
      const size_t cell = static_cast<size_t>(entry.item) * m + i;
      local[cell] = entry.score;
      known[cell] = 1;
      if (++seen_lists[entry.item] == m) {
        ++fully_seen;
      }
    }
    return progress;
  };

  TopKBuffer& buffer = context->buffer();
  std::vector<Score>& scores = context->local_scores();
  const auto resolve_and_offer = [&](ItemId item) {
    for (size_t i = 0; i < m; ++i) {
      const size_t cell = static_cast<size_t>(item) * m + i;
      if (known[cell]) {
        scores[i] = local[cell];
      } else {
        scores[i] = io.Random(i, item).score;
        local[cell] = scores[i];
        known[cell] = 1;
      }
    }
    buffer.Offer(item, query.scorer->Combine(scores.data(), m));
  };

  // Anytime exit: fully-seen items resolve with zero extra accesses, so they
  // are offered before emitting; the unreturned upper bound sweeps the
  // partially-seen items (unknown cells bounded by their list's cursor
  // score) and folds the all-unseen bound f(last scores).
  const auto anytime = [&](Completion why) -> Status {
    for (ItemId item = 0; item < static_cast<ItemId>(n); ++item) {
      if (seen_lists[item] == m) {
        resolve_and_offer(item);  // every cell is known: no accesses
      }
    }
    io.Flush();
    buffer.AppendSortedItems(&result->items);
    result->stop_position = depth;
    const Score kth = result->items.empty()
                          ? -std::numeric_limits<Score>::infinity()
                          : result->items.back().score;
    Score upper = query.scorer->Combine(last_scores.data(), m);
    for (ItemId item = 0; item < static_cast<ItemId>(n); ++item) {
      if (seen_lists[item] == 0) {
        continue;
      }
      bool partial = false;
      for (size_t i = 0; i < m; ++i) {
        const size_t cell = static_cast<size_t>(item) * m + i;
        if (known[cell]) {
          scores[i] = local[cell];
        } else {
          scores[i] = last_scores[i];
          partial = true;
        }
      }
      if (partial) {
        // Fully-known items were offered (their exact score is either
        // returned or already below the k-th), so only partial items can
        // still beat the answer.
        upper = std::max(upper, query.scorer->Combine(scores.data(), m));
      }
    }
    CertifyAnytime(why, kth, upper, result);
    return Status::OK();
  };

  while (fully_seen < query.k && depth < n) {
    if (!scan_row()) {
      return anytime(Completion::kListFailure);  // every list is dead
    }
    // Governance: one predictable branch per row when nothing is armed.
    if ((reason = governor.Charge(io.stats(), 0, io.VirtualLatencyMs())) !=
        Completion::kExact) {
      return anytime(reason);
    }
  }

  // Phase 2: for every item seen somewhere, resolve missing local scores via
  // random access, aggregate, and keep the k best.
  size_t offered = 0;
  for (ItemId item = 0; item < static_cast<ItemId>(n); ++item) {
    if (seen_lists[item] == 0) {
      continue;
    }
    if constexpr (IoT::kFaultAware) {
      // Resolution needs random access to every unknown cell; a dead list
      // makes FA unservable — fail over to NRA over the survivors.
      for (size_t i = 0; i < m; ++i) {
        if (!known[static_cast<size_t>(item) * m + i] && !io.RandomAlive(i)) {
          io.Flush();
          return Status::Unavailable(
              "FA: list ", i,
              " died permanently; random access is unavailable");
        }
      }
    }
    resolve_and_offer(item);
    if ((++offered & 63u) == 0 &&
        (reason = governor.Charge(io.stats(), 0, io.VirtualLatencyMs())) !=
            Completion::kExact) {
      return anytime(reason);
    }
  }

  // Tie guard for the deterministic (score desc, item id asc) result order:
  // an item unseen in every list is bounded by f(last scores) and could tie
  // the k-th buffered score with a smaller id, so scan on until the boundary
  // is strict (or nothing is unseen). Every already-seen item is fully
  // resolved at this point, so each extra row only needs to resolve the (at
  // most m) items it reveals — re-resolving one costs no accesses and
  // re-offering its deterministic score is a no-op.
  while (depth < n &&
         !buffer.HasKAbove(query.scorer->Combine(last_scores.data(), m))) {
    if (!scan_row()) {
      return anytime(Completion::kListFailure);  // unseen data remains
    }
    for (ItemId item : row_items) {
      if constexpr (IoT::kFaultAware) {
        for (size_t i = 0; i < m; ++i) {
          if (!known[static_cast<size_t>(item) * m + i] &&
              !io.RandomAlive(i)) {
            io.Flush();
            return Status::Unavailable(
                "FA: list ", i,
                " died permanently; random access is unavailable");
          }
        }
      }
      resolve_and_offer(item);
    }
    if ((reason = governor.Charge(io.stats(), 0, io.VirtualLatencyMs())) !=
        Completion::kExact) {
      return anytime(reason);
    }
  }
  io.Flush();

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace

Status FaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        ExecutionContext* context, TopKResult* result) const {
  if (context->faults().armed()) {
    return RunFaLoop(options(), db, query, context,
                     FaultIo(&context->faults()), result);
  }
  return RunFaLoop(options(), db, query, context, EngineIo(&context->engine()),
                   result);
}

}  // namespace topk
