// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// The Best Position Algorithm (BPA), paper Section 4 — the paper's first
// contribution. BPA scans like TA but additionally records the *positions*
// revealed by sorted and random accesses. Its stopping threshold
// λ = f(s1(bp1), ..., sm(bpm)) is evaluated at each list's best position
// (deepest fully-seen prefix), which is >= TA's sorted depth, so λ <= δ and
// BPA stops at least as early as TA (Lemma 1) and up to (m-1) times earlier
// (Lemma 3).

#ifndef TOPK_CORE_BPA_ALGORITHM_H_
#define TOPK_CORE_BPA_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class BpaAlgorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "BPA"; }

 protected:
  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_BPA_ALGORITHM_H_
