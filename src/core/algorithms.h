// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Umbrella header: every top-k algorithm plus the factory.

#ifndef TOPK_CORE_ALGORITHMS_H_
#define TOPK_CORE_ALGORITHMS_H_

#include "core/bpa2_algorithm.h"
#include "core/bpa_algorithm.h"
#include "core/ca_algorithm.h"
#include "core/execution_context.h"
#include "core/fa_algorithm.h"
#include "core/naive_algorithm.h"
#include "core/nra_algorithm.h"
#include "core/query_engine.h"
#include "core/ta_algorithm.h"
#include "core/topk_algorithm.h"
#include "core/topk_buffer.h"
#include "core/topk_result.h"
#include "core/tput_algorithm.h"

#endif  // TOPK_CORE_ALGORITHMS_H_
