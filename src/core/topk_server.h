// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// TopKServer: a persistent serving frontend over the algorithm library.
//
// A server owns a pool of worker threads, each with a private, warmed
// ExecutionContext and per-algorithm instances cached across requests, fed by
// a bounded multi-producer admission queue. Submitters get a
// std::future<Result<TopKResult>> (or a completion callback) and never block
// on a full queue — admission control sheds instead:
//
//   * ShedPolicy::kReject      — the request completes immediately with
//                                Status::ResourceExhausted.
//   * ShedPolicy::kServeDegraded — the request runs inline on the submitting
//                                thread under a small access budget and
//                                returns a certified θ-bounded anytime
//                                answer (TopKResult::completion names the
//                                tripped budget).
//
// Deadlines. Each request may carry an SLA deadline (ServerRequest::
// deadline_ms, measured from admission). Worker algorithm instances are
// cached with const options, so per-request deadlines are enforced from the
// outside: a watchdog thread scans the in-flight slots and calls
// QueryGovernor::RequestCancel() on any run past its deadline. The running
// algorithm observes the flag at its next round boundary, stops, and
// certifies an anytime result; the worker rewrites Completion::kCancelled to
// Completion::kDeadline when the watchdog (not a caller) pulled the trigger.
// Requests already past their deadline at dequeue complete with
// ResourceExhausted without touching a context.
//
// The watchdog/cancel handshake is deliberately self-healing: ExecuteInto's
// Arm() clears the cancel flag at run start, so a cancel landing in the
// window between slot publication and Arm would be lost — the watchdog
// therefore re-cancels every still-overdue slot on every pass (slots are
// read and cancelled under the slot mutex, so a cancel can never land on the
// *next* request of a worker).
//
// Steady state allocates nothing on the execution path: contexts, results
// and algorithm instances are reused per worker; only the future/promise
// plumbing of each request allocates.

#ifndef TOPK_CORE_TOPK_SERVER_H_
#define TOPK_CORE_TOPK_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/context_pool.h"
#include "core/topk_algorithm.h"
#include "lists/database.h"

namespace topk {

/// What to do with a request that arrives while the admission queue is full.
enum class ShedPolicy : uint8_t {
  kReject = 0,         ///< complete immediately with ResourceExhausted
  kServeDegraded = 1,  ///< run inline under a small access budget (anytime)
};

/// One serving request: which algorithm, what query, and the SLA.
struct ServerRequest {
  AlgorithmKind kind = AlgorithmKind::kBpa;
  TopKQuery query;

  /// Per-request deadline in milliseconds, measured from admission
  /// (Submit time). <= 0 disables. An in-flight request past its deadline is
  /// cancelled and returns a certified anytime answer tagged
  /// Completion::kDeadline; a request already overdue at dequeue completes
  /// with Status::ResourceExhausted.
  double deadline_ms = 0.0;
};

/// Server construction knobs.
struct ServerOptions {
  /// Worker threads (each with a private warmed context). Minimum 1.
  size_t num_threads = 1;

  /// Admission-queue capacity; a submit beyond it sheds per `shed_policy`.
  size_t queue_capacity = 256;

  ShedPolicy shed_policy = ShedPolicy::kReject;

  /// Total-access budget of degraded (shed-inline) executions under
  /// ShedPolicy::kServeDegraded.
  uint64_t degraded_access_budget = 512;

  /// Watchdog scan period. Deadline enforcement quantizes to this (plus the
  /// algorithm's round length), so keep it well under the finest SLA.
  double watchdog_period_ms = 0.5;

  /// Base options for the cached worker algorithms. Per-request deadlines do
  /// NOT go through these (see the watchdog comment above); limits set here
  /// apply to every request. GovernorLimits::strict converts degradations
  /// into Status errors server-wide.
  AlgorithmOptions algorithm_options;
};

/// Monotonic counters, snapshotted by TopKServer::stats().
struct ServerStats {
  uint64_t submitted = 0;          ///< Submit/SubmitWithCallback calls
  uint64_t completed = 0;          ///< delivered with an ok() Result
  uint64_t failed = 0;             ///< delivered with an error Status
  uint64_t shed_rejected = 0;      ///< full queue, ShedPolicy::kReject
  uint64_t shed_degraded = 0;      ///< full queue, served inline degraded
  uint64_t expired_at_dequeue = 0; ///< deadline already gone when picked up
  uint64_t deadline_cancelled = 0; ///< cancelled mid-run by the watchdog
};

/// The serving frontend. Thread-safe: any number of threads may Submit
/// concurrently. Destruction drains the queue (every admitted request is
/// answered) and joins the workers.
class TopKServer {
 public:
  using Callback = std::function<void(Result<TopKResult>)>;

  /// \param db non-owning; must outlive the server.
  explicit TopKServer(const Database* db, ServerOptions options = {});
  ~TopKServer();

  TopKServer(const TopKServer&) = delete;
  TopKServer& operator=(const TopKServer&) = delete;

  /// Submits a request. The future is satisfied when a worker completes the
  /// request — or immediately, when the queue is full (shed) or the server
  /// is stopping (Unavailable).
  std::future<Result<TopKResult>> Submit(const ServerRequest& request);

  /// Callback flavor: `callback` runs exactly once, on the worker thread
  /// that completed the request (or on the submitting thread when the
  /// request is shed inline). Returns false iff the request was shed or
  /// refused — the callback still fires with the terminal Result either way.
  bool SubmitWithCallback(const ServerRequest& request, Callback callback);

  /// Stops admission, answers everything already admitted, joins workers.
  /// Idempotent; called by the destructor.
  void Stop();

  ServerStats stats() const;
  size_t num_threads() const { return workers_.size(); }

  /// Test access: worker `i`'s execution context (for arena byte-stability
  /// pins). Do not touch while the server is running requests.
  ExecutionContext& worker_context(size_t i) { return *contexts_.Get(i); }

 private:
  using Clock = QueryGovernor::DeadlineClock;

  struct Pending {
    ServerRequest request;
    Callback deliver;
    Clock::time_point deadline_at{};
    bool has_deadline = false;
  };

  /// One worker's in-flight publication, read by the watchdog. `governor`
  /// and the flags are only touched under `mu` (the pointer itself is stable:
  /// it is the worker's context governor).
  struct InflightSlot {
    std::mutex mu;
    QueryGovernor* governor = nullptr;  // null <=> idle
    Clock::time_point deadline_at{};
    bool has_deadline = false;
    bool deadline_fired = false;  // watchdog cancelled this run
  };

  void WorkerLoop(size_t worker_index);
  void WatchdogLoop();
  /// Admission decision + handoff; returns false when the request was shed
  /// or refused (the callback has then already fired).
  bool Admit(const ServerRequest& request, Callback deliver);
  void ServeDegraded(const ServerRequest& request, const Callback& deliver);

  const Database* db_;
  ServerOptions options_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  std::mutex stop_mu_;  // serializes Stop() callers
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  ContextPool contexts_;
  std::vector<std::unique_ptr<InflightSlot>> slots_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;

  // Degraded lane: one context + per-kind algorithm cache, serialized by a
  // mutex (shedding is the overload path; contention here is the point).
  std::mutex shed_mu_;
  ExecutionContext shed_context_;
  std::vector<std::unique_ptr<TopKAlgorithm>> shed_algorithms_;

  struct Counters {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> shed_rejected{0};
    std::atomic<uint64_t> shed_degraded{0};
    std::atomic<uint64_t> expired_at_dequeue{0};
    std::atomic<uint64_t> deadline_cancelled{0};
  };
  mutable Counters counters_;
};

}  // namespace topk

#endif  // TOPK_CORE_TOPK_SERVER_H_
