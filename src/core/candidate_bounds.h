// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Shared bound computations and the stop-rule checks of the candidate-pool
// algorithms (NRA, CA, TPUT).
//
// For summation scoring the checks run on the pool's per-mask group index in
// O(#distinct masks), not O(pool size): a candidate's upper bound is its
// lower bound plus the sum of the current depth scores of its unseen lists —
// within one mask group that delta is shared, so ordering members by the
// immutable (lower bound, item id) key orders them by upper bound too, and
// each walk picks the dual-heap side whose root bounds the answer it needs:
//
//   - the *max* side (strongest at root, every subtree root majorizes its
//     descendants) serves the existence/argmax/bulk questions — "does any
//     member still block the stop?" (GroupFindBlocker), "which member has
//     the largest upper bound?" (GroupArgmaxUnresolved), TPUT's τ2 filter
//     and NRA's rare compaction passes (GroupCompact) — pruning whole
//     subtrees once their keys drop below the decision threshold;
//   - CA's optional *min* side (weakest at root; see CandidatePool for the
//     when-it-pays analysis) serves its per-stop-check prune-and-erase pass
//     (GroupPruneAndFindBlocker): victims are peeled weakest-first and the
//     peel stops at the frontier where keys rise above the prune threshold,
//     so the pass costs what it erases (plus the margin band), not what is
//     alive. Before the min side existed that pass had to descend through
//     every surviving above-threshold member to reproduce the sweep's
//     erasures — O(live set) per stop check, the dominant cost of CA at
//     DRAM-resident n.
//
// The pruning comparison adds a safety margin that dominates the worst-case
// floating-point summation error (see SummationErrorMargin), and every member
// that survives the margin test is then evaluated with the exact same
// interleaved summation the pre-group-index per-candidate sweep used
// (PoolUpperBound). Decisions — stop positions, CA's resolution victims,
// TPUT's phase-3 survivors, and therefore all access counts — are thus
// byte-identical to the O(pool) sweeps they replace: members below the
// margined threshold provably cannot pass the exact comparison, and members
// above it face the exact comparison itself.
//
// Non-summation scorers keep the per-candidate sweep (PruneAndFindBlocker):
// a general monotonic f does not decompose per mask.

#ifndef TOPK_CORE_CANDIDATE_BOUNDS_H_
#define TOPK_CORE_CANDIDATE_BOUNDS_H_

#include <cmath>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "core/candidate_pool.h"
#include "lists/database.h"
#include "lists/scorer.h"
#include "lists/types.h"

namespace topk {

/// Shared validation of the pool-backed algorithms (NRA/CA/TPUT): the pool's
/// seen mask is one 64-bit word, capping m at CandidatePool::kMaxLists, and
/// every local score must respect the floor the lower bounds are built from.
inline Status ValidatePoolQuery(const char* algorithm, const Database& db,
                                double score_floor) {
  if (db.num_lists() > CandidatePool::kMaxLists) {
    return Status::NotImplemented(
        algorithm, " candidate bookkeeping keeps per-candidate seen masks in "
        "a single 64-bit word, capping queries at ", CandidatePool::kMaxLists,
        " lists; got ", db.num_lists(),
        " (multi-word masks are not implemented)");
  }
  for (size_t i = 0; i < db.num_lists(); ++i) {
    if (db.list(i).MinScore() < score_floor) {
      return Status::Invalid(
          algorithm, " lower bounds assume scores >= score floor ",
          score_floor, "; list ", i, " has minimum ", db.list(i).MinScore(),
          " (set AlgorithmOptions::score_floor accordingly)");
    }
  }
  return Status::OK();
}

/// The score floor the pool algorithms need for a database with signed
/// scores: the paper's model floor (0) lowered to the smallest local score.
/// Shared by the CLI-facing harnesses (bench_micro, parity_dump) and tests
/// so a floor-contract change propagates everywhere at once.
inline double DeriveScoreFloor(const Database& db) {
  double floor = 0.0;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    floor = std::min(floor, db.list(i).MinScore());
  }
  return floor;
}

/// Absolute bound-comparison margin for the group walks: any two ways of
/// summing m <= 64 doubles drawn from the database's score range differ by
/// at most (m-1) * eps * sum(|max term|) ~ 2^-46 * S; the margin 2^-38 * S
/// exceeds that error by 256x while staying far below any score gap a
/// workload can resolve. Group members whose margined decomposed bound
/// (lower + per-mask delta) falls below a decision threshold are provably
/// also below it under the exact interleaved summation, so pruning on the
/// margined bound never changes a decision.
inline double SummationErrorMargin(const Database& db, double score_floor) {
  double sum = std::abs(score_floor);
  for (size_t i = 0; i < db.num_lists(); ++i) {
    sum += std::max(std::abs(db.list(i).MaxScore()),
                    std::abs(db.list(i).MinScore())) +
           std::abs(score_floor);
  }
  return std::ldexp(sum, -38);
}

/// The exact summation upper bound of a candidate: a left-to-right
/// interleaved sum over the row with unknown cells replaced by the current
/// last-seen score of their list. Every per-candidate decision of the group
/// walks is made with this one arithmetic — the byte-parity guarantee
/// against the pre-group-index sweeps rests on all call sites sharing it.
inline Score SumUpperBound(const CandidatePool& pool, uint32_t slot,
                           const std::vector<Score>& last_scores) {
  const size_t m = pool.num_lists();
  const Score* row = pool.row(slot);
  const uint64_t mask = pool.mask(slot);
  Score sum = 0.0;
  for (size_t i = 0; i < m; ++i) {
    sum += (mask >> i & 1) ? row[i] : last_scores[i];
  }
  return sum;
}

/// Upper bound of a candidate's overall score: unknown local scores replaced
/// by the current last-seen score of their list. `tmp` is caller scratch of
/// size m (unused on the summation fast path). This is the exact arithmetic
/// every per-candidate decision is made with.
template <typename ScorerT>
inline Score PoolUpperBound(const CandidatePool& pool, uint32_t slot,
                            const ScorerT& scorer,
                            const std::vector<Score>& last_scores,
                            std::vector<Score>& tmp) {
  if constexpr (std::is_same_v<ScorerT, SumScorer>) {
    return SumUpperBound(pool, slot, last_scores);
  } else {
    const size_t m = pool.num_lists();
    const Score* row = pool.row(slot);
    const uint64_t mask = pool.mask(slot);
    for (size_t i = 0; i < m; ++i) {
      tmp[i] = (mask >> i & 1) ? row[i] : last_scores[i];
    }
    return scorer.Combine(tmp.data(), m);
  }
}

/// The group's shared upper-bound delta under summation: what the current
/// list depths contribute for the mask's unseen lists, relative to the floor
/// already baked into every member's lower bound.
inline Score GroupUnseenDelta(uint64_t mask, size_t m,
                              const std::vector<Score>& last_scores,
                              Score floor) {
  Score delta = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if (!(mask >> i & 1)) {
      delta += last_scores[i] - floor;
    }
  }
  return delta;
}

/// What a group-walk visitor decides for the subtree rooted at the member it
/// was shown.
enum class GroupWalkAction {
  kDescend,      // keep walking into the member's children
  kSkipSubtree,  // the member's key bounds its descendants: prune them all
  kStop,         // decision made: abort the whole walk
};

/// Top-down walk over (the subtree at heap position `root` of) one side of a
/// group's dual member heap. The visitor is shown (heap position, member
/// slot) and steers the walk via GroupWalkAction; on the max side a member's
/// (lower bound, item id) key majorizes its whole subtree, on the min side it
/// minorizes it, so kSkipSubtree is sound whenever the visitor's test is
/// monotone in the key in the matching direction. Returns false iff the
/// visitor stopped the walk. The explicit stack holds at most one pending
/// sibling per level (64 levels cover any 2^32-slot pool).
template <typename Visitor>
inline bool WalkGroupMembers(const ArenaVec<uint32_t>& members, size_t root,
                             Visitor&& visit) {
  size_t stack[64];
  size_t depth = 0;
  stack[depth++] = root;
  while (depth > 0) {
    const size_t pos = stack[--depth];
    const GroupWalkAction action = visit(pos, members[pos]);
    if (action == GroupWalkAction::kStop) {
      return false;
    }
    if (action == GroupWalkAction::kSkipSubtree) {
      continue;
    }
    const size_t child = 2 * pos + 1;
    if (child < members.size()) {
      stack[depth++] = child;
      if (child + 1 < members.size()) {
        stack[depth++] = child + 1;
      }
    }
  }
  return true;
}

/// One stop-rule blocking check over the group index, O(#groups) plus the
/// walked frontier: a candidate outside the threshold heap blocks the stop
/// when its best possible (upper bound, id) pair still beats the weakest
/// heap member's (lower, id) pair — the id comparison keeps the returned set
/// exactly the deterministic (score desc, item id asc) top-k under ties.
/// Requires a full heap. Returns true iff some candidate blocks the stop.
inline bool GroupFindBlocker(const CandidatePool& pool,
                             const std::vector<Score>& last_scores,
                             Score floor, double margin) {
  const size_t m = pool.num_lists();
  const Score kth_lower = pool.KthLower();
  const ItemId kth_item = pool.KthItem();
  for (size_t g = 0; g < pool.num_groups(); ++g) {
    const ArenaVec<uint32_t>& members = pool.group_members(g);
    if (members.empty()) {
      continue;
    }
    const Score delta =
        GroupUnseenDelta(pool.group_mask(g), m, last_scores, floor);
    // A subtree whose root's margined bound is below the k-th lower bound
    // holds no blocker; the first blocker found stops the walk.
    const bool completed = WalkGroupMembers(
        members, 0, [&](size_t /*pos*/, uint32_t slot) {
          if (pool.lower(slot) + delta < kth_lower - margin) {
            return GroupWalkAction::kSkipSubtree;
          }
          // Exact bound — byte-identical to the per-candidate sweep this
          // walk replaces.
          const Score upper = SumUpperBound(pool, slot, last_scores);
          if (upper > kth_lower ||
              (upper == kth_lower && pool.item_at(slot) < kth_item)) {
            return GroupWalkAction::kStop;  // blocks the stop rule
          }
          return GroupWalkAction::kDescend;
        });
    if (!completed) {
      return true;
    }
  }
  return false;
}

/// CA's variant of the stop-rule check: like GroupFindBlocker, but with the
/// per-candidate pruning of the full sweep reproduced exactly — candidates
/// whose upper bound dropped strictly below the k-th lower bound are erased
/// for good (upper bounds only shrink and the k-th lower bound only grows).
/// CA must erase rather than merely skip them: its victim selection ranges
/// over the surviving pool, and an erased candidate that is seen again
/// re-enters as a fresh candidate with only its newly-seen lists known, so
/// the pool (and with it the victim choice and the random-access pattern)
/// only stays byte-identical to the sweep's if the erasures are too.
///
/// Runs as a peel off each group's *min side*: entries are popped
/// weakest-first and classified against the margined threshold — a stale
/// entry is discarded (its pop amortizes the deregistration that orphaned
/// it), certainly below is a victim with no bound arithmetic beyond one
/// compare, the margin band pays the exact interleaved bound (band
/// survivors are re-pushed — they are still registered), and the peel stops
/// the moment the root key is certainly above the band: every remaining
/// live member is then a surviving blocker, accounted for by size
/// arithmetic instead of visits. The pass therefore costs O(#groups +
/// #victims + #stale + #margin-band), not O(live set). A live entry's
/// stored bound is bit-identical to the member's current bound (keys are
/// immutable while registered), so the erased set and the blocked flag are
/// decided per member by exactly the sweep's classification — byte-
/// identical to the full sweep regardless of which members the peel never
/// visits. Requires a full heap and the min side (eager mode); `victims` is
/// caller scratch.
inline bool GroupPruneAndFindBlocker(CandidatePool& pool,
                                     const std::vector<Score>& last_scores,
                                     Score floor, double margin,
                                     std::vector<ItemId>& victims) {
  assert(pool.has_min_side());
  const size_t m = pool.num_lists();
  const Score kth_lower = pool.KthLower();
  const ItemId kth_item = pool.KthItem();
  bool blocked = false;
  victims.clear();
  for (size_t g = 0; g < pool.num_groups(); ++g) {
    if (pool.group_members(g).empty() && pool.group_min_entries(g).empty()) {
      continue;
    }
    const Score delta =
        GroupUnseenDelta(pool.group_mask(g), m, last_scores, floor);
    ArenaVec<CandidatePool::MinEntry>& band = pool.PeelScratch();
    size_t victims_here = 0;
    size_t band_here = 0;
    while (!pool.group_min_entries(g).empty()) {
      const CandidatePool::MinEntry entry = pool.group_min_entries(g).front();
      // The root minorizes every stored key; once it is certainly above the
      // band, no victim (and no band member) remains anywhere in the group.
      if (entry.lower + delta > kth_lower + margin) {
        break;
      }
      pool.PopGroupMin(g);
      if (!pool.MinEntryLive(entry)) {
        continue;  // orphaned by a past deregistration: discarded for good
      }
      // Live entry: entry.lower is bit-identical to the member's current
      // lower bound, so this is the sweep's exact classification.
      const Score bound = entry.lower + delta;
      if (bound < kth_lower - margin) {
        victims.push_back(entry.item);  // certainly below: no exact bound
        ++victims_here;
        continue;
      }
      // Inside the margin band: the exact bound decides, with the same
      // arithmetic and tie handling as the full sweep.
      const Score upper =
          SumUpperBound(pool, pool.FindSlot(entry.item), last_scores);
      if (upper < kth_lower) {
        victims.push_back(entry.item);
        ++victims_here;
      } else {
        pool.PushPeelScratch(entry);  // survives: still registered, must return
        ++band_here;
        if (upper > kth_lower ||
            (upper == kth_lower && entry.item < kth_item)) {
          blocked = true;
        }
      }
    }
    for (const CandidatePool::MinEntry& entry : band) {
      pool.PushGroupMin(g, entry);
    }
    // Every live member the peel did not reach is certainly above the band:
    // a surviving blocker, exactly as the sweep would have classified it.
    if (pool.group_members(g).size() > victims_here + band_here) {
      blocked = true;
    }
  }
  for (ItemId item : victims) {
    pool.Erase(pool.FindSlot(item));
  }
  return blocked;
}

/// NRA's pool compaction pass: erases every candidate outside the threshold
/// heap whose upper bound is strictly below the k-th lower bound. The same
/// margined classification as GroupPruneAndFindBlocker — a subtree certainly
/// below the threshold is erased wholesale without per-member bound
/// arithmetic, members inside the margin band pay the exact interleaved
/// bound, members certainly above survive untouched — but with no blocker
/// bookkeeping: compaction reclaims memory, it does not decide anything.
/// Runs on the max side (NRA does not carry a min side: compactions are
/// watermark-triggered and rare, so a per-registration min-side push costs
/// far more than the occasional O(live) walk it would replace — measured
/// ~2x end-to-end at n=1M; CA's per-stop-check pruning is the opposite
/// trade, see GroupPruneAndFindBlocker).
///
/// Erasure is behaviorally invisible to NRA (unlike CA, whose victim argmax
/// ranges over the surviving pool): an erased candidate's exact upper bound
/// was strictly below the k-th lower bound, both only move further apart,
/// and if the item is seen again it re-enters with strictly less knowledge —
/// every local score it re-learns is at most the depth score the old bound
/// already assumed — so its fresh upper bound stays strictly below the
/// (monotone) threshold: it can never block a stop, enter the threshold
/// heap, or displace a member. Stop positions, access counts and results are
/// therefore byte-identical with compaction on or off (certified by
/// parity_dump and the compaction differential test). Requires a full heap;
/// `victims` is caller scratch.
inline void GroupCompact(CandidatePool& pool,
                         const std::vector<Score>& last_scores, Score floor,
                         double margin, std::vector<ItemId>& victims) {
  const size_t m = pool.num_lists();
  const Score kth_lower = pool.KthLower();
  victims.clear();
  for (size_t g = 0; g < pool.num_groups(); ++g) {
    const ArenaVec<uint32_t>& members = pool.group_members(g);
    if (members.empty()) {
      continue;
    }
    const Score delta =
        GroupUnseenDelta(pool.group_mask(g), m, last_scores, floor);
    WalkGroupMembers(members, 0, [&](size_t pos, uint32_t slot) {
      const Score bound = pool.lower(slot) + delta;
      if (bound < kth_lower - margin) {
        // Certainly below, and so is every descendant: collect the subtree
        // (erasing re-heapifies the group under the walk's feet, so victims
        // are erased after all walks finish).
        WalkGroupMembers(members, pos, [&](size_t, uint32_t victim) {
          victims.push_back(pool.item_at(victim));
          return GroupWalkAction::kDescend;
        });
        return GroupWalkAction::kSkipSubtree;
      }
      if (bound > kth_lower + margin) {
        return GroupWalkAction::kDescend;  // certainly above: survives
      }
      if (SumUpperBound(pool, slot, last_scores) < kth_lower) {
        victims.push_back(pool.item_at(slot));
      }
      return GroupWalkAction::kDescend;
    });
  }
  for (ItemId item : victims) {
    pool.Erase(pool.FindSlot(item));
  }
}

/// CA's victim selection over the group index: the not-fully-resolved
/// candidate with the largest (upper bound, smaller-id-on-tie) pair — the one
/// blocking the stop rule the hardest. Scans every group (skipping the
/// fully-known mask) plus the <= k threshold-heap members, walking member
/// heaps with margined subtree pruning against the best candidate so far;
/// survivors are compared with the exact interleaved bound, so the victim is
/// byte-identical to the full sweep's argmax. Returns kNoSlot if every
/// candidate is fully resolved.
inline uint32_t GroupArgmaxUnresolved(const CandidatePool& pool,
                                      const std::vector<Score>& last_scores,
                                      Score floor, double margin) {
  const size_t m = pool.num_lists();
  const uint64_t full_mask =
      m == CandidatePool::kMaxLists ? ~uint64_t{0} : (uint64_t{1} << m) - 1;
  uint32_t best_slot = CandidatePool::kNoSlot;
  ItemId best_item = kInvalidItem;
  Score best_upper = -std::numeric_limits<Score>::infinity();

  const auto consider = [&](uint32_t slot) {
    const Score upper = SumUpperBound(pool, slot, last_scores);
    if (upper > best_upper ||
        (upper == best_upper && pool.item_at(slot) < best_item)) {
      best_upper = upper;
      best_slot = slot;
      best_item = pool.item_at(slot);
    }
  };

  for (size_t g = 0; g < pool.num_groups(); ++g) {
    if (pool.group_mask(g) == full_mask) {
      continue;  // fully known: nothing left to resolve
    }
    const ArenaVec<uint32_t>& members = pool.group_members(g);
    if (members.empty()) {
      continue;
    }
    const Score delta =
        GroupUnseenDelta(pool.group_mask(g), m, last_scores, floor);
    WalkGroupMembers(members, 0, [&](size_t /*pos*/, uint32_t slot) {
      if (pool.lower(slot) + delta + margin < best_upper) {
        return GroupWalkAction::kSkipSubtree;  // cannot beat the best so far
      }
      consider(slot);
      return GroupWalkAction::kDescend;
    });
  }
  // The <= k current-answer candidates live outside the groups.
  for (uint32_t slot : pool.heap_slots()) {
    if (!pool.fully_known(slot)) {
      consider(slot);
    }
  }
  return best_slot;
}

/// One stop-rule sweep over the whole pool, the generic-scorer fallback of
/// NRA and CA (a general monotonic f does not decompose per mask, so the
/// group index does not apply). Candidates outside the threshold heap are
/// pruned for good once their upper bound drops strictly below the k-th
/// lower bound (upper bounds only shrink and the k-th lower bound only
/// grows); a survivor whose best possible (upper bound, id) pair still beats
/// the weakest heap member's (lower, id) pair blocks the stop. Requires a
/// full heap. Returns true iff some candidate blocks the stop.
template <typename ScorerT>
inline bool PruneAndFindBlocker(CandidatePool& pool, const ScorerT& scorer,
                                const std::vector<Score>& last_scores,
                                std::vector<Score>& tmp) {
  const Score kth_lower = pool.KthLower();
  const ItemId kth_item = pool.KthItem();
  bool blocked = false;
  for (uint32_t slot = 0; slot < pool.size();) {
    if (pool.InHeap(slot)) {
      ++slot;
      continue;
    }
    const Score upper = PoolUpperBound(pool, slot, scorer, last_scores, tmp);
    if (upper < kth_lower) {
      pool.Erase(slot);  // moves the last slot here; re-examine it
      continue;
    }
    if (upper > kth_lower ||
        (upper == kth_lower && pool.item_at(slot) < kth_item)) {
      blocked = true;
    }
    ++slot;
  }
  return blocked;
}

}  // namespace topk

#endif  // TOPK_CORE_CANDIDATE_BOUNDS_H_
