// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Shared bound computations and the stop-rule sweep of the candidate-pool
// algorithms (NRA and CA). Templated on the concrete scorer like the run
// loops themselves: the summation fast path reduces to a branch-free
// mask-select accumulation over the pool's flat row.

#ifndef TOPK_CORE_CANDIDATE_BOUNDS_H_
#define TOPK_CORE_CANDIDATE_BOUNDS_H_

#include <type_traits>
#include <vector>

#include "common/status.h"
#include "core/candidate_pool.h"
#include "lists/database.h"
#include "lists/scorer.h"
#include "lists/types.h"

namespace topk {

/// Shared validation of the pool-backed algorithms (NRA/CA/TPUT): the pool's
/// seen mask is one word, capping m at CandidatePool::kMaxLists, and every
/// local score must respect the floor the lower bounds are built from.
inline Status ValidatePoolQuery(const char* algorithm, const Database& db,
                                double score_floor) {
  if (db.num_lists() > CandidatePool::kMaxLists) {
    return Status::NotImplemented(algorithm,
                                  " candidate bookkeeping supports up to ",
                                  CandidatePool::kMaxLists, " lists; got ",
                                  db.num_lists());
  }
  for (size_t i = 0; i < db.num_lists(); ++i) {
    if (db.list(i).MinScore() < score_floor) {
      return Status::Invalid(
          algorithm, " lower bounds assume scores >= score floor ",
          score_floor, "; list ", i, " has minimum ", db.list(i).MinScore(),
          " (set AlgorithmOptions::score_floor accordingly)");
    }
  }
  return Status::OK();
}

/// Upper bound of a candidate's overall score: unknown local scores replaced
/// by the current last-seen score of their list. `tmp` is caller scratch of
/// size m (unused on the summation fast path).
template <typename ScorerT>
inline Score PoolUpperBound(const CandidatePool& pool, uint32_t slot,
                            const ScorerT& scorer,
                            const std::vector<Score>& last_scores,
                            std::vector<Score>& tmp) {
  const size_t m = pool.num_lists();
  const Score* row = pool.row(slot);
  const uint64_t mask = pool.mask(slot);
  if constexpr (std::is_same_v<ScorerT, SumScorer>) {
    Score sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += (mask >> i & 1) ? row[i] : last_scores[i];
    }
    return sum;
  } else {
    for (size_t i = 0; i < m; ++i) {
      tmp[i] = (mask >> i & 1) ? row[i] : last_scores[i];
    }
    return scorer.Combine(tmp.data(), m);
  }
}

/// One stop-rule sweep over the pool, shared by NRA and CA. Candidates
/// outside the threshold heap are pruned for good once their upper bound
/// drops strictly below the k-th lower bound (upper bounds only shrink and
/// the k-th lower bound only grows); a survivor whose best possible
/// (upper bound, id) pair still beats the weakest heap member's (lower, id)
/// pair blocks the stop — the id comparison is what keeps the returned set
/// exactly the deterministic (score desc, item id asc) top-k under ties.
/// Requires a full heap. Returns true iff some candidate blocks the stop.
template <typename ScorerT>
inline bool PruneAndFindBlocker(CandidatePool& pool, const ScorerT& scorer,
                                const std::vector<Score>& last_scores,
                                std::vector<Score>& tmp) {
  const Score kth_lower = pool.KthLower();
  const ItemId kth_item = pool.KthItem();
  bool blocked = false;
  for (uint32_t slot = 0; slot < pool.size();) {
    if (pool.InHeap(slot)) {
      ++slot;
      continue;
    }
    const Score upper = PoolUpperBound(pool, slot, scorer, last_scores, tmp);
    if (upper < kth_lower) {
      pool.Erase(slot);  // moves the last slot here; re-examine it
      continue;
    }
    if (upper > kth_lower ||
        (upper == kth_lower && pool.item_at(slot) < kth_item)) {
      blocked = true;
    }
    ++slot;
  }
  return blocked;
}

}  // namespace topk

#endif  // TOPK_CORE_CANDIDATE_BOUNDS_H_
