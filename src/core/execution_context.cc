// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/execution_context.h"

#include <algorithm>

namespace topk {

void ScoreMemo::Reset(size_t n) {
  if (stamps_.size() < n) {
    stamps_.resize(n, epoch_);  // grown entries start stale (== old epoch)
    scores_.resize(n, 0.0);
  }
  if (++epoch_ == 0) {
    std::fill(stamps_.begin(), stamps_.end(), 0u);
    epoch_ = 1;
  }
}

void ExecutionContext::Prepare(const Database& db, bool audit, size_t k) {
  engine_.Reset(db, audit);
  buffer_.Reset(k);
  local_scores_.assign(db.num_lists(), 0.0);
  last_scores_.assign(db.num_lists(), 0.0);
  bound_scores_.assign(db.num_lists(), 0.0);
}

void ExecutionContext::PrepareTrackers(TrackerKind kind, size_t n, size_t m) {
  active_tracker_kind_ = kind;
  if (kind == TrackerKind::kBitArray) {
    if (n != bit_tracker_list_size_) {
      bit_trackers_.clear();
      bit_tracker_list_size_ = n;
    }
    const size_t reused = std::min(m, bit_trackers_.size());
    for (size_t i = 0; i < reused; ++i) {
      bit_trackers_[i].Reset();
    }
    while (bit_trackers_.size() < m) {
      bit_trackers_.emplace_back(n);
    }
    return;
  }
  if (kind != generic_tracker_kind_ || n != generic_tracker_list_size_) {
    generic_trackers_.clear();
    generic_tracker_kind_ = kind;
    generic_tracker_list_size_ = n;
  }
  const size_t reused = std::min(m, generic_trackers_.size());
  for (size_t i = 0; i < reused; ++i) {
    generic_trackers_[i]->Reset();
  }
  while (generic_trackers_.size() < m) {
    generic_trackers_.push_back(MakeTracker(kind, n));
  }
}

}  // namespace topk
