// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/ta_algorithm.h"

#include <limits>
#include <type_traits>
#include <vector>

#include "core/list_io.h"
#include "core/topk_buffer.h"

namespace topk {
namespace {

// Templated on the access policy and the concrete scorer so the default
// configuration (raw list reads, summation scoring) inlines the whole row
// loop (TA has no trackers to devirtualize).
template <typename IoT, typename ScorerT>
Status RunTaLoop(const AlgorithmOptions& options, const Database& db,
                 const TopKQuery& query, ExecutionContext* context, IoT io,
                 TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const bool memoize = options.memoize_seen_items;
  const ScorerT& scorer = static_cast<const ScorerT&>(*query.scorer);

  TopKBuffer& buffer = context->buffer();
  std::vector<Score>& last_scores = context->last_scores();  // si per list
  std::vector<Score>& local = context->local_scores();
  // Overall scores already resolved; used only when memoization is on (the
  // paper's accounting model re-issues the random accesses, see Lemma 2).
  ScoreMemo* resolved = memoize ? &context->PrepareMemo(n) : nullptr;

  QueryGovernor& governor = context->governor();
  Completion reason = Completion::kExact;
  Score threshold = std::numeric_limits<Score>::infinity();

  Position depth = 0;
  while (depth < n) {
    ++depth;
    // Under fault injection a dead list's sorted scan is skipped (its
    // last_scores entry freezes, which keeps δ a sound upper bound on unseen
    // items: everything unseen still sits below every frozen cursor). A row
    // where no list is left alive can make no progress at all.
    [[maybe_unused]] bool row_progress = !IoT::kFaultAware;
    for (size_t i = 0; i < m; ++i) {
      if constexpr (IoT::kFaultAware) {
        if (!io.SortedAlive(i)) {
          continue;
        }
        row_progress = true;
      }
      const AccessedEntry entry = io.Sorted(i, depth);
      // Prefetch pipelining: the sorted prefix is known ahead of time, so
      // the mirror row (and memo entry) of the row this list will reach
      // kPrefetchRowsAhead iterations from now is requested here, while the
      // current (already prefetched) row is combined — the DRAM latency of a
      // cold random access overlaps ~kPrefetchRowsAhead * m rows of work
      // instead of stalling each row's combine loop.
      if (depth + kPrefetchRowsAhead <= n) {
        const ItemId ahead = db.list(i).items()[depth - 1 + kPrefetchRowsAhead];
        PrefetchItemRows(db, ahead, m);
        if (memoize) {
          resolved->Prefetch(ahead);
        }
      }
      last_scores[i] = entry.score;
      if (memoize && resolved->Contains(entry.item)) {
        buffer.Offer(entry.item, resolved->Get(entry.item));
        continue;
      }
      if constexpr (IoT::kFaultAware) {
        // TA cannot resolve an item without random access to every other
        // list; a dead list makes the whole algorithm unservable, so signal
        // ExecuteInto to fail over to NRA over the survivors.
        for (size_t j = 0; j < m; ++j) {
          if (j != i && !io.RandomAlive(j)) {
            io.Flush();
            return Status::Unavailable(
                "TA: list ", j,
                " died permanently; random access is unavailable");
          }
        }
      }
      Score overall;
      if constexpr (std::is_same_v<ScorerT, SumScorer>) {
        // Summation needs no per-list score vector: accumulate in a register
        // (identical addition order to SumScorer::Combine over local[]).
        overall = 0.0;
        for (size_t j = 0; j < m; ++j) {
          overall += (j == i) ? entry.score : io.Random(j, entry.item).score;
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          local[j] = (j == i) ? entry.score : io.Random(j, entry.item).score;
        }
        overall = scorer.Combine(local.data(), m);
      }
      if (memoize) {
        resolved->Put(entry.item, overall);
      }
      buffer.Offer(entry.item, overall);
    }
    if constexpr (IoT::kFaultAware) {
      if (!row_progress) {
        reason = Completion::kListFailure;
        break;
      }
    }
    threshold = scorer.Combine(last_scores.data(), m);
    if (options.collect_trace) {
      result->trace.push_back(StopRuleTrace{
          depth, threshold,
          buffer.full() ? buffer.KthScore()
                        : std::numeric_limits<double>::quiet_NaN(),
          buffer.size(), 0});
    }
    // Strictly above: a tie at δ could belong to an unseen item with a
    // smaller id (see TopKBuffer::HasKAbove). At depth == n everything has
    // been resolved and the loop ends with the exact deterministic top-k.
    if (buffer.HasKAbove(threshold)) {
      break;
    }
    // Governance: one predictable branch per row when nothing is armed.
    if ((reason = governor.Charge(io.stats(), 0, io.VirtualLatencyMs())) !=
        Completion::kExact) {
      break;
    }
  }
  io.Flush();

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  if (reason != Completion::kExact) {
    // Anytime exit: every buffered score is exact (TA resolves at offer
    // time), so the weakest returned item is its own lower bound, and δ
    // bounds everything unseen; seen-but-unreturned items were rejected
    // against the k-th buffered score, which CertifyAnytime folds in.
    const Score kth = result->items.empty()
                          ? -std::numeric_limits<Score>::infinity()
                          : result->items.back().score;
    CertifyAnytime(reason, kth, threshold, result);
  }
  return Status::OK();
}

template <typename IoT>
Status DispatchTa(const AlgorithmOptions& options, const Database& db,
                  const TopKQuery& query, ExecutionContext* context, IoT io,
                  TopKResult* result) {
  if (dynamic_cast<const SumScorer*>(query.scorer) != nullptr) {
    return RunTaLoop<IoT, SumScorer>(options, db, query, context, io, result);
  }
  return RunTaLoop<IoT, Scorer>(options, db, query, context, io, result);
}

}  // namespace

Status TaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        ExecutionContext* context, TopKResult* result) const {
  if (options().audit_accesses) {
    return DispatchTa(options(), db, query, context,
                      EngineIo(&context->engine()), result);
  }
  if (context->faults().armed()) {
    return DispatchTa(options(), db, query, context,
                      FaultIo(&context->faults()), result);
  }
  return DispatchTa(options(), db, query, context,
                    RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
