// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/ta_algorithm.h"

#include <limits>
#include <unordered_map>
#include <vector>

#include "core/topk_buffer.h"

namespace topk {

Status TaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        AccessEngine* engine, TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const bool memoize = options().memoize_seen_items;

  TopKBuffer buffer(query.k);
  std::vector<Score> last_scores(m, 0.0);  // si: last score seen in list i
  std::vector<Score> local(m, 0.0);
  // Overall scores already resolved; used only when memoization is on (the
  // paper's accounting model re-issues the random accesses, see Lemma 2).
  std::unordered_map<ItemId, Score> resolved;

  Position depth = 0;
  while (depth < n) {
    ++depth;
    for (size_t i = 0; i < m; ++i) {
      const AccessedEntry entry = engine->SortedAccess(i);
      last_scores[i] = entry.score;
      if (memoize) {
        auto it = resolved.find(entry.item);
        if (it != resolved.end()) {
          buffer.Offer(entry.item, it->second);
          continue;
        }
      }
      for (size_t j = 0; j < m; ++j) {
        local[j] = (j == i) ? entry.score
                            : engine->RandomAccess(j, entry.item).score;
      }
      const Score overall = query.scorer->Combine(local.data(), m);
      if (memoize) {
        resolved.emplace(entry.item, overall);
      }
      buffer.Offer(entry.item, overall);
    }
    const Score threshold = query.scorer->Combine(last_scores.data(), m);
    if (options().collect_trace) {
      result->trace.push_back(StopRuleTrace{
          depth, threshold,
          buffer.full() ? buffer.KthScore()
                        : std::numeric_limits<double>::quiet_NaN(),
          buffer.size(), 0});
    }
    if (buffer.HasKAtLeast(threshold)) {
      break;
    }
  }

  result->items = buffer.ToSortedItems();
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace topk
