// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// TopKAlgorithm: the common driver for every top-k algorithm in the library.

#ifndef TOPK_CORE_TOPK_ALGORITHM_H_
#define TOPK_CORE_TOPK_ALGORITHM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/execution_context.h"
#include "core/query_governor.h"
#include "core/topk_result.h"
#include "lists/access_engine.h"
#include "lists/database.h"
#include "lists/fault_injection.h"
#include "tracker/best_position_tracker.h"

namespace topk {

/// Knobs shared by all algorithms. Defaults reproduce the paper's setup.
struct AlgorithmOptions {
  /// Best-position management strategy for BPA/BPA2 (Section 5.2). The
  /// evaluation's default is the bit array (Section 6.1).
  TrackerKind tracker = TrackerKind::kBitArray;

  /// When false (paper-faithful, Lemma 2), TA and BPA issue (m-1) random
  /// accesses for *every* sorted access, even when the item was seen before.
  /// When true, random accesses for already-resolved items are skipped; the
  /// stopping position is unchanged, only access counts drop (ablation).
  bool memoize_seen_items = false;

  /// Record a per-(list, position) touch count during execution, reported in
  /// TopKResult::max_touches_per_list. Used by tests (Theorem 5) and the
  /// access-pattern ablation; costs O(n*m) memory.
  bool audit_accesses = false;

  /// Record every stop-rule evaluation (threshold, k-th buffered score) in
  /// TopKResult::trace. Supported by TA, BPA and BPA2; used to replay the
  /// paper's threshold tables (Figure 1.b) in tests and teaching material.
  bool collect_trace = false;

  /// Cost model for TopKResult::execution_cost. Defaults to
  /// CostModel::PaperDefault(n): cs = 1, cr = log2(n).
  std::optional<CostModel> cost_model;

  /// Lower bound that every local score is guaranteed to respect; used by NRA
  /// to lower-bound unknown scores and by TPUT's pruning. The paper's formal
  /// model (non-negative scores) corresponds to 0.
  double score_floor = 0.0;

  /// NRA (summation path) only: periodically erase candidates whose upper
  /// bound has dropped strictly below the k-th lower bound, keeping the pool
  /// at O(live candidates) instead of O(every item seen). Behaviorally a
  /// no-op — results, stop positions and access counts are unchanged (a
  /// re-seen erased candidate re-enters with strictly less knowledge and a
  /// provably sub-threshold bound, see nra_algorithm.cc) — so the default is
  /// on; the off switch exists for the differential tests that certify the
  /// no-op and for memory-vs-walk-cost ablations. CA always erases (its
  /// victim selection observably depends on the erased set); TPUT's single
  /// pass has nothing to compact.
  bool nra_pool_compaction = true;

  /// Pool size below which NRA never bothers compacting (the group walks are
  /// cheap while everything fits in cache). Once the pool reaches the
  /// watermark a compaction pass runs; a productive pass (>= 1/4 erased)
  /// resets the watermark to 1.25x the surviving live size, an unproductive
  /// one backs it off 2x (4x from the second unproductive pass in a row), so
  /// total compaction work stays O(pool growth) — see the schedule comment
  /// in nra_algorithm.cc. Tests set 1 to compact at every stop check.
  size_t nra_compaction_floor = 4096;

  /// Per-query governance limits (deadline, access budgets, pool byte
  /// budget, StrictMode). Defaults arm nothing; see core/query_governor.h.
  /// On a tripped limit the run stops at the next round boundary and returns
  /// an anytime result (TopKResult::completion/theta) — or, under
  /// GovernorLimits::strict, a ResourceExhausted/Unavailable error. Naive is
  /// the oracle and ignores governance.
  GovernorLimits governor;

  /// Seeded deterministic fault schedule injected into the access layer
  /// (lists/fault_injection.h). Defaults inject nothing. Incompatible with
  /// audit_accesses. When a list dies permanently, NRA/CA degrade to
  /// bound-widened answers over the survivors and the random-access
  /// algorithms (FA/TA/BPA/BPA2/TPUT) transparently fail over to an NRA run
  /// (TopKResult::failed_over). Naive ignores faults.
  FaultPlan fault_plan;
};

/// Base class: validates the query, times the run, applies the cost model.
/// Concrete algorithms implement Run().
///
/// Determinism contract: every algorithm returns the *exact* same top-k set
/// for the same (database, query) — the k smallest items under the total
/// order "higher overall score first, ties broken by ascending item id" —
/// and TopKResult::items is sorted by that order. Equal aggregate scores are
/// therefore never an excuse for algorithms to disagree: stop rules compare
/// strictly against their thresholds (an unseen item tying the k-th score
/// could precede a buffered item in id order), and all candidate/buffer
/// structures break score ties toward the smaller item id. Differential
/// tests compare exact item sequences, not just score multisets.
class TopKAlgorithm {
 public:
  explicit TopKAlgorithm(AlgorithmOptions options = {})
      : options_(std::move(options)) {}

  virtual ~TopKAlgorithm() = default;

  /// Algorithm name as used in the paper ("TA", "BPA", "BPA2", ...).
  virtual std::string name() const = 0;

  /// Executes the query against `db`. Fails with Status::Invalid on malformed
  /// queries (k = 0, k > n, missing scorer) or on databases an algorithm
  /// cannot serve (e.g. TPUT with a non-sum scorer). Convenience wrapper that
  /// pays for a fresh ExecutionContext; batch callers should hold a context
  /// per thread and use the overload below.
  Result<TopKResult> Execute(const Database& db, const TopKQuery& query) const;

  /// Executes the query borrowing `context` for all scratch state. Reusing
  /// one context across queries keeps the execution path allocation-free
  /// after warm-up.
  Result<TopKResult> Execute(const Database& db, const TopKQuery& query,
                             ExecutionContext* context) const;

  /// Lowest-level entry point: like Execute, but writes into a caller-owned
  /// result whose capacity is reused. With a warmed-up context and result,
  /// a query performs zero heap allocations end to end.
  Status ExecuteInto(const Database& db, const TopKQuery& query,
                     ExecutionContext* context, TopKResult* result) const;

  const AlgorithmOptions& options() const { return options_; }

 protected:
  /// Algorithm body. `context` carries the counted access layer plus all
  /// reusable scratch (prepared for this query); `result` arrives cleared
  /// with its items empty. Implementations fill result->items (any order;
  /// ExecuteInto sorts), stop_position and min_best_position where
  /// applicable.
  virtual Status Run(const Database& db, const TopKQuery& query,
                     ExecutionContext* context, TopKResult* result) const = 0;

  /// Per-algorithm validation hook; default accepts everything Execute
  /// accepts.
  virtual Status ValidateFor(const Database& db, const TopKQuery& query) const;

 private:
  AlgorithmOptions options_;
};

/// Every algorithm shipped with the library.
enum class AlgorithmKind {
  kNaive,
  kFa,
  kTa,
  kBpa,
  kBpa2,
  kTput,
  kNra,
  kCa,
};

/// Paper-style display name ("TA", "BPA", ...).
std::string ToString(AlgorithmKind kind);

/// Instantiates an algorithm.
std::unique_ptr<TopKAlgorithm> MakeAlgorithm(AlgorithmKind kind,
                                             AlgorithmOptions options = {});

/// All kinds, in a stable order (useful for sweeps).
const std::vector<AlgorithmKind>& AllAlgorithmKinds();

}  // namespace topk

#endif  // TOPK_CORE_TOPK_ALGORITHM_H_
