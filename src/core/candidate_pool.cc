// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/candidate_pool.h"

#include <algorithm>
#include <limits>

namespace topk {

namespace {

// splitmix64 finalizer over a seen mask (masks differ in few bits; the
// finalizer spreads them over the whole table).
inline size_t HashMask(uint64_t mask) {
  mask ^= mask >> 30;
  mask *= 0xbf58476d1ce4e5b9ull;
  mask ^= mask >> 27;
  mask *= 0x94d049bb133111ebull;
  mask ^= mask >> 31;
  return static_cast<size_t>(mask);
}

constexpr size_t kInitialTableSize = 1024;      // power of two
constexpr size_t kInitialMaskTableSize = 128;   // power of two

}  // namespace

void CandidatePool::Reset(size_t m, size_t k, Score floor, bool eager_groups,
                          bool dual_heap) {
  assert(m >= 1 && m <= kMaxLists);
  assert(eager_groups || !dual_heap);  // a lazy index is never peeled
  m_ = m;
  k_ = k;
  floor_ = floor;
  eager_groups_ = eager_groups;
  dual_heap_ = dual_heap;
  size_ = 0;
  peak_size_ = 0;
  heap_.clear();
  num_groups_ = 0;
  if (table_.empty()) {
    table_.resize(arena_, kInitialTableSize,
                  TableCell{kInvalidItem, kNoSlot, 0});
    table_mask_ = kInitialTableSize - 1;
  }
  if (mask_table_masks_.empty()) {
    mask_table_masks_.resize(arena_, kInitialMaskTableSize, 0);
    mask_table_groups_.resize(arena_, kInitialMaskTableSize, kNoGroup);
    mask_table_stamps_.resize(arena_, kInitialMaskTableSize, 0);
    mask_table_mask_ = kInitialMaskTableSize - 1;
  }
  // Epoch 0 is reserved as "never valid"; on wrap fall back to one eager
  // clear (every 2^32 - 1 resets).
  if (++epoch_ == 0) {
    for (TableCell& cell : table_) {
      cell.stamp = 0;
    }
    std::fill(mask_table_stamps_.begin(), mask_table_stamps_.end(), 0u);
    epoch_ = 1;
  }
}

size_t CandidatePool::TableProbe(ItemId item) const {
  size_t cell = HashItem(item) & table_mask_;
  while (table_[cell].stamp == epoch_ && table_[cell].item != item) {
    cell = (cell + 1) & table_mask_;
  }
  return cell;
}

uint32_t CandidatePool::FindSlot(ItemId item) const {
  const size_t cell = TableProbe(item);
  return table_[cell].stamp == epoch_ ? table_[cell].slot : kNoSlot;
}

void CandidatePool::TableInsert(ItemId item, uint32_t slot) {
  const size_t cell = TableProbe(item);
  table_[cell] = TableCell{item, slot, epoch_};
}

void CandidatePool::TableErase(ItemId item) {
  size_t hole = TableProbe(item);
  if (table_[hole].stamp != epoch_) {
    return;
  }
  // Backward-shift deletion (no tombstones): slide later entries of the probe
  // chain into the hole whenever the hole lies on their probe path.
  table_[hole].stamp = 0;
  size_t cur = (hole + 1) & table_mask_;
  while (table_[cur].stamp == epoch_) {
    const size_t ideal = HashItem(table_[cur].item) & table_mask_;
    const size_t displacement = (cur - ideal) & table_mask_;
    const size_t hole_distance = (cur - hole) & table_mask_;
    if (displacement >= hole_distance) {
      table_[hole] = table_[cur];
      table_[cur].stamp = 0;
      hole = cur;
    }
    cur = (cur + 1) & table_mask_;
  }
}

void CandidatePool::TableGrow() {
  const size_t new_size = table_.size() * 2;
  table_.assign(arena_, new_size, TableCell{kInvalidItem, kNoSlot, 0});
  table_mask_ = new_size - 1;
  for (uint32_t slot = 0; slot < size_; ++slot) {
    TableInsert(items_[slot], slot);
  }
}

uint32_t CandidatePool::FindOrInsert(ItemId item) {
  {
    const size_t cell = TableProbe(item);
    if (table_[cell].stamp == epoch_) {
      return table_[cell].slot;
    }
  }
  // Keep the load factor <= 1/2 so probe chains stay short.
  if (2 * (size_ + 1) > table_.size()) {
    TableGrow();
  }
  const uint32_t slot = static_cast<uint32_t>(size_++);
  peak_size_ = std::max(peak_size_, size_);
  if (slot == items_.size()) {
    const size_t grown = std::max<size_t>(64, items_.size() * 2);
    items_.resize(arena_, grown);
    masks_.resize(arena_, grown);
    known_.resize(arena_, grown);
    lowers_.resize(arena_, grown);
    heap_pos_.resize(arena_, grown);
    group_of_.resize(arena_, grown);
    group_pos_.resize(arena_, grown);
    births_.resize(arena_, grown);
  }
  if (rows_.size() < static_cast<size_t>(size_) * m_) {
    rows_.resize(arena_,
                 std::max(rows_.size() * 2, static_cast<size_t>(size_) * m_));
  }
  items_[slot] = item;
  masks_[slot] = 0;
  known_[slot] = 0;
  lowers_[slot] = -std::numeric_limits<Score>::infinity();
  heap_pos_[slot] = kNoSlot;
  group_of_[slot] = kNoGroup;
  births_[slot] = 0;  // never a live min entry until the first registration
  std::fill_n(&rows_[static_cast<size_t>(slot) * m_], m_, floor_);
  TableInsert(item, slot);
  return slot;
}

void CandidatePool::SiftUp(size_t pos) {
  const uint32_t slot = heap_[pos];
  const Key key = KeyOf(slot);
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!Weaker(key, KeyOf(heap_[parent]))) {
      break;
    }
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::SiftDown(size_t pos) {
  const size_t count = heap_.size();
  const uint32_t slot = heap_[pos];
  const Key key = KeyOf(slot);
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= count) {
      break;
    }
    if (child + 1 < count &&
        Weaker(KeyOf(heap_[child + 1]), KeyOf(heap_[child]))) {
      ++child;
    }
    if (!Weaker(KeyOf(heap_[child]), key)) {
      break;
    }
    heap_[pos] = heap_[child];
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<uint32_t>(pos);
}

// --- mask groups ---

void CandidatePool::MaskTableGrow() {
  const size_t new_size = mask_table_masks_.size() * 2;
  mask_table_masks_.assign(arena_, new_size, 0);
  mask_table_groups_.assign(arena_, new_size, kNoGroup);
  mask_table_stamps_.assign(arena_, new_size, 0);
  mask_table_mask_ = new_size - 1;
  for (uint32_t g = 0; g < num_groups_; ++g) {
    size_t cell = HashMask(groups_[g].mask) & mask_table_mask_;
    while (mask_table_stamps_[cell] == epoch_) {
      cell = (cell + 1) & mask_table_mask_;
    }
    mask_table_masks_[cell] = groups_[g].mask;
    mask_table_groups_[cell] = g;
    mask_table_stamps_[cell] = epoch_;
  }
}

uint32_t CandidatePool::FindOrCreateGroup(uint64_t mask) {
  size_t cell = HashMask(mask) & mask_table_mask_;
  while (mask_table_stamps_[cell] == epoch_) {
    if (mask_table_masks_[cell] == mask) {
      return mask_table_groups_[cell];
    }
    cell = (cell + 1) & mask_table_mask_;
  }
  if (2 * (num_groups_ + 1) > mask_table_masks_.size()) {
    MaskTableGrow();
    cell = HashMask(mask) & mask_table_mask_;
    while (mask_table_stamps_[cell] == epoch_) {
      cell = (cell + 1) & mask_table_mask_;
    }
  }
  const uint32_t g = static_cast<uint32_t>(num_groups_++);
  if (g == groups_.size()) {
    groups_.emplace_back();
  }
  groups_[g].mask = mask;
  groups_[g].members.clear();
  groups_[g].min_entries.clear();
  mask_table_masks_[cell] = mask;
  mask_table_groups_[cell] = g;
  mask_table_stamps_[cell] = epoch_;
  return g;
}

void CandidatePool::GroupSiftUp(Group& group, size_t pos) {
  ArenaVec<uint32_t>& members = group.members;
  const uint32_t slot = members[pos];
  const Key key = KeyOf(slot);
  // Strongest at the root: a member rises while it beats its parent.
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!Weaker(KeyOf(members[parent]), key)) {
      break;
    }
    members[pos] = members[parent];
    group_pos_[members[pos]] = static_cast<uint32_t>(pos);
    pos = parent;
  }
  members[pos] = slot;
  group_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::GroupSiftDown(Group& group, size_t pos) {
  ArenaVec<uint32_t>& members = group.members;
  const size_t count = members.size();
  const uint32_t slot = members[pos];
  const Key key = KeyOf(slot);
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= count) {
      break;
    }
    if (child + 1 < count &&
        Weaker(KeyOf(members[child]), KeyOf(members[child + 1]))) {
      ++child;
    }
    if (!Weaker(key, KeyOf(members[child]))) {
      break;
    }
    members[pos] = members[child];
    group_pos_[members[pos]] = static_cast<uint32_t>(pos);
    pos = child;
  }
  members[pos] = slot;
  group_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::MinSiftUp(ArenaVec<MinEntry>& entries, size_t pos) {
  const MinEntry entry = entries[pos];
  // Weakest at the root: an entry rises while it is weaker than its parent.
  // Fresh registrations carry a just-grown bound, so they usually stop at
  // the leaf — the min side's push cost is O(1) in the common case.
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!EntryWeaker(entry, entries[parent])) {
      break;
    }
    entries[pos] = entries[parent];
    pos = parent;
  }
  entries[pos] = entry;
}

void CandidatePool::MinSiftDown(ArenaVec<MinEntry>& entries, size_t pos) {
  const size_t count = entries.size();
  const MinEntry entry = entries[pos];
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= count) {
      break;
    }
    if (child + 1 < count && EntryWeaker(entries[child + 1], entries[child])) {
      ++child;
    }
    if (!EntryWeaker(entries[child], entry)) {
      break;
    }
    entries[pos] = entries[child];
    pos = child;
  }
  entries[pos] = entry;
}

void CandidatePool::MinRebuild(Group& group) {
  // Refill from the live membership (one live entry per member, fresh copies
  // of the immutable keys and current stamps), then Floyd-heapify. Amortized
  // O(1) per deregistration: a rebuild of size L discards >= L stale
  // entries, each of which was one past deregistration.
  ArenaVec<MinEntry>& entries = group.min_entries;
  entries.clear();
  for (uint32_t slot : group.members) {
    entries.push_back(arena_, MinEntry{lowers_[slot], items_[slot],
                                       births_[slot]});
  }
  if (entries.size() > 1) {
    for (size_t pos = entries.size() / 2; pos-- > 0;) {
      MinSiftDown(entries, pos);
    }
  }
}

void CandidatePool::PopGroupMin(size_t g) {
  ArenaVec<MinEntry>& entries = groups_[g].min_entries;
  assert(!entries.empty());
  entries[0] = entries.back();
  entries.pop_back();
  if (entries.size() > 1) {
    MinSiftDown(entries, 0);
  }
}

void CandidatePool::PushGroupMin(size_t g, const MinEntry& entry) {
  ArenaVec<MinEntry>& entries = groups_[g].min_entries;
  entries.push_back(arena_, entry);
  MinSiftUp(entries, entries.size() - 1);
}

void CandidatePool::GroupInsert(uint32_t slot) {
  assert(group_of_[slot] == kNoGroup && !InHeap(slot));
  const uint32_t g = FindOrCreateGroup(masks_[slot]);
  Group& group = groups_[g];
  group_of_[slot] = g;
  group_pos_[slot] = static_cast<uint32_t>(group.members.size());
  group.members.push_back(arena_, slot);
  GroupSiftUp(group, group.members.size() - 1);
  if (dual_heap_) {
    // A fresh stamp orphans every earlier entry of this slot; the one entry
    // pushed here is the registration's single live representative.
    births_[slot] = ++birth_counter_;
    group.min_entries.push_back(
        arena_, MinEntry{lowers_[slot], items_[slot], births_[slot]});
    MinSiftUp(group.min_entries, group.min_entries.size() - 1);
    // Stale entries outnumber live members: compact them away. (The peels
    // also discard stale entries as they pop them; this bound covers groups
    // whose min side is rarely peeled.)
    if (group.min_entries.size() > 2 * group.members.size() + 64) {
      MinRebuild(group);
    }
  }
}

void CandidatePool::GroupRemove(uint32_t slot) {
  const uint32_t g = group_of_[slot];
  assert(g != kNoGroup);
  Group& group = groups_[g];
  group_of_[slot] = kNoGroup;
  const size_t pos = group_pos_[slot];
  const uint32_t last = group.members.back();
  group.members.pop_back();
  if (last != slot) {
    group.members[pos] = last;
    group_pos_[last] = static_cast<uint32_t>(pos);
    // The filler may be stronger or weaker than the hole's old occupant.
    GroupSiftUp(group, pos);
    GroupSiftDown(group, group_pos_[last]);
  }
  if (dual_heap_) {
    // Min side: deregistration is free — re-stamping the slot orphans its
    // entry wherever it sits (popped and discarded by a later peel, or
    // swept out by a rebuild).
    births_[slot] = ++birth_counter_;
  }
}

void CandidatePool::OfferLower(uint32_t slot, Score lower) {
  assert(slot < size_);
  assert(lower >= lowers_[slot]);  // knowledge only accumulates
  // Deregister under the stale key before the bound (and thus the heap key)
  // changes; the slot is re-registered below unless it enters the heap.
  if (group_of_[slot] != kNoGroup) {
    GroupRemove(slot);
  }
  lowers_[slot] = lower;
  const uint32_t pos = heap_pos_[slot];
  if (pos != kNoSlot) {
    // The member's key grew: in a weakest-at-root heap it moves toward the
    // leaves.
    SiftDown(pos);
    return;
  }
  if (heap_.size() < k_) {
    heap_.push_back(arena_, slot);
    SiftUp(heap_.size() - 1);
    return;
  }
  if (k_ == 0) {
    if (eager_groups_) {
      GroupInsert(slot);
    }
    return;
  }
  const uint32_t weakest = heap_.front();
  if (Weaker(KeyOf(weakest), KeyOf(slot))) {
    heap_pos_[weakest] = kNoSlot;
    heap_[0] = slot;
    heap_pos_[slot] = 0;
    SiftDown(0);
    if (eager_groups_) {
      // The displaced member leaves the answer set and becomes a regular
      // group-indexed candidate again.
      GroupInsert(weakest);
    }
    return;
  }
  if (eager_groups_) {
    GroupInsert(slot);
  }
}

void CandidatePool::BuildGroups() {
  for (uint32_t slot = 0; slot < size_; ++slot) {
    if (!InHeap(slot) && group_of_[slot] == kNoGroup) {
      GroupInsert(slot);
    }
  }
}

void CandidatePool::AppendHeapItems(std::vector<ItemId>* out) const {
  emit_scratch_.clear();
  for (uint32_t slot : heap_) {
    emit_scratch_.push_back(KeyOf(slot));
  }
  std::sort(emit_scratch_.begin(), emit_scratch_.end(),
            [](const Key& a, const Key& b) { return Weaker(b, a); });
  for (const Key& key : emit_scratch_) {
    out->push_back(key.item);
  }
}

void CandidatePool::Erase(uint32_t slot) {
  assert(slot < size_);
  assert(!InHeap(slot));
  if (group_of_[slot] != kNoGroup) {
    GroupRemove(slot);
  }
  TableErase(items_[slot]);
  const uint32_t last = static_cast<uint32_t>(--size_);
  if (slot == last) {
    return;
  }
  items_[slot] = items_[last];
  masks_[slot] = masks_[last];
  known_[slot] = known_[last];
  lowers_[slot] = lowers_[last];
  std::copy_n(&rows_[static_cast<size_t>(last) * m_], m_,
              &rows_[static_cast<size_t>(slot) * m_]);
  heap_pos_[slot] = heap_pos_[last];
  if (heap_pos_[slot] != kNoSlot) {
    heap_[heap_pos_[slot]] = slot;
  }
  group_of_[slot] = group_of_[last];
  group_pos_[slot] = group_pos_[last];
  // The min side needs no fixup: entries reference (item, stamp), not slots,
  // and both move with the candidate.
  births_[slot] = births_[last];
  if (group_of_[slot] != kNoGroup) {
    groups_[group_of_[slot]].members[group_pos_[slot]] = slot;
  }
  // Retarget the moved item's index cell at its new slot.
  table_[TableProbe(items_[slot])].slot = slot;
}

}  // namespace topk
