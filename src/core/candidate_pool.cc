// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/candidate_pool.h"

#include <algorithm>
#include <limits>

namespace topk {

namespace {

// Finalizing multiplicative hash over a 32-bit item id (same family as
// TopKBuffer's).
inline size_t HashItem(ItemId item) {
  uint32_t h = item * 2654435761u;
  h ^= h >> 16;
  return h;
}

constexpr size_t kInitialTableSize = 1024;  // power of two

}  // namespace

void CandidatePool::Reset(size_t m, size_t k, Score floor) {
  assert(m >= 1 && m <= kMaxLists);
  m_ = m;
  k_ = k;
  floor_ = floor;
  size_ = 0;
  heap_.clear();
  if (table_items_.empty()) {
    table_items_.resize(kInitialTableSize, kInvalidItem);
    table_slots_.resize(kInitialTableSize, kNoSlot);
    table_stamps_.resize(kInitialTableSize, 0);
    table_mask_ = kInitialTableSize - 1;
  }
  // Epoch 0 is reserved as "never valid"; on wrap fall back to one eager
  // clear (every 2^32 - 1 resets).
  if (++epoch_ == 0) {
    std::fill(table_stamps_.begin(), table_stamps_.end(), 0u);
    epoch_ = 1;
  }
}

size_t CandidatePool::TableProbe(ItemId item) const {
  size_t cell = HashItem(item) & table_mask_;
  while (table_stamps_[cell] == epoch_ && table_items_[cell] != item) {
    cell = (cell + 1) & table_mask_;
  }
  return cell;
}

uint32_t CandidatePool::FindSlot(ItemId item) const {
  const size_t cell = TableProbe(item);
  return table_stamps_[cell] == epoch_ ? table_slots_[cell] : kNoSlot;
}

void CandidatePool::TableInsert(ItemId item, uint32_t slot) {
  const size_t cell = TableProbe(item);
  table_items_[cell] = item;
  table_slots_[cell] = slot;
  table_stamps_[cell] = epoch_;
}

void CandidatePool::TableErase(ItemId item) {
  size_t hole = TableProbe(item);
  if (table_stamps_[hole] != epoch_) {
    return;
  }
  // Backward-shift deletion (no tombstones): slide later entries of the probe
  // chain into the hole whenever the hole lies on their probe path.
  table_stamps_[hole] = 0;
  size_t cur = (hole + 1) & table_mask_;
  while (table_stamps_[cur] == epoch_) {
    const size_t ideal = HashItem(table_items_[cur]) & table_mask_;
    const size_t displacement = (cur - ideal) & table_mask_;
    const size_t hole_distance = (cur - hole) & table_mask_;
    if (displacement >= hole_distance) {
      table_items_[hole] = table_items_[cur];
      table_slots_[hole] = table_slots_[cur];
      table_stamps_[hole] = epoch_;
      table_stamps_[cur] = 0;
      hole = cur;
    }
    cur = (cur + 1) & table_mask_;
  }
}

void CandidatePool::TableGrow() {
  const size_t new_size = table_items_.size() * 2;
  table_items_.assign(new_size, kInvalidItem);
  table_slots_.assign(new_size, kNoSlot);
  table_stamps_.assign(new_size, 0);
  table_mask_ = new_size - 1;
  for (uint32_t slot = 0; slot < size_; ++slot) {
    TableInsert(items_[slot], slot);
  }
}

uint32_t CandidatePool::FindOrInsert(ItemId item) {
  {
    const size_t cell = TableProbe(item);
    if (table_stamps_[cell] == epoch_) {
      return table_slots_[cell];
    }
  }
  // Keep the load factor <= 1/2 so probe chains stay short.
  if (2 * (size_ + 1) > table_items_.size()) {
    TableGrow();
  }
  const uint32_t slot = static_cast<uint32_t>(size_++);
  if (slot == items_.size()) {
    const size_t grown = std::max<size_t>(64, items_.size() * 2);
    items_.resize(grown);
    masks_.resize(grown);
    known_.resize(grown);
    lowers_.resize(grown);
    heap_pos_.resize(grown);
  }
  if (rows_.size() < static_cast<size_t>(size_) * m_) {
    rows_.resize(std::max(rows_.size() * 2, static_cast<size_t>(size_) * m_));
  }
  items_[slot] = item;
  masks_[slot] = 0;
  known_[slot] = 0;
  lowers_[slot] = -std::numeric_limits<Score>::infinity();
  heap_pos_[slot] = kNoSlot;
  std::fill_n(&rows_[static_cast<size_t>(slot) * m_], m_, floor_);
  TableInsert(item, slot);
  return slot;
}

void CandidatePool::SiftUp(size_t pos) {
  const uint32_t slot = heap_[pos];
  const Key key = KeyOf(slot);
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!Weaker(key, KeyOf(heap_[parent]))) {
      break;
    }
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::SiftDown(size_t pos) {
  const size_t count = heap_.size();
  const uint32_t slot = heap_[pos];
  const Key key = KeyOf(slot);
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= count) {
      break;
    }
    if (child + 1 < count &&
        Weaker(KeyOf(heap_[child + 1]), KeyOf(heap_[child]))) {
      ++child;
    }
    if (!Weaker(KeyOf(heap_[child]), key)) {
      break;
    }
    heap_[pos] = heap_[child];
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::OfferLower(uint32_t slot, Score lower) {
  assert(slot < size_);
  assert(lower >= lowers_[slot]);  // knowledge only accumulates
  lowers_[slot] = lower;
  const uint32_t pos = heap_pos_[slot];
  if (pos != kNoSlot) {
    // The member's key grew: in a weakest-at-root heap it moves toward the
    // leaves.
    SiftDown(pos);
    return;
  }
  if (heap_.size() < k_) {
    heap_.push_back(slot);
    SiftUp(heap_.size() - 1);
    return;
  }
  if (k_ == 0) {
    return;
  }
  const uint32_t weakest = heap_.front();
  if (Weaker(KeyOf(weakest), KeyOf(slot))) {
    heap_pos_[weakest] = kNoSlot;
    heap_[0] = slot;
    heap_pos_[slot] = 0;
    SiftDown(0);
  }
}

void CandidatePool::AppendHeapItems(std::vector<ItemId>* out) const {
  emit_scratch_.clear();
  for (uint32_t slot : heap_) {
    emit_scratch_.push_back(KeyOf(slot));
  }
  std::sort(emit_scratch_.begin(), emit_scratch_.end(),
            [](const Key& a, const Key& b) { return Weaker(b, a); });
  for (const Key& key : emit_scratch_) {
    out->push_back(key.item);
  }
}

void CandidatePool::Erase(uint32_t slot) {
  assert(slot < size_);
  assert(!InHeap(slot));
  TableErase(items_[slot]);
  const uint32_t last = static_cast<uint32_t>(--size_);
  if (slot == last) {
    return;
  }
  items_[slot] = items_[last];
  masks_[slot] = masks_[last];
  known_[slot] = known_[last];
  lowers_[slot] = lowers_[last];
  std::copy_n(&rows_[static_cast<size_t>(last) * m_], m_,
              &rows_[static_cast<size_t>(slot) * m_]);
  heap_pos_[slot] = heap_pos_[last];
  if (heap_pos_[slot] != kNoSlot) {
    heap_[heap_pos_[slot]] = slot;
  }
  // Retarget the moved item's index cell at its new slot.
  table_slots_[TableProbe(items_[slot])] = slot;
}

}  // namespace topk
