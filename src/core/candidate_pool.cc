// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/candidate_pool.h"

#include <algorithm>
#include <limits>

namespace topk {

namespace {

// Finalizing multiplicative hash over a 32-bit item id (same family as
// TopKBuffer's).
inline size_t HashItem(ItemId item) {
  uint32_t h = item * 2654435761u;
  h ^= h >> 16;
  return h;
}

// splitmix64 finalizer over a seen mask (masks differ in few bits; the
// finalizer spreads them over the whole table).
inline size_t HashMask(uint64_t mask) {
  mask ^= mask >> 30;
  mask *= 0xbf58476d1ce4e5b9ull;
  mask ^= mask >> 27;
  mask *= 0x94d049bb133111ebull;
  mask ^= mask >> 31;
  return static_cast<size_t>(mask);
}

constexpr size_t kInitialTableSize = 1024;      // power of two
constexpr size_t kInitialMaskTableSize = 128;   // power of two

}  // namespace

void CandidatePool::Reset(size_t m, size_t k, Score floor, bool eager_groups) {
  assert(m >= 1 && m <= kMaxLists);
  m_ = m;
  k_ = k;
  floor_ = floor;
  eager_groups_ = eager_groups;
  size_ = 0;
  peak_size_ = 0;
  heap_.clear();
  num_groups_ = 0;
  if (table_items_.empty()) {
    table_items_.resize(kInitialTableSize, kInvalidItem);
    table_slots_.resize(kInitialTableSize, kNoSlot);
    table_stamps_.resize(kInitialTableSize, 0);
    table_mask_ = kInitialTableSize - 1;
  }
  if (mask_table_masks_.empty()) {
    mask_table_masks_.resize(kInitialMaskTableSize, 0);
    mask_table_groups_.resize(kInitialMaskTableSize, kNoGroup);
    mask_table_stamps_.resize(kInitialMaskTableSize, 0);
    mask_table_mask_ = kInitialMaskTableSize - 1;
  }
  // Epoch 0 is reserved as "never valid"; on wrap fall back to one eager
  // clear (every 2^32 - 1 resets).
  if (++epoch_ == 0) {
    std::fill(table_stamps_.begin(), table_stamps_.end(), 0u);
    std::fill(mask_table_stamps_.begin(), mask_table_stamps_.end(), 0u);
    epoch_ = 1;
  }
}

size_t CandidatePool::TableProbe(ItemId item) const {
  size_t cell = HashItem(item) & table_mask_;
  while (table_stamps_[cell] == epoch_ && table_items_[cell] != item) {
    cell = (cell + 1) & table_mask_;
  }
  return cell;
}

uint32_t CandidatePool::FindSlot(ItemId item) const {
  const size_t cell = TableProbe(item);
  return table_stamps_[cell] == epoch_ ? table_slots_[cell] : kNoSlot;
}

void CandidatePool::TableInsert(ItemId item, uint32_t slot) {
  const size_t cell = TableProbe(item);
  table_items_[cell] = item;
  table_slots_[cell] = slot;
  table_stamps_[cell] = epoch_;
}

void CandidatePool::TableErase(ItemId item) {
  size_t hole = TableProbe(item);
  if (table_stamps_[hole] != epoch_) {
    return;
  }
  // Backward-shift deletion (no tombstones): slide later entries of the probe
  // chain into the hole whenever the hole lies on their probe path.
  table_stamps_[hole] = 0;
  size_t cur = (hole + 1) & table_mask_;
  while (table_stamps_[cur] == epoch_) {
    const size_t ideal = HashItem(table_items_[cur]) & table_mask_;
    const size_t displacement = (cur - ideal) & table_mask_;
    const size_t hole_distance = (cur - hole) & table_mask_;
    if (displacement >= hole_distance) {
      table_items_[hole] = table_items_[cur];
      table_slots_[hole] = table_slots_[cur];
      table_stamps_[hole] = epoch_;
      table_stamps_[cur] = 0;
      hole = cur;
    }
    cur = (cur + 1) & table_mask_;
  }
}

void CandidatePool::TableGrow() {
  const size_t new_size = table_items_.size() * 2;
  table_items_.assign(new_size, kInvalidItem);
  table_slots_.assign(new_size, kNoSlot);
  table_stamps_.assign(new_size, 0);
  table_mask_ = new_size - 1;
  for (uint32_t slot = 0; slot < size_; ++slot) {
    TableInsert(items_[slot], slot);
  }
}

uint32_t CandidatePool::FindOrInsert(ItemId item) {
  {
    const size_t cell = TableProbe(item);
    if (table_stamps_[cell] == epoch_) {
      return table_slots_[cell];
    }
  }
  // Keep the load factor <= 1/2 so probe chains stay short.
  if (2 * (size_ + 1) > table_items_.size()) {
    TableGrow();
  }
  const uint32_t slot = static_cast<uint32_t>(size_++);
  peak_size_ = std::max(peak_size_, size_);
  if (slot == items_.size()) {
    const size_t grown = std::max<size_t>(64, items_.size() * 2);
    items_.resize(grown);
    masks_.resize(grown);
    known_.resize(grown);
    lowers_.resize(grown);
    heap_pos_.resize(grown);
    group_of_.resize(grown);
    group_pos_.resize(grown);
  }
  if (rows_.size() < static_cast<size_t>(size_) * m_) {
    rows_.resize(std::max(rows_.size() * 2, static_cast<size_t>(size_) * m_));
  }
  items_[slot] = item;
  masks_[slot] = 0;
  known_[slot] = 0;
  lowers_[slot] = -std::numeric_limits<Score>::infinity();
  heap_pos_[slot] = kNoSlot;
  group_of_[slot] = kNoGroup;
  std::fill_n(&rows_[static_cast<size_t>(slot) * m_], m_, floor_);
  TableInsert(item, slot);
  return slot;
}

void CandidatePool::SiftUp(size_t pos) {
  const uint32_t slot = heap_[pos];
  const Key key = KeyOf(slot);
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!Weaker(key, KeyOf(heap_[parent]))) {
      break;
    }
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::SiftDown(size_t pos) {
  const size_t count = heap_.size();
  const uint32_t slot = heap_[pos];
  const Key key = KeyOf(slot);
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= count) {
      break;
    }
    if (child + 1 < count &&
        Weaker(KeyOf(heap_[child + 1]), KeyOf(heap_[child]))) {
      ++child;
    }
    if (!Weaker(KeyOf(heap_[child]), key)) {
      break;
    }
    heap_[pos] = heap_[child];
    heap_pos_[heap_[pos]] = static_cast<uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = slot;
  heap_pos_[slot] = static_cast<uint32_t>(pos);
}

// --- mask groups ---

void CandidatePool::MaskTableGrow() {
  const size_t new_size = mask_table_masks_.size() * 2;
  mask_table_masks_.assign(new_size, 0);
  mask_table_groups_.assign(new_size, kNoGroup);
  mask_table_stamps_.assign(new_size, 0);
  mask_table_mask_ = new_size - 1;
  for (uint32_t g = 0; g < num_groups_; ++g) {
    size_t cell = HashMask(groups_[g].mask) & mask_table_mask_;
    while (mask_table_stamps_[cell] == epoch_) {
      cell = (cell + 1) & mask_table_mask_;
    }
    mask_table_masks_[cell] = groups_[g].mask;
    mask_table_groups_[cell] = g;
    mask_table_stamps_[cell] = epoch_;
  }
}

uint32_t CandidatePool::FindOrCreateGroup(uint64_t mask) {
  size_t cell = HashMask(mask) & mask_table_mask_;
  while (mask_table_stamps_[cell] == epoch_) {
    if (mask_table_masks_[cell] == mask) {
      return mask_table_groups_[cell];
    }
    cell = (cell + 1) & mask_table_mask_;
  }
  if (2 * (num_groups_ + 1) > mask_table_masks_.size()) {
    MaskTableGrow();
    cell = HashMask(mask) & mask_table_mask_;
    while (mask_table_stamps_[cell] == epoch_) {
      cell = (cell + 1) & mask_table_mask_;
    }
  }
  const uint32_t g = static_cast<uint32_t>(num_groups_++);
  if (g == groups_.size()) {
    groups_.emplace_back();
  }
  groups_[g].mask = mask;
  groups_[g].members.clear();
  mask_table_masks_[cell] = mask;
  mask_table_groups_[cell] = g;
  mask_table_stamps_[cell] = epoch_;
  return g;
}

void CandidatePool::GroupSiftUp(Group& group, size_t pos) {
  std::vector<uint32_t>& members = group.members;
  const uint32_t slot = members[pos];
  const Key key = KeyOf(slot);
  // Strongest at the root: a member rises while it beats its parent.
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!Weaker(KeyOf(members[parent]), key)) {
      break;
    }
    members[pos] = members[parent];
    group_pos_[members[pos]] = static_cast<uint32_t>(pos);
    pos = parent;
  }
  members[pos] = slot;
  group_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::GroupSiftDown(Group& group, size_t pos) {
  std::vector<uint32_t>& members = group.members;
  const size_t count = members.size();
  const uint32_t slot = members[pos];
  const Key key = KeyOf(slot);
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= count) {
      break;
    }
    if (child + 1 < count &&
        Weaker(KeyOf(members[child]), KeyOf(members[child + 1]))) {
      ++child;
    }
    if (!Weaker(key, KeyOf(members[child]))) {
      break;
    }
    members[pos] = members[child];
    group_pos_[members[pos]] = static_cast<uint32_t>(pos);
    pos = child;
  }
  members[pos] = slot;
  group_pos_[slot] = static_cast<uint32_t>(pos);
}

void CandidatePool::GroupInsert(uint32_t slot) {
  assert(group_of_[slot] == kNoGroup && !InHeap(slot));
  const uint32_t g = FindOrCreateGroup(masks_[slot]);
  Group& group = groups_[g];
  group_of_[slot] = g;
  group_pos_[slot] = static_cast<uint32_t>(group.members.size());
  group.members.push_back(slot);
  GroupSiftUp(group, group.members.size() - 1);
}

void CandidatePool::GroupRemove(uint32_t slot) {
  const uint32_t g = group_of_[slot];
  assert(g != kNoGroup);
  Group& group = groups_[g];
  const size_t pos = group_pos_[slot];
  group_of_[slot] = kNoGroup;
  const uint32_t last = group.members.back();
  group.members.pop_back();
  if (last == slot) {
    return;
  }
  group.members[pos] = last;
  group_pos_[last] = static_cast<uint32_t>(pos);
  // The filler may be stronger or weaker than the hole's old occupant.
  GroupSiftUp(group, pos);
  GroupSiftDown(group, group_pos_[last]);
}

void CandidatePool::OfferLower(uint32_t slot, Score lower) {
  assert(slot < size_);
  assert(lower >= lowers_[slot]);  // knowledge only accumulates
  // Deregister under the stale key before the bound (and thus the heap key)
  // changes; the slot is re-registered below unless it enters the heap.
  if (group_of_[slot] != kNoGroup) {
    GroupRemove(slot);
  }
  lowers_[slot] = lower;
  const uint32_t pos = heap_pos_[slot];
  if (pos != kNoSlot) {
    // The member's key grew: in a weakest-at-root heap it moves toward the
    // leaves.
    SiftDown(pos);
    return;
  }
  if (heap_.size() < k_) {
    heap_.push_back(slot);
    SiftUp(heap_.size() - 1);
    return;
  }
  if (k_ == 0) {
    if (eager_groups_) {
      GroupInsert(slot);
    }
    return;
  }
  const uint32_t weakest = heap_.front();
  if (Weaker(KeyOf(weakest), KeyOf(slot))) {
    heap_pos_[weakest] = kNoSlot;
    heap_[0] = slot;
    heap_pos_[slot] = 0;
    SiftDown(0);
    if (eager_groups_) {
      // The displaced member leaves the answer set and becomes a regular
      // group-indexed candidate again.
      GroupInsert(weakest);
    }
    return;
  }
  if (eager_groups_) {
    GroupInsert(slot);
  }
}

void CandidatePool::BuildGroups() {
  for (uint32_t slot = 0; slot < size_; ++slot) {
    if (!InHeap(slot) && group_of_[slot] == kNoGroup) {
      GroupInsert(slot);
    }
  }
}

void CandidatePool::AppendHeapItems(std::vector<ItemId>* out) const {
  emit_scratch_.clear();
  for (uint32_t slot : heap_) {
    emit_scratch_.push_back(KeyOf(slot));
  }
  std::sort(emit_scratch_.begin(), emit_scratch_.end(),
            [](const Key& a, const Key& b) { return Weaker(b, a); });
  for (const Key& key : emit_scratch_) {
    out->push_back(key.item);
  }
}

void CandidatePool::Erase(uint32_t slot) {
  assert(slot < size_);
  assert(!InHeap(slot));
  if (group_of_[slot] != kNoGroup) {
    GroupRemove(slot);
  }
  TableErase(items_[slot]);
  const uint32_t last = static_cast<uint32_t>(--size_);
  if (slot == last) {
    return;
  }
  items_[slot] = items_[last];
  masks_[slot] = masks_[last];
  known_[slot] = known_[last];
  lowers_[slot] = lowers_[last];
  std::copy_n(&rows_[static_cast<size_t>(last) * m_], m_,
              &rows_[static_cast<size_t>(slot) * m_]);
  heap_pos_[slot] = heap_pos_[last];
  if (heap_pos_[slot] != kNoSlot) {
    heap_[heap_pos_[slot]] = slot;
  }
  group_of_[slot] = group_of_[last];
  group_pos_[slot] = group_pos_[last];
  if (group_of_[slot] != kNoGroup) {
    groups_[group_of_[slot]].members[group_pos_[slot]] = slot;
  }
  // Retarget the moved item's index cell at its new slot.
  table_slots_[TableProbe(items_[slot])] = slot;
}

}  // namespace topk
