// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/bpa2_algorithm.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "core/topk_buffer.h"

namespace topk {

Status Bpa2Algorithm::Run(const Database& db, const TopKQuery& query,
                          AccessEngine* engine, TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();

  TopKBuffer buffer(query.k);
  std::vector<std::unique_ptr<BestPositionTracker>> trackers;
  trackers.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    trackers.push_back(MakeTracker(options().tracker, n));
  }

  std::vector<Score> local(m, 0.0);
  uint64_t rounds = 0;
  for (;;) {
    // One round: per list, direct access to the smallest unseen position
    // (bpi + 1 evaluated *now*, so random accesses earlier in this round that
    // advanced bpi are respected — this is what guarantees Theorem 5), then
    // (m-1) random accesses for the revealed item.
    bool any_access = false;
    for (size_t i = 0; i < m; ++i) {
      const Position bp = trackers[i]->best_position();
      if (bp >= n) {
        continue;  // list fully seen
      }
      const AccessedEntry entry = engine->DirectAccess(i, bp + 1);
      trackers[i]->MarkSeen(entry.position);
      any_access = true;
      for (size_t j = 0; j < m; ++j) {
        if (j == i) {
          local[j] = entry.score;
          continue;
        }
        const ItemLookup lookup = engine->RandomAccess(j, entry.item);
        trackers[j]->MarkSeen(lookup.position);
        local[j] = lookup.score;
      }
      buffer.Offer(entry.item, query.scorer->Combine(local.data(), m));
    }
    if (!any_access) {
      break;  // every position of every list has been seen
    }
    ++rounds;
    // λ over the best-position scores; the owners return si(bpi) alongside
    // accesses (paper step 3), so no extra charged access is needed.
    for (size_t i = 0; i < m; ++i) {
      const Position bp = trackers[i]->best_position();
      local[i] = db.list(i).EntryAt(bp).score;
    }
    const Score lambda = query.scorer->Combine(local.data(), m);
    if (options().collect_trace) {
      Position min_bp = static_cast<Position>(n);
      for (const auto& tracker : trackers) {
        min_bp = std::min(min_bp, tracker->best_position());
      }
      result->trace.push_back(StopRuleTrace{
          static_cast<Position>(rounds), lambda,
          buffer.full() ? buffer.KthScore()
                        : std::numeric_limits<double>::quiet_NaN(),
          buffer.size(), min_bp});
    }
    if (buffer.HasKAtLeast(lambda)) {
      break;
    }
  }

  result->items = buffer.ToSortedItems();
  result->stop_position = static_cast<Position>(rounds);
  Position min_bp = static_cast<Position>(n);
  for (const auto& tracker : trackers) {
    min_bp = std::min(min_bp, tracker->best_position());
  }
  result->min_best_position = min_bp;
  return Status::OK();
}

}  // namespace topk
