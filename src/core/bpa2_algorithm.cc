// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/bpa2_algorithm.h"

#include <algorithm>
#include <limits>
#include <type_traits>
#include <vector>

#include "core/list_io.h"
#include "core/topk_buffer.h"
#include "tracker/bitarray_tracker.h"

namespace topk {
namespace {

// Templated like BPA's loop (see bpa_algorithm.cc): the default
// configuration devirtualizes and inlines all per-access work.
template <typename IoT, typename TrackerT, typename ScorerT>
Status RunBpa2Loop(const AlgorithmOptions& options, const Database& db,
                   const TopKQuery& query, ExecutionContext* context, IoT io,
                   TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const ScorerT& scorer = static_cast<const ScorerT&>(*query.scorer);

  TopKBuffer& buffer = context->buffer();
  std::vector<Score>& local = context->local_scores();
  BitArrayTracker* const bit_trackers = context->bitarray_trackers();
  const auto tracker = [context, bit_trackers](size_t i) -> TrackerT& {
    if constexpr (std::is_same_v<TrackerT, BitArrayTracker>) {
      return bit_trackers[i];  // contiguous, no pointer chase
    } else {
      return static_cast<TrackerT&>(context->tracker(i));
    }
  };

  uint64_t rounds = 0;
  // λ cache: best positions only ever grow, so the bp sum is an exact
  // change signature — λ is recomputed only on rounds where some bp advanced.
  uint64_t bp_signature = ~uint64_t{0};
  Score lambda = std::numeric_limits<Score>::infinity();
  QueryGovernor& governor = context->governor();
  Completion reason = Completion::kExact;
  for (;;) {
    // One round: per list, direct access to the smallest unseen position
    // (bpi + 1 evaluated *now*, so random accesses earlier in this round that
    // advanced bpi are respected — this is what guarantees Theorem 5), then
    // (m-1) random accesses for the revealed item.
    bool any_access = false;
    // Speculative prefetch of every list's upcoming direct-access slot: bp
    // may still advance before list i's turn (the prefetch is then wasted,
    // which is unobservable), but when it does not — the common case — the
    // direct access below finds its sorted entry already in flight. BPA2's
    // bp jumps defeat the hardware stream prefetcher, so without this every
    // round serializes on m cold loads.
    for (size_t i = 0; i < m; ++i) {
      const Position bp = tracker(i).best_position();
      if (bp < n) {
        PrefetchSortedEntry(db.list(i), bp + 1);
      }
    }
    for (size_t i = 0; i < m; ++i) {
      if constexpr (IoT::kFaultAware) {
        // A dead list stops contributing direct accesses (its bp freezes,
        // which keeps λ sound); whether the answer stays exact is decided
        // at the exhaustion exit below.
        if (!io.SortedAlive(i)) {
          continue;
        }
      }
      const Position bp = tracker(i).best_position();
      if (bp >= n) {
        continue;  // list fully seen
      }
      if constexpr (IoT::kFaultAware) {
        // The revealed item needs (m-1) random accesses; a dead list makes
        // BPA2 unservable — fail over to NRA.
        for (size_t j = 0; j < m; ++j) {
          if (j != i && !io.RandomAlive(j)) {
            io.Flush();
            return Status::Unavailable(
                "BPA2: list ", j,
                " died permanently; random access is unavailable");
          }
        }
      }
      const AccessedEntry entry = io.Direct(i, bp + 1);
      // Request the revealed item's mirror row before the tracker walks its
      // seen bits: MarkSeen's best-position advance overlaps the row fetch.
      PrefetchItemRows(db, entry.item, m);
      tracker(i).MarkSeen(entry.position);
      any_access = true;
      Score overall;
      if constexpr (std::is_same_v<ScorerT, SumScorer>) {
        // Summation needs no per-list score vector: accumulate in a register
        // (identical addition order to SumScorer::Combine over local[]).
        overall = 0.0;
        for (size_t j = 0; j < m; ++j) {
          if (j == i) {
            overall += entry.score;
            continue;
          }
          const ItemLookup lookup = io.Random(j, entry.item);
          tracker(j).MarkSeen(lookup.position);
          overall += lookup.score;
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          if (j == i) {
            local[j] = entry.score;
            continue;
          }
          const ItemLookup lookup = io.Random(j, entry.item);
          tracker(j).MarkSeen(lookup.position);
          local[j] = lookup.score;
        }
        overall = scorer.Combine(local.data(), m);
      }
      buffer.Offer(entry.item, overall);
    }
    if (!any_access) {
      if constexpr (IoT::kFaultAware) {
        // Exhaustion with a dead, not-fully-seen list means unseen data
        // remains: the answer is complete only over the survivors.
        for (size_t i = 0; i < m; ++i) {
          if (!io.SortedAlive(i) && tracker(i).best_position() < n) {
            reason = Completion::kListFailure;
            break;
          }
        }
      }
      break;  // every position of every live list has been seen
    }
    ++rounds;
    // λ over the best-position scores; the owners return si(bpi) alongside
    // accesses (paper step 3), so no extra charged access is needed.
    uint64_t signature = 0;
    for (size_t i = 0; i < m; ++i) {
      signature += tracker(i).best_position();
    }
    if (signature != bp_signature) {
      bp_signature = signature;
      for (size_t i = 0; i < m; ++i) {
        local[i] = db.list(i).ScoreAtPosition(tracker(i).best_position());
      }
      lambda = scorer.Combine(local.data(), m);
    }
    if (options.collect_trace) {
      Position min_bp = static_cast<Position>(n);
      for (size_t i = 0; i < m; ++i) {
        min_bp = std::min(min_bp, tracker(i).best_position());
      }
      result->trace.push_back(StopRuleTrace{
          static_cast<Position>(rounds), lambda,
          buffer.full() ? buffer.KthScore()
                        : std::numeric_limits<double>::quiet_NaN(),
          buffer.size(), min_bp});
    }
    // Strictly above λ: a tie could belong to an unseen item with a smaller
    // id (see TopKBuffer::HasKAbove). Once every position is seen the loop
    // ends via !any_access with every item resolved.
    if (buffer.HasKAbove(lambda)) {
      break;
    }
    // Governance: one predictable branch per round when nothing is armed.
    if ((reason = governor.Charge(io.stats(), 0, io.VirtualLatencyMs())) !=
        Completion::kExact) {
      break;
    }
  }
  io.Flush();

  buffer.AppendSortedItems(&result->items);
  result->stop_position = static_cast<Position>(rounds);
  Position min_bp = static_cast<Position>(n);
  for (size_t i = 0; i < m; ++i) {
    min_bp = std::min(min_bp, tracker(i).best_position());
  }
  result->min_best_position = min_bp;
  if (reason != Completion::kExact) {
    // Anytime exit: buffered scores are exact (BPA2 fully resolves every
    // revealed item in-round), λ bounds every unseen item.
    const Score kth = result->items.empty()
                          ? -std::numeric_limits<Score>::infinity()
                          : result->items.back().score;
    CertifyAnytime(reason, kth, lambda, result);
  }
  return Status::OK();
}

template <typename IoT>
Status DispatchBpa2(const AlgorithmOptions& options, const Database& db,
                    const TopKQuery& query, ExecutionContext* context, IoT io,
                    TopKResult* result) {
  const bool sum = dynamic_cast<const SumScorer*>(query.scorer) != nullptr;
  if (options.tracker == TrackerKind::kBitArray) {
    return sum ? RunBpa2Loop<IoT, BitArrayTracker, SumScorer>(
                     options, db, query, context, io, result)
               : RunBpa2Loop<IoT, BitArrayTracker, Scorer>(
                     options, db, query, context, io, result);
  }
  return sum ? RunBpa2Loop<IoT, BestPositionTracker, SumScorer>(
                   options, db, query, context, io, result)
             : RunBpa2Loop<IoT, BestPositionTracker, Scorer>(
                   options, db, query, context, io, result);
}

}  // namespace

Status Bpa2Algorithm::Run(const Database& db, const TopKQuery& query,
                          ExecutionContext* context,
                          TopKResult* result) const {
  context->PrepareTrackers(options().tracker, db.num_items(), db.num_lists());
  if (options().audit_accesses) {
    return DispatchBpa2(options(), db, query, context,
                        EngineIo(&context->engine()), result);
  }
  if (context->faults().armed()) {
    return DispatchBpa2(options(), db, query, context,
                        FaultIo(&context->faults()), result);
  }
  return DispatchBpa2(options(), db, query, context,
                      RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
