// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/bpa_algorithm.h"

#include <algorithm>
#include <limits>
#include <type_traits>
#include <vector>

#include "core/list_io.h"
#include "core/topk_buffer.h"
#include "tracker/bitarray_tracker.h"

namespace topk {
namespace {

// The run loop is templated on the access policy, the concrete tracker and
// the concrete scorer. Tracker and scorer classes are `final`, so for the
// default configuration (raw list reads, bit-array tracker, summation
// scoring) every per-access call devirtualizes and inlines down to a handful
// of loads; the generic instantiations keep virtual dispatch for the other
// configurations.
template <typename IoT, typename TrackerT, typename ScorerT>
Status RunBpaLoop(const AlgorithmOptions& options, const Database& db,
                  const TopKQuery& query, ExecutionContext* context, IoT io,
                  TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const bool memoize = options.memoize_seen_items;
  const ScorerT& scorer = static_cast<const ScorerT&>(*query.scorer);

  TopKBuffer& buffer = context->buffer();
  std::vector<Score>& local = context->local_scores();
  ScoreMemo* resolved = memoize ? &context->PrepareMemo(n) : nullptr;
  BitArrayTracker* const bit_trackers = context->bitarray_trackers();
  const auto tracker = [context, bit_trackers](size_t i) -> TrackerT& {
    if constexpr (std::is_same_v<TrackerT, BitArrayTracker>) {
      return bit_trackers[i];  // contiguous, no pointer chase
    } else {
      return static_cast<TrackerT&>(context->tracker(i));
    }
  };

  Position depth = 0;
  bool stopped = false;
  // The tracker-word prefetch stage only pays once the mirror (and with it
  // the tracker word arrays) outgrows the fast caches; at cache-resident
  // sizes the extra positions-row read plus m PrefetchMark calls per
  // (depth, list) are pure overhead (~10% BPA throughput at n=10k,
  // measured back-to-back), so it is gated on the mirror exceeding an
  // L2-sized footprint.
  const bool prefetch_marks =
      n * db.item_row_stride_bytes() > (size_t{4} << 20);
  // λ cache: best positions only ever grow, so the bp sum is an exact
  // change signature — λ is recomputed only on rows where some bp advanced.
  uint64_t bp_signature = ~uint64_t{0};
  Score lambda = std::numeric_limits<Score>::infinity();
  QueryGovernor& governor = context->governor();
  Completion reason = Completion::kExact;
  while (!stopped && depth < n) {
    ++depth;
    // Fault injection: a dead list's sorted scan is skipped. λ stays a sound
    // upper bound on unseen items — the best-position argument is
    // depth-independent (an item never seen anywhere sits below every bp).
    [[maybe_unused]] bool row_progress = !IoT::kFaultAware;
    for (size_t i = 0; i < m; ++i) {
      if constexpr (IoT::kFaultAware) {
        if (!io.SortedAlive(i)) {
          continue;
        }
        row_progress = true;
      }
      const AccessedEntry entry = io.Sorted(i, depth);
      // Prefetch pipelining (see ta_algorithm.cc): request the mirror row
      // (and memo entry) of this list's row kPrefetchRowsAhead iterations
      // ahead while combining the current, already-prefetched row.
      if (depth + kPrefetchRowsAhead <= n) {
        const ItemId ahead = db.list(i).items()[depth - 1 + kPrefetchRowsAhead];
        PrefetchItemRows(db, ahead, m);
        if (memoize) {
          resolved->Prefetch(ahead);
        }
      }
      // Second pipeline stage (bit-array fast path, DRAM-scale databases
      // only): the mirror row two sorted rows ahead is cached by now, so
      // its positions are readable at L1 cost — prefetch the tracker words
      // the marks for that row will hit. Uncounted, decision-free reads:
      // the access pattern and all counters are unchanged.
      if constexpr (std::is_same_v<TrackerT, BitArrayTracker>) {
        if (prefetch_marks && depth + kPrefetchMarksAhead <= n) {
          const ItemId near_item =
              db.list(i).items()[depth - 1 + kPrefetchMarksAhead];
          const Position* positions = db.ItemPositionsRow(near_item);
          for (size_t j = 0; j < m; ++j) {
            bit_trackers[j].PrefetchMark(positions[j]);
          }
        }
      }
      tracker(i).MarkSeen(entry.position);
      if (memoize && resolved->Contains(entry.item)) {
        // Positions of this item were already recorded in every list the
        // first time it was resolved; only the buffer offer remains.
        buffer.Offer(entry.item, resolved->Get(entry.item));
        continue;
      }
      if constexpr (IoT::kFaultAware) {
        // BPA resolves every newly seen item with (m-1) random accesses; a
        // dead list makes that impossible — fail over to NRA.
        for (size_t j = 0; j < m; ++j) {
          if (j != i && !io.RandomAlive(j)) {
            io.Flush();
            return Status::Unavailable(
                "BPA: list ", j,
                " died permanently; random access is unavailable");
          }
        }
      }
      Score overall;
      if constexpr (std::is_same_v<ScorerT, SumScorer>) {
        // Summation needs no per-list score vector: accumulate in a register
        // (identical addition order to SumScorer::Combine over local[]).
        overall = 0.0;
        for (size_t j = 0; j < m; ++j) {
          if (j == i) {
            overall += entry.score;
            continue;
          }
          const ItemLookup lookup = io.Random(j, entry.item);
          tracker(j).MarkSeen(lookup.position);
          overall += lookup.score;
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          if (j == i) {
            local[j] = entry.score;
            continue;
          }
          const ItemLookup lookup = io.Random(j, entry.item);
          tracker(j).MarkSeen(lookup.position);
          local[j] = lookup.score;
        }
        overall = scorer.Combine(local.data(), m);
      }
      if (memoize) {
        resolved->Put(entry.item, overall);
      }
      buffer.Offer(entry.item, overall);
    }
    if constexpr (IoT::kFaultAware) {
      if (!row_progress) {
        reason = Completion::kListFailure;
        break;
      }
    }
    // Best positions overall score λ. Reading si(bpi) is not a charged list
    // access: the entry at the best position was necessarily seen already.
    uint64_t signature = 0;
    for (size_t i = 0; i < m; ++i) {
      signature += tracker(i).best_position();
    }
    if (signature != bp_signature) {
      bp_signature = signature;
      for (size_t i = 0; i < m; ++i) {
        local[i] = db.list(i).ScoreAtPosition(tracker(i).best_position());
      }
      lambda = scorer.Combine(local.data(), m);
    }
    if (options.collect_trace) {
      Position min_bp = static_cast<Position>(n);
      for (size_t i = 0; i < m; ++i) {
        min_bp = std::min(min_bp, tracker(i).best_position());
      }
      result->trace.push_back(StopRuleTrace{
          depth, lambda,
          buffer.full() ? buffer.KthScore()
                        : std::numeric_limits<double>::quiet_NaN(),
          buffer.size(), min_bp});
    }
    // Strictly above λ: a tie could belong to an unseen item with a smaller
    // id (see TopKBuffer::HasKAbove). At depth == n the loop ends with every
    // item resolved — the exact deterministic top-k.
    if (buffer.HasKAbove(lambda)) {
      stopped = true;
    }
    // Governance: one predictable branch per row when nothing is armed.
    if (!stopped &&
        (reason = governor.Charge(io.stats(), 0, io.VirtualLatencyMs())) !=
            Completion::kExact) {
      break;
    }
  }
  io.Flush();

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  Position min_bp = static_cast<Position>(n);
  for (size_t i = 0; i < m; ++i) {
    min_bp = std::min(min_bp, tracker(i).best_position());
  }
  result->min_best_position = min_bp;
  if (reason != Completion::kExact) {
    // Anytime exit: buffered scores are exact; λ (from the last completed
    // row) bounds every unseen item, and rejected seen items sit below the
    // k-th buffered score, which CertifyAnytime folds in.
    const Score kth = result->items.empty()
                          ? -std::numeric_limits<Score>::infinity()
                          : result->items.back().score;
    CertifyAnytime(reason, kth, lambda, result);
  }
  return Status::OK();
}

template <typename IoT>
Status DispatchBpa(const AlgorithmOptions& options, const Database& db,
                   const TopKQuery& query, ExecutionContext* context, IoT io,
                   TopKResult* result) {
  const bool sum = dynamic_cast<const SumScorer*>(query.scorer) != nullptr;
  if (options.tracker == TrackerKind::kBitArray) {
    return sum ? RunBpaLoop<IoT, BitArrayTracker, SumScorer>(
                     options, db, query, context, io, result)
               : RunBpaLoop<IoT, BitArrayTracker, Scorer>(options, db, query,
                                                          context, io, result);
  }
  return sum ? RunBpaLoop<IoT, BestPositionTracker, SumScorer>(
                   options, db, query, context, io, result)
             : RunBpaLoop<IoT, BestPositionTracker, Scorer>(
                   options, db, query, context, io, result);
}

}  // namespace

Status BpaAlgorithm::Run(const Database& db, const TopKQuery& query,
                         ExecutionContext* context, TopKResult* result) const {
  context->PrepareTrackers(options().tracker, db.num_items(), db.num_lists());
  if (options().audit_accesses) {
    return DispatchBpa(options(), db, query, context,
                       EngineIo(&context->engine()), result);
  }
  if (context->faults().armed()) {
    return DispatchBpa(options(), db, query, context,
                       FaultIo(&context->faults()), result);
  }
  return DispatchBpa(options(), db, query, context,
                     RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
