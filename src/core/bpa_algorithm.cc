// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/bpa_algorithm.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/topk_buffer.h"

namespace topk {

Status BpaAlgorithm::Run(const Database& db, const TopKQuery& query,
                         AccessEngine* engine, TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const bool memoize = options().memoize_seen_items;

  TopKBuffer buffer(query.k);
  std::vector<std::unique_ptr<BestPositionTracker>> trackers;
  trackers.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    trackers.push_back(MakeTracker(options().tracker, n));
  }

  std::vector<Score> local(m, 0.0);
  std::unordered_map<ItemId, Score> resolved;  // used only when memoizing

  Position depth = 0;
  bool stopped = false;
  while (!stopped && depth < n) {
    ++depth;
    for (size_t i = 0; i < m; ++i) {
      const AccessedEntry entry = engine->SortedAccess(i);
      trackers[i]->MarkSeen(entry.position);
      if (memoize) {
        auto it = resolved.find(entry.item);
        if (it != resolved.end()) {
          // Positions of this item were already recorded in every list the
          // first time it was resolved; only the buffer offer remains.
          buffer.Offer(entry.item, it->second);
          continue;
        }
      }
      for (size_t j = 0; j < m; ++j) {
        if (j == i) {
          local[j] = entry.score;
          continue;
        }
        const ItemLookup lookup = engine->RandomAccess(j, entry.item);
        trackers[j]->MarkSeen(lookup.position);
        local[j] = lookup.score;
      }
      const Score overall = query.scorer->Combine(local.data(), m);
      if (memoize) {
        resolved.emplace(entry.item, overall);
      }
      buffer.Offer(entry.item, overall);
    }
    // Best positions overall score λ. Reading si(bpi) is not a charged list
    // access: the entry at the best position was necessarily seen already.
    for (size_t i = 0; i < m; ++i) {
      local[i] = db.list(i).EntryAt(trackers[i]->best_position()).score;
    }
    const Score lambda = query.scorer->Combine(local.data(), m);
    if (options().collect_trace) {
      Position min_bp = static_cast<Position>(n);
      for (const auto& tracker : trackers) {
        min_bp = std::min(min_bp, tracker->best_position());
      }
      result->trace.push_back(StopRuleTrace{
          depth, lambda,
          buffer.full() ? buffer.KthScore()
                        : std::numeric_limits<double>::quiet_NaN(),
          buffer.size(), min_bp});
    }
    if (buffer.HasKAtLeast(lambda)) {
      stopped = true;
    }
  }

  result->items = buffer.ToSortedItems();
  result->stop_position = depth;
  Position min_bp = static_cast<Position>(n);
  for (const auto& tracker : trackers) {
    min_bp = std::min(min_bp, tracker->best_position());
  }
  result->min_best_position = min_bp;
  return Status::OK();
}

}  // namespace topk
