// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// ContextPool: a thread-safe, grow-only pool of reusable ExecutionContexts
// with stable addresses. QueryEngine and TopKServer both hand out one context
// per worker slot; the pool owns the contexts so they stay warm across
// batches (QueryEngine) and across the server's lifetime (TopKServer).
//
// Thread-safety contract: Get() may be called from any thread (growth is
// mutex-protected), but the *returned context* is single-owner scratch — two
// threads must never execute through the same slot concurrently. Callers
// enforce that by construction: each worker uses exactly its own slot index.

#ifndef TOPK_CORE_CONTEXT_POOL_H_
#define TOPK_CORE_CONTEXT_POOL_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/execution_context.h"

namespace topk {

/// Grow-only pool of per-worker ExecutionContexts.
class ContextPool {
 public:
  ContextPool() = default;
  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  /// The context of worker slot `slot`, created on first use and kept warm
  /// afterwards. Safe to call from concurrent workers; the address stays
  /// stable for the pool's lifetime (unique_ptr-owned storage).
  ExecutionContext* Get(size_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    while (contexts_.size() <= slot) {
      contexts_.push_back(std::make_unique<ExecutionContext>());
    }
    return contexts_[slot].get();
  }

  /// Number of contexts created so far.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return contexts_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ExecutionContext>> contexts_;
};

}  // namespace topk

#endif  // TOPK_CORE_CONTEXT_POOL_H_
