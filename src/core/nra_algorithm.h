// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// NRA — "No Random Access" (Fagin, Lotem, Naor; the paper's reference [15]).
// Included as a comparison baseline for settings where random access is
// unavailable or prohibitively expensive. NRA performs only sorted accesses
// and maintains, for every seen item, a lower bound (unknown local scores
// replaced by the score floor) and an upper bound (unknown scores replaced by
// the current last-seen score of the respective list). It stops when the k-th
// best lower bound is at least (a) the upper bound of every other seen item
// and (b) the threshold f(last scores), which upper-bounds all unseen items.
//
// NRA certifies top-k *membership*; the exact overall scores of the winners
// may still be open when it stops. For reporting and test comparability the
// implementation resolves the winners' exact scores with uncounted reads —
// the access metrics stay faithful to the NRA model (zero random accesses).

#ifndef TOPK_CORE_NRA_ALGORITHM_H_
#define TOPK_CORE_NRA_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class NraAlgorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "NRA"; }

 protected:
  Status ValidateFor(const Database& db, const TopKQuery& query) const override;

  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_NRA_ALGORITHM_H_
