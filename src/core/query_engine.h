// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// QueryEngine: batch execution of many top-k queries against one immutable
// database, optionally across worker threads. Databases and algorithms are
// read-only during execution, so queries parallelize without locking; each
// worker owns a private algorithm instance (and thus private trackers,
// buffers and counters).

#ifndef TOPK_CORE_QUERY_ENGINE_H_
#define TOPK_CORE_QUERY_ENGINE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "core/topk_algorithm.h"
#include "lists/database.h"

namespace topk {

/// Executes batches of queries against one database.
class QueryEngine {
 public:
  /// \param db non-owning; must outlive the engine.
  explicit QueryEngine(const Database* db, AlgorithmOptions options = {})
      : db_(db), options_(std::move(options)) {}

  /// Runs every query with the given algorithm. Results arrive in query
  /// order; per-query failures (e.g. k out of range) are reported in the
  /// corresponding slot without aborting the batch.
  ///
  /// \param num_threads 0 or 1 = run inline on the calling thread; otherwise
  ///        queries are sharded across min(num_threads, queries) workers.
  std::vector<Result<TopKResult>> ExecuteBatch(
      AlgorithmKind kind, const std::vector<TopKQuery>& queries,
      size_t num_threads = 0) const;

  /// Aggregate access statistics of the last ExecuteBatch call (sums over the
  /// successful queries).
  const AccessStats& last_batch_stats() const { return last_batch_stats_; }

  const Database& database() const { return *db_; }

 private:
  const Database* db_;
  AlgorithmOptions options_;
  mutable AccessStats last_batch_stats_;
};

}  // namespace topk

#endif  // TOPK_CORE_QUERY_ENGINE_H_
