// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// QueryEngine: batch execution of many top-k queries against one immutable
// database, optionally across worker threads. Databases and algorithms are
// read-only during execution, so queries parallelize without locking. The
// engine owns one reusable ExecutionContext per worker slot; a worker drains
// queries off an atomic work-stealing cursor and runs every one of them
// through its private context, so steady-state batches allocate nothing per
// query.

#ifndef TOPK_CORE_QUERY_ENGINE_H_
#define TOPK_CORE_QUERY_ENGINE_H_

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "core/context_pool.h"
#include "core/topk_algorithm.h"
#include "lists/database.h"

namespace topk {

/// Everything one ExecuteBatch call produced: the per-query results plus the
/// aggregate access statistics (summed over the successful queries). Returned
/// by value so concurrent batch issuers never race on shared engine state.
struct BatchResult {
  /// Per-query outcomes, in query order.
  std::vector<Result<TopKResult>> results;

  /// Aggregate access statistics (sums over the successful queries).
  AccessStats stats;
};

/// Executes batches of queries against one database. Safe for concurrent
/// ExecuteBatch calls on the same engine: each call claims a private range of
/// worker slots from the shared context pool (growth is mutex-protected) and
/// returns its batch statistics by value instead of mutating engine state.
class QueryEngine {
 public:
  /// \param db non-owning; must outlive the engine.
  explicit QueryEngine(const Database* db, AlgorithmOptions options = {})
      : db_(db), options_(std::move(options)) {}

  /// Runs every query with the given algorithm. Results arrive in query
  /// order; per-query failures (e.g. k out of range) are reported in the
  /// corresponding slot without aborting the batch.
  ///
  /// \param num_threads 0 or 1 = run inline on the calling thread; otherwise
  ///        workers pull queries from a shared atomic cursor (work stealing),
  ///        min(num_threads, queries) workers total.
  BatchResult ExecuteBatch(AlgorithmKind kind,
                           const std::vector<TopKQuery>& queries,
                           size_t num_threads = 0) const;

  /// Aggregate access statistics of the most recently *finished* ExecuteBatch
  /// call. Deprecated: with concurrent issuers "last" is whichever batch
  /// finished last — prefer BatchResult::stats, which is race-free by
  /// construction. Kept (mutex-protected, returned by value) for the benches
  /// and older callers.
  AccessStats last_batch_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return last_batch_stats_;
  }

  const Database& database() const { return *db_; }

 private:
  /// Leases `count` worker-slot indices for one batch: freed slots are reused
  /// first (their contexts are warm), new indices are minted otherwise. Two
  /// in-flight batches therefore never share an ExecutionContext, while a
  /// sequential caller keeps hitting the same warmed slots.
  std::vector<size_t> AcquireSlots(size_t count) const;
  void ReleaseSlots(const std::vector<size_t>& slots) const;

  const Database* db_;
  AlgorithmOptions options_;
  mutable std::mutex stats_mu_;
  mutable AccessStats last_batch_stats_;
  /// Per-worker-slot contexts, created on first use and kept warm across
  /// batches. Thread-safe growth; in-flight batches lease disjoint slots.
  mutable ContextPool contexts_;
  mutable std::mutex slots_mu_;
  mutable std::vector<size_t> free_slots_;
  mutable size_t minted_slots_ = 0;
};

}  // namespace topk

#endif  // TOPK_CORE_QUERY_ENGINE_H_
