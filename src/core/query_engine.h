// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// QueryEngine: batch execution of many top-k queries against one immutable
// database, optionally across worker threads. Databases and algorithms are
// read-only during execution, so queries parallelize without locking. The
// engine owns one reusable ExecutionContext per worker slot; a worker drains
// queries off an atomic work-stealing cursor and runs every one of them
// through its private context, so steady-state batches allocate nothing per
// query.

#ifndef TOPK_CORE_QUERY_ENGINE_H_
#define TOPK_CORE_QUERY_ENGINE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/execution_context.h"
#include "core/topk_algorithm.h"
#include "lists/database.h"

namespace topk {

/// Executes batches of queries against one database. Not safe for concurrent
/// ExecuteBatch calls on the same engine (the per-worker contexts and batch
/// stats are engine state); use one engine per batch issuer.
class QueryEngine {
 public:
  /// \param db non-owning; must outlive the engine.
  explicit QueryEngine(const Database* db, AlgorithmOptions options = {})
      : db_(db), options_(std::move(options)) {}

  /// Runs every query with the given algorithm. Results arrive in query
  /// order; per-query failures (e.g. k out of range) are reported in the
  /// corresponding slot without aborting the batch.
  ///
  /// \param num_threads 0 or 1 = run inline on the calling thread; otherwise
  ///        workers pull queries from a shared atomic cursor (work stealing),
  ///        min(num_threads, queries) workers total.
  std::vector<Result<TopKResult>> ExecuteBatch(
      AlgorithmKind kind, const std::vector<TopKQuery>& queries,
      size_t num_threads = 0) const;

  /// Aggregate access statistics of the last ExecuteBatch call (sums over the
  /// successful queries).
  const AccessStats& last_batch_stats() const { return last_batch_stats_; }

  const Database& database() const { return *db_; }

 private:
  /// Reusable context of worker slot `worker`, created on first use and kept
  /// warm across batches.
  ExecutionContext* ContextFor(size_t worker) const;

  const Database* db_;
  AlgorithmOptions options_;
  mutable AccessStats last_batch_stats_;
  // unique_ptr keeps context addresses stable while the pool grows.
  mutable std::vector<std::unique_ptr<ExecutionContext>> contexts_;
};

}  // namespace topk

#endif  // TOPK_CORE_QUERY_ENGINE_H_
