// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// BPA2, paper Section 5 — the paper's second contribution. Same stopping rule
// as BPA, but sorted access is replaced by *direct access* to position bpi+1,
// which is by construction the smallest unseen position of the list. Hence no
// list position is ever accessed twice (Theorem 5) and the total number of
// accesses can be about (m-1) times lower than BPA's (Theorem 8). Best
// positions are conceptually managed by the list owners; the query originator
// only keeps Y and the m best-position scores.

#ifndef TOPK_CORE_BPA2_ALGORITHM_H_
#define TOPK_CORE_BPA2_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class Bpa2Algorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "BPA2"; }

 protected:
  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_BPA2_ALGORITHM_H_
