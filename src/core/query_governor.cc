// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/query_governor.h"

#include <cmath>

namespace topk {

Status GovernorLimits::Validate(const char* algorithm) const {
  if (std::isnan(deadline_ms) || std::isinf(deadline_ms)) {
    return Status::Invalid(algorithm, ": governor deadline_ms must be finite; ",
                           "got deadline_ms = ", deadline_ms);
  }
  if (deadline_ms < 0.0) {
    return Status::Invalid(algorithm,
                           ": governor deadline_ms must be >= 0 (0 disables); ",
                           "got deadline_ms = ", deadline_ms);
  }
  return Status::OK();
}

void QueryGovernor::Arm(const GovernorLimits& limits) {
  limits_ = limits;
  armed_ = limits.enabled();
  cancel_.store(false, std::memory_order_relaxed);
  if (limits_.deadline_ms > 0.0) {
    start_ = DeadlineClock::now();
  }
}

Completion QueryGovernor::ChargeSlow(const AccessStats& stats,
                                     size_t pool_bytes,
                                     double virtual_ms) const {
  if (limits_.deadline_ms > 0.0) {
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            DeadlineClock::now() - start_)
            .count() +
        virtual_ms;
    if (elapsed_ms >= limits_.deadline_ms) {
      return Completion::kDeadline;
    }
  }
  if (limits_.sorted_access_budget != 0 &&
      stats.sorted_accesses + stats.direct_accesses >=
          limits_.sorted_access_budget) {
    return Completion::kAccessBudget;
  }
  if (limits_.random_access_budget != 0 &&
      stats.random_accesses >= limits_.random_access_budget) {
    return Completion::kAccessBudget;
  }
  if (limits_.total_access_budget != 0 &&
      stats.TotalAccesses() >= limits_.total_access_budget) {
    return Completion::kAccessBudget;
  }
  if (limits_.pool_byte_budget != 0 && pool_bytes >= limits_.pool_byte_budget) {
    return Completion::kMemoryBudget;
  }
  return Completion::kExact;
}

void CertifyAnytime(Completion reason, Score kth_lower, Score unreturned_upper,
                    TopKResult* result) {
  // Widen the unreturned bound to cover items proven weaker than the answer
  // set (candidates pruned against the running k-th lower bound).
  if (kth_lower > unreturned_upper) {
    unreturned_upper = kth_lower;
  }
  result->completion = reason;
  result->kth_lower_bound = kth_lower;
  result->unreturned_upper_bound = unreturned_upper;
  if (unreturned_upper <= kth_lower) {
    result->theta = 1.0;
  } else if (kth_lower > 0.0) {
    result->theta = unreturned_upper / kth_lower;
  } else {
    // A non-positive k-th lower bound cannot certify a multiplicative factor.
    result->theta = std::numeric_limits<double>::infinity();
  }
}

}  // namespace topk
