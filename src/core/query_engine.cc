// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/query_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace topk {

std::vector<size_t> QueryEngine::AcquireSlots(size_t count) const {
  std::vector<size_t> slots;
  slots.reserve(count);
  std::lock_guard<std::mutex> lock(slots_mu_);
  while (slots.size() < count && !free_slots_.empty()) {
    slots.push_back(free_slots_.back());
    free_slots_.pop_back();
  }
  while (slots.size() < count) {
    slots.push_back(minted_slots_++);
  }
  return slots;
}

void QueryEngine::ReleaseSlots(const std::vector<size_t>& slots) const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  // Released in descending order so the next AcquireSlots pops the lowest
  // (longest-warmed) indices first.
  free_slots_.insert(free_slots_.end(), slots.rbegin(), slots.rend());
}

BatchResult QueryEngine::ExecuteBatch(AlgorithmKind kind,
                                      const std::vector<TopKQuery>& queries,
                                      size_t num_threads) const {
  BatchResult batch;
  batch.results.assign(queries.size(),
                       Result<TopKResult>(Status::Internal("not executed")));
  if (queries.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_batch_stats_ = AccessStats{};
    return batch;
  }

  const size_t workers =
      std::max<size_t>(1, std::min(num_threads, queries.size()));
  // Lease the batch's worker slots up front (and grow their contexts before
  // launching) so no worker mutates pool bookkeeping mid-batch.
  const std::vector<size_t> slots = AcquireSlots(workers);
  std::vector<ExecutionContext*> contexts(workers);
  for (size_t w = 0; w < workers; ++w) {
    contexts[w] = contexts_.Get(slots[w]);
  }
  if (workers == 1) {
    auto algorithm = MakeAlgorithm(kind, options_);
    for (size_t i = 0; i < queries.size(); ++i) {
      batch.results[i] = algorithm->Execute(*db_, queries[i], contexts[0]);
    }
  } else {
    // Work stealing via a shared atomic cursor; each worker owns a private
    // algorithm instance and a private, batch-persistent execution context.
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, this, w] {
        auto algorithm = MakeAlgorithm(kind, options_);
        ExecutionContext* context = contexts[w];
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queries.size()) {
            return;
          }
          batch.results[i] = algorithm->Execute(*db_, queries[i], context);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  ReleaseSlots(slots);

  AccessStats total;
  for (const Result<TopKResult>& r : batch.results) {
    if (r.ok()) {
      total += r.ValueUnsafe().stats;
    }
  }
  batch.stats = total;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_batch_stats_ = total;
  }
  return batch;
}

}  // namespace topk
