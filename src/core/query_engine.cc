// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/query_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace topk {

ExecutionContext* QueryEngine::ContextFor(size_t worker) const {
  while (contexts_.size() <= worker) {
    contexts_.push_back(std::make_unique<ExecutionContext>());
  }
  return contexts_[worker].get();
}

std::vector<Result<TopKResult>> QueryEngine::ExecuteBatch(
    AlgorithmKind kind, const std::vector<TopKQuery>& queries,
    size_t num_threads) const {
  std::vector<Result<TopKResult>> results(
      queries.size(), Result<TopKResult>(Status::Internal("not executed")));
  if (queries.empty()) {
    last_batch_stats_ = AccessStats{};
    return results;
  }

  const size_t workers =
      std::max<size_t>(1, std::min(num_threads, queries.size()));
  // Grow the context pool before launching workers so no worker mutates the
  // pool vector concurrently.
  for (size_t w = 0; w < workers; ++w) {
    ContextFor(w);
  }
  if (workers == 1) {
    auto algorithm = MakeAlgorithm(kind, options_);
    ExecutionContext* context = ContextFor(0);
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = algorithm->Execute(*db_, queries[i], context);
    }
  } else {
    // Work stealing via a shared atomic cursor; each worker owns a private
    // algorithm instance and a private, batch-persistent execution context.
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, this, w] {
        auto algorithm = MakeAlgorithm(kind, options_);
        ExecutionContext* context = contexts_[w].get();
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queries.size()) {
            return;
          }
          results[i] = algorithm->Execute(*db_, queries[i], context);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  AccessStats total;
  for (const Result<TopKResult>& r : results) {
    if (r.ok()) {
      total += r.ValueUnsafe().stats;
    }
  }
  last_batch_stats_ = total;
  return results;
}

}  // namespace topk
