// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/query_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace topk {

std::vector<Result<TopKResult>> QueryEngine::ExecuteBatch(
    AlgorithmKind kind, const std::vector<TopKQuery>& queries,
    size_t num_threads) const {
  std::vector<Result<TopKResult>> results(
      queries.size(), Result<TopKResult>(Status::Internal("not executed")));
  if (queries.empty()) {
    last_batch_stats_ = AccessStats{};
    return results;
  }

  const size_t workers =
      std::max<size_t>(1, std::min(num_threads, queries.size()));
  if (workers == 1) {
    auto algorithm = MakeAlgorithm(kind, options_);
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = algorithm->Execute(*db_, queries[i]);
    }
  } else {
    // Work stealing via a shared atomic cursor; each worker owns a private
    // algorithm instance.
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, this] {
        auto algorithm = MakeAlgorithm(kind, options_);
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queries.size()) {
            return;
          }
          results[i] = algorithm->Execute(*db_, queries[i]);
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  AccessStats total;
  for (const Result<TopKResult>& r : results) {
    if (r.ok()) {
      total += r.ValueUnsafe().stats;
    }
  }
  last_batch_stats_ = total;
  return results;
}

}  // namespace topk
