// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// TPUT — "Three-Phase Uniform Threshold" (Cao & Wang, PODC 2004), discussed in
// the paper's related work (Section 7). Implemented as a comparison baseline:
//
//   Phase 1: fetch the top k entries of every list; τ1 = k-th largest partial
//            sum (missing scores taken as the score floor).
//   Phase 2: continue fetching every list down to local score >= τ1/m; prune
//            candidates whose upper bound is below τ2, the new k-th largest
//            partial sum.
//   Phase 3: random accesses resolve the exact scores of survivors.
//
// TPUT's thresholding is defined for summation scoring over scores bounded
// below; ValidateFor() rejects other scorers or databases with scores below
// the configured floor. As the paper notes, TPUT is not instance-optimal: a
// list whose scores sit just above τ1/m forces it to fetch that entire list.

#ifndef TOPK_CORE_TPUT_ALGORITHM_H_
#define TOPK_CORE_TPUT_ALGORITHM_H_

#include <string>

#include "core/topk_algorithm.h"

namespace topk {

class TputAlgorithm : public TopKAlgorithm {
 public:
  using TopKAlgorithm::TopKAlgorithm;

  std::string name() const override { return "TPUT"; }

 protected:
  Status ValidateFor(const Database& db, const TopKQuery& query) const override;

  Status Run(const Database& db, const TopKQuery& query,
             ExecutionContext* context, TopKResult* result) const override;
};

}  // namespace topk

#endif  // TOPK_CORE_TPUT_ALGORITHM_H_
