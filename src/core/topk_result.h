// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Query and result types shared by every top-k algorithm.

#ifndef TOPK_CORE_TOPK_RESULT_H_
#define TOPK_CORE_TOPK_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lists/access_stats.h"
#include "lists/scorer.h"
#include "lists/types.h"

namespace topk {

/// A top-k query: how many items, aggregated how.
struct TopKQuery {
  /// Number of items requested (1 <= k <= n).
  size_t k = 1;

  /// Monotonic scoring function; non-owning, must outlive the execution.
  const Scorer* scorer = nullptr;
};

/// One answer: an item and its exact overall score.
struct ResultItem {
  ItemId item = kInvalidItem;
  Score score = 0.0;

  friend bool operator==(const ResultItem& a, const ResultItem& b) {
    return a.item == b.item && a.score == b.score;
  }
};

/// How an execution ended. kExact is the normal case: the algorithm's stop
/// rule certified the exact deterministic top-k. Every other value tags an
/// *anytime* result — the run was stopped early by the QueryGovernor (or
/// degraded by a permanent list failure) and the returned items carry
/// certified lower-bound scores plus a θ approximation factor (see
/// TopKResult::theta).
enum class Completion : uint8_t {
  kExact = 0,         ///< stop rule fired; result is the exact top-k
  kDeadline = 1,      ///< wall-clock deadline (incl. injected latency) hit
  kAccessBudget = 2,  ///< sorted/random/total access budget exhausted
  kMemoryBudget = 3,  ///< candidate-pool byte budget exhausted
  kCancelled = 4,     ///< cooperative cancellation requested by the caller
  kListFailure = 5,   ///< a list died permanently; answer covers survivors
};

inline const char* ToString(Completion completion) {
  switch (completion) {
    case Completion::kExact:
      return "exact";
    case Completion::kDeadline:
      return "deadline";
    case Completion::kAccessBudget:
      return "access-budget";
    case Completion::kMemoryBudget:
      return "memory-budget";
    case Completion::kCancelled:
      return "cancelled";
    case Completion::kListFailure:
      return "list-failure";
  }
  return "unknown";
}

/// One stop-rule evaluation, recorded when AlgorithmOptions::collect_trace
/// is set. For TA the threshold is δ (last sorted scores); for BPA/BPA2 it is
/// λ (best-position scores). `position` is the sorted depth (TA/BPA) or the
/// round number (BPA2).
struct StopRuleTrace {
  Position position = 0;
  /// Threshold the buffer was compared against (δ or λ).
  double threshold = 0.0;
  /// Score of the k-th buffered item (NaN while the buffer is not full).
  double kth_score = 0.0;
  /// Number of buffered items at evaluation time.
  size_t buffer_size = 0;
  /// Smallest best position across lists (BPA/BPA2; 0 for TA).
  Position min_best_position = 0;
};

/// Outcome of one algorithm execution.
struct TopKResult {
  /// The k answers, sorted by descending overall score (ties: ascending item
  /// id).
  std::vector<ResultItem> items;

  /// Access counts incurred by the run.
  AccessStats stats;

  /// Execution cost of the run under the cost model in effect
  /// (as*cs + (ar+ad)*cr; Section 2 / Section 6.1).
  double execution_cost = 0.0;

  /// Wall-clock time of the run (the paper's "response time").
  double elapsed_ms = 0.0;

  /// Depth at which the algorithm stopped:
  ///  * FA/TA/BPA/NRA — the sorted-access position at stop (the paper's
  ///    "stopping position");
  ///  * BPA2          — the number of direct-access rounds executed;
  ///  * naive/TPUT    — the deepest sorted position read.
  Position stop_position = 0;

  /// Final best position, minimized over lists (BPA/BPA2 only; 0 otherwise).
  Position min_best_position = 0;

  /// How the run ended. Anything other than kExact marks an anytime result:
  /// `items` may hold fewer than k entries and each score is a certified
  /// *lower bound* on the item's true overall score (exact for the
  /// buffer-based algorithms, pool lower bounds for NRA/CA/TPUT).
  Completion completion = Completion::kExact;

  /// Certified approximation factor (Fagin's θ-approximation): for every
  /// returned item y and every unreturned item z, θ·score(y) >= score(z)
  /// holds for the true overall scores. Exactly 1.0 for exact results;
  /// +infinity when nothing could be certified (e.g. an empty answer).
  /// Meaningful as a multiplicative factor only for positive scores.
  double theta = 1.0;

  /// Certified lower bound on the true score of every returned item
  /// (the weakest returned item's bound). -infinity when `items` is empty.
  double kth_lower_bound = 0.0;

  /// Certified upper bound on the true score of every item NOT returned.
  double unreturned_upper_bound = 0.0;

  /// True when a random-access algorithm lost a list permanently and the
  /// engine transparently re-ran the query with NRA over the survivors.
  bool failed_over = false;

  /// Number of lists that died permanently during the run (fault injection).
  uint32_t dead_lists = 0;

  /// Transient access faults absorbed by in-engine retry (fault injection).
  uint64_t fault_retries = 0;

  /// Per-list maximum number of times any single position was touched.
  /// Filled only when AlgorithmOptions::audit_accesses is set.
  std::vector<uint32_t> max_touches_per_list;

  /// One entry per stop-rule evaluation (TA: per row; BPA: per row; BPA2: per
  /// round). Filled only when AlgorithmOptions::collect_trace is set.
  std::vector<StopRuleTrace> trace;

  /// Resets to the zero-initialized state while retaining vector capacity,
  /// so a reused result incurs no allocations once warmed up.
  void Clear() {
    items.clear();
    stats = AccessStats{};
    execution_cost = 0.0;
    elapsed_ms = 0.0;
    stop_position = 0;
    min_best_position = 0;
    completion = Completion::kExact;
    theta = 1.0;
    kth_lower_bound = 0.0;
    unreturned_upper_bound = 0.0;
    failed_over = false;
    dead_lists = 0;
    fault_retries = 0;
    max_touches_per_list.clear();
    trace.clear();
  }

  /// The k overall scores in descending order (convenience for tests).
  std::vector<Score> Scores() const {
    std::vector<Score> scores;
    scores.reserve(items.size());
    for (const ResultItem& item : items) {
      scores.push_back(item.score);
    }
    return scores;
  }

  /// The k item ids in result order (convenience for tests).
  std::vector<ItemId> Items() const {
    std::vector<ItemId> ids;
    ids.reserve(items.size());
    for (const ResultItem& item : items) {
      ids.push_back(item.item);
    }
    return ids;
  }
};

}  // namespace topk

#endif  // TOPK_CORE_TOPK_RESULT_H_
