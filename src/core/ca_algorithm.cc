// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/ca_algorithm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/candidate_bounds.h"
#include "core/candidate_pool.h"
#include "core/list_io.h"

namespace topk {

namespace {

// Templated on the access policy and the concrete scorer (like TA/BPA): the
// default configuration — raw list reads, summation scoring — inlines the
// row loop and runs both the stop rule and the victim selection on the
// pool's per-mask group index in O(#groups) instead of sweeping every
// candidate. Sorted access is round-batched between resolution boundaries
// (one block of rows per list per round), which is behavior-preserving: no
// decision is taken mid-round and the pool state at a boundary is
// order-independent. Non-summation scorers fall back to the per-candidate
// sweeps (their bounds do not decompose per mask).
template <typename IoT, typename ScorerT>
Status RunCaLoop(const AlgorithmOptions& options, const Database& db,
                 const TopKQuery& query, ExecutionContext* context, IoT io,
                 TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const ScorerT& scorer = static_cast<const ScorerT&>(*query.scorer);

  const CostModel model =
      options.cost_model.value_or(CostModel::PaperDefault(n));
  // Resolve one candidate every h rows; h = cr/cs rounded, at least 1.
  const Position resolve_every = static_cast<Position>(std::max(
      1.0, std::round(model.random_cost / std::max(1e-9, model.sorted_cost))));

  // The group index serves only the summation stop rule and victim argmax;
  // the generic-scorer fallback sweeps per candidate, so it skips the index
  // maintenance. CA is the one consumer of the groups' min side: its
  // prune-and-erase pass runs at every stop check (every h rows), which is
  // what amortizes the min side's per-registration entry pushes.
  constexpr bool kSumPath = std::is_same_v<ScorerT, SumScorer>;
  CandidatePool& pool =
      context->PreparePool(m, query.k, options.score_floor,
                           /*eager_groups=*/kSumPath, /*dual_heap=*/kSumPath);
  std::vector<Score>& last_scores = context->last_scores();
  if constexpr (IoT::kFaultAware) {
    // Sound cursor bounds even for a list dead before its first read (see
    // nra_algorithm.cc; defensive here — CA is never the failover target).
    for (size_t i = 0; i < m; ++i) {
      last_scores[i] = db.list(i).MaxScore();
    }
  }
  std::vector<Score>& tmp = context->bound_scores();
  const double margin = SummationErrorMargin(db, options.score_floor);

  // Fully resolves a candidate with charged random accesses; afterwards its
  // lower bound is its exact overall score. Under fault injection dead lists
  // are skipped: their cells stay unresolved (the candidate may be selected
  // again, which re-resolves nothing — harmless), so the offered bound stays
  // a lower bound over the survivors.
  const auto resolve = [&](uint32_t slot) {
    const ItemId item = pool.item_at(slot);
    for (size_t i = 0; i < m; ++i) {
      if constexpr (IoT::kFaultAware) {
        if (!io.RandomAlive(i)) {
          continue;
        }
      }
      if (!(pool.mask(slot) >> i & 1)) {
        pool.SetSeen(slot, i, io.Random(i, item).score);
      }
    }
    pool.OfferLower(slot, scorer.Combine(pool.row(slot), m));
  };

  std::vector<ItemId>& winners = context->ClearedItems();
  QueryGovernor& governor = context->governor();
  Completion reason = Completion::kExact;
  Score unseen_upper = std::numeric_limits<Score>::infinity();
  Position depth = 0;
  while (depth < n) {
    // One round: a block of rows per list up to the next resolution/stop
    // boundary (every h rows, plus the end of the lists).
    const Position round_end =
        std::min<Position>(depth + resolve_every, static_cast<Position>(n));
    for (size_t i = 0; i < m; ++i) {
      for (Position d = depth + 1; d <= round_end; ++d) {
        if constexpr (IoT::kFaultAware) {
          // A dead list's scan freezes; its last_scores entry keeps bounding
          // its unseen entries (they sit below the frozen cursor), so all
          // bounds stay sound over the survivors.
          if (!io.SortedAlive(i)) {
            break;
          }
        }
        // Probe-cell prefetch pipelining — uncounted, decision-free; see
        // nra_algorithm.cc.
        if (d + kPrefetchRowsAhead <= n) {
          pool.PrefetchItem(db.list(i).items()[d - 1 + kPrefetchRowsAhead]);
        }
        const AccessedEntry entry = io.Sorted(i, d);
        last_scores[i] = entry.score;
        const uint32_t slot = pool.FindOrInsert(entry.item);
        if (pool.SetSeen(slot, i, entry.score)) {
          pool.OfferLower(slot, scorer.Combine(pool.row(slot), m));
        }
      }
    }
    depth = round_end;
    unseen_upper = scorer.Combine(last_scores.data(), m);

    // Every h rows: fully resolve the unresolved candidate with the largest
    // upper bound (the one blocking the stop rule the hardest). Ties are
    // broken toward the smaller item id so the access pattern — not just the
    // answer — is deterministic.
    if (depth % resolve_every == 0) {
      uint32_t best_slot = CandidatePool::kNoSlot;
      if constexpr (std::is_same_v<ScorerT, SumScorer>) {
        best_slot = GroupArgmaxUnresolved(pool, last_scores,
                                          options.score_floor, margin);
      } else {
        ItemId best_item = kInvalidItem;
        Score best_upper = -std::numeric_limits<Score>::infinity();
        for (uint32_t slot = 0; slot < pool.size(); ++slot) {
          if (pool.fully_known(slot)) {
            continue;
          }
          const Score upper =
              PoolUpperBound(pool, slot, scorer, last_scores, tmp);
          if (upper > best_upper ||
              (upper == best_upper && pool.item_at(slot) < best_item)) {
            best_upper = upper;
            best_slot = slot;
            best_item = pool.item_at(slot);
          }
        }
      }
      if (best_slot != CandidatePool::kNoSlot) {
        resolve(best_slot);
      }
    }

    // Stop rule (NRA-style, checked with the same cadence as the resolver).
    // The governor is charged on every path out of the round — after the
    // natural stop check where one exists, so an exact stop always wins.
    if ((depth % resolve_every != 0 && depth != n) || !pool.HeapFull()) {
      if ((reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                    io.VirtualLatencyMs())) !=
          Completion::kExact) {
        break;
      }
      continue;
    }
    // Strict against unseen items (unknown ids could win the deterministic
    // tie-break); the id-aware blocking check against seen candidates is the
    // group walk (summation) or the fallback sweep. See nra_algorithm.cc.
    bool can_stop = pool.KthLower() > unseen_upper;
    if constexpr (IoT::kFaultAware) {
      // A full scan only certifies when every list was read to the bottom.
      can_stop = can_stop || (depth == n && io.DeadLists() == 0);
    } else {
      can_stop = can_stop || depth == n;
    }
    if constexpr (std::is_same_v<ScorerT, SumScorer>) {
      // Unlike NRA, the check must also reproduce the sweep's pruning: the
      // victim selection above ranges over the surviving pool, so erasures
      // are part of CA's observable access pattern.
      if (GroupPruneAndFindBlocker(pool, last_scores, options.score_floor,
                                   margin, context->ClearedSlots())) {
        can_stop = false;
      }
    } else {
      if (PruneAndFindBlocker(pool, scorer, last_scores, tmp)) {
        can_stop = false;
      }
    }
    if (can_stop) {
      pool.AppendHeapItems(&winners);
      break;
    }
    if ((reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                  io.VirtualLatencyMs())) !=
        Completion::kExact) {
      break;
    }
  }

  if constexpr (IoT::kFaultAware) {
    if (reason == Completion::kExact && io.DeadLists() > 0) {
      // With a dead list CA cannot resolve winners exactly (its contract is
      // charged resolution — no uncounted raw reads), so even a certified
      // membership degrades to lower-bound scores.
      reason = Completion::kListFailure;
    }
  }
  if (reason != Completion::kExact) {
    // Anytime exit. On a list failure the membership may still be certified
    // (winners already appended); tighten each winner with charged random
    // accesses over the surviving lists, then report its lower bound. On a
    // budget/deadline trip no further accesses are spent.
    if (winners.empty()) {
      pool.AppendHeapItems(&winners);
    }
    const bool tighten = reason == Completion::kListFailure;
    Score kth = std::numeric_limits<Score>::infinity();
    result->items.reserve(winners.size());
    for (ItemId item : winners) {
      const uint32_t slot = pool.FindSlot(item);
      if (tighten) {
        resolve(slot);
      }
      const Score lower = pool.lower(slot);
      kth = std::min(kth, lower);
      result->items.push_back(ResultItem{item, lower});
    }
    if (result->items.empty()) {
      kth = -std::numeric_limits<Score>::infinity();
    }
    Score upper = unseen_upper;
    for (uint32_t slot = 0; slot < pool.size(); ++slot) {
      if (!pool.InHeap(slot)) {
        upper = std::max(
            upper, PoolUpperBound(pool, slot, scorer, last_scores, tmp));
      }
    }
    io.Flush();
    CertifyAnytime(reason, kth, upper, result);
    result->stop_position = depth;
    return Status::OK();
  }

  if (winners.empty()) {
    // Defensive: a full scan resolves every bound exactly, so the heap is the
    // exact top-k.
    pool.AppendHeapItems(&winners);
  }

  // Resolve winners exactly: charged random accesses for still-unknown local
  // scores (unlike NRA, CA has random access at its disposal).
  result->items.reserve(winners.size());
  for (ItemId item : winners) {
    const uint32_t slot = pool.FindSlot(item);
    resolve(slot);
    result->items.push_back(
        ResultItem{item, scorer.Combine(pool.row(slot), m)});
  }
  io.Flush();
  result->stop_position = depth;
  return Status::OK();
}

template <typename IoT>
Status DispatchCa(const AlgorithmOptions& options, const Database& db,
                  const TopKQuery& query, ExecutionContext* context, IoT io,
                  TopKResult* result) {
  if (dynamic_cast<const SumScorer*>(query.scorer) != nullptr) {
    return RunCaLoop<IoT, SumScorer>(options, db, query, context, io, result);
  }
  return RunCaLoop<IoT, Scorer>(options, db, query, context, io, result);
}

}  // namespace

Status CaAlgorithm::ValidateFor(const Database& db,
                                const TopKQuery& query) const {
  (void)query;
  return ValidatePoolQuery("CA", db, options().score_floor);
}

Status CaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        ExecutionContext* context, TopKResult* result) const {
  if (options().audit_accesses) {
    return DispatchCa(options(), db, query, context,
                      EngineIo(&context->engine()), result);
  }
  if (context->faults().armed()) {
    return DispatchCa(options(), db, query, context,
                      FaultIo(&context->faults()), result);
  }
  return DispatchCa(options(), db, query, context,
                    RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
