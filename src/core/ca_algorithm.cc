// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/ca_algorithm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/topk_buffer.h"

namespace topk {

namespace {

struct Candidate {
  std::vector<Score> scores;
  std::vector<bool> known;
  size_t known_count = 0;

  explicit Candidate(size_t m) : scores(m, 0.0), known(m, false) {}
};

}  // namespace

Status CaAlgorithm::ValidateFor(const Database& db,
                                const TopKQuery& query) const {
  (void)query;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    if (db.list(i).MinScore() < options().score_floor) {
      return Status::Invalid(
          "CA lower bounds assume scores >= score floor ",
          options().score_floor, "; list ", i, " has minimum ",
          db.list(i).MinScore(),
          " (set AlgorithmOptions::score_floor accordingly)");
    }
  }
  return Status::OK();
}

Status CaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        ExecutionContext* context, TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const Score floor = options().score_floor;
  const Scorer& f = *query.scorer;

  AccessEngine* engine = &context->engine();

  const CostModel model =
      options().cost_model.value_or(CostModel::PaperDefault(n));
  // Resolve one candidate every h rows; h = cr/cs rounded, at least 1.
  const Position resolve_every = static_cast<Position>(std::max(
      1.0, std::round(model.random_cost / std::max(1e-9, model.sorted_cost))));

  std::unordered_map<ItemId, Candidate> candidates;
  candidates.reserve(1024);
  std::vector<Score>& last_scores = context->last_scores();
  std::vector<Score>& tmp = context->bound_scores();

  auto bound = [&](const Candidate& c, bool upper) {
    for (size_t i = 0; i < m; ++i) {
      tmp[i] = c.known[i] ? c.scores[i] : (upper ? last_scores[i] : floor);
    }
    return f.Combine(tmp.data(), m);
  };

  auto resolve = [&](ItemId item, Candidate* c) {
    for (size_t i = 0; i < m; ++i) {
      if (!c->known[i]) {
        c->scores[i] = engine->RandomAccess(i, item).score;
        c->known[i] = true;
        ++c->known_count;
      }
    }
  };

  std::vector<ItemId>& winners = context->ClearedItems();
  Position depth = 0;
  while (depth < n) {
    ++depth;
    for (size_t i = 0; i < m; ++i) {
      const AccessedEntry entry = engine->SortedAccess(i);
      last_scores[i] = entry.score;
      auto [it, inserted] = candidates.try_emplace(entry.item, Candidate(m));
      if (!it->second.known[i]) {
        it->second.known[i] = true;
        it->second.scores[i] = entry.score;
        ++it->second.known_count;
      }
    }

    // Every h rows: fully resolve the unresolved candidate with the largest
    // upper bound (the one blocking the stop rule the hardest).
    if (depth % resolve_every == 0) {
      ItemId best_item = kInvalidItem;
      Score best_upper = -std::numeric_limits<Score>::infinity();
      for (auto& [item, cand] : candidates) {
        if (cand.known_count == m) {
          continue;
        }
        const Score upper = bound(cand, /*upper=*/true);
        if (upper > best_upper) {
          best_upper = upper;
          best_item = item;
        }
      }
      if (best_item != kInvalidItem) {
        resolve(best_item, &candidates.at(best_item));
      }
    }

    // Stop rule (NRA-style, checked with the same cadence as the resolver to
    // amortize the candidate scan).
    if (depth % resolve_every != 0 && depth != n) {
      continue;
    }
    TopKBuffer& lower_k = context->ScratchBuffer(query.k);
    for (const auto& [item, cand] : candidates) {
      lower_k.Offer(item, bound(cand, /*upper=*/false));
    }
    if (!lower_k.full()) {
      continue;
    }
    const Score kth_lower = lower_k.KthScore();
    bool can_stop = kth_lower >= f.Combine(last_scores.data(), m);
    if (can_stop) {
      for (auto it = candidates.begin(); can_stop && it != candidates.end();
           ++it) {
        if (!lower_k.Contains(it->first) &&
            bound(it->second, /*upper=*/true) > kth_lower) {
          can_stop = false;
        }
      }
    }
    // Prune candidates that can no longer reach the top-k.
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (!lower_k.Contains(it->first) &&
          bound(it->second, /*upper=*/true) < kth_lower) {
        it = candidates.erase(it);
      } else {
        ++it;
      }
    }
    if (can_stop) {
      for (const ResultItem& ri : lower_k.ToSortedItems()) {
        winners.push_back(ri.item);
      }
      break;
    }
  }

  if (winners.empty()) {
    TopKBuffer& buffer = context->buffer();
    for (const auto& [item, cand] : candidates) {
      buffer.Offer(item, bound(cand, /*upper=*/false));
    }
    for (const ResultItem& ri : buffer.ToSortedItems()) {
      winners.push_back(ri.item);
    }
  }

  // Resolve winners exactly: charged random accesses for still-unknown local
  // scores (unlike NRA, CA has random access at its disposal).
  result->items.reserve(winners.size());
  for (ItemId item : winners) {
    Candidate& cand = candidates.at(item);
    resolve(item, &cand);
    result->items.push_back(ResultItem{item, bound(cand, /*upper=*/false)});
  }
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace topk
