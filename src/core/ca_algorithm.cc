// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/ca_algorithm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/candidate_bounds.h"
#include "core/candidate_pool.h"
#include "core/list_io.h"

namespace topk {

namespace {

// Templated on the access policy and the concrete scorer (like TA/BPA): the
// default configuration — raw list reads, summation scoring — inlines the
// row loop and runs both the stop rule and the victim selection on the
// pool's per-mask group index in O(#groups) instead of sweeping every
// candidate. Sorted access is round-batched between resolution boundaries
// (one block of rows per list per round), which is behavior-preserving: no
// decision is taken mid-round and the pool state at a boundary is
// order-independent. Non-summation scorers fall back to the per-candidate
// sweeps (their bounds do not decompose per mask).
template <typename IoT, typename ScorerT>
Status RunCaLoop(const AlgorithmOptions& options, const Database& db,
                 const TopKQuery& query, ExecutionContext* context, IoT io,
                 TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const ScorerT& scorer = static_cast<const ScorerT&>(*query.scorer);

  const CostModel model =
      options.cost_model.value_or(CostModel::PaperDefault(n));
  // Resolve one candidate every h rows; h = cr/cs rounded, at least 1.
  const Position resolve_every = static_cast<Position>(std::max(
      1.0, std::round(model.random_cost / std::max(1e-9, model.sorted_cost))));

  // The group index serves only the summation stop rule and victim argmax;
  // the generic-scorer fallback sweeps per candidate, so it skips the index
  // maintenance. CA is the one consumer of the groups' min side: its
  // prune-and-erase pass runs at every stop check (every h rows), which is
  // what amortizes the min side's per-registration entry pushes.
  constexpr bool kSumPath = std::is_same_v<ScorerT, SumScorer>;
  CandidatePool& pool =
      context->PreparePool(m, query.k, options.score_floor,
                           /*eager_groups=*/kSumPath, /*dual_heap=*/kSumPath);
  std::vector<Score>& last_scores = context->last_scores();
  std::vector<Score>& tmp = context->bound_scores();
  const double margin = SummationErrorMargin(db, options.score_floor);

  // Fully resolves a candidate with charged random accesses; afterwards its
  // lower bound is its exact overall score.
  const auto resolve = [&](uint32_t slot) {
    const ItemId item = pool.item_at(slot);
    for (size_t i = 0; i < m; ++i) {
      if (!(pool.mask(slot) >> i & 1)) {
        pool.SetSeen(slot, i, io.Random(i, item).score);
      }
    }
    pool.OfferLower(slot, scorer.Combine(pool.row(slot), m));
  };

  std::vector<ItemId>& winners = context->ClearedItems();
  Position depth = 0;
  while (depth < n) {
    // One round: a block of rows per list up to the next resolution/stop
    // boundary (every h rows, plus the end of the lists).
    const Position round_end =
        std::min<Position>(depth + resolve_every, static_cast<Position>(n));
    for (size_t i = 0; i < m; ++i) {
      for (Position d = depth + 1; d <= round_end; ++d) {
        // Probe-cell prefetch pipelining — uncounted, decision-free; see
        // nra_algorithm.cc.
        if (d + kPrefetchRowsAhead <= n) {
          pool.PrefetchItem(db.list(i).items()[d - 1 + kPrefetchRowsAhead]);
        }
        const AccessedEntry entry = io.Sorted(i, d);
        last_scores[i] = entry.score;
        const uint32_t slot = pool.FindOrInsert(entry.item);
        if (pool.SetSeen(slot, i, entry.score)) {
          pool.OfferLower(slot, scorer.Combine(pool.row(slot), m));
        }
      }
    }
    depth = round_end;

    // Every h rows: fully resolve the unresolved candidate with the largest
    // upper bound (the one blocking the stop rule the hardest). Ties are
    // broken toward the smaller item id so the access pattern — not just the
    // answer — is deterministic.
    if (depth % resolve_every == 0) {
      uint32_t best_slot = CandidatePool::kNoSlot;
      if constexpr (std::is_same_v<ScorerT, SumScorer>) {
        best_slot = GroupArgmaxUnresolved(pool, last_scores,
                                          options.score_floor, margin);
      } else {
        ItemId best_item = kInvalidItem;
        Score best_upper = -std::numeric_limits<Score>::infinity();
        for (uint32_t slot = 0; slot < pool.size(); ++slot) {
          if (pool.fully_known(slot)) {
            continue;
          }
          const Score upper =
              PoolUpperBound(pool, slot, scorer, last_scores, tmp);
          if (upper > best_upper ||
              (upper == best_upper && pool.item_at(slot) < best_item)) {
            best_upper = upper;
            best_slot = slot;
            best_item = pool.item_at(slot);
          }
        }
      }
      if (best_slot != CandidatePool::kNoSlot) {
        resolve(best_slot);
      }
    }

    // Stop rule (NRA-style, checked with the same cadence as the resolver).
    if (depth % resolve_every != 0 && depth != n) {
      continue;
    }
    if (!pool.HeapFull()) {
      continue;
    }
    // Strict against unseen items (unknown ids could win the deterministic
    // tie-break); the id-aware blocking check against seen candidates is the
    // group walk (summation) or the fallback sweep. See nra_algorithm.cc.
    bool can_stop =
        pool.KthLower() > scorer.Combine(last_scores.data(), m) || depth == n;
    if constexpr (std::is_same_v<ScorerT, SumScorer>) {
      // Unlike NRA, the check must also reproduce the sweep's pruning: the
      // victim selection above ranges over the surviving pool, so erasures
      // are part of CA's observable access pattern.
      if (GroupPruneAndFindBlocker(pool, last_scores, options.score_floor,
                                   margin, context->ClearedSlots())) {
        can_stop = false;
      }
    } else {
      if (PruneAndFindBlocker(pool, scorer, last_scores, tmp)) {
        can_stop = false;
      }
    }
    if (can_stop) {
      pool.AppendHeapItems(&winners);
      break;
    }
  }

  if (winners.empty()) {
    // Defensive: a full scan resolves every bound exactly, so the heap is the
    // exact top-k.
    pool.AppendHeapItems(&winners);
  }

  // Resolve winners exactly: charged random accesses for still-unknown local
  // scores (unlike NRA, CA has random access at its disposal).
  result->items.reserve(winners.size());
  for (ItemId item : winners) {
    const uint32_t slot = pool.FindSlot(item);
    resolve(slot);
    result->items.push_back(
        ResultItem{item, scorer.Combine(pool.row(slot), m)});
  }
  io.Flush();
  result->stop_position = depth;
  return Status::OK();
}

template <typename IoT>
Status DispatchCa(const AlgorithmOptions& options, const Database& db,
                  const TopKQuery& query, ExecutionContext* context, IoT io,
                  TopKResult* result) {
  if (dynamic_cast<const SumScorer*>(query.scorer) != nullptr) {
    return RunCaLoop<IoT, SumScorer>(options, db, query, context, io, result);
  }
  return RunCaLoop<IoT, Scorer>(options, db, query, context, io, result);
}

}  // namespace

Status CaAlgorithm::ValidateFor(const Database& db,
                                const TopKQuery& query) const {
  (void)query;
  return ValidatePoolQuery("CA", db, options().score_floor);
}

Status CaAlgorithm::Run(const Database& db, const TopKQuery& query,
                        ExecutionContext* context, TopKResult* result) const {
  if (options().audit_accesses) {
    return DispatchCa(options(), db, query, context,
                      EngineIo(&context->engine()), result);
  }
  return DispatchCa(options(), db, query, context,
                    RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
