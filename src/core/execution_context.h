// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// ExecutionContext: the reusable per-query scratch state of one algorithm
// execution — the access engine, best-position trackers, top-k buffer, score
// scratch vectors and the memoization table. Algorithms borrow a context per
// Run(); callers that execute many queries (QueryEngine workers, benchmarks,
// servers) keep one context per thread and reuse it, which makes the hot path
// allocation-free after warm-up: every structure resets in O(1) or O(k)/O(m)
// writes into storage that is retained across queries and only ever grows.

#ifndef TOPK_CORE_EXECUTION_CONTEXT_H_
#define TOPK_CORE_EXECUTION_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/candidate_pool.h"
#include "core/query_governor.h"
#include "core/topk_buffer.h"
#include "lists/access_engine.h"
#include "lists/database.h"
#include "lists/fault_injection.h"
#include "lists/types.h"
#include "tracker/best_position_tracker.h"
#include "tracker/bitarray_tracker.h"

namespace topk {

/// Epoch-stamped memo of resolved overall scores, keyed by dense item id.
/// Replaces the per-query unordered_map of the TA/BPA memoization ablation:
/// one flat array touch per lookup, no hashing, no node allocations, and an
/// O(1) per-query reset (epoch bump instead of clearing n entries).
class ScoreMemo {
 public:
  /// Forgets all entries and guarantees capacity for items 0..n-1. O(1)
  /// except when capacity grows or the 32-bit epoch wraps (every 2^32 resets,
  /// which falls back to one eager clear).
  void Reset(size_t n);

  bool Contains(ItemId item) const { return stamps_[item] == epoch_; }

  /// Memoized overall score of `item`; requires Contains(item).
  Score Get(ItemId item) const { return scores_[item]; }

  void Put(ItemId item, Score score) {
    stamps_[item] = epoch_;
    scores_[item] = score;
  }

  /// Pulls `item`'s stamp and score toward the cache. At DRAM-resident n the
  /// memo arrays are far too large to stay cached, so the TA/BPA loops
  /// prefetch the memo entry alongside the item-major mirror row of the
  /// sorted rows they will process a few iterations from now.
  void Prefetch(ItemId item) const {
    __builtin_prefetch(&stamps_[item]);
    __builtin_prefetch(&scores_[item]);
  }

 private:
  std::vector<uint32_t> stamps_;  // stamps_[item] == epoch_ <=> entry valid
  std::vector<Score> scores_;
  uint32_t epoch_ = 0;
};

/// Reusable execution state borrowed by TopKAlgorithm::Run. Not thread-safe;
/// use one context per concurrent execution. A context adapts to whatever
/// database/query shape it is prepared for, so one instance can serve mixed
/// workloads (different n, m, k, algorithms) back to back.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Called by TopKAlgorithm::ExecuteInto before Run: rebinds the access
  /// engine, resets the top-k buffer to `k` and zero-fills the per-list score
  /// scratch. Tracker/memo/matrix scratch is prepared lazily by the
  /// algorithms that need it.
  void Prepare(const Database& db, bool audit, size_t k);

  /// The counted access layer, bound to the database of the last Prepare.
  AccessEngine& engine() { return engine_; }

  /// The paper's set Y, reset to the k of the last Prepare.
  TopKBuffer& buffer() { return buffer_; }

  /// The per-query governance limits (deadline, budgets, cancellation).
  /// Armed by ExecuteInto from AlgorithmOptions::governor; callers that hold
  /// the context may RequestCancel() on it from another thread.
  QueryGovernor& governor() { return governor_; }

  /// The fault-injection decorator over engine(). Armed by ExecuteInto when
  /// AlgorithmOptions::fault_plan is enabled; stays armed across an
  /// in-flight NRA failover so dead lists stay dead and the deterministic
  /// schedule continues.
  FaultInjectingAccessEngine& faults() { return faults_; }

  // --- per-list score scratch, sized m and zero-filled by Prepare ---

  std::vector<Score>& local_scores() { return local_scores_; }
  std::vector<Score>& last_scores() { return last_scores_; }
  std::vector<Score>& bound_scores() { return bound_scores_; }

  // --- lazily prepared scratch ---

  /// Ensures m reset trackers of `kind` for lists of n positions. Existing
  /// trackers are reused via Reset() (O(1) for the bit array); instances are
  /// only (re)created when the kind or list size changes.
  void PrepareTrackers(TrackerKind kind, size_t n, size_t m);

  /// Tracker for list `i`; requires a preceding PrepareTrackers with m > i.
  BestPositionTracker& tracker(size_t i) {
    if (active_tracker_kind_ == TrackerKind::kBitArray) {
      return bit_trackers_[i];
    }
    return *generic_trackers_[i];
  }

  /// Contiguous bit-array trackers — the devirtualized fast path of BPA/BPA2.
  /// Valid after PrepareTrackers(TrackerKind::kBitArray, ...); indexing it
  /// avoids the per-access pointer chase of the virtual tracker pool.
  BitArrayTracker* bitarray_trackers() { return bit_trackers_.data(); }

  /// The memo table for the memoize_seen_items ablation, reset for items
  /// 0..n-1.
  ScoreMemo& PrepareMemo(size_t n) {
    memo_.Reset(n);
    return memo_;
  }

  /// The flat candidate pool of the no-random-access family (NRA/CA/TPUT),
  /// reset for a query of `k` over `m` lists with the given score floor.
  /// O(1) reset via epoch stamping; storage — including the pool's mmap'd,
  /// hugepage-advised arena (core/pool_arena.h) — is retained across
  /// queries, so a warmed context sizes itself to the workload once and then
  /// serves queries without growing. `eager_groups` picks the pool's
  /// per-mask group index maintenance mode (see CandidatePool::Reset):
  /// eager for the repeated stop checks of NRA/CA, deferred-to-BuildGroups
  /// for TPUT's single phase-3 filter. `dual_heap` adds the min side CA's
  /// per-stop-check prune peels (a per-registration cost only its peel
  /// frequency justifies — NRA and TPUT leave it off).
  CandidatePool& PreparePool(size_t m, size_t k, Score floor,
                             bool eager_groups = true,
                             bool dual_heap = false) {
    pool_.Reset(m, k, floor, eager_groups, dual_heap);
    return pool_;
  }

  /// Read-only view of the candidate pool as the last pool algorithm left it
  /// (tests inspect peak occupancy and arena sizing after a run; a later
  /// PreparePool resets).
  const CandidatePool& pool() const { return pool_; }

  /// Zero-filled scratch of `count` scores (FA/naive gather matrices).
  std::vector<Score>& ZeroedScoreMatrix(size_t count) {
    score_matrix_.assign(count, 0.0);
    return score_matrix_;
  }

  /// Zero-filled byte flags of length `count`.
  std::vector<uint8_t>& ZeroedFlags(size_t count) {
    flags_.assign(count, 0);
    return flags_;
  }

  /// Zero-filled uint16 counters of length `count`.
  std::vector<uint16_t>& ZeroedCounts(size_t count) {
    counts_.assign(count, 0);
    return counts_;
  }

  /// Emptied (capacity-retaining) item-id scratch.
  std::vector<ItemId>& ClearedItems() {
    item_scratch_.clear();
    return item_scratch_;
  }

  /// Emptied (capacity-retaining) position scratch (TPUT's per-list depths).
  std::vector<Position>& ClearedPositions() {
    position_scratch_.clear();
    return position_scratch_;
  }

  /// Emptied (capacity-retaining) generic 32-bit scratch. TPUT collects its
  /// phase-3 survivor slots here; CA collects prune-victim item ids (ItemId
  /// aliases uint32_t — if item ids ever widen, CA needs its own scratch).
  std::vector<uint32_t>& ClearedSlots() {
    slot_scratch_.clear();
    return slot_scratch_;
  }

 private:
  AccessEngine engine_;
  QueryGovernor governor_;
  FaultInjectingAccessEngine faults_;
  TopKBuffer buffer_;
  std::vector<Score> local_scores_;
  std::vector<Score> last_scores_;
  std::vector<Score> bound_scores_;

  // Bit-array trackers live contiguously (fast path); other kinds go through
  // the polymorphic pool. Each pool remembers the list size it was built for.
  std::vector<BitArrayTracker> bit_trackers_;
  size_t bit_tracker_list_size_ = 0;
  std::vector<std::unique_ptr<BestPositionTracker>> generic_trackers_;
  TrackerKind generic_tracker_kind_ = TrackerKind::kSortedSet;
  size_t generic_tracker_list_size_ = 0;
  TrackerKind active_tracker_kind_ = TrackerKind::kBitArray;

  ScoreMemo memo_;
  CandidatePool pool_;
  std::vector<Score> score_matrix_;
  std::vector<uint8_t> flags_;
  std::vector<uint16_t> counts_;
  std::vector<ItemId> item_scratch_;
  std::vector<Position> position_scratch_;
  std::vector<uint32_t> slot_scratch_;
};

}  // namespace topk

#endif  // TOPK_CORE_EXECUTION_CONTEXT_H_
