// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// TopKBuffer: the paper's set Y — the k highest-scored items seen so far.

#ifndef TOPK_CORE_TOPK_BUFFER_H_
#define TOPK_CORE_TOPK_BUFFER_H_

#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/topk_result.h"
#include "lists/types.h"

namespace topk {

/// Bounded buffer holding the k best (item, overall score) pairs offered so
/// far. Ties are broken deterministically: on equal scores the smaller item id
/// is considered stronger.
class TopKBuffer {
 public:
  explicit TopKBuffer(size_t k) : k_(k) {}

  /// Offers an item. No-op when the item is already buffered or is weaker
  /// than the current k-th entry of a full buffer. (Re-offering an item with
  /// its — deterministic — overall score is always a no-op.)
  void Offer(ItemId item, Score score);

  /// True iff `item` currently belongs to the buffer.
  bool Contains(ItemId item) const { return members_.count(item) > 0; }

  /// Number of buffered items (<= k).
  size_t size() const { return ordered_.size(); }

  /// True when k items are buffered.
  bool full() const { return ordered_.size() == k_; }

  size_t k() const { return k_; }

  /// Score of the weakest buffered item. Requires size() > 0.
  Score KthScore() const { return ordered_.begin()->first; }

  /// The stopping predicate of TA/BPA/BPA2: true iff the buffer holds k items
  /// whose overall scores are all >= `threshold`.
  bool HasKAtLeast(Score threshold) const {
    return full() && KthScore() >= threshold;
  }

  /// Buffered items sorted by descending score (ties: ascending item id).
  std::vector<ResultItem> ToSortedItems() const;

 private:
  // Ascending (score, then *descending* item id), so that begin() is the
  // weakest entry under the deterministic tie-break.
  struct WeakerFirst {
    bool operator()(const std::pair<Score, ItemId>& a,
                    const std::pair<Score, ItemId>& b) const {
      if (a.first != b.first) {
        return a.first < b.first;
      }
      return a.second > b.second;
    }
  };

  size_t k_;
  std::set<std::pair<Score, ItemId>, WeakerFirst> ordered_;
  std::unordered_set<ItemId> members_;
};

}  // namespace topk

#endif  // TOPK_CORE_TOPK_BUFFER_H_
