// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// TopKBuffer: the paper's set Y — the k highest-scored items seen so far.
//
// Flat, allocation-free after warm-up: the k entries live in a binary min-heap
// (weakest entry at the front) backed by a small vector, and membership is a
// linear-probing open-addressing table of item ids with backward-shift
// deletion. No node allocations; Reset() reuses all storage, so one buffer can
// serve an unbounded stream of queries without touching the heap allocator.

#ifndef TOPK_CORE_TOPK_BUFFER_H_
#define TOPK_CORE_TOPK_BUFFER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/topk_result.h"
#include "lists/types.h"

namespace topk {

/// Bounded buffer holding the k best (item, overall score) pairs offered so
/// far. Ties are broken deterministically: on equal scores the smaller item id
/// is considered stronger.
class TopKBuffer {
 public:
  TopKBuffer() : TopKBuffer(0) {}
  explicit TopKBuffer(size_t k) { Reset(k); }

  /// Reconfigures for a new query of size `k` and forgets all offers. Storage
  /// is reused (and only ever grows), so a reset costs O(k) writes and zero
  /// allocations once the buffer has warmed up to the largest k seen.
  void Reset(size_t k);

  /// Offers an item. No-op when the item is already buffered or is weaker
  /// than the current k-th entry of a full buffer. (Re-offering an item with
  /// its — deterministic — overall score is always a no-op.)
  ///
  /// The overwhelmingly common case — full buffer, candidate strictly weaker
  /// than the k-th entry — is decided inline by one comparison, with no table
  /// probe: members are all >= the k-th entry, and an already-buffered item
  /// would re-offer its exact stored (score, item) pair.
  void Offer(ItemId item, Score score) {
    // kth_floor_ is the k-th score once full (-inf before, +inf for k = 0),
    // so the single compare below rejects almost every offer of a long scan.
    if (score < kth_floor_) {
      return;
    }
    if (k_ == 0) {
      return;
    }
    if (heap_.size() == k_) {
      const Entry& weakest = heap_.front();
      if (score < weakest.first ||
          (score == weakest.first && item > weakest.second)) {
        return;
      }
    }
    OfferSlow(item, score);
  }

  /// True iff `item` currently belongs to the buffer.
  bool Contains(ItemId item) const;

  /// Number of buffered items (<= k).
  size_t size() const { return heap_.size(); }

  /// True when k items are buffered.
  bool full() const { return heap_.size() == k_; }

  size_t k() const { return k_; }

  /// Score of the weakest buffered item. Requires size() > 0.
  Score KthScore() const { return heap_.front().first; }

  /// The stopping predicate of TA/BPA/BPA2: true iff the buffer holds k items
  /// whose overall scores are all *strictly above* `threshold`. The strict
  /// comparison is what makes the returned set deterministic under score
  /// ties: an unseen item can tie the threshold exactly, and its (unknown)
  /// id could precede a buffered item in the library-wide (score desc, item
  /// id asc) result order — so a tie at the boundary forces deeper scanning
  /// until the k-th score clears the threshold (or the scan completes and
  /// nothing is unseen).
  bool HasKAbove(Score threshold) const {
    return full() && KthScore() > threshold;
  }

  /// Buffered items sorted by descending score (ties: ascending item id).
  std::vector<ResultItem> ToSortedItems() const;

  /// Appends the sorted items to `out` without clearing it; allocation-free
  /// when `out` has spare capacity.
  void AppendSortedItems(std::vector<ResultItem>* out) const;

 private:
  using Entry = std::pair<Score, ItemId>;

  // `a` strictly weaker than `b` under the deterministic tie-break (smaller
  // score, or equal score and larger item id).
  static bool Weaker(const Entry& a, const Entry& b) {
    if (a.first != b.first) {
      return a.first < b.first;
    }
    return a.second > b.second;
  }
  // Heap comparator: std::*_heap keep the comparator's maximum at the front,
  // so ordering by "stronger" surfaces the weakest entry there.
  static bool Stronger(const Entry& a, const Entry& b) { return Weaker(b, a); }

  /// Inserts/evicts for a candidate that survived the inline weakness check.
  void OfferSlow(ItemId item, Score score);

  size_t ProbeSlot(ItemId item) const;
  void ProbeInsert(ItemId item);
  void ProbeErase(ItemId item);

  size_t k_ = 0;
  Score kth_floor_ = 0.0;              // see Offer(); maintained by OfferSlow
  std::vector<Entry> heap_;            // min-heap, weakest at front
  std::vector<ItemId> slots_;          // open addressing; kInvalidItem = empty
  size_t slot_mask_ = 0;               // slots_.size() - 1 (power of two)
  mutable std::vector<Entry> scratch_;  // for sorted emission
};

}  // namespace topk

#endif  // TOPK_CORE_TOPK_BUFFER_H_
