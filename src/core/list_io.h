// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Access policies for the algorithm run loops. Both provide the same three
// primitives as AccessEngine and are drop-in template parameters for the
// loops in ta/bpa/bpa2_algorithm.cc:
//
//  * EngineIo routes every access through the AccessEngine — per-access
//    cursors, counters and the optional audit trail. Required whenever the
//    access pattern itself is observed (audit mode) or the engine's cursor
//    state matters.
//  * RawListIo reads the sorted lists directly and counts accesses into a
//    stack-resident AccessStats that is flushed into the engine once at the
//    end of the run. The counts are identical to EngineIo's by construction
//    (one increment per primitive call); what disappears is the per-access
//    read-modify-write traffic through the shared engine object, which the
//    optimizer cannot keep in registers. Only valid with audit mode off.

#ifndef TOPK_CORE_LIST_IO_H_
#define TOPK_CORE_LIST_IO_H_

#include "lists/access_engine.h"
#include "lists/database.h"
#include "lists/types.h"

namespace topk {

/// Pulls `item`'s item-major score/position rows toward the cache. The
/// TA/BPA row loops call this one row ahead of use (the next sorted items
/// are known: list prefixes are sequential). Both row ends are prefetched —
/// a row may straddle two cache lines.
inline void PrefetchItemRows(const Database& db, ItemId item, size_t m) {
  const char* scores_row =
      reinterpret_cast<const char*>(db.ItemScoresRow(item));
  __builtin_prefetch(scores_row);
  __builtin_prefetch(scores_row + sizeof(Score) * m - 1);
  const char* positions_row =
      reinterpret_cast<const char*>(db.ItemPositionsRow(item));
  __builtin_prefetch(positions_row);
  __builtin_prefetch(positions_row + sizeof(Position) * m - 1);
}

/// Faithful policy: every access goes through the counted engine.
class EngineIo {
 public:
  explicit EngineIo(AccessEngine* engine) : engine_(engine) {}

  AccessedEntry Sorted(size_t list_index, Position /*position*/) {
    return engine_->SortedAccess(list_index);
  }
  ItemLookup Random(size_t list_index, ItemId item) {
    return engine_->RandomAccess(list_index, item);
  }
  AccessedEntry Direct(size_t list_index, Position position) {
    return engine_->DirectAccess(list_index, position);
  }
  void Flush() {}

 private:
  AccessEngine* engine_;
};

/// Fast policy: direct list reads, registers-only counting, one flush.
/// The caller passes the sorted position explicitly (the loops know their
/// depth), so no cursor state is maintained; the engine's cursors stay at 0.
class RawListIo {
 public:
  RawListIo(const Database* db, AccessEngine* engine)
      : db_(db), engine_(engine) {}

  AccessedEntry Sorted(size_t list_index, Position position) {
    ++stats_.sorted_accesses;
    const ListEntry entry = db_->list(list_index).EntryAt(position);
    return AccessedEntry{entry.item, entry.score, position};
  }
  ItemLookup Random(size_t list_index, ItemId item) {
    ++stats_.random_accesses;
    // Item-major mirror: the (m-1) random accesses an algorithm issues for
    // one item hit the same one or two cache lines instead of m arrays.
    return ItemLookup{db_->ItemScoresRow(item)[list_index],
                      db_->ItemPositionsRow(item)[list_index]};
  }
  AccessedEntry Direct(size_t list_index, Position position) {
    ++stats_.direct_accesses;
    const ListEntry entry = db_->list(list_index).EntryAt(position);
    return AccessedEntry{entry.item, entry.score, position};
  }
  void Flush() { engine_->AddStats(stats_); }

 private:
  const Database* db_;
  AccessEngine* engine_;
  AccessStats stats_;
};

}  // namespace topk

#endif  // TOPK_CORE_LIST_IO_H_
