// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Access policies for the algorithm run loops. Both provide the same three
// primitives as AccessEngine and are drop-in template parameters for the
// loops in ta/bpa/bpa2_algorithm.cc:
//
//  * EngineIo routes every access through the AccessEngine — per-access
//    cursors, counters and the optional audit trail. Required whenever the
//    access pattern itself is observed (audit mode) or the engine's cursor
//    state matters.
//  * RawListIo reads the sorted lists directly and counts accesses into a
//    stack-resident AccessStats that is flushed into the engine once at the
//    end of the run. The counts are identical to EngineIo's by construction
//    (one increment per primitive call); what disappears is the per-access
//    read-modify-write traffic through the shared engine object, which the
//    optimizer cannot keep in registers. Only valid with audit mode off.
//  * FaultIo routes every access through the FaultInjectingAccessEngine
//    decorator and is the only policy whose lists can die: it reports
//    kFaultAware = true, so the loops' aliveness guards compile in. On the
//    other two policies those guards are `if constexpr`-eliminated —
//    fault-free instantiations keep byte-identical behaviour and codegen
//    shape.
//
// Shared contract: stats() exposes the run's access counts so far (for the
// governor's budget checks) and VirtualLatencyMs() the injected latency to
// charge against its deadline (0 except under FaultIo).

#ifndef TOPK_CORE_LIST_IO_H_
#define TOPK_CORE_LIST_IO_H_

#include "lists/access_engine.h"
#include "lists/database.h"
#include "lists/fault_injection.h"
#include "lists/types.h"

namespace topk {

/// Pulls `item`'s interleaved item-major mirror row (m scores + m positions,
/// one contiguous region) toward the cache. The TA/BPA row loops issue this
/// kPrefetchRowsAhead sorted rows ahead of use — the upcoming sorted items
/// are known (list prefixes are sequential), so the row's DRAM latency is
/// overlapped with the processing of the rows in between instead of being
/// paid serially on every random access. Rows are stride-aligned (see
/// Database), so a row touches exactly ceil(12m/64) lines: one prefetch per
/// line, one line total for m <= 5.
inline void PrefetchItemRows(const Database& db, ItemId item, size_t m) {
  const char* row = reinterpret_cast<const char*>(db.ItemScoresRow(item));
  const size_t bytes = Database::ItemRowPayloadBytes(m);
  for (size_t offset = 0;; offset += 64) {
    __builtin_prefetch(row + offset);
    if (offset + 64 >= bytes) {
      break;
    }
  }
}

/// How many sorted rows ahead the TA/BPA loops prefetch the item-major
/// mirror row (and the memo entry, when memoization is on). Between issuing
/// the prefetch for row d + kPrefetchRowsAhead of list i and consuming it,
/// the loop processes ~kPrefetchRowsAhead * m items (each a combine over a
/// cache-resident row plus tracker/buffer work), which comfortably covers a
/// DRAM round-trip; the distance is short enough that the ~m prefetched
/// lines in flight cannot be evicted by the work in between.
inline constexpr Position kPrefetchRowsAhead = 8;

/// Shorter pipeline stage for BPA's tracker-word prefetch: the mirror row of
/// a sorted row this close ahead is already cached (requested
/// kPrefetchRowsAhead ago), so reading its positions costs an L1 hit, and
/// the tracker words those positions will mark get their own prefetch two
/// rows of work ahead of the marks.
inline constexpr Position kPrefetchMarksAhead = 2;

/// Pulls one sorted-order entry (item id + score, two parallel arrays)
/// toward the cache. BPA2 issues this speculatively at the top of a round
/// for every list's current bp + 1 — a random access earlier in the round
/// may advance bp and waste the prefetch, but a wasted prefetch costs
/// nothing observable while a hit hides the direct access's DRAM latency
/// (BPA2's direct accesses jump with bp, so the hardware stream prefetcher
/// does not cover them the way it covers TA/BPA's sequential scans).
inline void PrefetchSortedEntry(const SortedList& list, Position position) {
  __builtin_prefetch(&list.items()[position - 1]);
  __builtin_prefetch(&list.scores()[position - 1]);
}

/// Faithful policy: every access goes through the counted engine.
class EngineIo {
 public:
  static constexpr bool kFaultAware = false;

  explicit EngineIo(AccessEngine* engine) : engine_(engine) {}

  AccessedEntry Sorted(size_t list_index, Position /*position*/) {
    return engine_->SortedAccess(list_index);
  }
  ItemLookup Random(size_t list_index, ItemId item) {
    return engine_->RandomAccess(list_index, item);
  }
  AccessedEntry Direct(size_t list_index, Position position) {
    return engine_->DirectAccess(list_index, position);
  }
  void Flush() {}

  const AccessStats& stats() const { return engine_->stats(); }
  static constexpr bool SortedAlive(size_t) { return true; }
  static constexpr bool RandomAlive(size_t) { return true; }
  static constexpr uint32_t DeadLists() { return 0; }
  static constexpr double VirtualLatencyMs() { return 0.0; }

 private:
  AccessEngine* engine_;
};

/// Fast policy: direct list reads, registers-only counting, one flush.
/// The caller passes the sorted position explicitly (the loops know their
/// depth), so no cursor state is maintained; the engine's cursors stay at 0.
class RawListIo {
 public:
  static constexpr bool kFaultAware = false;

  RawListIo(const Database* db, AccessEngine* engine)
      : db_(db), engine_(engine) {}

  AccessedEntry Sorted(size_t list_index, Position position) {
    ++stats_.sorted_accesses;
    const ListEntry entry = db_->list(list_index).EntryAt(position);
    return AccessedEntry{entry.item, entry.score, position};
  }
  ItemLookup Random(size_t list_index, ItemId item) {
    ++stats_.random_accesses;
    // Item-major mirror: the (m-1) random accesses an algorithm issues for
    // one item hit the same one or two cache lines instead of m arrays.
    return ItemLookup{db_->ItemScoresRow(item)[list_index],
                      db_->ItemPositionsRow(item)[list_index]};
  }
  AccessedEntry Direct(size_t list_index, Position position) {
    ++stats_.direct_accesses;
    const ListEntry entry = db_->list(list_index).EntryAt(position);
    return AccessedEntry{entry.item, entry.score, position};
  }
  void Flush() { engine_->AddStats(stats_); }

  const AccessStats& stats() const { return stats_; }
  static constexpr bool SortedAlive(size_t) { return true; }
  static constexpr bool RandomAlive(size_t) { return true; }
  static constexpr uint32_t DeadLists() { return 0; }
  static constexpr double VirtualLatencyMs() { return 0.0; }

 private:
  const Database* db_;
  AccessEngine* engine_;
  AccessStats stats_;
};

/// Fault-aware policy: every access goes through the fault decorator (and
/// from there through the counted engine, so counts and cursors stay
/// faithful). The loops must check SortedAlive/RandomAlive before every
/// access — see the death contract in lists/fault_injection.h.
class FaultIo {
 public:
  static constexpr bool kFaultAware = true;

  explicit FaultIo(FaultInjectingAccessEngine* faults) : faults_(faults) {}

  AccessedEntry Sorted(size_t list_index, Position /*position*/) {
    return faults_->SortedAccess(list_index);
  }
  ItemLookup Random(size_t list_index, ItemId item) {
    return faults_->RandomAccess(list_index, item);
  }
  AccessedEntry Direct(size_t list_index, Position position) {
    return faults_->DirectAccess(list_index, position);
  }
  void Flush() {}

  const AccessStats& stats() const { return faults_->stats(); }
  bool SortedAlive(size_t list_index) const {
    return faults_->ListAlive(list_index);
  }
  bool RandomAlive(size_t list_index) const {
    return faults_->ListAlive(list_index);
  }
  uint32_t DeadLists() const { return faults_->dead_lists(); }
  double VirtualLatencyMs() const { return faults_->virtual_latency_ms(); }

 private:
  FaultInjectingAccessEngine* faults_;
};

}  // namespace topk

#endif  // TOPK_CORE_LIST_IO_H_
