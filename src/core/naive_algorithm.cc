// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/naive_algorithm.h"

#include <vector>

#include "core/topk_buffer.h"

namespace topk {

Status NaiveAlgorithm::Run(const Database& db, const TopKQuery& query,
                           ExecutionContext* context,
                           TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();

  AccessEngine* engine = &context->engine();

  // One full sorted scan per list; local scores are gathered per item.
  std::vector<Score>& local = context->ZeroedScoreMatrix(n * m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < n; ++p) {
      const AccessedEntry entry = engine->SortedAccess(i);
      local[static_cast<size_t>(entry.item) * m + i] = entry.score;
    }
  }

  TopKBuffer& buffer = context->buffer();
  for (ItemId item = 0; item < n; ++item) {
    buffer.Offer(item, query.scorer->Combine(&local[item * m], m));
  }

  buffer.AppendSortedItems(&result->items);
  result->stop_position = static_cast<Position>(n);
  return Status::OK();
}

}  // namespace topk
