// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/topk_buffer.h"

#include <algorithm>
#include <limits>

namespace topk {

namespace {

// Finalizing multiplicative hash over a 32-bit item id.
inline size_t HashItem(ItemId item) {
  uint32_t h = item * 2654435761u;
  h ^= h >> 16;
  return h;
}

// Smallest power of two >= `x` (and >= 8).
size_t TableSizeFor(size_t k) {
  size_t size = 8;
  while (size < 2 * k) {
    size <<= 1;
  }
  return size;
}

}  // namespace

void TopKBuffer::Reset(size_t k) {
  k_ = k;
  kth_floor_ = k == 0 ? std::numeric_limits<Score>::infinity()
                      : -std::numeric_limits<Score>::infinity();
  heap_.clear();
  heap_.reserve(k);
  // The backing vector only grows (no allocation once warmed), but only the
  // first TableSizeFor(k) slots are cleared and addressed via slot_mask_ —
  // a small-k reset after a large-k query stays O(k), and stale entries
  // beyond the mask are never probed.
  const size_t table_size = TableSizeFor(k);
  if (slots_.size() < table_size) {
    slots_.resize(table_size);
  }
  std::fill_n(slots_.begin(), table_size, kInvalidItem);
  slot_mask_ = table_size - 1;
}

size_t TopKBuffer::ProbeSlot(ItemId item) const {
  size_t slot = HashItem(item) & slot_mask_;
  while (slots_[slot] != kInvalidItem && slots_[slot] != item) {
    slot = (slot + 1) & slot_mask_;
  }
  return slot;
}

bool TopKBuffer::Contains(ItemId item) const {
  return slots_[ProbeSlot(item)] == item;
}

void TopKBuffer::ProbeInsert(ItemId item) { slots_[ProbeSlot(item)] = item; }

void TopKBuffer::ProbeErase(ItemId item) {
  size_t hole = ProbeSlot(item);
  if (slots_[hole] != item) {
    return;
  }
  // Backward-shift deletion: keep sliding later entries of the probe chain
  // into the hole whenever the hole lies on their probe path, so lookups
  // never need tombstones.
  slots_[hole] = kInvalidItem;
  size_t cur = (hole + 1) & slot_mask_;
  while (slots_[cur] != kInvalidItem) {
    const size_t ideal = HashItem(slots_[cur]) & slot_mask_;
    const size_t displacement = (cur - ideal) & slot_mask_;
    const size_t hole_distance = (cur - hole) & slot_mask_;
    if (displacement >= hole_distance) {
      slots_[hole] = slots_[cur];
      slots_[cur] = kInvalidItem;
      hole = cur;
    }
    cur = (cur + 1) & slot_mask_;
  }
}

void TopKBuffer::OfferSlow(ItemId item, Score score) {
  const Entry candidate{score, item};
  if (heap_.size() == k_) {
    if (Contains(item)) {
      return;
    }
    ProbeErase(heap_.front().second);
    std::pop_heap(heap_.begin(), heap_.end(), Stronger);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), Stronger);
    ProbeInsert(item);
    kth_floor_ = heap_.front().first;
    return;
  }
  if (Contains(item)) {
    return;
  }
  heap_.push_back(candidate);
  std::push_heap(heap_.begin(), heap_.end(), Stronger);
  ProbeInsert(item);
  if (heap_.size() == k_) {
    kth_floor_ = heap_.front().first;
  }
}

void TopKBuffer::AppendSortedItems(std::vector<ResultItem>* out) const {
  scratch_.assign(heap_.begin(), heap_.end());
  std::sort(scratch_.begin(), scratch_.end(), Stronger);
  for (const Entry& entry : scratch_) {
    out->push_back(ResultItem{entry.second, entry.first});
  }
}

std::vector<ResultItem> TopKBuffer::ToSortedItems() const {
  std::vector<ResultItem> items;
  items.reserve(heap_.size());
  AppendSortedItems(&items);
  return items;
}

}  // namespace topk
