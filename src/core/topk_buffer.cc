// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/topk_buffer.h"

namespace topk {

void TopKBuffer::Offer(ItemId item, Score score) {
  if (k_ == 0 || Contains(item)) {
    return;
  }
  if (ordered_.size() < k_) {
    ordered_.emplace(score, item);
    members_.insert(item);
    return;
  }
  const auto weakest = ordered_.begin();
  const std::pair<Score, ItemId> candidate{score, item};
  if (WeakerFirst{}(*weakest, candidate)) {
    members_.erase(weakest->second);
    ordered_.erase(weakest);
    ordered_.insert(candidate);
    members_.insert(item);
  }
}

std::vector<ResultItem> TopKBuffer::ToSortedItems() const {
  std::vector<ResultItem> items;
  items.reserve(ordered_.size());
  // ordered_ is ascending weakest-first; emit in reverse for descending order.
  for (auto it = ordered_.rbegin(); it != ordered_.rend(); ++it) {
    items.push_back(ResultItem{it->second, it->first});
  }
  return items;
}

}  // namespace topk
