// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/tput_algorithm.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/topk_buffer.h"

namespace topk {

namespace {

// Partial knowledge about a candidate: which lists have revealed its local
// score, and those scores.
struct Candidate {
  std::vector<Score> scores;
  std::vector<bool> known;

  explicit Candidate(size_t m) : scores(m, 0.0), known(m, false) {}
};

// k-th largest value of `values` (values.size() >= k >= 1). Reorders in place.
Score KthLargest(std::vector<Score>* values, size_t k) {
  std::nth_element(values->begin(), values->begin() + (k - 1), values->end(),
                   std::greater<Score>());
  return (*values)[k - 1];
}

}  // namespace

Status TputAlgorithm::ValidateFor(const Database& db,
                                  const TopKQuery& query) const {
  if (query.scorer->name() != "sum") {
    return Status::NotImplemented(
        "TPUT thresholding (τ1/m) is defined for summation scoring; got '",
        query.scorer->name(), "'");
  }
  for (size_t i = 0; i < db.num_lists(); ++i) {
    if (db.list(i).MinScore() < options().score_floor) {
      return Status::Invalid("TPUT requires scores >= score floor ",
                             options().score_floor, "; list ", i,
                             " has minimum ", db.list(i).MinScore());
    }
  }
  return Status::OK();
}

Status TputAlgorithm::Run(const Database& db, const TopKQuery& query,
                          ExecutionContext* context,
                          TopKResult* result) const {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const double floor = options().score_floor;

  AccessEngine* engine = &context->engine();

  std::unordered_map<ItemId, Candidate> candidates;
  auto record = [&](size_t list_index, const AccessedEntry& entry) {
    auto [it, inserted] =
        candidates.try_emplace(entry.item, Candidate(m));
    it->second.scores[list_index] = entry.score;
    it->second.known[list_index] = true;
  };

  // Lower bound of a candidate's overall sum: unknown lists contribute the
  // floor.
  auto lower_bound_sum = [&](const Candidate& c) {
    Score sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += c.known[i] ? c.scores[i] : floor;
    }
    return sum;
  };

  // ---- Phase 1: top-k prefix of every list. ----
  Position depth = 0;
  for (Position p = 0; p < query.k && p < n; ++p) {
    ++depth;
    for (size_t i = 0; i < m; ++i) {
      record(i, engine->SortedAccess(i));
    }
  }
  std::vector<Score>& partial_sums = context->ClearedScores();
  partial_sums.reserve(candidates.size());
  for (const auto& [item, cand] : candidates) {
    partial_sums.push_back(lower_bound_sum(cand));
  }
  // Phase 1 sees >= k distinct items (k rows of one list are distinct).
  const Score tau1 = KthLargest(&partial_sums, query.k);

  // ---- Phase 2: drain every list down to local score >= τ1/m. ----
  const Score threshold = tau1 / static_cast<Score>(m);
  std::vector<Score>& last_scores = context->last_scores();
  {
    // The per-list scan continues from the shared phase-1 depth.
    for (size_t i = 0; i < m; ++i) {
      last_scores[i] =
          depth == 0 ? db.list(i).MaxScore() : db.list(i).EntryAt(depth).score;
    }
    for (size_t i = 0; i < m; ++i) {
      while (!engine->SortedExhausted(i) && last_scores[i] >= threshold) {
        const AccessedEntry entry = engine->SortedAccess(i);
        record(i, entry);
        last_scores[i] = entry.score;
        depth = std::max(depth, entry.position);
      }
    }
  }

  partial_sums.clear();
  for (const auto& [item, cand] : candidates) {
    partial_sums.push_back(lower_bound_sum(cand));
  }
  const Score tau2 = KthLargest(&partial_sums, query.k);

  // Upper bound: unknown lists contribute min(last seen score, threshold
  // ceiling) — after phase 2 any unseen score in list i is < max(last_scores
  // [i], threshold).
  auto upper_bound_sum = [&](const Candidate& c) {
    Score sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += c.known[i] ? c.scores[i] : std::min(last_scores[i], threshold);
    }
    return sum;
  };

  // ---- Phase 3: resolve survivors exactly. ----
  TopKBuffer& buffer = context->buffer();
  for (auto& [item, cand] : candidates) {
    if (upper_bound_sum(cand) < tau2) {
      continue;  // pruned: cannot reach the top-k
    }
    Score sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += cand.known[i] ? cand.scores[i]
                           : engine->RandomAccess(i, item).score;
    }
    buffer.Offer(item, sum);
  }

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace topk
