// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/tput_algorithm.h"

#include <algorithm>
#include <vector>

#include "core/candidate_bounds.h"
#include "core/candidate_pool.h"
#include "core/list_io.h"
#include "core/topk_buffer.h"

namespace topk {

namespace {

// Templated on the access policy (TPUT is summation-only, so there is no
// scorer dispatch): the default raw-list configuration inlines all three
// phases' access loops over the pool's flat rows.
template <typename IoT>
Status RunTputLoop(const AlgorithmOptions& options, const Database& db,
                   const TopKQuery& query, ExecutionContext* context, IoT io,
                   TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const Score floor = options.score_floor;

  // Lower bounds (partial sums with floor-filled gaps) feed the pool's
  // threshold heap, whose k-th entry is exactly τ1/τ2 — no comparator set is
  // rebuilt between phases.
  CandidatePool& pool = context->PreparePool(m, query.k, floor);
  const auto record = [&](size_t list_index, const AccessedEntry& entry) {
    const uint32_t slot = pool.FindOrInsert(entry.item);
    if (pool.SetSeen(slot, list_index, entry.score)) {
      Score sum = 0.0;
      const Score* row = pool.row(slot);
      for (size_t i = 0; i < m; ++i) {
        sum += row[i];
      }
      pool.OfferLower(slot, sum);
    }
  };

  // ---- Phase 1: top-k prefix of every list. ----
  Position depth = 0;
  for (Position p = 0; p < query.k && p < n; ++p) {
    ++depth;
    for (size_t i = 0; i < m; ++i) {
      record(i, io.Sorted(i, depth));
    }
  }
  // Phase 1 sees >= k distinct items (k rows of one list are distinct), so
  // the heap is full and its weakest entry is τ1.
  const Score tau1 = pool.KthLower();

  // ---- Phase 2: drain every list down to local score >= τ1/m. ----
  const Score threshold = tau1 / static_cast<Score>(m);
  std::vector<Score>& last_scores = context->last_scores();
  std::vector<Position>& list_depths = context->ClearedPositions();
  list_depths.assign(m, depth);
  {
    // The per-list scan continues from the shared phase-1 depth.
    for (size_t i = 0; i < m; ++i) {
      last_scores[i] =
          depth == 0 ? db.list(i).MaxScore() : db.list(i).EntryAt(depth).score;
    }
    for (size_t i = 0; i < m; ++i) {
      while (list_depths[i] < n && last_scores[i] >= threshold) {
        const AccessedEntry entry = io.Sorted(i, ++list_depths[i]);
        record(i, entry);
        last_scores[i] = entry.score;
        depth = std::max(depth, entry.position);
      }
    }
  }
  const Score tau2 = pool.KthLower();

  // ---- Phase 3: resolve survivors exactly. ----
  // Upper bound: unknown lists contribute min(last seen score, threshold
  // ceiling) — after phase 2 any unseen score in list i is < max(last_scores
  // [i], threshold). Candidates below τ2 are pruned (strictly: a tie could
  // still belong to the deterministic top-k); items seen in no list at all
  // sum to strictly less than m * (τ1/m) = τ1 <= τ2, so the surviving
  // candidates contain the exact (score desc, item id asc) top-k.
  TopKBuffer& buffer = context->buffer();
  for (uint32_t slot = 0; slot < pool.size(); ++slot) {
    const Score* row = pool.row(slot);
    const uint64_t mask = pool.mask(slot);
    Score upper = 0.0;
    for (size_t i = 0; i < m; ++i) {
      upper += (mask >> i & 1) ? row[i] : std::min(last_scores[i], threshold);
    }
    if (upper < tau2) {
      continue;  // pruned: cannot reach the top-k
    }
    const ItemId item = pool.item_at(slot);
    Score sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += (mask >> i & 1) ? row[i] : io.Random(i, item).score;
    }
    buffer.Offer(item, sum);
  }
  io.Flush();

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace

Status TputAlgorithm::ValidateFor(const Database& db,
                                  const TopKQuery& query) const {
  if (query.scorer->name() != "sum") {
    return Status::NotImplemented(
        "TPUT thresholding (τ1/m) is defined for summation scoring; got '",
        query.scorer->name(), "'");
  }
  return ValidatePoolQuery("TPUT", db, options().score_floor);
}

Status TputAlgorithm::Run(const Database& db, const TopKQuery& query,
                          ExecutionContext* context,
                          TopKResult* result) const {
  if (options().audit_accesses) {
    return RunTputLoop(options(), db, query, context,
                       EngineIo(&context->engine()), result);
  }
  return RunTputLoop(options(), db, query, context,
                     RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
