// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "core/tput_algorithm.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/candidate_bounds.h"
#include "core/candidate_pool.h"
#include "core/list_io.h"
#include "core/topk_buffer.h"

namespace topk {

namespace {

// Templated on the access policy (TPUT is summation-only, so there is no
// scorer dispatch): the default raw-list configuration inlines all three
// phases' access loops over the pool's flat rows. Phase 3's τ2 filter runs
// on the pool's per-mask group index: whole groups whose margined best upper
// bound falls below τ2 are skipped without touching their members, and the
// members that survive the margined walk face the exact same interleaved
// bound the full sweep used — survivors, and therefore random-access counts,
// are unchanged.
template <typename IoT>
Status RunTputLoop(const AlgorithmOptions& options, const Database& db,
                   const TopKQuery& query, ExecutionContext* context, IoT io,
                   TopKResult* result) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  const Score floor = options.score_floor;

  // Lower bounds (partial sums with floor-filled gaps) feed the pool's
  // threshold heap, whose k-th entry is exactly τ1/τ2 — no comparator set is
  // rebuilt between phases. The group index is deferred (eager_groups off):
  // phases 1 and 2 never consult it, so it is built exactly once, right
  // before the phase-3 walk, instead of being re-maintained on every access.
  CandidatePool& pool =
      context->PreparePool(m, query.k, floor, /*eager_groups=*/false);
  const auto record = [&](size_t list_index, const AccessedEntry& entry) {
    const uint32_t slot = pool.FindOrInsert(entry.item);
    if (pool.SetSeen(slot, list_index, entry.score)) {
      Score sum = 0.0;
      const Score* row = pool.row(slot);
      for (size_t i = 0; i < m; ++i) {
        sum += row[i];
      }
      pool.OfferLower(slot, sum);
    }
  };

  QueryGovernor& governor = context->governor();
  Completion reason = Completion::kExact;
  // Cursor scores, maintained from the very first access so an anytime exit
  // can always bound the unseen items; lists not yet scanned are bounded by
  // their maximum (an uncounted, decision-free metadata read).
  std::vector<Score>& last_scores = context->last_scores();
  for (size_t i = 0; i < m; ++i) {
    last_scores[i] = db.list(i).MaxScore();
  }
  Position depth = std::min<Position>(static_cast<Position>(query.k),
                                      static_cast<Position>(n));

  // Anytime exit (deadline/budget trips): the threshold heap's lower bounds
  // are the best certified answer; the unreturned upper bound folds the
  // unseen-item bound (cursor-score sum) with the strongest non-heap
  // candidate. TPUT is summation-only, so SumUpperBound is the one
  // arithmetic.
  const auto anytime = [&](Completion why) -> Status {
    io.Flush();
    std::vector<ItemId>& winners = context->ClearedItems();
    pool.AppendHeapItems(&winners);
    Score kth = std::numeric_limits<Score>::infinity();
    result->items.reserve(winners.size());
    for (ItemId item : winners) {
      const Score lower = pool.lower(pool.FindSlot(item));
      kth = std::min(kth, lower);
      result->items.push_back(ResultItem{item, lower});
    }
    if (result->items.empty()) {
      kth = -std::numeric_limits<Score>::infinity();
    }
    Score upper = 0.0;
    for (size_t i = 0; i < m; ++i) {
      upper += last_scores[i];
    }
    for (uint32_t slot = 0; slot < pool.size(); ++slot) {
      if (!pool.InHeap(slot)) {
        upper = std::max(upper, SumUpperBound(pool, slot, last_scores));
      }
    }
    CertifyAnytime(why, kth, upper, result);
    result->stop_position = depth;
    return Status::OK();
  };
  // Permanent deaths break TPUT's drain guarantee (an undrained dead list
  // can hide arbitrarily strong unseen items), so any death surfaces as the
  // Unavailable marker and ExecuteInto fails over to NRA.
  const auto first_dead_list = [&]() -> size_t {
    for (size_t i = 0; i < m; ++i) {
      if (!io.SortedAlive(i)) {
        return i;
      }
    }
    return m;
  };

  // ---- Phase 1: top-k prefix of every list, read one list at a time. ----
  for (size_t i = 0; i < m; ++i) {
    for (Position p = 1; p <= depth; ++p) {
      if constexpr (IoT::kFaultAware) {
        if (!io.SortedAlive(i)) {
          break;
        }
      }
      // Probe-cell prefetch pipelining — uncounted, decision-free; see
      // nra_algorithm.cc.
      if (p + kPrefetchRowsAhead <= n) {
        pool.PrefetchItem(db.list(i).items()[p - 1 + kPrefetchRowsAhead]);
      }
      const AccessedEntry entry = io.Sorted(i, p);
      last_scores[i] = entry.score;
      record(i, entry);
      // Governance inside long prefix reads (k can be large).
      if ((p & 255u) == 0 &&
          (reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                    io.VirtualLatencyMs())) !=
              Completion::kExact) {
        return anytime(reason);
      }
    }
  }
  if constexpr (IoT::kFaultAware) {
    if (const size_t dead = first_dead_list(); dead < m) {
      io.Flush();
      return Status::Unavailable(
          "TPUT: list ", dead,
          " died permanently; the τ1/m drain guarantee no longer covers its "
          "unseen entries");
    }
  }
  if ((reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                io.VirtualLatencyMs())) != Completion::kExact) {
    return anytime(reason);
  }
  // Phase 1 sees >= k distinct items (k rows of one list are distinct), so
  // the heap is full and its weakest entry is τ1.
  const Score tau1 = pool.KthLower();

  // ---- Phase 2: drain every list down to local score >= τ1/m. ----
  const Score threshold = tau1 / static_cast<Score>(m);
  std::vector<Position>& list_depths = context->ClearedPositions();
  list_depths.assign(m, depth);
  {
    // The per-list scan continues from the shared phase-1 depth.
    for (size_t i = 0; i < m; ++i) {
      last_scores[i] =
          depth == 0 ? db.list(i).MaxScore() : db.list(i).EntryAt(depth).score;
    }
    for (size_t i = 0; i < m; ++i) {
      while (list_depths[i] < n && last_scores[i] >= threshold) {
        if constexpr (IoT::kFaultAware) {
          if (!io.SortedAlive(i)) {
            break;
          }
        }
        const Position p = ++list_depths[i];
        if (p + kPrefetchRowsAhead <= n) {
          pool.PrefetchItem(db.list(i).items()[p - 1 + kPrefetchRowsAhead]);
        }
        const AccessedEntry entry = io.Sorted(i, p);
        record(i, entry);
        last_scores[i] = entry.score;
        depth = std::max(depth, entry.position);
        // Governance inside the drain (it can run deep into the lists).
        if ((p & 255u) == 0 &&
            (reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                      io.VirtualLatencyMs())) !=
                Completion::kExact) {
          return anytime(reason);
        }
      }
    }
  }
  if constexpr (IoT::kFaultAware) {
    if (const size_t dead = first_dead_list(); dead < m) {
      io.Flush();
      return Status::Unavailable(
          "TPUT: list ", dead,
          " died permanently; the τ1/m drain guarantee no longer covers its "
          "unseen entries");
    }
  }
  if ((reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                io.VirtualLatencyMs())) != Completion::kExact) {
    return anytime(reason);
  }
  const Score tau2 = pool.KthLower();

  // ---- Phase 3: resolve survivors exactly. ----
  // Upper bound: unknown lists contribute min(last seen score, threshold
  // ceiling) — after phase 2 any unseen score in list i is < max(last_scores
  // [i], threshold). Candidates below τ2 are pruned (strictly: a tie could
  // still belong to the deterministic top-k); items seen in no list at all
  // sum to strictly less than m * (τ1/m) = τ1 <= τ2, so the surviving
  // candidates contain the exact (score desc, item id asc) top-k.
  //
  // Folding the threshold ceiling into a capped copy of the depth scores
  // reduces the phase-3 bound to the shared SumUpperBound/GroupUnseenDelta
  // arithmetic — one summation for every parity-sensitive call site.
  std::vector<Score>& capped_scores = context->bound_scores();
  for (size_t i = 0; i < m; ++i) {
    capped_scores[i] = std::min(last_scores[i], threshold);
  }
  pool.BuildGroups();
  std::vector<uint32_t>& survivors = context->ClearedSlots();
  for (uint32_t slot : pool.heap_slots()) {
    if (SumUpperBound(pool, slot, capped_scores) >= tau2) {
      survivors.push_back(slot);
    }
  }
  const double margin = SummationErrorMargin(db, floor);
  for (size_t g = 0; g < pool.num_groups(); ++g) {
    const ArenaVec<uint32_t>& members = pool.group_members(g);
    if (members.empty()) {
      continue;
    }
    const Score delta =
        GroupUnseenDelta(pool.group_mask(g), m, capped_scores, floor);
    WalkGroupMembers(members, 0, [&](size_t /*pos*/, uint32_t slot) {
      if (pool.lower(slot) + delta < tau2 - margin) {
        // Every descendant is below τ2 as well.
        return GroupWalkAction::kSkipSubtree;
      }
      if (SumUpperBound(pool, slot, capped_scores) >= tau2) {
        survivors.push_back(slot);
      }
      return GroupWalkAction::kDescend;
    });
  }

  TopKBuffer& buffer = context->buffer();
  size_t resolved = 0;
  for (uint32_t slot : survivors) {
    const ItemId item = pool.item_at(slot);
    const Score* row = pool.row(slot);
    const uint64_t mask = pool.mask(slot);
    if constexpr (IoT::kFaultAware) {
      // Phase 3 needs random access to every unseen list of the survivor.
      for (size_t i = 0; i < m; ++i) {
        if (!(mask >> i & 1) && !io.RandomAlive(i)) {
          io.Flush();
          return Status::Unavailable(
              "TPUT: list ", i,
              " died permanently; random access is unavailable");
        }
      }
    }
    Score sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += (mask >> i & 1) ? row[i] : io.Random(i, item).score;
    }
    buffer.Offer(item, sum);
    // Governance across the survivor resolutions (their count is unbounded
    // by k); the heap's lower bounds stay the certified anytime answer.
    if ((++resolved & 31u) == 0 &&
        (reason = governor.Charge(io.stats(), pool.LiveCandidateBytes(),
                                  io.VirtualLatencyMs())) !=
            Completion::kExact) {
      return anytime(reason);
    }
  }
  io.Flush();

  buffer.AppendSortedItems(&result->items);
  result->stop_position = depth;
  return Status::OK();
}

}  // namespace

Status TputAlgorithm::ValidateFor(const Database& db,
                                  const TopKQuery& query) const {
  if (query.scorer->name() != "sum") {
    return Status::NotImplemented(
        "TPUT thresholding (τ1/m) is defined for summation scoring; got '",
        query.scorer->name(), "'");
  }
  return ValidatePoolQuery("TPUT", db, options().score_floor);
}

Status TputAlgorithm::Run(const Database& db, const TopKQuery& query,
                          ExecutionContext* context,
                          TopKResult* result) const {
  if (options().audit_accesses) {
    return RunTputLoop(options(), db, query, context,
                       EngineIo(&context->engine()), result);
  }
  if (context->faults().armed()) {
    return RunTputLoop(options(), db, query, context,
                       FaultIo(&context->faults()), result);
  }
  return RunTputLoop(options(), db, query, context,
                     RawListIo(&db, &context->engine()), result);
}

}  // namespace topk
