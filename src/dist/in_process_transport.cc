// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/in_process_transport.h"

namespace topk {

InProcessTransport InProcessTransport::PerListOwners(const Database& db,
                                                     size_t replicas) {
  InProcessTransport transport;
  for (size_t r = 0; r < replicas; ++r) {
    for (size_t i = 0; i < db.num_lists(); ++i) {
      transport.AddOwner(ListOwner(&db, {i}));
    }
  }
  return transport;
}

Status InProcessTransport::Call(size_t owner, const Request& request,
                                Reply* reply, CallResult* result) {
  *result = CallResult{};
  result->latency_ms = kBaseLatencyMs;
  if (owner >= owners_.size()) {
    return Status::Invalid("InProcessTransport: owner ", owner,
                           " outside [0, ", owners_.size(), ")");
  }
  return owners_[owner].Serve(request, reply);
}

}  // namespace topk
