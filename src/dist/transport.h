// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Pluggable message transport between the Coordinator and ListOwner shards.
//
// The transport is synchronous-with-virtual-time: Call() either delivers the
// request and fills the reply, or fails (dropped message, dead owner), and in
// both cases reports how long the exchange would have taken in `latency_ms`.
// The coordinator charges that virtual time against the QueryGovernor's
// deadline, so fault/latency behaviour is fully deterministic and replayable
// from a seed — the same discipline as FaultInjectingAccessEngine, one layer
// up. An eventual socket transport implements the same interface with real
// wall-clock latencies.

#ifndef TOPK_DIST_TRANSPORT_H_
#define TOPK_DIST_TRANSPORT_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "dist/messages.h"

namespace topk {

/// Per-call outcome metadata alongside the Status: the virtual latency to
/// charge against the query deadline, and how many extra (duplicate) copies
/// of the reply arrived — the coordinator counts them as received bytes and
/// dedupes them, exactly like a real at-least-once transport forces it to.
struct CallResult {
  double latency_ms = 0.0;
  uint32_t duplicate_replies = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual size_t num_owners() const = 0;

  /// Delivers `request` to `owner` and fills `reply` (cleared first by the
  /// implementation). Returns Unavailable when the message is lost or the
  /// owner is dead; `result->latency_ms` is set on success AND failure (a
  /// lost message still costs the caller its RPC deadline).
  virtual Status Call(size_t owner, const Request& request, Reply* reply,
                      CallResult* result) = 0;
};

}  // namespace topk

#endif  // TOPK_DIST_TRANSPORT_H_
