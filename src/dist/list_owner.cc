// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/list_owner.h"

#include <algorithm>
#include <utility>

namespace topk {

ListOwner::ListOwner(const Database* db, std::vector<size_t> lists)
    : db_(db), lists_(std::move(lists)) {}

Status ListOwner::Serve(const Request& request, Reply* reply) const {
  reply->Clear();
  switch (request.type) {
    case MessageType::kHello:
      return ServeHello(reply);
    case MessageType::kSortedWindow:
      return ServeWindow(request, reply);
    case MessageType::kDrain:
      return ServeDrain(request, reply);
    case MessageType::kRandomLookup:
      return ServeLookup(request, reply);
    case MessageType::kProbe:
      // Liveness check: an empty OK reply is the whole answer. The health
      // tracker only needs to know whether the owner responds.
      return Status::OK();
  }
  return Status::Invalid("ListOwner: unknown message type ",
                         static_cast<int>(request.type));
}

Status ListOwner::CheckOwnership(uint32_t list_index) const {
  for (size_t owned : lists_) {
    if (owned == list_index) return Status::OK();
  }
  return Status::Invalid("ListOwner: list ", list_index,
                         " is not served by this owner");
}

Status ListOwner::ServeHello(Reply* reply) const {
  reply->catalog.reserve(lists_.size());
  for (size_t index : lists_) {
    const SortedList& list = db_->list(index);
    if (list.empty()) {
      return Status::Invalid("ListOwner: list ", index, " is empty");
    }
    reply->catalog.push_back(ListCatalog{
        static_cast<uint32_t>(index), static_cast<uint32_t>(list.size()),
        list.MaxScore(), list.MinScore()});
  }
  return Status::OK();
}

Status ListOwner::ServeWindow(const Request& request, Reply* reply) const {
  Status owned = CheckOwnership(request.list_index);
  if (!owned.ok()) return owned;
  const SortedList& list = db_->list(request.list_index);
  const size_t n = list.size();
  if (request.start < 1 || request.start > n) {
    return Status::OutOfRange("ListOwner: window start ", request.start,
                              " outside [1, ", n, "] on list ",
                              request.list_index);
  }
  const size_t count =
      std::min<size_t>(request.max_entries, n - (request.start - 1));
  reply->entries.reserve(count);
  for (size_t off = 0; off < count; ++off) {
    reply->entries.push_back(
        list.EntryAt(static_cast<Position>(request.start + off)));
  }
  return Status::OK();
}

Status ListOwner::ServeDrain(const Request& request, Reply* reply) const {
  Status owned = CheckOwnership(request.list_index);
  if (!owned.ok()) return owned;
  const SortedList& list = db_->list(request.list_index);
  const size_t n = list.size();
  if (request.start < 1 || request.start > n) {
    return Status::OutOfRange("ListOwner: drain start ", request.start,
                              " outside [1, ", n, "] on list ",
                              request.list_index);
  }
  // TPUT phase 2 contract: serve descending rows from `start` and stop AFTER
  // the first entry whose score falls below the threshold — that entry is
  // included, so the coordinator's cursor score ends strictly below the
  // threshold exactly as a local sorted scan's would. max_entries caps the
  // batch; the coordinator re-drains from the new cursor when a full batch
  // ends while still at/above the threshold.
  const size_t limit =
      std::min<size_t>(request.max_entries, n - (request.start - 1));
  reply->entries.reserve(std::min<size_t>(limit, 64));
  for (size_t off = 0; off < limit; ++off) {
    const ListEntry entry =
        list.EntryAt(static_cast<Position>(request.start + off));
    reply->entries.push_back(entry);
    if (entry.score < request.threshold) {
      reply->drained_to_threshold = true;
      break;
    }
  }
  return Status::OK();
}

Status ListOwner::ServeLookup(const Request& request, Reply* reply) const {
  Status owned = CheckOwnership(request.list_index);
  if (!owned.ok()) return owned;
  const SortedList& list = db_->list(request.list_index);
  const size_t n = list.size();
  reply->lookups.reserve(request.items.size());
  for (ItemId item : request.items) {
    if (item >= n) {
      return Status::KeyError("ListOwner: item ", item, " outside [0, ", n,
                              ") on list ", request.list_index);
    }
    reply->lookups.push_back(list.Lookup(item));
  }
  return Status::OK();
}

}  // namespace topk
