// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/fault_injecting_transport.h"

#include <cassert>

namespace topk {
namespace {

// Distinct salts keep the drop / delay / duplicate / death draws independent
// even though they hash the same (seed, owner, counter) tuple. Different
// constants from fault_injection.cc's salts, so a shared seed across the
// access-level and message-level schedules still yields independent draws.
constexpr uint64_t kDropSalt = 0xd1b54a32d192ed03ull;
constexpr uint64_t kDelaySalt = 0x8cb92ba72f3d8dd7ull;
constexpr uint64_t kDuplicateSalt = 0xaef17502108ef2d9ull;
constexpr uint64_t kOwnerDeathSalt = 0x9fb21c651e98df25ull;

// splitmix64 finalizer, identical to fault_injection.cc's: all message-fault
// decisions are pure functions of its output.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform draw in [0, 1) from a hashed tuple.
double Draw(uint64_t seed, uint64_t owner, uint64_t counter, uint64_t salt) {
  const uint64_t h = Mix(seed ^ Mix(owner + salt) ^
                         Mix(counter * 0x2545f4914f6cdd1dull));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Status TransportFaultPlan::Validate(const char* algorithm,
                                    size_t num_owners) const {
  const auto rate_ok = [](double rate) { return rate >= 0.0 && rate <= 1.0; };
  if (!rate_ok(drop_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan drop_rate must be in "
                           "[0, 1]; got drop_rate = ",
                           drop_rate);
  }
  if (!rate_ok(delay_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan delay_rate must be in "
                           "[0, 1]; got delay_rate = ",
                           delay_rate);
  }
  if (!rate_ok(duplicate_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan duplicate_rate must be in "
                           "[0, 1]; got duplicate_rate = ",
                           duplicate_rate);
  }
  if (!rate_ok(owner_death_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan owner_death_rate must be "
                           "in [0, 1]; got owner_death_rate = ",
                           owner_death_rate);
  }
  if (delay_ms < 0.0) {
    return Status::Invalid(
        algorithm, ": transport fault plan delay_ms must be >= 0; ",
        "got delay_ms = ", delay_ms);
  }
  if (death_min_messages < 1 || death_max_messages < death_min_messages) {
    return Status::Invalid(
        algorithm,
        ": transport fault plan death window must satisfy 1 <= "
        "death_min_messages <= death_max_messages; got [",
        death_min_messages, ", ", death_max_messages, "]");
  }
  if (kill_owner != kNoOwner) {
    if (kill_owner >= num_owners) {
      return Status::Invalid(algorithm,
                             ": transport fault plan kill_owner = ", kill_owner,
                             " exceeds the last owner index ", num_owners - 1);
    }
    if (kill_after_messages < 1) {
      return Status::Invalid(
          algorithm,
          ": transport fault plan kill_after_messages must be >= 1 (every "
          "owner serves its first message); got kill_after_messages = ",
          kill_after_messages);
    }
  }
  return Status::OK();
}

FaultInjectingTransport::FaultInjectingTransport(
    Transport* inner, const TransportFaultPlan& plan)
    : inner_(inner), plan_(plan) {
  Arm();
}

void FaultInjectingTransport::Arm() {
  stats_ = TransportFaultStats{};
  const size_t owners = inner_->num_owners();
  served_.assign(owners, 0);
  death_at_.assign(owners, ~0ull);
  alive_.assign(owners, 1);
  for (size_t i = 0; i < owners; ++i) {
    if (plan_.owner_death_rate > 0.0 &&
        Draw(plan_.seed, i, 0, kOwnerDeathSalt) < plan_.owner_death_rate) {
      // The death point itself comes from an independent draw so the rate
      // and the position are not correlated.
      const double u = Draw(plan_.seed, i, 1, kOwnerDeathSalt);
      const uint64_t span =
          plan_.death_max_messages - plan_.death_min_messages + 1;
      death_at_[i] = plan_.death_min_messages +
                     static_cast<uint64_t>(u * static_cast<double>(span));
    }
    if (plan_.kill_owner == i && plan_.kill_after_messages < death_at_[i]) {
      death_at_[i] = plan_.kill_after_messages;
    }
  }
}

Status FaultInjectingTransport::Call(size_t owner, const Request& request,
                                     Reply* reply, CallResult* result) {
  *result = CallResult{};
  assert(owner < alive_.size());
  if (!alive_[owner]) {
    // Dead owner: the message vanishes; the caller times out on its own RPC
    // deadline (latency 0 here — the wait is the caller's, not the wire's).
    return Status::Unavailable("FaultInjectingTransport: owner ", owner,
                               " is dead");
  }
  const uint64_t t = ++served_[owner];
  // The message that reaches the death point is still served; the owner is
  // dead from the next Call() on.
  if (t >= death_at_[owner]) {
    alive_[owner] = 0;
    ++stats_.dead_owners;
  }
  if (plan_.drop_rate > 0.0 &&
      Draw(plan_.seed, owner, t, kDropSalt) < plan_.drop_rate) {
    ++stats_.dropped_messages;
    return Status::Unavailable("FaultInjectingTransport: message ", t,
                               " to owner ", owner, " lost");
  }
  Status status = inner_->Call(owner, request, reply, result);
  if (!status.ok()) return status;
  if (plan_.delay_rate > 0.0 &&
      Draw(plan_.seed, owner, t, kDelaySalt) < plan_.delay_rate) {
    ++stats_.delayed_messages;
    result->latency_ms += plan_.delay_ms;
  }
  if (plan_.duplicate_rate > 0.0 &&
      Draw(plan_.seed, owner, t, kDuplicateSalt) < plan_.duplicate_rate) {
    ++stats_.duplicated_replies;
    ++result->duplicate_replies;
  }
  return status;
}

}  // namespace topk
