// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/fault_injecting_transport.h"

#include <algorithm>
#include <cassert>

namespace topk {
namespace {

// Distinct salts keep the drop / delay / duplicate / death draws independent
// even though they hash the same (seed, owner, counter) tuple. Different
// constants from fault_injection.cc's salts, so a shared seed across the
// access-level and message-level schedules still yields independent draws.
constexpr uint64_t kDropSalt = 0xd1b54a32d192ed03ull;
constexpr uint64_t kDelaySalt = 0x8cb92ba72f3d8dd7ull;
constexpr uint64_t kDuplicateSalt = 0xaef17502108ef2d9ull;
constexpr uint64_t kOwnerDeathSalt = 0x9fb21c651e98df25ull;

// splitmix64 finalizer, identical to fault_injection.cc's: all message-fault
// decisions are pure functions of its output.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform draw in [0, 1) from a hashed tuple.
double Draw(uint64_t seed, uint64_t owner, uint64_t counter, uint64_t salt) {
  const uint64_t h = Mix(seed ^ Mix(owner + salt) ^
                         Mix(counter * 0x2545f4914f6cdd1dull));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Status TransportFaultPlan::Validate(const char* algorithm,
                                    size_t num_owners) const {
  const auto rate_ok = [](double rate) { return rate >= 0.0 && rate <= 1.0; };
  if (!rate_ok(drop_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan drop_rate must be in "
                           "[0, 1]; got drop_rate = ",
                           drop_rate);
  }
  if (!rate_ok(delay_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan delay_rate must be in "
                           "[0, 1]; got delay_rate = ",
                           delay_rate);
  }
  if (!rate_ok(duplicate_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan duplicate_rate must be in "
                           "[0, 1]; got duplicate_rate = ",
                           duplicate_rate);
  }
  if (!rate_ok(owner_death_rate)) {
    return Status::Invalid(algorithm,
                           ": transport fault plan owner_death_rate must be "
                           "in [0, 1]; got owner_death_rate = ",
                           owner_death_rate);
  }
  if (delay_ms < 0.0) {
    return Status::Invalid(
        algorithm, ": transport fault plan delay_ms must be >= 0; ",
        "got delay_ms = ", delay_ms);
  }
  if (death_min_messages < 1 || death_max_messages < death_min_messages) {
    return Status::Invalid(
        algorithm,
        ": transport fault plan death window must satisfy 1 <= "
        "death_min_messages <= death_max_messages; got [",
        death_min_messages, ", ", death_max_messages, "]");
  }
  if (kill_owner != kNoOwner && kill_owner >= num_owners) {
    return Status::Invalid(algorithm,
                           ": transport fault plan kill_owner = ", kill_owner,
                           " exceeds the last owner index ", num_owners - 1);
  }
  for (size_t owner : kill_owners) {
    if (owner >= num_owners) {
      return Status::Invalid(algorithm,
                             ": transport fault plan kill_owners entry ",
                             owner, " exceeds the last owner index ",
                             num_owners - 1);
    }
  }
  if ((kill_owner != kNoOwner || !kill_owners.empty()) &&
      kill_after_messages < 1) {
    return Status::Invalid(
        algorithm,
        ": transport fault plan kill_after_messages must be >= 1 (every "
        "owner serves its first message); got kill_after_messages = ",
        kill_after_messages);
  }
  if (flap_revive_calls > 0 && owner_death_rate == 0.0 &&
      kill_owner == kNoOwner && kill_owners.empty()) {
    return Status::Invalid(
        algorithm,
        ": transport fault plan flap_revive_calls = ", flap_revive_calls,
        " needs a death source (owner_death_rate > 0 or a targeted kill) — "
        "a flap plan without deaths never flaps");
  }
  return Status::OK();
}

FaultInjectingTransport::FaultInjectingTransport(
    Transport* inner, const TransportFaultPlan& plan)
    : inner_(inner), plan_(plan) {
  Arm();
}

uint64_t FaultInjectingTransport::TargetedKillAt(size_t owner) const {
  uint64_t at = ~0ull;
  if (plan_.kill_owner == owner) {
    at = plan_.kill_after_messages;
  }
  for (size_t target : plan_.kill_owners) {
    if (target == owner && plan_.kill_after_messages < at) {
      at = plan_.kill_after_messages;
    }
  }
  return at;
}

void FaultInjectingTransport::Arm() {
  stats_ = TransportFaultStats{};
  const size_t owners = inner_->num_owners();
  served_.assign(owners, 0);
  death_at_.assign(owners, ~0ull);
  alive_.assign(owners, 1);
  down_left_.assign(owners, 0);
  revivals_.assign(owners, 0);
  for (size_t i = 0; i < owners; ++i) {
    if (plan_.owner_death_rate > 0.0 &&
        Draw(plan_.seed, i, 0, kOwnerDeathSalt) < plan_.owner_death_rate) {
      // The death point itself comes from an independent draw so the rate
      // and the position are not correlated.
      const double u = Draw(plan_.seed, i, 1, kOwnerDeathSalt);
      const uint64_t span =
          plan_.death_max_messages - plan_.death_min_messages + 1;
      death_at_[i] = plan_.death_min_messages +
                     static_cast<uint64_t>(u * static_cast<double>(span));
    }
    const uint64_t targeted = TargetedKillAt(i);
    if (targeted < death_at_[i]) {
      death_at_[i] = targeted;
    }
  }
}

Status FaultInjectingTransport::Call(size_t owner, const Request& request,
                                     Reply* reply, CallResult* result) {
  *result = CallResult{};
  assert(owner < alive_.size());
  if (!alive_[owner]) {
    if (plan_.flap_revive_calls > 0 && down_left_[owner] > 0 &&
        --down_left_[owner] == 0) {
      // Flapping: the owner has rejected its full down window and recovers;
      // this call still fails (the recovery is observed by the NEXT call),
      // and the next death point is redrawn past the revival. The redraw
      // hashes the per-owner revival count, so it is independent of how
      // calls to other owners interleave.
      alive_[owner] = 1;
      ++stats_.owner_revivals;
      const uint64_t revival = ++revivals_[owner];
      const double u = Draw(plan_.seed, owner, 2 * revival, kOwnerDeathSalt);
      const uint64_t span =
          plan_.death_max_messages - plan_.death_min_messages + 1;
      uint64_t next = plan_.death_min_messages +
                      static_cast<uint64_t>(u * static_cast<double>(span));
      const uint64_t targeted = TargetedKillAt(owner);
      if (targeted != ~0ull) {
        next = std::min(next, plan_.kill_after_messages);
      }
      death_at_[owner] = served_[owner] + next;
    }
    // Dead owner: the message vanishes; the caller times out on its own RPC
    // deadline (latency 0 here — the wait is the caller's, not the wire's).
    return Status::Unavailable("FaultInjectingTransport: owner ", owner,
                               " is dead");
  }
  const uint64_t t = ++served_[owner];
  // The message that reaches the death point is still served; the owner is
  // dead from the next Call() on. (death_at_ counts THIS owner's served
  // messages only — see the header's death-window note.)
  if (t >= death_at_[owner]) {
    alive_[owner] = 0;
    ++stats_.dead_owners;
    if (plan_.flap_revive_calls > 0) {
      down_left_[owner] = plan_.flap_revive_calls;
    }
  }
  if (plan_.drop_rate > 0.0 &&
      Draw(plan_.seed, owner, t, kDropSalt) < plan_.drop_rate) {
    ++stats_.dropped_messages;
    return Status::Unavailable("FaultInjectingTransport: message ", t,
                               " to owner ", owner, " lost");
  }
  Status status = inner_->Call(owner, request, reply, result);
  if (!status.ok()) return status;
  if (plan_.delay_rate > 0.0 &&
      Draw(plan_.seed, owner, t, kDelaySalt) < plan_.delay_rate) {
    ++stats_.delayed_messages;
    result->latency_ms += plan_.delay_ms;
  }
  if (plan_.duplicate_rate > 0.0 &&
      Draw(plan_.seed, owner, t, kDuplicateSalt) < plan_.duplicate_rate) {
    ++stats_.duplicated_replies;
    ++result->duplicate_replies;
  }
  return status;
}

}  // namespace topk
