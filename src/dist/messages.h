// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Message set of the distributed layer (paper, Section 1's middleware setting
// distributed across per-list owner nodes): the coordinator speaks four
// request kinds to a ListOwner shard and counts every exchange in wire bytes.
//
// The structs are in-memory representations, not serialized frames — the
// in-process transport hands them across by reference — but WireBytes() prices
// each message as a compact binary encoding would (a fixed header plus packed
// payload entries), so the `DistStats` byte counters measure what a socket
// transport would actually move. That is the metric the distributed top-k
// literature optimizes (cf. TPUT): message and byte counts per query, not
// local access counts.

#ifndef TOPK_DIST_MESSAGES_H_
#define TOPK_DIST_MESSAGES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lists/types.h"

namespace topk {

/// Fixed per-message framing cost assumed by the byte accounting: type tag,
/// list index, position/count fields and a length — 16 bytes covers all four
/// request kinds' scalar fields in a packed encoding.
inline constexpr size_t kWireHeaderBytes = 16;

/// Wire cost of one (item, score) list entry: 4-byte item id + 8-byte score.
inline constexpr size_t kWireEntryBytes = sizeof(ItemId) + sizeof(Score);

/// Wire cost of one random-access answer: 8-byte score + 4-byte position.
inline constexpr size_t kWireLookupBytes = sizeof(Score) + sizeof(Position);

/// The five RPCs of the coordinator/owner protocol.
enum class MessageType : uint8_t {
  kHello = 0,         ///< catalog handshake: which lists, n, score range
  kSortedWindow = 1,  ///< batched sorted access: `count` rows from `start`
  kDrain = 2,         ///< TPUT phase 2: rows from `start` down to `threshold`
  kRandomLookup = 3,  ///< batched random access for a list's scores/positions
  kProbe = 4,         ///< health probe: empty OK reply proves liveness
};

/// One list advertised by an owner's Hello reply: enough catalog metadata for
/// the coordinator to derive the score floor, seed its cursor bounds
/// (max_score) and freeze sound dead-list bounds without ever touching the
/// Database directly.
struct ListCatalog {
  uint32_t list_index = 0;
  uint32_t num_items = 0;
  Score max_score = 0.0;
  Score min_score = 0.0;
};

/// Wire cost of one catalog entry: two u32 + two scores.
inline constexpr size_t kWireCatalogBytes = 2 * sizeof(uint32_t) + 2 * sizeof(Score);

/// A coordinator→owner request. One flat struct for all four kinds keeps the
/// transport signature simple; unused fields are ignored by the owner.
struct Request {
  MessageType type = MessageType::kHello;
  uint32_t list_index = 0;

  /// First 1-based position served (kSortedWindow, kDrain).
  Position start = 1;

  /// Maximum entries in the reply (kSortedWindow, kDrain); batching cap.
  uint32_t max_entries = 0;

  /// Drain floor: the owner stops after the first entry whose local score
  /// falls below it (kDrain; TPUT's τ1/m).
  Score threshold = 0.0;

  /// Batched random-access items (kRandomLookup).
  std::vector<ItemId> items;

  size_t WireBytes() const {
    return kWireHeaderBytes + items.size() * sizeof(ItemId);
  }
};

/// An owner→coordinator reply. Which vectors are filled depends on the
/// request type; Clear() makes one reply reusable across calls without
/// releasing capacity.
struct Reply {
  /// kHello: the owner's lists.
  std::vector<ListCatalog> catalog;

  /// kSortedWindow / kDrain: consecutive rows in descending-score order,
  /// starting at Request::start.
  std::vector<ListEntry> entries;

  /// kRandomLookup: one answer per requested item, in request order.
  std::vector<ItemLookup> lookups;

  /// kDrain: true when the drain stopped because an entry fell below the
  /// threshold (that entry is included — the coordinator's cursor score must
  /// end below the threshold exactly like a local sorted scan's would);
  /// false when it stopped at max_entries or the end of the list.
  bool drained_to_threshold = false;

  size_t WireBytes() const {
    return kWireHeaderBytes + catalog.size() * kWireCatalogBytes +
           entries.size() * kWireEntryBytes + lookups.size() * kWireLookupBytes;
  }

  void Clear() {
    catalog.clear();
    entries.clear();
    lookups.clear();
    drained_to_threshold = false;
  }
};

}  // namespace topk

#endif  // TOPK_DIST_MESSAGES_H_
