// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Coordinator: the paper's query node in the distributed setting. It runs the
// BPA and TPUT phase structures over a pluggable message Transport to
// ListOwner shards, batching sorted accesses into windows and random accesses
// into per-list lookup vectors so the wire carries few large messages instead
// of the single-node loops' many small accesses — the metric the distributed
// top-k literature optimizes (messages and bytes per query).
//
// Robustness is the contract, not an afterthought:
//
//  * every RPC runs under a per-call deadline with a bounded retry budget and
//    deterministic jittered exponential backoff (all charged as virtual
//    milliseconds against the query governor's deadline);
//  * straggler hedging: when an exchange outlasts a p99-derived per-owner
//    hedge timeout, the request is re-issued and the earlier reply wins
//    (duplicates are deduped and their bytes counted, as an at-least-once
//    transport forces);
//  * replica groups: with DistOptions::replication_factor = R every list is
//    served by R owner replicas (mirrors of the same immutable list), and a
//    per-replica health tracker (consecutive-failure circuit breaker with
//    seeded half-open probes, EWMA latency) drives a failover ladder per
//    RPC: retry-with-backoff on the primary → hedge to the healthiest
//    sibling replica → abandon the replica (breaker open or retry budget
//    exhausted) and re-route to a survivor, resuming the sorted cursor at
//    the exact window position. Owners are stateless and windows are
//    deterministic functions of the immutable list, so a mid-query replica
//    switch is invisible to the algorithm: items, scores, stop positions
//    and access counts stay byte-identical to the unreplicated run;
//  * only when a WHOLE replica group is dead does a list die: it maps onto
//    PR 6's dead-list semantics and the coordinator degrades to NRA over
//    the surviving lists, returning a θ-certified anytime answer tagged
//    Completion::kListFailure — a dying cluster still answers inside the
//    SLA.
//
// Determinism: fault-free distributed BPA/TPUT return byte-identical
// items/scores to the single-node engine (same tie order, same survivor
// sets — the batched windows and lookup vectors replay the single-node
// loops' arithmetic exactly), and a faulted run replays message-for-message
// from the transport fault plan's seed plus DistOptions::backoff_seed.

#ifndef TOPK_DIST_COORDINATOR_H_
#define TOPK_DIST_COORDINATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/candidate_pool.h"
#include "core/query_governor.h"
#include "core/topk_buffer.h"
#include "core/topk_result.h"
#include "dist/transport.h"
#include "lists/access_stats.h"
#include "lists/scorer.h"
#include "lists/types.h"

namespace topk {

/// Knobs of one coordinator. A default-constructed DistOptions is valid for
/// any transport with at least one owner.
struct DistOptions {
  /// Sorted-access batching: rows fetched per kSortedWindow/kDrain message.
  uint32_t window_rows = 64;

  /// Per-RPC deadline in virtual milliseconds: what a lost message or dead
  /// owner costs the caller per attempt before the next retry fires.
  double rpc_deadline_ms = 5.0;

  /// Retry budget: total attempts per RPC (the first try included). An RPC
  /// whose budget is exhausted declares the owner permanently dead.
  int rpc_max_attempts = 4;

  /// Backoff before retry attempt a (1-based): backoff_base_ms * 2^(a-1),
  /// scaled by a deterministic jitter in [1, 1.5) drawn from backoff_seed.
  double backoff_base_ms = 0.5;
  uint64_t backoff_seed = 1;

  /// Straggler hedging: when an exchange outlasts the owner's hedge timeout
  /// — hedge_multiplier times the owner's observed p99 latency, never below
  /// hedge_floor_ms — the request is re-issued and the earlier reply wins.
  bool hedging = true;
  double hedge_floor_ms = 1.0;
  double hedge_multiplier = 3.0;

  /// Replica groups: every list must be claimed by exactly this many owners
  /// (Connect() groups the claims). 1 — the default — is the unreplicated
  /// PR 8 topology; the health tracker and failover ladder are then inert
  /// (one replica is always "the healthiest") and behavior is unchanged.
  uint32_t replication_factor = 1;

  /// Per-replica circuit breaker: this many CONSECUTIVE failed attempts
  /// open the breaker; a replica with an open breaker is routed around
  /// while a sibling is available instead of burning retry budget on it.
  int breaker_failures = 3;

  /// How long (virtual ms) an open breaker stays open before a half-open
  /// probe is allowed, scaled by a deterministic jitter in [1, 1.5) drawn
  /// from health_seed. A successful probe closes the breaker; a failed one
  /// re-opens it for another window.
  double breaker_open_ms = 10.0;

  /// EWMA smoothing for per-replica observed latency (the healthiest-replica
  /// routing signal): ewma ← alpha * sample + (1 - alpha) * ewma. In (0, 1].
  double ewma_alpha = 0.3;

  /// Seed of the health tracker's jittered breaker windows.
  uint64_t health_seed = 1;

  /// Per-query execution limits, enforced at the coordinator's round
  /// boundaries exactly like the single-node loops enforce them. RPC
  /// latencies, backoff waits and timeout waits all charge the deadline as
  /// virtual milliseconds.
  GovernorLimits governor;

  /// Validates the options for `algorithm` over a transport with
  /// `num_owners` owners; messages name the algorithm, knob and value.
  Status Validate(const char* algorithm, size_t num_owners) const;
};

/// Per-query wire and robustness counters — what the distributed literature
/// benchmarks, plus what the fault machinery actually did.
struct DistStats {
  uint64_t messages_sent = 0;
  uint64_t replies_received = 0;  ///< incl. duplicate deliveries
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;  ///< incl. duplicate deliveries
  uint64_t rounds = 0;          ///< coordinator round-trips of the phase loops
  uint64_t retries = 0;         ///< re-attempts after a lost/failed exchange
  uint64_t hedges = 0;          ///< hedge requests issued
  uint64_t hedge_wins = 0;      ///< hedges whose reply beat the primary's
  uint64_t duplicate_replies = 0;  ///< extra reply copies deduped
  uint64_t timeouts = 0;           ///< attempts that cost the full RPC deadline
  uint32_t owner_deaths = 0;       ///< owners declared permanently dead
  uint64_t replica_failovers = 0;  ///< RPCs re-routed to a sibling replica
  uint64_t breaker_opens = 0;      ///< circuit-breaker open transitions
  uint64_t probes_sent = 0;        ///< half-open health probes issued
  uint32_t groups_lost = 0;        ///< lists whose whole replica group died
  double virtual_ms = 0.0;  ///< total virtual time charged to the deadline
};

class Coordinator {
 public:
  /// Binds to `transport` (not owned; must outlive the coordinator).
  Coordinator(Transport* transport, const DistOptions& options);

  /// The catalog handshake: one kHello per owner. Fails unless every list
  /// index 0..m-1 is claimed by exactly replication_factor owners (its
  /// replica group, ordered by owner index), the replicas of each group
  /// advertise identical catalogs (same max/min scores — mirrors of the same
  /// immutable list), and all lists agree on n. Must succeed before the
  /// Execute calls. The handshake's messages are connection setup: each
  /// Execute call resets DistStats, so they appear in stats() only until the
  /// first query runs.
  Status Connect();

  size_t num_lists() const { return replicas_of_.size(); }
  size_t num_items() const { return n_; }

  /// The score floor the answers are certified against (DeriveScoreFloor of
  /// the owners' catalogs: 0 lowered to the smallest advertised min score).
  Score score_floor() const { return floor_; }

  /// Distributed BPA: per-depth rows over batched sorted windows, row-end
  /// batched random-access resolution, the paper's λ (best-position) stop
  /// rule. Any scorer. Fault-free results are byte-identical to single-node
  /// BPA; owner death degrades to NRA over the survivors.
  Result<TopKResult> ExecuteBpa(const TopKQuery& query);

  /// Distributed TPUT: the three-phase protocol (top-k prefixes; drain to
  /// τ1/m via kDrain messages whose threshold stop runs owner-side; batched
  /// random-access resolution of the τ2 survivors). Summation scoring only.
  /// Fault-free results are byte-identical to single-node TPUT; owner death
  /// degrades to NRA over the survivors.
  Result<TopKResult> ExecuteTput(const TopKQuery& query);

  /// Wire/robustness counters of the last Execute call.
  const DistStats& stats() const { return stats_; }

  /// True while at least one replica of `list_index`'s group has not been
  /// declared dead — a list only dies with its whole replica group.
  bool ListAlive(size_t list_index) const {
    for (size_t owner : replicas_of_[list_index]) {
      if (owner_alive_[owner] != 0) return true;
    }
    return false;
  }

 private:
  struct PendingItem {
    ItemId item;
    uint32_t first_list;
    Score first_score;
  };

  /// Per-replica health, reset per query: a consecutive-failure circuit
  /// breaker (closed → open after breaker_failures straight failures; open →
  /// half-open when a seeded jittered window elapses and a probe fires;
  /// half-open → closed on probe success, back to open on failure) plus an
  /// EWMA of observed attempt latency for healthiest-replica routing.
  struct ReplicaHealth {
    enum Breaker : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
    Breaker breaker = kClosed;
    int consecutive_failures = 0;
    double open_until_ms = 0.0;  ///< virtual time the open window ends
    double ewma_ms = 0.0;
    bool ewma_set = false;
  };

  static constexpr size_t kNoList = static_cast<size_t>(-1);

  Status ValidateQuery(const char* algorithm, const TopKQuery& query) const;
  void BeginQuery();
  void FinishQuery(TopKResult* result) const;

  // --- RPC machinery (retry / backoff / hedging / death) ---

  /// One raw exchange with full wire accounting. Fills `reply` on success.
  Status Send(size_t owner, const Request& request, Reply* reply,
              CallResult* outcome);

  /// One attempt = primary send, hedged when its outcome (reply latency, or
  /// the full RPC deadline for a loss) outlasts the owner's hedge timeout.
  /// The hedge goes to `hedge_owner` — the primary itself when unreplicated,
  /// the healthiest live sibling replica otherwise. On success `*latency_ms`
  /// is the attempt's effective latency.
  Status Attempt(size_t owner, size_t hedge_owner, const Request& request,
                 Reply* reply, double* latency_ms);

  /// The robust per-owner RPC: bounded attempts with jittered exponential
  /// backoff. When `allow_breaker_failover` and the owner's breaker opens
  /// mid-RPC while a breaker-closed sibling of `list` exists, it returns
  /// Unavailable WITHOUT killing the owner (a recoverable failover — the
  /// breaker's whole point); otherwise exhausting the budget kills the owner
  /// and fails Unavailable. All waits charge stats_.virtual_ms.
  Status OwnerRpc(size_t owner, size_t list, const Request& request,
                  Reply* reply, bool allow_breaker_failover);

  /// The list-level RPC the phase loops call: PickReplica → OwnerRpc,
  /// laddering across the replica group (each breaker failover or owner
  /// death re-routes to the next-healthiest survivor) until one replica
  /// answers or the whole group is dead (Unavailable → the degrade path).
  Status ListRpc(size_t list, const Request& request, Reply* reply);

  double HedgeTimeoutMs(size_t owner) const;
  void RecordLatency(size_t owner, double latency_ms);
  void KillOwner(size_t owner);

  // --- replica health (inert at replication_factor = 1) ---

  /// Routing decision for `list`: fires any due half-open probes for the
  /// group, then keeps the sticky primary while it is alive with a closed
  /// breaker; otherwise re-picks deterministically — prefer closed breakers,
  /// then lowest EWMA latency (unseen replicas sort first), then lowest
  /// owner index — and updates the sticky primary.
  size_t PickReplica(size_t list);

  /// The hedge target for an RPC to `owner` serving `list`: the healthiest
  /// live non-open sibling replica, or `owner` itself when there is none
  /// (self-hedging — PR 8's behavior).
  size_t HedgeTarget(size_t owner, size_t list) const;

  /// True when `list` has a live breaker-closed replica other than `owner` —
  /// the condition under which abandoning `owner` is a failover, not a death.
  bool HasClosedAlternative(size_t list, size_t owner) const;

  bool ProbeDue(size_t owner) const;
  void SendProbe(size_t owner);
  void RecordOutcome(size_t owner, bool success);
  double HealthJitter();

  // --- sorted-access windows (one cursor per list, coordinator-side) ---

  /// The entry at 1-based `position` of `list_index`, served from the list's
  /// window buffer (one kSortedWindow RPC per window_rows positions).
  Status WindowEntry(size_t list_index, Position position, ListEntry* entry);

  // --- shared degraded path ---

  /// NRA over the surviving lists, from scratch (the same re-run discipline
  /// as the single-node engine's failover): dead lists are bounded at their
  /// advertised max score, survivors re-scan from position 1, and the answer
  /// is certified anytime with Completion::kListFailure (or the governor's
  /// trip reason, which takes precedence). Always returns OK with a
  /// certified result.
  Status DegradeToNra(const TopKQuery& query, TopKResult* result);

  Transport* transport_;
  DistOptions options_;

  // Catalog (filled by Connect).
  std::vector<std::vector<size_t>> replicas_of_;  // list -> owners, asc order
  std::vector<std::vector<size_t>> lists_of_;     // owner -> lists it serves
  std::vector<Score> max_score_;     // list index -> advertised max
  std::vector<Score> min_score_;     // list index -> advertised min
  std::vector<uint8_t> owner_alive_;  // owner -> not yet declared dead
  size_t n_ = 0;
  Score floor_ = 0.0;
  bool connected_ = false;

  // Per-query state (reset by BeginQuery; storage retained).
  DistStats stats_;
  AccessStats access_;  // synthesized logical access counts (parity metric)
  QueryGovernor governor_;
  TopKBuffer buffer_;
  CandidatePool pool_;
  uint64_t backoff_counter_ = 0;

  // Replica health (reset by BeginQuery).
  std::vector<ReplicaHealth> health_;        // per owner
  std::vector<size_t> primary_of_;           // list -> sticky routed replica
  std::vector<uint8_t> group_lost_counted_;  // list -> groups_lost tallied
  uint64_t health_counter_ = 0;              // jitter draw counter

  // Per-owner latency rings feeding the p99 hedge timeout.
  static constexpr size_t kLatencyRing = 64;
  std::vector<double> latency_ring_;  // owner-major, kLatencyRing samples
  std::vector<uint32_t> latency_count_;

  // Window buffers: one per list.
  std::vector<Position> window_base_;          // first buffered position; 0 = empty
  std::vector<std::vector<ListEntry>> window_;

  // BPA row state.
  std::vector<std::vector<uint8_t>> pos_seen_;  // list -> 1-based seen flags
  std::vector<std::vector<Score>> pos_score_;   // list -> score at seen pos
  std::vector<Position> best_pos_;
  std::vector<uint8_t> memo_state_;  // item: 0 unknown / 1 pending / 2 resolved
  std::vector<Score> memo_score_;
  std::vector<PendingItem> pending_;
  std::vector<Score> pending_rows_;             // pending-major, m scores each
  std::vector<std::vector<ItemId>> batch_items_;  // per-list lookup batches
  std::vector<std::vector<uint32_t>> batch_pending_;  // parallel: pending idx

  // Shared scratch.
  std::vector<Score> last_scores_;
  std::vector<Score> local_;
  std::vector<Score> capped_;
  std::vector<Score> tmp_;
  std::vector<Position> list_depths_;
  std::vector<uint32_t> survivors_;
  std::vector<ItemId> winners_;
  Request request_;
  Reply reply_;
  Reply hedge_reply_;
  Request probe_request_;
  Reply probe_reply_;
  mutable std::vector<double> latency_scratch_;
};

}  // namespace topk

#endif  // TOPK_DIST_COORDINATOR_H_
