// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Coordinator: the paper's query node in the distributed setting. It runs the
// BPA and TPUT phase structures over a pluggable message Transport to
// ListOwner shards, batching sorted accesses into windows and random accesses
// into per-list lookup vectors so the wire carries few large messages instead
// of the single-node loops' many small accesses — the metric the distributed
// top-k literature optimizes (messages and bytes per query).
//
// Robustness is the contract, not an afterthought:
//
//  * every RPC runs under a per-call deadline with a bounded retry budget and
//    deterministic jittered exponential backoff (all charged as virtual
//    milliseconds against the query governor's deadline);
//  * straggler hedging: when an exchange outlasts a p99-derived per-owner
//    hedge timeout, the request is re-issued and the earlier reply wins
//    (duplicates are deduped and their bytes counted, as an at-least-once
//    transport forces);
//  * an owner whose retry budget is exhausted is declared permanently dead;
//    its lists map onto PR 6's dead-list semantics and the coordinator
//    degrades to NRA over the surviving lists, returning a θ-certified
//    anytime answer tagged Completion::kListFailure — a dying cluster still
//    answers inside the SLA.
//
// Determinism: fault-free distributed BPA/TPUT return byte-identical
// items/scores to the single-node engine (same tie order, same survivor
// sets — the batched windows and lookup vectors replay the single-node
// loops' arithmetic exactly), and a faulted run replays message-for-message
// from the transport fault plan's seed plus DistOptions::backoff_seed.

#ifndef TOPK_DIST_COORDINATOR_H_
#define TOPK_DIST_COORDINATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/candidate_pool.h"
#include "core/query_governor.h"
#include "core/topk_buffer.h"
#include "core/topk_result.h"
#include "dist/transport.h"
#include "lists/access_stats.h"
#include "lists/scorer.h"
#include "lists/types.h"

namespace topk {

/// Knobs of one coordinator. A default-constructed DistOptions is valid for
/// any transport with at least one owner.
struct DistOptions {
  /// Sorted-access batching: rows fetched per kSortedWindow/kDrain message.
  uint32_t window_rows = 64;

  /// Per-RPC deadline in virtual milliseconds: what a lost message or dead
  /// owner costs the caller per attempt before the next retry fires.
  double rpc_deadline_ms = 5.0;

  /// Retry budget: total attempts per RPC (the first try included). An RPC
  /// whose budget is exhausted declares the owner permanently dead.
  int rpc_max_attempts = 4;

  /// Backoff before retry attempt a (1-based): backoff_base_ms * 2^(a-1),
  /// scaled by a deterministic jitter in [1, 1.5) drawn from backoff_seed.
  double backoff_base_ms = 0.5;
  uint64_t backoff_seed = 1;

  /// Straggler hedging: when an exchange outlasts the owner's hedge timeout
  /// — hedge_multiplier times the owner's observed p99 latency, never below
  /// hedge_floor_ms — the request is re-issued and the earlier reply wins.
  bool hedging = true;
  double hedge_floor_ms = 1.0;
  double hedge_multiplier = 3.0;

  /// Per-query execution limits, enforced at the coordinator's round
  /// boundaries exactly like the single-node loops enforce them. RPC
  /// latencies, backoff waits and timeout waits all charge the deadline as
  /// virtual milliseconds.
  GovernorLimits governor;

  /// Validates the options for `algorithm` over a transport with
  /// `num_owners` owners; messages name the algorithm, knob and value.
  Status Validate(const char* algorithm, size_t num_owners) const;
};

/// Per-query wire and robustness counters — what the distributed literature
/// benchmarks, plus what the fault machinery actually did.
struct DistStats {
  uint64_t messages_sent = 0;
  uint64_t replies_received = 0;  ///< incl. duplicate deliveries
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;  ///< incl. duplicate deliveries
  uint64_t rounds = 0;          ///< coordinator round-trips of the phase loops
  uint64_t retries = 0;         ///< re-attempts after a lost/failed exchange
  uint64_t hedges = 0;          ///< hedge requests issued
  uint64_t hedge_wins = 0;      ///< hedges whose reply beat the primary's
  uint64_t duplicate_replies = 0;  ///< extra reply copies deduped
  uint64_t timeouts = 0;           ///< attempts that cost the full RPC deadline
  uint32_t owner_deaths = 0;       ///< owners declared permanently dead
  double virtual_ms = 0.0;  ///< total virtual time charged to the deadline
};

class Coordinator {
 public:
  /// Binds to `transport` (not owned; must outlive the coordinator).
  Coordinator(Transport* transport, const DistOptions& options);

  /// The catalog handshake: one kHello per owner. Fails unless every list
  /// index 0..m-1 is served by exactly one owner and all lists agree on n.
  /// Must succeed before the Execute calls. The handshake's messages are
  /// connection setup: each Execute call resets DistStats, so they appear in
  /// stats() only until the first query runs.
  Status Connect();

  size_t num_lists() const { return owner_of_.size(); }
  size_t num_items() const { return n_; }

  /// The score floor the answers are certified against (DeriveScoreFloor of
  /// the owners' catalogs: 0 lowered to the smallest advertised min score).
  Score score_floor() const { return floor_; }

  /// Distributed BPA: per-depth rows over batched sorted windows, row-end
  /// batched random-access resolution, the paper's λ (best-position) stop
  /// rule. Any scorer. Fault-free results are byte-identical to single-node
  /// BPA; owner death degrades to NRA over the survivors.
  Result<TopKResult> ExecuteBpa(const TopKQuery& query);

  /// Distributed TPUT: the three-phase protocol (top-k prefixes; drain to
  /// τ1/m via kDrain messages whose threshold stop runs owner-side; batched
  /// random-access resolution of the τ2 survivors). Summation scoring only.
  /// Fault-free results are byte-identical to single-node TPUT; owner death
  /// degrades to NRA over the survivors.
  Result<TopKResult> ExecuteTput(const TopKQuery& query);

  /// Wire/robustness counters of the last Execute call.
  const DistStats& stats() const { return stats_; }

  /// True while `list_index`'s owner has not been declared dead.
  bool ListAlive(size_t list_index) const {
    return owner_alive_[owner_of_[list_index]] != 0;
  }

 private:
  struct PendingItem {
    ItemId item;
    uint32_t first_list;
    Score first_score;
  };

  Status ValidateQuery(const char* algorithm, const TopKQuery& query) const;
  void BeginQuery();
  void FinishQuery(TopKResult* result) const;

  // --- RPC machinery (retry / backoff / hedging / death) ---

  /// One raw exchange with full wire accounting. Fills `reply` on success.
  Status Send(size_t owner, const Request& request, Reply* reply,
              CallResult* outcome);

  /// One attempt = primary send, hedged when its outcome (reply latency, or
  /// the full RPC deadline for a loss) outlasts the owner's hedge timeout.
  /// On success `*latency_ms` is the attempt's effective latency.
  Status Attempt(size_t owner, const Request& request, Reply* reply,
                 double* latency_ms);

  /// The full robust RPC: bounded attempts with jittered exponential
  /// backoff; exhausting the budget kills the owner (its lists die) and
  /// fails Unavailable. All waits charge stats_.virtual_ms.
  Status Rpc(size_t owner, const Request& request, Reply* reply);

  double HedgeTimeoutMs(size_t owner) const;
  void RecordLatency(size_t owner, double latency_ms);
  void KillOwner(size_t owner);

  // --- sorted-access windows (one cursor per list, coordinator-side) ---

  /// The entry at 1-based `position` of `list_index`, served from the list's
  /// window buffer (one kSortedWindow RPC per window_rows positions).
  Status WindowEntry(size_t list_index, Position position, ListEntry* entry);

  // --- shared degraded path ---

  /// NRA over the surviving lists, from scratch (the same re-run discipline
  /// as the single-node engine's failover): dead lists are bounded at their
  /// advertised max score, survivors re-scan from position 1, and the answer
  /// is certified anytime with Completion::kListFailure (or the governor's
  /// trip reason, which takes precedence). Always returns OK with a
  /// certified result.
  Status DegradeToNra(const TopKQuery& query, TopKResult* result);

  Transport* transport_;
  DistOptions options_;

  // Catalog (filled by Connect).
  std::vector<size_t> owner_of_;     // list index -> owner
  std::vector<Score> max_score_;     // list index -> advertised max
  std::vector<Score> min_score_;     // list index -> advertised min
  std::vector<uint8_t> owner_alive_;  // owner -> not yet declared dead
  size_t n_ = 0;
  Score floor_ = 0.0;
  bool connected_ = false;

  // Per-query state (reset by BeginQuery; storage retained).
  DistStats stats_;
  AccessStats access_;  // synthesized logical access counts (parity metric)
  QueryGovernor governor_;
  TopKBuffer buffer_;
  CandidatePool pool_;
  uint64_t backoff_counter_ = 0;

  // Per-owner latency rings feeding the p99 hedge timeout.
  static constexpr size_t kLatencyRing = 64;
  std::vector<double> latency_ring_;  // owner-major, kLatencyRing samples
  std::vector<uint32_t> latency_count_;

  // Window buffers: one per list.
  std::vector<Position> window_base_;          // first buffered position; 0 = empty
  std::vector<std::vector<ListEntry>> window_;

  // BPA row state.
  std::vector<std::vector<uint8_t>> pos_seen_;  // list -> 1-based seen flags
  std::vector<std::vector<Score>> pos_score_;   // list -> score at seen pos
  std::vector<Position> best_pos_;
  std::vector<uint8_t> memo_state_;  // item: 0 unknown / 1 pending / 2 resolved
  std::vector<Score> memo_score_;
  std::vector<PendingItem> pending_;
  std::vector<Score> pending_rows_;             // pending-major, m scores each
  std::vector<std::vector<ItemId>> batch_items_;  // per-list lookup batches
  std::vector<std::vector<uint32_t>> batch_pending_;  // parallel: pending idx

  // Shared scratch.
  std::vector<Score> last_scores_;
  std::vector<Score> local_;
  std::vector<Score> capped_;
  std::vector<Score> tmp_;
  std::vector<Position> list_depths_;
  std::vector<uint32_t> survivors_;
  std::vector<ItemId> winners_;
  Request request_;
  Reply reply_;
  Reply hedge_reply_;
  mutable std::vector<double> latency_scratch_;
};

}  // namespace topk

#endif  // TOPK_DIST_COORDINATOR_H_
