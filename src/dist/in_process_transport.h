// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// InProcessTransport: the baseline Transport — owners live in the same
// process and every Call() is a direct ListOwner::Serve with a fixed small
// virtual latency per exchange. It is the fault-free reference the
// FaultInjectingTransport decorates, and the parity baseline for the
// acceptance bar (fault-free distributed runs must be byte-identical to the
// single-node engine).

#ifndef TOPK_DIST_IN_PROCESS_TRANSPORT_H_
#define TOPK_DIST_IN_PROCESS_TRANSPORT_H_

#include <cstddef>
#include <vector>

#include "dist/list_owner.h"
#include "dist/transport.h"
#include "lists/database.h"

namespace topk {

class InProcessTransport : public Transport {
 public:
  /// Virtual per-exchange latency in milliseconds charged on every Call().
  /// Small but nonzero: an RPC is never free, and a nonzero base makes the
  /// coordinator's latency ring / hedging machinery exercise real numbers
  /// even before faults are layered on.
  static constexpr double kBaseLatencyMs = 0.05;

  InProcessTransport() = default;

  /// Adds an owner shard. Owners are addressed by insertion order.
  void AddOwner(ListOwner owner) { owners_.push_back(std::move(owner)); }

  /// Convenience: `replicas` owners per list of `db` — the paper's "each
  /// list at its own node" topology, replicated. Owners are laid out
  /// replica-major (owner r*m + i serves list i as replica r, see
  /// OwnerIndex), so `replicas = 1` (the default) is exactly the PR 8
  /// topology: owner i serves list i.
  static InProcessTransport PerListOwners(const Database& db,
                                          size_t replicas = 1);

  /// The owner index serving `list` as replica `replica` under the
  /// replica-major PerListOwners layout. Tools that target a specific
  /// replica (topk_cli --kill-replica, the bench grids) map through this so
  /// their targeting can never drift from the layout.
  static size_t OwnerIndex(size_t num_lists, size_t list, size_t replica) {
    return replica * num_lists + list;
  }

  size_t num_owners() const override { return owners_.size(); }

  Status Call(size_t owner, const Request& request, Reply* reply,
              CallResult* result) override;

 private:
  std::vector<ListOwner> owners_;
};

}  // namespace topk

#endif  // TOPK_DIST_IN_PROCESS_TRANSPORT_H_
