// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// ListOwner: one shard of the paper's distributed setting. It owns one or
// more of the database's m sorted lists and answers the coordinator's five
// request kinds (catalog handshake, batched sorted-access windows, TPUT
// drains, batched random-access lookups, health probes) against its lists
// only.
//
// The owner is stateless between requests — every cursor lives at the
// coordinator — so an owner can be retried, hedged, restarted, or REPLACED BY
// A REPLICA without any session state to reconcile: two owners constructed
// over the same immutable lists answer every request byte-identically, which
// is what makes the coordinator's mid-query replica failover invisible to
// the algorithms. It shares the process's Database here (the in-process
// transport setting); a real deployment would give each owner its own list
// storage, and nothing in the interface assumes otherwise.

#ifndef TOPK_DIST_LIST_OWNER_H_
#define TOPK_DIST_LIST_OWNER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dist/messages.h"
#include "lists/database.h"

namespace topk {

class ListOwner {
 public:
  /// An owner serving `lists` (0-based list indexes) of `db`. The database
  /// must outlive the owner.
  ListOwner(const Database* db, std::vector<size_t> lists);

  const std::vector<size_t>& lists() const { return lists_; }

  /// Serves one request into `reply` (cleared first). Requests that name a
  /// list this owner does not hold, or positions outside [1, n], fail with
  /// Status::Invalid / OutOfRange — those are coordinator bugs, not faults.
  Status Serve(const Request& request, Reply* reply) const;

 private:
  Status ServeHello(Reply* reply) const;
  Status ServeWindow(const Request& request, Reply* reply) const;
  Status ServeDrain(const Request& request, Reply* reply) const;
  Status ServeLookup(const Request& request, Reply* reply) const;

  /// Resolves request.list_index against lists_, or fails.
  Status CheckOwnership(uint32_t list_index) const;

  const Database* db_;
  std::vector<size_t> lists_;
};

}  // namespace topk

#endif  // TOPK_DIST_LIST_OWNER_H_
