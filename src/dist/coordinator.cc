// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "core/candidate_bounds.h"

namespace topk {
namespace {

// splitmix64 finalizer (same discipline as the fault schedules): the backoff
// jitter is a pure hash of (backoff_seed, retry counter), so a faulted run's
// virtual timeline replays exactly from its seeds.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr uint64_t kBackoffSalt = 0xc6a4a7935bd1e995ull;

double JitterDraw(uint64_t seed, uint64_t counter) {
  const uint64_t h = Mix(seed ^ Mix(counter + kBackoffSalt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double NowMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

Status DistOptions::Validate(const char* algorithm, size_t num_owners) const {
  if (num_owners < 1) {
    return Status::Invalid(algorithm,
                           ": distributed execution requires at least one "
                           "list owner; got num_owners = ",
                           num_owners);
  }
  if (window_rows < 1) {
    return Status::Invalid(algorithm,
                           ": dist window_rows must be >= 1; got window_rows "
                           "= ",
                           window_rows);
  }
  if (!std::isfinite(rpc_deadline_ms) || rpc_deadline_ms <= 0.0) {
    return Status::Invalid(algorithm,
                           ": dist rpc_deadline_ms must be finite and > 0; "
                           "got rpc_deadline_ms = ",
                           rpc_deadline_ms);
  }
  if (rpc_max_attempts < 1) {
    return Status::Invalid(algorithm,
                           ": dist retry budget rpc_max_attempts must be >= 1 "
                           "(the first try is an attempt); got "
                           "rpc_max_attempts = ",
                           rpc_max_attempts);
  }
  if (!std::isfinite(backoff_base_ms) || backoff_base_ms < 0.0) {
    return Status::Invalid(algorithm,
                           ": dist backoff_base_ms must be finite and >= 0; "
                           "got backoff_base_ms = ",
                           backoff_base_ms);
  }
  if (!std::isfinite(hedge_floor_ms) || hedge_floor_ms <= 0.0) {
    return Status::Invalid(algorithm,
                           ": dist hedge timeout floor hedge_floor_ms must be "
                           "> 0 (a zero floor hedges every exchange); got "
                           "hedge_floor_ms = ",
                           hedge_floor_ms);
  }
  if (!std::isfinite(hedge_multiplier) || hedge_multiplier < 1.0) {
    return Status::Invalid(algorithm,
                           ": dist hedge_multiplier must be >= 1 (a hedge "
                           "below the observed p99 races every exchange); got "
                           "hedge_multiplier = ",
                           hedge_multiplier);
  }
  if (replication_factor < 1) {
    return Status::Invalid(algorithm,
                           ": dist replication_factor must be >= 1 (1 means "
                           "unreplicated); got replication_factor = ",
                           replication_factor);
  }
  if (breaker_failures < 1) {
    return Status::Invalid(algorithm,
                           ": dist breaker_failures must be >= 1 (a breaker "
                           "that opens after zero failures never routes "
                           "anywhere); got breaker_failures = ",
                           breaker_failures);
  }
  if (!std::isfinite(breaker_open_ms) || breaker_open_ms < 0.0) {
    return Status::Invalid(algorithm,
                           ": dist breaker_open_ms must be finite and >= 0; "
                           "got breaker_open_ms = ",
                           breaker_open_ms);
  }
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    return Status::Invalid(algorithm,
                           ": dist ewma_alpha must be in (0, 1]; got "
                           "ewma_alpha = ",
                           ewma_alpha);
  }
  return governor.Validate(algorithm);
}

Coordinator::Coordinator(Transport* transport, const DistOptions& options)
    : transport_(transport), options_(options) {}

Status Coordinator::Connect() {
  const size_t owners = transport_->num_owners();
  if (owners == 0) {
    return Status::Invalid("Coordinator: transport has no owners");
  }
  if (options_.replication_factor < 1) {
    return Status::Invalid(
        "Coordinator: dist replication_factor must be >= 1 (1 means "
        "unreplicated); got replication_factor = ",
        options_.replication_factor);
  }
  owner_alive_.assign(owners, 1);
  latency_ring_.assign(owners * kLatencyRing, 0.0);
  latency_count_.assign(owners, 0);
  health_.assign(owners, ReplicaHealth{});
  health_counter_ = 0;
  // Empty until the claims are grouped below, so a handshake-time owner
  // death cannot tally a group loss against a half-built catalog.
  lists_of_.assign(owners, {});
  stats_ = DistStats{};
  backoff_counter_ = 0;

  std::vector<std::vector<size_t>> claims;  // list -> claiming owners, asc
  std::vector<Score> max_score;
  std::vector<Score> min_score;
  n_ = 0;
  for (size_t owner = 0; owner < owners; ++owner) {
    request_.type = MessageType::kHello;
    request_.list_index = 0;
    request_.items.clear();
    TOPK_RETURN_NOT_OK(OwnerRpc(owner, kNoList, request_, &reply_,
                                /*allow_breaker_failover=*/false));
    if (reply_.catalog.empty()) {
      return Status::Invalid("Coordinator: owner ", owner,
                             " advertises no lists");
    }
    for (const ListCatalog& entry : reply_.catalog) {
      const size_t index = entry.list_index;
      if (index >= claims.size()) {
        claims.resize(index + 1);
        max_score.resize(index + 1, 0.0);
        min_score.resize(index + 1, 0.0);
      }
      std::vector<size_t>& group = claims[index];
      if (!group.empty() && group.back() == owner) {
        return Status::Invalid("Coordinator: owner ", owner, " claims list ",
                               index, " twice");
      }
      if (entry.num_items == 0) {
        return Status::Invalid("Coordinator: list ", index, " is empty");
      }
      if (n_ == 0) {
        n_ = entry.num_items;
      } else if (entry.num_items != n_) {
        return Status::Invalid("Coordinator: lists disagree on n (", n_,
                               " vs ", entry.num_items, " on list ", index,
                               ")");
      }
      if (group.empty()) {
        max_score[index] = entry.max_score;
        min_score[index] = entry.min_score;
      } else if (entry.max_score != max_score[index] ||
                 entry.min_score != min_score[index]) {
        // Failover exactness rests on replicas being mirrors of the same
        // immutable list; a catalog disagreement means they are not.
        return Status::Invalid(
            "Coordinator: replicas of list ", index,
            " advertise different catalogs (max ", max_score[index], " vs ",
            entry.max_score, ", min ", min_score[index], " vs ",
            entry.min_score, "); replicas must mirror the same list");
      }
      group.push_back(owner);
    }
  }
  for (size_t i = 0; i < claims.size(); ++i) {
    if (claims[i].size() != options_.replication_factor) {
      return Status::Invalid(
          "Coordinator: list ", i, " is claimed by ", claims[i].size(),
          " owner(s) but replication_factor = ", options_.replication_factor,
          " requires exactly that many replicas per list (lists must cover "
          "0..m-1)");
    }
  }
  replicas_of_ = std::move(claims);
  for (size_t i = 0; i < replicas_of_.size(); ++i) {
    for (size_t owner : replicas_of_[i]) {
      lists_of_[owner].push_back(i);
    }
  }
  primary_of_.resize(replicas_of_.size());
  for (size_t i = 0; i < replicas_of_.size(); ++i) {
    primary_of_[i] = replicas_of_[i][0];
  }
  group_lost_counted_.assign(replicas_of_.size(), 0);
  max_score_ = std::move(max_score);
  min_score_ = std::move(min_score);
  // DeriveScoreFloor over the catalog: the paper's model floor (0) lowered to
  // the smallest advertised local score.
  floor_ = 0.0;
  for (Score s : min_score_) {
    floor_ = std::min(floor_, s);
  }
  connected_ = true;
  return Status::OK();
}

Status Coordinator::ValidateQuery(const char* algorithm,
                                  const TopKQuery& query) const {
  if (!connected_) {
    return Status::Invalid(algorithm,
                           ": Coordinator::Connect() must succeed before "
                           "queries execute");
  }
  if (query.scorer == nullptr) {
    return Status::Invalid(algorithm, ": query has no scorer");
  }
  if (query.k < 1 || query.k > n_) {
    return Status::Invalid(algorithm, ": k must be in [1, ", n_, "]; got k = ",
                           query.k);
  }
  return Status::OK();
}

void Coordinator::BeginQuery() {
  const size_t m = replicas_of_.size();
  const size_t owners = transport_->num_owners();
  stats_ = DistStats{};
  access_ = AccessStats{};
  backoff_counter_ = 0;
  governor_.Arm(options_.governor);
  // Owners start every query alive: a query's death discoveries are its own
  // (the transport's schedule decides what actually answers), mirroring the
  // per-query Arm() of the access-level fault decorator.
  owner_alive_.assign(owners, 1);
  latency_ring_.assign(owners * kLatencyRing, 0.0);
  latency_count_.assign(owners, 0);
  // Health starts every query fresh too: breakers closed, EWMA unseen,
  // every list routed to its lowest-indexed replica.
  health_.assign(owners, ReplicaHealth{});
  health_counter_ = 0;
  group_lost_counted_.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    primary_of_[i] = replicas_of_[i][0];
  }
  window_base_.assign(m, 0);
  window_.resize(m);
  last_scores_.assign(m, 0.0);
  local_.assign(m, 0.0);
  capped_.assign(m, 0.0);
  tmp_.assign(m, 0.0);
}

void Coordinator::FinishQuery(TopKResult* result) const {
  result->stats = access_;
  result->fault_retries = stats_.retries;
}

// --- RPC machinery ---

Status Coordinator::Send(size_t owner, const Request& request, Reply* reply,
                         CallResult* outcome) {
  ++stats_.messages_sent;
  stats_.bytes_sent += request.WireBytes();
  Status status = transport_->Call(owner, request, reply, outcome);
  if (status.ok()) {
    const uint64_t copies = 1 + outcome->duplicate_replies;
    stats_.replies_received += copies;
    stats_.bytes_received += reply->WireBytes() * copies;
    stats_.duplicate_replies += outcome->duplicate_replies;
  }
  return status;
}

double Coordinator::HedgeTimeoutMs(size_t owner) const {
  const size_t count =
      std::min<size_t>(latency_count_[owner], kLatencyRing);
  if (count == 0) {
    return options_.hedge_floor_ms;
  }
  latency_scratch_.assign(latency_ring_.begin() + owner * kLatencyRing,
                          latency_ring_.begin() + owner * kLatencyRing + count);
  const size_t p99 = static_cast<size_t>(
      static_cast<double>(count - 1) * 0.99);
  std::nth_element(latency_scratch_.begin(), latency_scratch_.begin() + p99,
                   latency_scratch_.end());
  return std::max(options_.hedge_floor_ms,
                  options_.hedge_multiplier * latency_scratch_[p99]);
}

void Coordinator::RecordLatency(size_t owner, double latency_ms) {
  latency_ring_[owner * kLatencyRing + latency_count_[owner] % kLatencyRing] =
      latency_ms;
  ++latency_count_[owner];
  // The same successful samples feed the health tracker's EWMA — the
  // healthiest-replica routing signal.
  ReplicaHealth& health = health_[owner];
  health.ewma_ms = health.ewma_set
                       ? options_.ewma_alpha * latency_ms +
                             (1.0 - options_.ewma_alpha) * health.ewma_ms
                       : latency_ms;
  health.ewma_set = true;
}

void Coordinator::KillOwner(size_t owner) {
  if (!owner_alive_[owner]) {
    return;
  }
  owner_alive_[owner] = 0;
  ++stats_.owner_deaths;
  // A list is lost when its LAST replica dies; tally each group once.
  for (size_t list : lists_of_[owner]) {
    if (list < group_lost_counted_.size() && !group_lost_counted_[list] &&
        !ListAlive(list)) {
      group_lost_counted_[list] = 1;
      ++stats_.groups_lost;
    }
  }
}

// --- replica health ---

double Coordinator::HealthJitter() {
  return JitterDraw(options_.health_seed, ++health_counter_);
}

void Coordinator::RecordOutcome(size_t owner, bool success) {
  ReplicaHealth& health = health_[owner];
  if (success) {
    health.consecutive_failures = 0;
    health.breaker = ReplicaHealth::kClosed;
    return;
  }
  ++health.consecutive_failures;
  const bool opens =
      health.breaker == ReplicaHealth::kHalfOpen ||
      (health.breaker == ReplicaHealth::kClosed &&
       health.consecutive_failures >= options_.breaker_failures);
  if (opens) {
    health.breaker = ReplicaHealth::kOpen;
    ++stats_.breaker_opens;
    // Jittered open window, same [1, 1.5) discipline as the backoff: two
    // replicas opened together do not probe in lockstep.
    health.open_until_ms =
        stats_.virtual_ms +
        options_.breaker_open_ms * (1.0 + 0.5 * HealthJitter());
  }
}

bool Coordinator::ProbeDue(size_t owner) const {
  return owner_alive_[owner] != 0 &&
         health_[owner].breaker == ReplicaHealth::kOpen &&
         stats_.virtual_ms >= health_[owner].open_until_ms;
}

void Coordinator::SendProbe(size_t owner) {
  // Half-open: exactly one cheap probe decides whether the replica is
  // readmitted (breaker closes) or benched for another window.
  health_[owner].breaker = ReplicaHealth::kHalfOpen;
  ++stats_.probes_sent;
  probe_request_.type = MessageType::kProbe;
  probe_request_.list_index = 0;
  probe_request_.items.clear();
  CallResult outcome;
  const Status status = Send(owner, probe_request_, &probe_reply_, &outcome);
  const double latency_ms =
      status.ok() ? outcome.latency_ms : options_.rpc_deadline_ms;
  stats_.virtual_ms += latency_ms;
  if (status.ok()) {
    RecordLatency(owner, latency_ms);
  } else {
    ++stats_.timeouts;
  }
  RecordOutcome(owner, status.ok());
}

bool Coordinator::HasClosedAlternative(size_t list, size_t owner) const {
  if (list == kNoList) {
    return false;
  }
  for (size_t sibling : replicas_of_[list]) {
    if (sibling != owner && owner_alive_[sibling] != 0 &&
        health_[sibling].breaker == ReplicaHealth::kClosed) {
      return true;
    }
  }
  return false;
}

size_t Coordinator::HedgeTarget(size_t owner, size_t list) const {
  // PR 8's self-hedge stays the fallback: same owner, second chance. With a
  // live non-open sibling the hedge becomes a failover probe for free — the
  // sibling serves the identical window, so whichever reply wins is correct.
  if (list == kNoList) {
    return owner;
  }
  size_t best = owner;
  double best_ewma = 0.0;
  bool found = false;
  for (size_t sibling : replicas_of_[list]) {
    if (sibling == owner || owner_alive_[sibling] == 0 ||
        health_[sibling].breaker == ReplicaHealth::kOpen) {
      continue;
    }
    const double ewma =
        health_[sibling].ewma_set ? health_[sibling].ewma_ms : 0.0;
    if (!found || ewma < best_ewma) {  // ties: lowest owner index (asc scan)
      found = true;
      best = sibling;
      best_ewma = ewma;
    }
  }
  return best;
}

size_t Coordinator::PickReplica(size_t list) {
  const std::vector<size_t>& group = replicas_of_[list];
  if (group.size() > 1) {
    // Readmission only matters when there is routing to do; at R = 1 the
    // sole replica is always "picked" and probes would just spend wire.
    for (size_t owner : group) {
      if (ProbeDue(owner)) {
        SendProbe(owner);
      }
    }
  }
  const size_t sticky = primary_of_[list];
  if (owner_alive_[sticky] != 0 &&
      health_[sticky].breaker == ReplicaHealth::kClosed) {
    return sticky;  // fault-free runs never leave replica 0 — parity holds
  }
  size_t best = sticky;
  bool best_closed = false;
  double best_ewma = 0.0;
  bool found = false;
  for (size_t owner : group) {
    if (owner_alive_[owner] == 0) {
      continue;
    }
    const bool closed = health_[owner].breaker == ReplicaHealth::kClosed;
    const double ewma = health_[owner].ewma_set ? health_[owner].ewma_ms : 0.0;
    const bool better =
        !found || (closed && !best_closed) ||
        (closed == best_closed && ewma < best_ewma);  // ties: lowest index
    if (better) {
      found = true;
      best = owner;
      best_closed = closed;
      best_ewma = ewma;
    }
  }
  if (found && best != sticky) {
    // The routing decision IS the failover — whether the old primary died,
    // tripped its breaker, or was hedged around, the moment the list's
    // traffic moves to a sibling is counted here (and a probe-driven
    // failback counts the same way).
    primary_of_[list] = best;
    ++stats_.replica_failovers;
  }
  return best;
}

Status Coordinator::Attempt(size_t owner, size_t hedge_owner,
                            const Request& request, Reply* reply,
                            double* latency_ms) {
  CallResult primary;
  Status status = Send(owner, request, reply, &primary);
  // A lost exchange costs the full per-RPC deadline: the caller only learns
  // of the loss when its timer fires.
  const double primary_ms =
      status.ok() ? primary.latency_ms : options_.rpc_deadline_ms;
  const double hedge_after = HedgeTimeoutMs(owner);
  if (!options_.hedging || primary_ms <= hedge_after) {
    RecordOutcome(owner, status.ok());
    *latency_ms = primary_ms;
    return status;
  }
  // The primary outcome outlasts the hedge timeout, so the hedge fired at
  // hedge_after and raced it; the earlier reply wins and the loser's copy is
  // deduped (its bytes were already counted by Send). With replicas the
  // hedge goes to the healthiest live sibling — owners are stateless mirrors
  // of the same immutable list, so either reply is equally correct.
  ++stats_.hedges;
  CallResult hedge;
  Status hedge_status = Send(hedge_owner, request, &hedge_reply_, &hedge);
  if (hedge_owner != owner) {
    RecordOutcome(hedge_owner, hedge_status.ok());
  }
  RecordOutcome(owner, status.ok());
  if (hedge_status.ok()) {
    const double hedge_ms = hedge_after + hedge.latency_ms;
    if (!status.ok() || hedge_ms < primary_ms) {
      ++stats_.hedge_wins;
      if (status.ok()) {
        ++stats_.duplicate_replies;  // the slower primary reply still lands
      }
      if (hedge_owner != owner) {
        RecordLatency(hedge_owner, hedge.latency_ms);
      }
      std::swap(*reply, hedge_reply_);
      *latency_ms = hedge_ms;
      return Status::OK();
    }
    ++stats_.duplicate_replies;  // the slower hedge reply still lands
  }
  *latency_ms = primary_ms;
  return status;
}

Status Coordinator::OwnerRpc(size_t owner, size_t list, const Request& request,
                             Reply* reply, bool allow_breaker_failover) {
  if (!owner_alive_[owner]) {
    return Status::Unavailable("Coordinator: owner ", owner,
                               " was already declared dead");
  }
  const size_t hedge_owner = HedgeTarget(owner, list);
  Status last;
  for (int attempt = 0; attempt < options_.rpc_max_attempts; ++attempt) {
    if (attempt > 0) {
      // Jittered exponential backoff before each retry, charged as virtual
      // wait against the query deadline.
      ++stats_.retries;
      const double jitter =
          JitterDraw(options_.backoff_seed, ++backoff_counter_);
      stats_.virtual_ms += options_.backoff_base_ms *
                           static_cast<double>(uint64_t{1} << (attempt - 1)) *
                           (1.0 + 0.5 * jitter);
    }
    double latency_ms = 0.0;
    last = Attempt(owner, hedge_owner, request, reply, &latency_ms);
    stats_.virtual_ms += latency_ms;
    if (last.ok()) {
      RecordLatency(owner, latency_ms);
      return last;
    }
    ++stats_.timeouts;
    if (allow_breaker_failover &&
        health_[owner].breaker == ReplicaHealth::kOpen &&
        HasClosedAlternative(list, owner)) {
      // The breaker opened mid-RPC and a healthy sibling can take over:
      // abandon the replica WITHOUT declaring it dead, so a half-open probe
      // can readmit it later. Death is reserved for owners that exhaust the
      // retry budget with nowhere else to go.
      return Status::Unavailable("Coordinator: breaker open on owner ", owner,
                                 " after ", attempt + 1,
                                 " attempts; failing over to a sibling "
                                 "replica of list ",
                                 list);
    }
  }
  KillOwner(owner);
  return Status::Unavailable("Coordinator: owner ", owner,
                             " declared permanently dead after ",
                             options_.rpc_max_attempts,
                             " attempts; last error: ", last.message());
}

Status Coordinator::ListRpc(size_t list, const Request& request, Reply* reply) {
  // The failover ladder. Each rung: route to the healthiest replica
  // (PickReplica) and run the robust per-owner RPC there. A rung that fails
  // either opened a breaker (recoverable — the replica survives for a later
  // probe) or killed the owner; both re-route to the next survivor, whose
  // identical sorted cursor resumes at the exact window position. The
  // breaker budget (one recoverable failover per replica) bounds the walk:
  // past it every further failure is terminal, so the ladder ends in an
  // answer or a fully dead group (Unavailable -> the degrade path).
  int breaker_budget = static_cast<int>(replicas_of_[list].size());
  Status last;
  while (ListAlive(list)) {
    const size_t owner = PickReplica(list);
    last = OwnerRpc(owner, list, request, reply,
                    /*allow_breaker_failover=*/breaker_budget > 0);
    if (last.ok() || !last.IsUnavailable()) {
      return last;
    }
    if (owner_alive_[owner]) {
      --breaker_budget;
    }
    // The re-route itself (to a survivor, or out of the dead group) is
    // what the next PickReplica / the caller's degrade path does; the
    // failover counter ticks where the routing actually changes.
  }
  if (last.ok()) {
    // The list was already dead on entry (every replica declared dead by an
    // earlier RPC) — no rung ever ran.
    return Status::Unavailable("Coordinator: list ", list,
                               " lost its whole replica group");
  }
  return last;
}

// --- sorted-access windows ---

Status Coordinator::WindowEntry(size_t list_index, Position position,
                                ListEntry* entry) {
  std::vector<ListEntry>& window = window_[list_index];
  const Position base = window_base_[list_index];
  if (base == 0 || position < base || position >= base + window.size()) {
    request_.type = MessageType::kSortedWindow;
    request_.list_index = static_cast<uint32_t>(list_index);
    request_.start = position;
    request_.max_entries = static_cast<uint32_t>(std::min<uint64_t>(
        options_.window_rows, n_ - (position - 1)));
    request_.items.clear();
    TOPK_RETURN_NOT_OK(ListRpc(list_index, request_, &reply_));
    window.assign(reply_.entries.begin(), reply_.entries.end());
    window_base_[list_index] = position;
  }
  *entry = window[position - window_base_[list_index]];
  return Status::OK();
}

// --- distributed BPA ---

Result<TopKResult> Coordinator::ExecuteBpa(const TopKQuery& query) {
  TOPK_RETURN_NOT_OK(
      options_.Validate("DistBPA", transport_->num_owners()));
  TOPK_RETURN_NOT_OK(ValidateQuery("DistBPA", query));
  const auto start = std::chrono::steady_clock::now();
  BeginQuery();

  TopKResult result;
  const size_t m = num_lists();
  const size_t n = n_;
  const Scorer& scorer = *query.scorer;

  buffer_.Reset(query.k);
  pos_seen_.resize(m);
  pos_score_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    pos_seen_[i].assign(n + 1, 0);
    pos_score_[i].assign(n + 1, 0.0);
  }
  best_pos_.assign(m, 0);
  memo_state_.assign(n, 0);
  memo_score_.assign(n, 0.0);
  batch_items_.resize(m);
  batch_pending_.resize(m);

  // λ cache, as in the single-node loop: best positions only grow, so their
  // sum is an exact change signature.
  uint64_t bp_signature = ~uint64_t{0};
  Score lambda = std::numeric_limits<Score>::infinity();
  Completion reason = Completion::kExact;
  Position depth = 0;
  bool stopped = false;
  Status io_status;  // first owner-death error; triggers the degraded path

  while (!stopped && depth < n) {
    ++depth;
    ++stats_.rounds;
    pending_.clear();
    for (size_t j = 0; j < m; ++j) {
      batch_items_[j].clear();
      batch_pending_[j].clear();
    }
    // The row's m sorted accesses, each served from its list's window buffer
    // (one kSortedWindow message per window_rows rows per list).
    for (size_t i = 0; i < m && io_status.ok(); ++i) {
      ListEntry entry;
      io_status = WindowEntry(i, depth, &entry);
      if (!io_status.ok()) {
        break;
      }
      ++access_.sorted_accesses;
      pos_seen_[i][depth] = 1;
      pos_score_[i][depth] = entry.score;
      if (memo_state_[entry.item] == 2) {
        // Already resolved in an earlier row: only the buffer offer remains
        // (its positions were marked when it was resolved).
        buffer_.Offer(entry.item, memo_score_[entry.item]);
        continue;
      }
      if (memo_state_[entry.item] == 1) {
        continue;  // first seen earlier in this same row; resolution pending
      }
      memo_state_[entry.item] = 1;
      const uint32_t p = static_cast<uint32_t>(pending_.size());
      pending_.push_back(
          PendingItem{entry.item, static_cast<uint32_t>(i), entry.score});
      for (size_t j = 0; j < m; ++j) {
        if (j != i) {
          batch_items_[j].push_back(entry.item);
          batch_pending_[j].push_back(p);
        }
      }
    }
    if (!io_status.ok()) {
      break;
    }
    // Row-end batched resolution: one kRandomLookup message per list covers
    // every item first seen this row. Deferring the lookups from first-sight
    // to row end is invisible to the algorithm — λ and the best positions
    // are only read at the row boundary, and the buffer's content is a
    // function of the offered (item, score) set, not of offer order — so
    // the batched run's stop depth and answers are byte-identical to the
    // single-node per-item resolution.
    pending_rows_.assign(pending_.size() * m, 0.0);
    for (size_t j = 0; j < m && io_status.ok(); ++j) {
      if (batch_items_[j].empty()) {
        continue;
      }
      request_.type = MessageType::kRandomLookup;
      request_.list_index = static_cast<uint32_t>(j);
      request_.items = batch_items_[j];
      io_status = ListRpc(j, request_, &reply_);
      if (!io_status.ok()) {
        break;
      }
      access_.random_accesses += reply_.lookups.size();
      for (size_t idx = 0; idx < reply_.lookups.size(); ++idx) {
        const ItemLookup lookup = reply_.lookups[idx];
        pos_seen_[j][lookup.position] = 1;
        pos_score_[j][lookup.position] = lookup.score;
        pending_rows_[static_cast<size_t>(batch_pending_[j][idx]) * m + j] =
            lookup.score;
      }
    }
    if (!io_status.ok()) {
      break;
    }
    for (size_t p = 0; p < pending_.size(); ++p) {
      const PendingItem& pending = pending_[p];
      // Accumulation order j = 0..m-1 with the sorted entry's score at its
      // first-seen list — the exact arithmetic of the single-node loop.
      for (size_t j = 0; j < m; ++j) {
        local_[j] = j == pending.first_list ? pending.first_score
                                            : pending_rows_[p * m + j];
      }
      const Score overall = scorer.Combine(local_.data(), m);
      memo_state_[pending.item] = 2;
      memo_score_[pending.item] = overall;
      buffer_.Offer(pending.item, overall);
    }
    // Row end: advance best positions (largest prefix of seen positions) and
    // recompute λ only when some best position moved.
    uint64_t signature = 0;
    for (size_t i = 0; i < m; ++i) {
      Position bp = best_pos_[i];
      while (bp + 1 <= n && pos_seen_[i][bp + 1]) {
        ++bp;
      }
      best_pos_[i] = bp;
      signature += bp;
    }
    if (signature != bp_signature) {
      bp_signature = signature;
      for (size_t i = 0; i < m; ++i) {
        local_[i] = pos_score_[i][best_pos_[i]];
      }
      lambda = scorer.Combine(local_.data(), m);
    }
    if (buffer_.HasKAbove(lambda)) {
      stopped = true;
    }
    if (!stopped &&
        (reason = governor_.Charge(access_, 0, stats_.virtual_ms)) !=
            Completion::kExact) {
      break;
    }
  }

  if (!io_status.ok()) {
    if (!io_status.IsUnavailable()) {
      return io_status;  // a protocol bug, not a fault — surface it
    }
    TOPK_RETURN_NOT_OK(DegradeToNra(query, &result));
    FinishQuery(&result);
    result.elapsed_ms = NowMs(start);
    return result;
  }

  buffer_.AppendSortedItems(&result.items);
  result.stop_position = depth;
  Position min_bp = static_cast<Position>(n);
  for (size_t i = 0; i < m; ++i) {
    min_bp = std::min(min_bp, best_pos_[i]);
  }
  result.min_best_position = min_bp;
  if (reason != Completion::kExact) {
    const Score kth = result.items.empty()
                          ? -std::numeric_limits<Score>::infinity()
                          : result.items.back().score;
    CertifyAnytime(reason, kth, lambda, &result);
  }
  FinishQuery(&result);
  result.elapsed_ms = NowMs(start);
  return result;
}

// --- distributed TPUT ---

Result<TopKResult> Coordinator::ExecuteTput(const TopKQuery& query) {
  TOPK_RETURN_NOT_OK(
      options_.Validate("DistTPUT", transport_->num_owners()));
  TOPK_RETURN_NOT_OK(ValidateQuery("DistTPUT", query));
  if (query.scorer->name() != "sum") {
    return Status::NotImplemented(
        "DistTPUT thresholding (τ1/m) is defined for summation scoring; got "
        "'",
        query.scorer->name(), "'");
  }
  if (num_lists() > CandidatePool::kMaxLists) {
    return Status::NotImplemented(
        "DistTPUT candidate bookkeeping keeps per-candidate seen masks in a "
        "single 64-bit word, capping queries at ",
        CandidatePool::kMaxLists, " lists; got ", num_lists());
  }
  const auto start = std::chrono::steady_clock::now();
  BeginQuery();

  TopKResult result;
  const size_t m = num_lists();
  const size_t n = n_;
  pool_.Reset(m, query.k, floor_, /*eager_groups=*/false);
  buffer_.Reset(query.k);
  for (size_t i = 0; i < m; ++i) {
    last_scores_[i] = max_score_[i];
  }
  Position depth = std::min<Position>(static_cast<Position>(query.k),
                                      static_cast<Position>(n));

  // Identical to the single-node record(): the first sighting publishes the
  // full-row sum (floor cells included, index order) as the lower bound.
  const auto record = [&](size_t list_index, ItemId item, Score score) {
    const uint32_t slot = pool_.FindOrInsert(item);
    if (pool_.SetSeen(slot, list_index, score)) {
      Score sum = 0.0;
      const Score* row = pool_.row(slot);
      for (size_t j = 0; j < m; ++j) {
        sum += row[j];
      }
      pool_.OfferLower(slot, sum);
    }
  };
  const auto anytime = [&](Completion why) {
    winners_.clear();
    pool_.AppendHeapItems(&winners_);
    Score kth = std::numeric_limits<Score>::infinity();
    result.items.reserve(winners_.size());
    for (ItemId item : winners_) {
      const Score lower = pool_.lower(pool_.FindSlot(item));
      kth = std::min(kth, lower);
      result.items.push_back(ResultItem{item, lower});
    }
    if (result.items.empty()) {
      kth = -std::numeric_limits<Score>::infinity();
    }
    Score upper = 0.0;
    for (size_t i = 0; i < m; ++i) {
      upper += last_scores_[i];
    }
    for (uint32_t slot = 0; slot < pool_.size(); ++slot) {
      if (!pool_.InHeap(slot)) {
        upper = std::max(upper, SumUpperBound(pool_, slot, last_scores_));
      }
    }
    CertifyAnytime(why, kth, upper, &result);
    result.stop_position = depth;
  };

  Completion reason = Completion::kExact;
  Status io_status;

  // ---- Phase 1: top-k prefix of every list, window-batched. ----
  ++stats_.rounds;
  for (size_t i = 0; i < m && io_status.ok(); ++i) {
    Position p = 1;
    while (p <= depth) {
      request_.type = MessageType::kSortedWindow;
      request_.list_index = static_cast<uint32_t>(i);
      request_.start = p;
      request_.max_entries = static_cast<uint32_t>(std::min<uint64_t>(
          options_.window_rows, depth - p + 1));
      request_.items.clear();
      io_status = ListRpc(i, request_, &reply_);
      if (!io_status.ok()) {
        break;
      }
      for (const ListEntry& entry : reply_.entries) {
        ++access_.sorted_accesses;
        last_scores_[i] = entry.score;
        record(i, entry.item, entry.score);
      }
      p += static_cast<Position>(reply_.entries.size());
      if ((reason = governor_.Charge(access_, pool_.LiveCandidateBytes(),
                                     stats_.virtual_ms)) !=
          Completion::kExact) {
        anytime(reason);
        FinishQuery(&result);
        result.elapsed_ms = NowMs(start);
        return result;
      }
    }
  }
  Score threshold = 0.0;
  if (io_status.ok()) {
    // Phase 1 saw >= k distinct items (k rows of one list are distinct), so
    // the heap is full and its weakest entry is τ1.
    const Score tau1 = pool_.KthLower();

    // ---- Phase 2: drain every list down to local score >= τ1/m. The
    // threshold stop runs owner-side (kDrain), so a drain costs one message
    // per window_rows rows instead of one per row. ----
    ++stats_.rounds;
    threshold = tau1 / static_cast<Score>(m);
    list_depths_.assign(m, depth);
    // last_scores_[i] already holds the phase-1 cursor score (the entry at
    // the shared phase-1 depth), exactly the single-node re-seed.
    for (size_t i = 0; i < m && io_status.ok(); ++i) {
      while (list_depths_[i] < n && last_scores_[i] >= threshold) {
        const Position drain_start = list_depths_[i] + 1;
        request_.type = MessageType::kDrain;
        request_.list_index = static_cast<uint32_t>(i);
        request_.start = drain_start;
        request_.max_entries = static_cast<uint32_t>(std::min<uint64_t>(
            options_.window_rows, n - list_depths_[i]));
        request_.threshold = threshold;
        request_.items.clear();
        io_status = ListRpc(i, request_, &reply_);
        if (!io_status.ok()) {
          break;
        }
        for (size_t off = 0; off < reply_.entries.size(); ++off) {
          const ListEntry& entry = reply_.entries[off];
          ++list_depths_[i];
          ++access_.sorted_accesses;
          record(i, entry.item, entry.score);
          last_scores_[i] = entry.score;
          depth = std::max(depth,
                           static_cast<Position>(drain_start + off));
        }
        if ((reason = governor_.Charge(access_, pool_.LiveCandidateBytes(),
                                       stats_.virtual_ms)) !=
            Completion::kExact) {
          anytime(reason);
          FinishQuery(&result);
          result.elapsed_ms = NowMs(start);
          return result;
        }
      }
    }
  }
  if (io_status.ok()) {
    const Score tau2 = pool_.KthLower();

    // ---- Phase 3: resolve the τ2 survivors exactly, lookups batched per
    // list. Upper bound: unknown lists contribute min(last seen score,
    // threshold ceiling) — after phase 2 any unseen score in list i is
    // < max(last_scores[i], threshold). The survivor set comes from the
    // plain exact sweep over every slot: identical to the single-node
    // heap-scan plus margined group walk, whose margin only skips members
    // that provably fail the same exact SumUpperBound test. ----
    ++stats_.rounds;
    for (size_t i = 0; i < m; ++i) {
      capped_[i] = std::min(last_scores_[i], threshold);
    }
    survivors_.clear();
    for (uint32_t slot = 0; slot < pool_.size(); ++slot) {
      if (SumUpperBound(pool_, slot, capped_) >= tau2) {
        survivors_.push_back(slot);
      }
    }
    batch_items_.resize(m);
    batch_pending_.resize(m);
    for (size_t j = 0; j < m; ++j) {
      batch_items_[j].clear();
      batch_pending_[j].clear();
    }
    for (uint32_t s = 0; s < survivors_.size(); ++s) {
      const uint32_t slot = survivors_[s];
      const uint64_t mask = pool_.mask(slot);
      for (size_t j = 0; j < m; ++j) {
        if (!(mask >> j & 1)) {
          batch_items_[j].push_back(pool_.item_at(slot));
          batch_pending_[j].push_back(s);
        }
      }
    }
    pending_rows_.assign(survivors_.size() * m, 0.0);
    for (size_t j = 0; j < m && io_status.ok(); ++j) {
      if (batch_items_[j].empty()) {
        continue;
      }
      request_.type = MessageType::kRandomLookup;
      request_.list_index = static_cast<uint32_t>(j);
      request_.items = batch_items_[j];
      io_status = ListRpc(j, request_, &reply_);
      if (!io_status.ok()) {
        break;
      }
      access_.random_accesses += reply_.lookups.size();
      for (size_t idx = 0; idx < reply_.lookups.size(); ++idx) {
        pending_rows_[static_cast<size_t>(batch_pending_[j][idx]) * m + j] =
            reply_.lookups[idx].score;
      }
      if ((reason = governor_.Charge(access_, pool_.LiveCandidateBytes(),
                                     stats_.virtual_ms)) !=
          Completion::kExact) {
        anytime(reason);
        FinishQuery(&result);
        result.elapsed_ms = NowMs(start);
        return result;
      }
    }
    if (io_status.ok()) {
      for (uint32_t s = 0; s < survivors_.size(); ++s) {
        const uint32_t slot = survivors_[s];
        const Score* row = pool_.row(slot);
        const uint64_t mask = pool_.mask(slot);
        // Index-order interleaved sum, exactly the single-node resolution
        // arithmetic (known cells from the row, the rest from lookups).
        Score sum = 0.0;
        for (size_t j = 0; j < m; ++j) {
          sum += (mask >> j & 1) ? row[j] : pending_rows_[s * m + j];
        }
        buffer_.Offer(pool_.item_at(slot), sum);
      }
    }
  }

  if (!io_status.ok()) {
    if (!io_status.IsUnavailable()) {
      return io_status;  // a protocol bug, not a fault — surface it
    }
    TOPK_RETURN_NOT_OK(DegradeToNra(query, &result));
    FinishQuery(&result);
    result.elapsed_ms = NowMs(start);
    return result;
  }

  buffer_.AppendSortedItems(&result.items);
  result.stop_position = depth;
  FinishQuery(&result);
  result.elapsed_ms = NowMs(start);
  return result;
}

// --- shared degraded path ---

Status Coordinator::DegradeToNra(const TopKQuery& query, TopKResult* result) {
  const size_t m = num_lists();
  const size_t n = n_;
  const Scorer& scorer = *query.scorer;
  result->items.clear();

  if (m > CandidatePool::kMaxLists) {
    // No pool-based fallback exists beyond the mask width; surface the
    // original failure semantics instead.
    return Status::Unavailable(
        "Coordinator: degraded NRA needs candidate-pool bookkeeping, which "
        "caps queries at ",
        CandidatePool::kMaxLists, " lists; got ", m);
  }

  // Restart from scratch over the survivors (the same re-run discipline as
  // the single-node engine's failover). Dead lists are bounded at their
  // *advertised maximum*: the fresh pool has forgotten everything the failed
  // run learned, so a tighter (cursor-score) bound would be unsound — any
  // unseen item could hide anywhere in a dead list. A list that dies during
  // this loop freezes at its current cursor score instead, which is sound
  // in place: this pool has consumed that prefix, so unseen items of that
  // list really are bounded by the cursor.
  pool_.Reset(m, query.k, floor_, /*eager_groups=*/false);
  list_depths_.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    last_scores_[i] = max_score_[i];
  }
  tmp_.assign(m, 0.0);
  Completion reason = Completion::kListFailure;

  bool done = false;
  while (!done) {
    ++stats_.rounds;
    for (size_t i = 0; i < m && !done; ++i) {
      if (!ListAlive(i) || list_depths_[i] >= n) {
        continue;
      }
      request_.type = MessageType::kSortedWindow;
      request_.list_index = static_cast<uint32_t>(i);
      request_.start = list_depths_[i] + 1;
      request_.max_entries = static_cast<uint32_t>(
          std::min<uint64_t>(options_.window_rows, n - list_depths_[i]));
      request_.items.clear();
      Status status = ListRpc(i, request_, &reply_);
      if (!status.ok()) {
        if (!status.IsUnavailable()) {
          return status;
        }
        // The whole replica group died; the list freezes at its cursor and
        // the scan continues over the survivors.
        continue;
      }
      for (const ListEntry& entry : reply_.entries) {
        ++list_depths_[i];
        ++access_.sorted_accesses;
        const uint32_t slot = pool_.FindOrInsert(entry.item);
        if (pool_.SetSeen(slot, i, entry.score)) {
          pool_.OfferLower(slot, scorer.Combine(pool_.row(slot), m));
        }
        last_scores_[i] = entry.score;
      }
      const Completion tripped =
          governor_.Charge(access_, pool_.LiveCandidateBytes(),
                           stats_.virtual_ms);
      if (tripped != Completion::kExact) {
        reason = tripped;  // the governor's trip outranks the failure tag
        done = true;
      }
    }
    if (done) {
      break;
    }
    bool exhausted = true;
    for (size_t i = 0; i < m; ++i) {
      if (ListAlive(i) && list_depths_[i] < n) {
        exhausted = false;
        break;
      }
    }
    if (exhausted) {
      break;
    }
    // NRA stop rule over what is still scannable: heap full, no pool
    // candidate blocks, and no never-seen item can beat the k-th lower
    // bound. With a dead list pinned at its advertised max this rarely
    // fires — the loop then drains the survivors and exits exhausted, and
    // the certification below reports exactly how tight the answer is.
    if (pool_.HeapFull() &&
        !PruneAndFindBlocker(pool_, scorer, last_scores_, tmp_) &&
        pool_.KthLower() >= scorer.Combine(last_scores_.data(), m)) {
      break;
    }
  }

  winners_.clear();
  pool_.AppendHeapItems(&winners_);
  Score kth = std::numeric_limits<Score>::infinity();
  result->items.reserve(winners_.size());
  for (ItemId item : winners_) {
    const Score lower = pool_.lower(pool_.FindSlot(item));
    kth = std::min(kth, lower);
    result->items.push_back(ResultItem{item, lower});
  }
  if (result->items.empty()) {
    kth = -std::numeric_limits<Score>::infinity();
  }
  Score upper = scorer.Combine(last_scores_.data(), m);
  for (uint32_t slot = 0; slot < pool_.size(); ++slot) {
    if (!pool_.InHeap(slot)) {
      upper = std::max(upper,
                       PoolUpperBound(pool_, slot, scorer, last_scores_, tmp_));
    }
  }
  CertifyAnytime(reason, kth, upper, result);
  result->failed_over = true;
  uint32_t dead = 0;
  for (size_t i = 0; i < m; ++i) {
    if (!ListAlive(i)) {
      ++dead;
    }
  }
  result->dead_lists = dead;
  Position stop = 0;
  for (size_t i = 0; i < m; ++i) {
    stop = std::max(stop, list_depths_[i]);
  }
  result->stop_position = stop;
  return Status::OK();
}

}  // namespace topk
