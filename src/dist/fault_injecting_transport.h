// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// FaultInjectingTransport: a seeded, deterministic fault decorator over any
// Transport — the message-layer sibling of FaultInjectingAccessEngine. It
// drops messages, delays deliveries, duplicates replies, and kills owners
// permanently, all as pure hashes of (seed, owner, per-owner message counter)
// using the same splitmix64 discipline, so a fault schedule replays
// message-for-message from its seed.
//
// Death contract (mirrors the access-engine decorator): an owner serves every
// message up to its precomputed death point and then flips to dead; every
// later Call() fails Unavailable with zero reported latency — a dead owner
// looks exactly like a black hole, so the caller charges its own RPC deadline
// for the wait, and only its retry budget can conclude death.
//
// Death-window counter semantics: a death point is a count on ITS OWNER'S
// OWN message axis, not the transport-wide one. Every owner keeps a private
// served-message counter, the death point drawn from
// [death_min_messages, death_max_messages] (or pinned by a targeted kill) is
// compared against that private counter only, and calls to other owners
// never advance it. Two owners given the same window therefore die after
// serving their own Nth message each, regardless of how calls interleave
// across owners — replica-targeted plans can kill exactly one replica of a
// group without the sibling's traffic dragging the window forward.
// (Pinned by DistFaultTransportTest.DeathWindowsCountPerOwnerMessages.)

#ifndef TOPK_DIST_FAULT_INJECTING_TRANSPORT_H_
#define TOPK_DIST_FAULT_INJECTING_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"

namespace topk {

/// A seeded, deterministic message-fault schedule. Rates are per-message (or
/// per-owner for owner_death_rate) probabilities in [0, 1]; a
/// default-constructed plan injects nothing.
struct TransportFaultPlan {
  static constexpr size_t kNoOwner = static_cast<size_t>(-1);

  /// Seed of the schedule; same seed + same plan => same faults, always.
  uint64_t seed = 1;

  /// Probability that one message is lost in flight (request or reply — the
  /// caller cannot tell, and must not: at-most-once delivery is the model).
  double drop_rate = 0.0;

  /// Probability that a delivered exchange is delayed by delay_ms extra
  /// virtual milliseconds (a straggler; hedging's reason to exist).
  double delay_rate = 0.0;
  double delay_ms = 5.0;

  /// Probability that a delivered reply arrives more than once (the
  /// coordinator dedupes and counts the extra bytes).
  double duplicate_rate = 0.0;

  /// Probability that an owner dies permanently, and the message-count
  /// window [death_min_messages, death_max_messages] in which its
  /// (deterministic) death point is drawn. Each owner serves >= 1 message.
  double owner_death_rate = 0.0;
  uint64_t death_min_messages = 1;
  uint64_t death_max_messages = 256;

  /// Deterministic targeted kill: owner `kill_owner` dies permanently after
  /// serving exactly `kill_after_messages` messages (>= 1). kNoOwner disables.
  size_t kill_owner = kNoOwner;
  uint64_t kill_after_messages = 1;

  /// Additional deterministic targeted kills, each after its own
  /// `kill_after_messages` served messages (per-owner counters — see the
  /// death-window note above). Listing every replica owner of one list is
  /// the correlated whole-group-death scenario the coordinator's degrade
  /// path certifies against.
  std::vector<size_t> kill_owners;

  /// Flapping: when > 0, deaths are temporary — a down owner rejects
  /// exactly `flap_revive_calls` calls, then recovers and serves again; its
  /// next death point is redrawn from the death window past the revival
  /// (per-owner revival counters keep the redraws deterministic under any
  /// call interleaving). Requires a death source (owner_death_rate > 0 or a
  /// targeted kill) — a flap plan without deaths never flaps and is
  /// rejected by Validate().
  uint64_t flap_revive_calls = 0;

  /// True when the plan injects anything at all.
  bool enabled() const {
    return drop_rate > 0.0 || delay_rate > 0.0 || duplicate_rate > 0.0 ||
           owner_death_rate > 0.0 || kill_owner != kNoOwner ||
           !kill_owners.empty();
  }

  /// Validates the plan for `algorithm` against a transport with
  /// `num_owners` owners; messages name the algorithm, knob and value.
  Status Validate(const char* algorithm, size_t num_owners) const;
};

/// Counters of what the schedule actually injected since Arm().
struct TransportFaultStats {
  uint64_t dropped_messages = 0;
  uint64_t delayed_messages = 0;
  uint64_t duplicated_replies = 0;
  uint32_t dead_owners = 0;     ///< death events (a flapper counts each one)
  uint32_t owner_revivals = 0;  ///< flapping recoveries
};

class FaultInjectingTransport : public Transport {
 public:
  /// Decorates `inner` (not owned; must outlive this transport) and arms the
  /// schedule: per-owner counters reset, death points drawn from the plan.
  FaultInjectingTransport(Transport* inner, const TransportFaultPlan& plan);

  /// Re-arms the same plan from scratch (fresh counters and death points) —
  /// one armed period per query keeps schedules independent across queries.
  void Arm();

  size_t num_owners() const override { return inner_->num_owners(); }

  /// True while `owner` has not yet died.
  bool OwnerAlive(size_t owner) const { return alive_[owner] != 0; }

  const TransportFaultStats& fault_stats() const { return stats_; }

  Status Call(size_t owner, const Request& request, Reply* reply,
              CallResult* result) override;

 private:
  /// The owner's targeted kill point (the tightest of kill_owner /
  /// kill_owners naming it), or ~0 when untargeted.
  uint64_t TargetedKillAt(size_t owner) const;

  Transport* inner_;
  TransportFaultPlan plan_;
  TransportFaultStats stats_;
  std::vector<uint64_t> served_;    // messages served, per owner (see header)
  std::vector<uint64_t> death_at_;  // owner dies after serving this many
  std::vector<uint8_t> alive_;
  std::vector<uint64_t> down_left_;  // flapping: rejected calls until revival
  std::vector<uint64_t> revivals_;   // flapping: per-owner revival count
};

}  // namespace topk

#endif  // TOPK_DIST_FAULT_INJECTING_TRANSPORT_H_
