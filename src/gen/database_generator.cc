// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "gen/database_generator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "gen/distributions.h"
#include "lists/sorted_list.h"

namespace topk {

Database MakeUniformDatabase(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<SortedList> lists;
  lists.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    lists.push_back(SortedList::FromScores(UniformScoreVector(n, &rng)));
  }
  return Database::Make(std::move(lists)).ValueOrDie();
}

Database MakeGaussianDatabase(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<SortedList> lists;
  lists.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    lists.push_back(SortedList::FromScores(GaussianScoreVector(n, &rng)));
  }
  return Database::Make(std::move(lists)).ValueOrDie();
}

Database MakeZipfDatabase(size_t n, size_t m, uint64_t seed, double theta) {
  Rng rng(seed);
  const std::vector<Score> zipf = ZipfScoreVector(n, theta);
  std::vector<SortedList> lists;
  lists.reserve(m);
  for (size_t li = 0; li < m; ++li) {
    // An independent permutation per list: entry at rank p is a random item
    // with the rank's Zipf score. FromEntries validates the permutation.
    const std::vector<uint32_t> perm =
        rng.Permutation(static_cast<uint32_t>(n));
    std::vector<ListEntry> entries(n);
    for (size_t p = 0; p < n; ++p) {
      entries[p] = ListEntry{static_cast<ItemId>(perm[p]), zipf[p]};
    }
    lists.push_back(SortedList::FromEntries(std::move(entries)).ValueOrDie());
  }
  return Database::Make(std::move(lists)).ValueOrDie();
}

namespace {

// Nearest free position to `target` in the free set; ties prefer the lower
// position. Removes and returns the chosen position.
Position TakeClosestFree(std::set<Position>* free_positions, Position target) {
  auto hi = free_positions->lower_bound(target);
  Position chosen;
  if (hi == free_positions->end()) {
    chosen = *std::prev(hi);
  } else if (hi == free_positions->begin()) {
    chosen = *hi;
  } else {
    const Position above = *hi;
    const Position below = *std::prev(hi);
    const Position dist_above = above - target;
    const Position dist_below = target - below;
    chosen = (dist_below <= dist_above) ? below : above;
  }
  free_positions->erase(chosen);
  return chosen;
}

}  // namespace

Result<Database> MakeCorrelatedDatabase(const CorrelatedConfig& config) {
  const size_t n = config.n;
  const size_t m = config.m;
  if (n == 0 || m == 0) {
    return Status::Invalid("correlated database needs n > 0 and m > 0");
  }
  if (config.alpha < 0.0 || config.alpha > 1.0) {
    return Status::Invalid("alpha must be in [0, 1], got ", config.alpha);
  }
  if (config.zipf_theta < 0.0) {
    return Status::Invalid("zipf_theta must be >= 0, got ", config.zipf_theta);
  }
  Rng rng(config.seed);

  // Positions in list 1: a random permutation (position_in_l1[item] is
  // 1-based).
  std::vector<Position> position_in_l1(n);
  {
    std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      position_in_l1[perm[i]] = static_cast<Position>(i + 1);
    }
  }

  // Maximum offset n*alpha (at least 1 so the draw interval is non-empty).
  const uint64_t max_offset = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(static_cast<double>(n) *
                                            config.alpha)));

  const std::vector<Score> zipf = ZipfScoreVector(n, config.zipf_theta);

  std::vector<SortedList> lists;
  lists.reserve(m);

  // List 1 directly from the permutation.
  {
    std::vector<ListEntry> entries(n);
    for (ItemId item = 0; item < n; ++item) {
      const Position p = position_in_l1[item];
      entries[p - 1] = ListEntry{item, zipf[p - 1]};
    }
    TOPK_ASSIGN_OR_RETURN(SortedList list,
                          SortedList::FromEntries(std::move(entries)));
    lists.push_back(std::move(list));
  }

  // Lists 2..m: shifted placements, closest free position on collision.
  // Items are placed in order of their list-1 position (deterministic).
  std::vector<ItemId> items_by_l1_position(n);
  for (ItemId item = 0; item < n; ++item) {
    items_by_l1_position[position_in_l1[item] - 1] = item;
  }
  for (size_t li = 1; li < m; ++li) {
    std::set<Position> free_positions;
    for (size_t p = 1; p <= n; ++p) {
      free_positions.insert(free_positions.end(), static_cast<Position>(p));
    }
    std::vector<ListEntry> entries(n);
    for (ItemId item : items_by_l1_position) {
      const Position p1 = position_in_l1[item];
      const uint64_t r = 1 + rng.NextBounded(max_offset);
      const bool up = rng.NextBool();
      int64_t target = static_cast<int64_t>(p1) +
                       (up ? static_cast<int64_t>(r)
                           : -static_cast<int64_t>(r));
      target = std::clamp<int64_t>(target, 1, static_cast<int64_t>(n));
      const Position p =
          TakeClosestFree(&free_positions, static_cast<Position>(target));
      entries[p - 1] = ListEntry{item, zipf[p - 1]};
    }
    TOPK_ASSIGN_OR_RETURN(SortedList list,
                          SortedList::FromEntries(std::move(entries)));
    lists.push_back(std::move(list));
  }
  return Database::Make(std::move(lists));
}

std::string ToString(DatabaseKind kind) {
  switch (kind) {
    case DatabaseKind::kUniform:
      return "uniform";
    case DatabaseKind::kGaussian:
      return "gaussian";
    case DatabaseKind::kCorrelated:
      return "correlated";
    case DatabaseKind::kZipf:
      return "zipf";
  }
  return "unknown";
}

bool ParseDatabaseKind(const std::string& name, DatabaseKind* kind) {
  for (DatabaseKind candidate :
       {DatabaseKind::kUniform, DatabaseKind::kGaussian,
        DatabaseKind::kCorrelated, DatabaseKind::kZipf}) {
    if (name == ToString(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

Database MakeDatabaseOfKind(DatabaseKind kind, size_t n, size_t m,
                            uint64_t seed) {
  switch (kind) {
    case DatabaseKind::kUniform:
      return MakeUniformDatabase(n, m, seed);
    case DatabaseKind::kGaussian:
      return MakeGaussianDatabase(n, m, seed);
    case DatabaseKind::kCorrelated: {
      CorrelatedConfig config;
      config.n = n;
      config.m = m;
      config.alpha = 0.01;
      config.seed = seed;
      return MakeCorrelatedDatabase(config).ValueOrDie();
    }
    case DatabaseKind::kZipf:
      return MakeZipfDatabase(n, m, seed);
  }
  return Database();
}

}  // namespace topk
