// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// The paper's worked-example databases (Figure 1 and Figure 2), reconstructed
// exactly for the visible ten positions of each list. The figures elide
// positions 11+ ("..."); a valid database needs every item in every list, so
// positions 11-14 are completed with the items missing from each list's
// visible prefix, in item-id order, with scores 4, 3, 2, 1. The completion is
// below every visible score and cannot influence any behaviour the paper
// reports (see DESIGN.md, "Paper-fixture completion").
//
// Item ids map the paper's d1..d14 to 0..13.

#ifndef TOPK_GEN_PAPER_FIXTURES_H_
#define TOPK_GEN_PAPER_FIXTURES_H_

#include "lists/database.h"

namespace topk {

/// Number of items in both fixtures (d1..d14).
inline constexpr size_t kPaperFixtureItems = 14;

/// The paper's item label ("d1"..) for a fixture item id.
std::string PaperItemLabel(ItemId item);

/// Figure 1: the database of Examples 1-3. With k = 3 and sum scoring the
/// paper reports: FA stops at position 8, TA at position 6, BPA at position 3;
/// top-3 = {d8 (71), d3 (70), d5 (70)}.
Database MakeFigure1Database();

/// Figure 2: the database of Section 5's access-count example. With k = 3 and
/// sum scoring the paper reports: BPA stops at position 7 with 63 total
/// accesses; BPA2 performs direct accesses only at positions 1, 2, 3, 7 for a
/// total of 36 accesses; top-3 = {d3 (70), d4 (68), d6 (66)}.
Database MakeFigure2Database();

}  // namespace topk

#endif  // TOPK_GEN_PAPER_FIXTURES_H_
