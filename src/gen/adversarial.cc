// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "gen/adversarial.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "lists/sorted_list.h"

namespace topk {

namespace {

// Identifier of visible item (g, r): groups are blocks of u consecutive ids.
ItemId VisibleId(size_t g, size_t r, size_t u) {
  return static_cast<ItemId>(g * u + r);
}

}  // namespace

// The construction needs every visible item's overall score T to land in the
// band [δ(j), δ(j-1)) of TA's threshold, where δ(p) = m * S(p). Because T is
// the sum of m-1 scores at positions <= j plus one tiny tail score, this
// forces a *flat* score schedule over [1, j] (exactly like the paper's
// Figure 1, whose visible scores span only 30..19): S(p) = Base + (j - p) * s
// with a small step s, so that T ≈ (m-1) * Base + O(j*s) can equal
// m * Base + O(m*s) for a suitable Base.
//
// Position-sum balancing keeps T constant across the m*u visible items:
//  * per-list middle blocks are assigned by the Latin rank
//    rank(l, g) = (g - l - 1) mod m, which gives every group the same
//    multiset of block offsets across its middle lists;
//  * within-block order alternates so the r-drift of the position sum
//    cancels: odd m uses one extra descending block; even m uses balanced
//    blocks plus a descending tail whose score step equals s.
Result<Database> MakeLemma3Database(const Lemma3Config& config) {
  const size_t m = config.m;
  const size_t u = config.u;
  const size_t n = config.n;
  if (m < 3) {
    return Status::Invalid("Lemma 3 family needs m >= 3 (got ", m,
                           "); for m = 2 the bound degenerates to 1x");
  }
  if (u < 1) {
    return Status::Invalid("u must be >= 1");
  }
  const size_t j = (m - 1) * u;  // TA's target stopping position
  if (n < m * u + 1) {
    return Status::Invalid("n must be >= m*u + 1 = ", m * u + 1, " (got ", n,
                           ")");
  }

  const double s = 1.0;  // score step inside [1, j]
  // Tail step: for even m the tail cancels the position-sum drift (step s);
  // for odd m the blocks already cancel and the tail only needs to stay
  // strictly decreasing.
  const bool even_m = (m % 2 == 0);
  const double eps2 = even_m ? s : s / (2.0 * static_cast<double>(u));
  // Top score of the visible tail block; the whole block spans
  // [a - (u-1)*eps2, a] and must sit strictly below S(j) = Base.
  const double a = (static_cast<double>(u) - 1.0) * eps2 + 1.0;

  // position_of[item][list], 1-based.
  std::vector<std::vector<Position>> position_of(
      n, std::vector<Position>(m, kInvalidPosition));
  // tail_r[item] = r for visible items (tail ordering), unused otherwise.
  std::vector<size_t> tail_rank(n, 0);

  // Latin rank: in [0, m-3] exactly for the middle (list, group) pairs.
  auto rank = [&](size_t l, size_t g) { return (g + m - l - 1) % m; };
  const size_t desc_blocks = even_m ? (m - 2) / 2 : (m - 1) / 2;

  for (size_t g = 0; g < m; ++g) {
    const size_t tail_list = (g + 1) % m;
    for (size_t r = 0; r < u; ++r) {
      const ItemId item = VisibleId(g, r, u);
      position_of[item][g] = static_cast<Position>(r + 1);
      // Tail: descending order for even m (r -> slot u-1-r), ascending
      // otherwise; always after the gap at j+1.
      const size_t tail_slot = even_m ? (u - 1 - r) : r;
      position_of[item][tail_list] = static_cast<Position>(j + 2 + tail_slot);
      tail_rank[item] = tail_slot;
      for (size_t l = 0; l < m; ++l) {
        if (l == g || l == tail_list) {
          continue;
        }
        const size_t block = rank(l, g);
        const size_t offset = u + block * u;  // block spans offset+1..offset+u
        const bool descending = block < desc_blocks;
        const size_t pos_in_block = descending ? (u - r) : (r + 1);
        position_of[item][l] = static_cast<Position>(offset + pos_in_block);
      }
    }
  }

  // Invisible items: position j+1 (the gap that pins the best position at j)
  // and all positions past the visible tails, identical in every list.
  {
    std::vector<Position> free_positions;
    free_positions.push_back(static_cast<Position>(j + 1));
    for (size_t p = j + 1 + u + 1; p <= n; ++p) {
      free_positions.push_back(static_cast<Position>(p));
    }
    size_t next = 0;
    for (ItemId item = static_cast<ItemId>(m * u); item < n; ++item) {
      const Position p = free_positions[next++];
      for (size_t l = 0; l < m; ++l) {
        position_of[item][l] = p;
      }
    }
  }

  // Pick Base so that T - m*Base sits at s/2 above δ(j) for the *maximum* T;
  // the drift-cancelling layout keeps the spread of T far below the band m*s.
  // W(item) = T(item) - (m-1)*Base, computable without Base.
  double w_min = 0.0;
  double w_max = 0.0;
  {
    bool first = true;
    for (size_t g = 0; g < m; ++g) {
      for (size_t r = 0; r < u; ++r) {
        const ItemId item = VisibleId(g, r, u);
        double position_sum = 0.0;
        for (size_t l = 0; l < m; ++l) {
          if (l == (g + 1) % m) {
            continue;  // tail handled separately
          }
          position_sum += static_cast<double>(position_of[item][l]);
        }
        const double tail_score =
            a - static_cast<double>(tail_rank[item]) * eps2;
        const double w =
            s * (static_cast<double>((m - 1) * j) - position_sum) + tail_score;
        w_min = first ? w : std::min(w_min, w);
        w_max = first ? w : std::max(w_max, w);
        first = false;
      }
    }
  }
  // T = (m-1)*Base + W; anchoring the *minimum* T at δ(j) + s/2 gives
  // Base = w_min - s/2; the spread check below keeps the maximum under
  // δ(j-1).
  const double base = w_min - 0.5 * s;

  // Self-checks; Internal errors indicate a bug in this construction.
  if (w_max - w_min >= static_cast<double>(m) * s - 0.5 * s) {
    return Status::Internal("Lemma3: T spread ", w_max - w_min,
                            " does not fit the band ", m * s);
  }
  if (base <= a + 1e-9) {
    return Status::Internal("Lemma3: Base ", base,
                            " does not clear the tail block top ", a);
  }

  const double gap_score = 0.5 * (base + a);  // position j+1
  const double invisible_top = a - (static_cast<double>(u) - 1.0) * eps2;

  auto score_at = [&](Position p) {
    if (p <= j) {
      return base + s * static_cast<double>(j - p);
    }
    if (p == j + 1) {
      return gap_score;
    }
    if (p <= j + 1 + u) {
      // Visible tail block: slot t at position j+2+t.
      return a - static_cast<double>(p - (j + 2)) * eps2;
    }
    // Deep tail: strictly below the visible tail block, decreasing to ~0.
    return invisible_top * 0.5 * static_cast<double>(n + 1 - p) /
           static_cast<double>(n);
  };

  // Materialize and validate strict descending order per list.
  std::vector<SortedList> lists;
  lists.reserve(m);
  for (size_t l = 0; l < m; ++l) {
    std::vector<ListEntry> entries(n);
    for (ItemId item = 0; item < n; ++item) {
      const Position p = position_of[item][l];
      entries[p - 1] = ListEntry{item, score_at(p)};
    }
    for (size_t p = 1; p < n; ++p) {
      if (entries[p - 1].score <= entries[p].score) {
        return Status::Internal("Lemma3: scores not strictly descending at "
                                "position ", p + 1);
      }
    }
    TOPK_ASSIGN_OR_RETURN(SortedList list,
                          SortedList::FromEntries(std::move(entries)));
    lists.push_back(std::move(list));
  }
  return Database::Make(std::move(lists));
}

}  // namespace topk
