// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Synthetic database generators reproducing the paper's experimental setup
// (Section 6.1): independent uniform and Gaussian databases, and correlated
// databases where item positions across lists are correlated (parameter α)
// and scores follow the Zipf law with θ = 0.7.

#ifndef TOPK_GEN_DATABASE_GENERATOR_H_
#define TOPK_GEN_DATABASE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "lists/database.h"

namespace topk {

/// Independent database: each list's scores are i.i.d. Uniform[0,1) (the
/// paper's default setting).
Database MakeUniformDatabase(size_t n, size_t m, uint64_t seed);

/// Independent database: each list's scores are i.i.d. Normal(0,1). Note that
/// scores can be negative (as in the paper's own setup); algorithms that need
/// a score floor (TPUT/NRA) must be configured accordingly.
Database MakeGaussianDatabase(size_t n, size_t m, uint64_t seed);

/// Independent Zipf database: each list is an independent random permutation
/// of the items with by-rank scores s(p) = 1/p^theta (the skew the paper's
/// correlated databases use, but without the cross-list position
/// correlation). Models popularity-skewed workloads — web/URL frequencies,
/// social feeds — where a tiny head carries almost all the mass and the tail
/// is nearly flat, the regime that stresses stop rules at DRAM-scale n very
/// differently from uniform scores. All scores are in (0, 1], so the default
/// score floor of 0 is valid.
Database MakeZipfDatabase(size_t n, size_t m, uint64_t seed,
                          double theta = 0.7);

/// Configuration of the paper's correlated databases.
struct CorrelatedConfig {
  size_t n = 0;
  size_t m = 0;
  /// Correlation strength: item positions across lists differ by a random
  /// offset drawn from [1, n*alpha]. Smaller alpha = stronger correlation.
  /// Must be in [0, 1]; alpha = 0 degenerates to offset 1 (near-identical
  /// lists).
  double alpha = 0.01;
  /// Zipf skew of the by-rank scores (the paper uses 0.7).
  double zipf_theta = 0.7;
  uint64_t seed = 42;
};

/// Correlated database per Section 6.1: list 1 is a random permutation of the
/// items; in every other list an item lands at distance r ~ U[1, n*alpha]
/// from its list-1 position (random direction, clamped), taking the closest
/// free position when occupied; scores follow the Zipf law by rank.
Result<Database> MakeCorrelatedDatabase(const CorrelatedConfig& config);

/// The database families of the evaluation, for sweep harnesses.
enum class DatabaseKind {
  kUniform,
  kGaussian,
  kCorrelated,
  kZipf,
};

std::string ToString(DatabaseKind kind);

/// Parses a distribution name as printed by ToString ("uniform",
/// "gaussian", "correlated", "zipf"). Returns false on unknown names, so a
/// typoed CLI flag fails instead of silently selecting a default — the CLI
/// harnesses (bench_micro, parity_dump) share this one mapping.
bool ParseDatabaseKind(const std::string& name, DatabaseKind* kind);

/// Builds a database of `kind` with the sweep-harness defaults (correlated:
/// alpha 0.01, zipf theta: 0.7) — the single dispatch behind every
/// string-configured workload (bench_micro scenarios, parity_dump ad-hoc
/// fingerprints). Harnesses that sweep the correlated alpha keep calling
/// MakeCorrelatedDatabase directly.
Database MakeDatabaseOfKind(DatabaseKind kind, size_t n, size_t m,
                            uint64_t seed);

}  // namespace topk

#endif  // TOPK_GEN_DATABASE_GENERATOR_H_
