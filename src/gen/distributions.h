// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Score distributions used by the workload generators (paper, Section 6.1).

#ifndef TOPK_GEN_DISTRIBUTIONS_H_
#define TOPK_GEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "lists/types.h"

namespace topk {

/// Zipf-law score for rank `position` (1-based): s(p) = 1 / p^theta. The
/// paper's correlated databases assign scores by rank following Zipf's law
/// with theta = 0.7.
double ZipfScore(Position position, double theta);

/// Scores for ranks 1..n under the Zipf law (descending).
std::vector<Score> ZipfScoreVector(size_t n, double theta);

/// Samples ranks from the Zipf distribution P(rank = i) ∝ 1/i^theta over
/// {1..n}. Used by the example workloads (e.g. URL access frequencies).
class ZipfSampler {
 public:
  /// \param n number of ranks; \param theta skew (0 = uniform).
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [1, n].
  Position Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

/// n i.i.d. Uniform[0,1) scores.
std::vector<Score> UniformScoreVector(size_t n, Rng* rng);

/// n i.i.d. Normal(mean, stddev) scores (the paper uses mean 0, stddev 1).
std::vector<Score> GaussianScoreVector(size_t n, Rng* rng, double mean = 0.0,
                                       double stddev = 1.0);

}  // namespace topk

#endif  // TOPK_GEN_DISTRIBUTIONS_H_
