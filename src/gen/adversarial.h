// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Adversarial database families realizing the paper's theoretical bounds.
//
// MakeLemma3Database constructs the worst case of Lemma 3 / Theorem 3: a
// database over which BPA stops at position u while TA scans to j = (m-1)*u,
// i.e. BPA's sorted (and random) accesses are exactly (m-1) times lower.
//
// Construction (generalizing the paper's Figure 1, which is the m = 3, u = 3
// instance): the first m*u items are "visible". Visible item (g, r)
// (g in [0, m), r in [0, u)) sits
//   * at position r+1 in list g                       (the "top" region),
//   * somewhere in positions [u+1, j] in m-2 lists    (the "middle" region),
//   * past position j+1 in the remaining list         (the "tail").
// Scores are a strictly decreasing function of position with three regimes
// (steep top, u-step middle, tiny tail), shifted so that every visible item's
// overall score lands in the half-open band (δ(j), δ(j-1)]:
//   * TA's threshold stays above the band until depth j, so TA stops at
//     exactly j (Lemma 3's condition 2 keeps the tail positions unseen);
//   * by depth u BPA has seen, via random accesses, every middle position, so
//     each best position reaches exactly j (position j+1 is held by an
//     invisible item), λ drops to δ(j), and BPA stops at exactly u.
// The within-block ordering of the middle region alternates ascending/
// descending in r so the position sums of visible items stay within the band.

#ifndef TOPK_GEN_ADVERSARIAL_H_
#define TOPK_GEN_ADVERSARIAL_H_

#include <cstddef>

#include "common/result.h"
#include "lists/database.h"

namespace topk {

/// Parameters of the Lemma 3 family.
struct Lemma3Config {
  /// Number of lists (m >= 3; with m = 2 the bound degenerates to 1x).
  size_t m = 3;
  /// BPA's target stopping position (u >= 1). TA stops at j = (m-1)*u.
  size_t u = 3;
  /// Total items; must satisfy n >= m*u + 1 (at least one invisible item to
  /// hold position j+1). Positions beyond the construction are filled with
  /// tiny-score filler items.
  size_t n = 100;
};

/// Builds the worst-case database. With any k in [1, m*u] and sum scoring,
/// BPA stops at position u and TA at position (m-1)*u (verified by the test
/// suite for a grid of m, u, n).
Result<Database> MakeLemma3Database(const Lemma3Config& config);

}  // namespace topk

#endif  // TOPK_GEN_ADVERSARIAL_H_
