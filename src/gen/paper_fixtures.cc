// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "gen/paper_fixtures.h"

#include <array>
#include <string>
#include <vector>

namespace topk {

namespace {

// One list given as the visible (item, score) prefix from the figure plus the
// four completion entries appended by BuildList. Items are the paper's 1-based
// d-indexes.
struct FigureList {
  std::array<int, 10> items;
  std::array<double, 10> scores;
  // The four items absent from the visible prefix, in ascending d-index.
  std::array<int, 4> completion_items;
};

SortedList BuildList(const FigureList& spec) {
  std::vector<ListEntry> entries;
  entries.reserve(kPaperFixtureItems);
  for (size_t i = 0; i < spec.items.size(); ++i) {
    entries.push_back(ListEntry{static_cast<ItemId>(spec.items[i] - 1),
                                spec.scores[i]});
  }
  // Completion: positions 11..14, scores 4, 3, 2, 1 (below every visible
  // score; see header).
  double score = 4.0;
  for (int d : spec.completion_items) {
    entries.push_back(ListEntry{static_cast<ItemId>(d - 1), score});
    score -= 1.0;
  }
  return SortedList::FromEntries(std::move(entries)).ValueOrDie();
}

Database BuildDatabase(const FigureList& l1, const FigureList& l2,
                       const FigureList& l3) {
  std::vector<SortedList> lists;
  lists.push_back(BuildList(l1));
  lists.push_back(BuildList(l2));
  lists.push_back(BuildList(l3));
  return Database::Make(std::move(lists)).ValueOrDie();
}

}  // namespace

std::string PaperItemLabel(ItemId item) {
  std::string label = "d";
  label += std::to_string(item + 1);
  return label;
}

Database MakeFigure1Database() {
  // Figure 1.a, verbatim.
  const FigureList l1{{1, 4, 9, 3, 7, 8, 5, 6, 2, 11},
                      {30, 28, 27, 26, 25, 23, 17, 14, 11, 10},
                      {10, 12, 13, 14}};
  const FigureList l2{{2, 6, 7, 5, 9, 1, 8, 3, 4, 14},
                      {28, 27, 25, 24, 23, 21, 20, 14, 13, 12},
                      {10, 11, 12, 13}};
  const FigureList l3{{3, 5, 8, 4, 2, 6, 13, 1, 9, 7},
                      {30, 29, 28, 25, 24, 19, 15, 14, 12, 11},
                      {10, 11, 12, 14}};
  return BuildDatabase(l1, l2, l3);
}

Database MakeFigure2Database() {
  // Figure 2, verbatim. Differs from Figure 1 in lists 1-3 scores/placements
  // so that BPA2 skips positions 4-6 entirely.
  const FigureList l1{{1, 4, 9, 3, 7, 8, 11, 6, 2, 5},
                      {30, 28, 27, 26, 25, 24, 17, 14, 11, 10},
                      {10, 12, 13, 14}};
  const FigureList l2{{2, 6, 7, 5, 9, 1, 14, 3, 4, 8},
                      {28, 27, 25, 24, 23, 22, 20, 14, 13, 12},
                      {10, 11, 12, 13}};
  const FigureList l3{{3, 5, 8, 4, 2, 6, 13, 1, 9, 7},
                      {30, 29, 28, 27, 26, 25, 15, 13, 12, 11},
                      {10, 11, 12, 14}};
  return BuildDatabase(l1, l2, l3);
}

}  // namespace topk
