// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "gen/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace topk {

double ZipfScore(Position position, double theta) {
  assert(position >= 1);
  return 1.0 / std::pow(static_cast<double>(position), theta);
}

std::vector<Score> ZipfScoreVector(size_t n, double theta) {
  std::vector<Score> scores(n);
  for (size_t p = 1; p <= n; ++p) {
    scores[p - 1] = ZipfScore(static_cast<Position>(p), theta);
  }
  return scores;
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += ZipfScore(static_cast<Position>(i + 1), theta);
    cdf_[i] = total;
  }
  for (double& v : cdf_) {
    v /= total;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

Position ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<Position>((it - cdf_.begin()) + 1);
}

std::vector<Score> UniformScoreVector(size_t n, Rng* rng) {
  std::vector<Score> scores(n);
  for (Score& s : scores) {
    s = rng->NextDouble();
  }
  return scores;
}

std::vector<Score> GaussianScoreVector(size_t n, Rng* rng, double mean,
                                       double stddev) {
  std::vector<Score> scores(n);
  for (Score& s : scores) {
    s = rng->NextGaussian(mean, stddev);
  }
  return scores;
}

}  // namespace topk
