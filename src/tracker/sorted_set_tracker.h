// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Reference best-position tracker backed by std::set. Used as the test oracle
// for the bit-array and B+tree implementations and as a baseline in the
// Section 5.2 ablation benchmark.

#ifndef TOPK_TRACKER_SORTED_SET_TRACKER_H_
#define TOPK_TRACKER_SORTED_SET_TRACKER_H_

#include <set>

#include "tracker/best_position_tracker.h"

namespace topk {

class SortedSetTracker final : public BestPositionTracker {
 public:
  explicit SortedSetTracker(size_t list_size) : list_size_(list_size) {}

  void MarkSeen(Position position) override;
  Position best_position() const override { return best_position_; }
  bool IsSeen(Position position) const override {
    return seen_.count(position) > 0;
  }
  size_t seen_count() const override { return seen_.size(); }
  void Reset() override;
  std::string name() const override { return "sorted-set"; }

 private:
  size_t list_size_;
  std::set<Position> seen_;
  Position best_position_ = 0;
};

}  // namespace topk

#endif  // TOPK_TRACKER_SORTED_SET_TRACKER_H_
