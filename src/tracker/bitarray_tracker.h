// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Bit-array best-position management (paper, Section 5.2.1): an n-bit array of
// seen flags plus a pointer `bp` that only ever moves forward. Advancing bp
// costs O(n) over the whole query, i.e. O(n/u) amortized per access; space is
// n bits plus a uint32_t epoch stamp per 64-bit word.
//
// Two deviations from the textbook layout, both for the per-access constant:
//  * Reset() is O(1). Instead of clearing n bits per query, every word
//    carries a generation stamp and counts as all-zero unless its stamp
//    matches the tracker's current epoch. Bumping the epoch invalidates every
//    word at once; words are lazily re-zeroed on first write in the new
//    epoch. Observable behavior is identical to a freshly constructed tracker
//    (the stamp wrap-around at 2^32 falls back to one eager clear).
//  * MarkSeen is branchless on the "seen before?" question. Whether a random
//    position was already marked is close to a coin flip in the BPA/BPA2
//    inner loops, so a test-and-branch mispredicts constantly; an
//    unconditional masked store costs a couple of ALU ops instead (the seen
//    count is recovered by popcount on demand). The stamp lives next to its
//    word (one 16-byte slot) so a mark touches exactly one cache line.

#ifndef TOPK_TRACKER_BITARRAY_TRACKER_H_
#define TOPK_TRACKER_BITARRAY_TRACKER_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "tracker/best_position_tracker.h"

namespace topk {

class BitArrayTracker final : public BestPositionTracker {
 public:
  explicit BitArrayTracker(size_t list_size);

  // MarkSeen/IsSeen are defined inline: the class is final and the BPA/BPA2
  // hot loops are specialized on the concrete type, so the per-access calls
  // devirtualize and inline down to a few word operations.
  void MarkSeen(Position position) override {
    assert(position >= 1 && position <= list_size_);
    const size_t index = position - 1;
    Word& word = words_[index >> 6];
    const uint64_t mask = uint64_t{1} << (index & 63);
    const uint64_t bits = word.epoch == epoch_ ? word.bits : uint64_t{0};
    word.bits = bits | mask;
    word.epoch = epoch_;
    // Paper 5.2.1: B[j] := 1; while (bp < n and B[bp+1] = 1) bp := bp + 1.
    // Invariant: the bit at bp (0-based) is unset unless bp == n, so the walk
    // can only make progress when this mark lands exactly on bp.
    if (index == best_position_) {
      AdvanceBestPosition();
    }
  }
  Position best_position() const override { return best_position_; }

  /// Cache hint that MarkSeen(position) is imminent (write intent, so the
  /// line arrives in exclusive state). The BPA loop reads the positions its
  /// upcoming random accesses will mark out of the already-prefetched mirror
  /// rows a couple of sorted rows ahead and prefetches the word slots here —
  /// at DRAM-scale n the word array is megabytes per list, so the marks are
  /// otherwise a chain of cold read-modify-writes.
  void PrefetchMark(Position position) const {
    __builtin_prefetch(&words_[(position - 1) >> 6], /*rw=*/1);
  }
  bool IsSeen(Position position) const override {
    assert(position >= 1 && position <= list_size_);
    return TestBit(position - 1);
  }
  // Computed on demand (popcount over current-epoch words) so MarkSeen needs
  // no counter maintenance; callers are tests/ablations, never hot loops.
  size_t seen_count() const override {
    size_t count = 0;
    for (const Word& word : words_) {
      if (word.epoch == epoch_) {
        count += static_cast<size_t>(std::popcount(word.bits));
      }
    }
    return count;
  }
  void Reset() override;
  std::string name() const override { return "bit-array"; }

 private:
  /// 64 seen flags and their generation stamp, colocated in one 16-byte slot
  /// so any mark or test touches a single cache line.
  struct Word {
    uint64_t bits = 0;
    uint32_t epoch = 0;  // bits are valid iff == the tracker's epoch_
  };

  /// Walks bp forward over the seen prefix a word at a time (counting the
  /// trailing run of ones instead of re-testing bit by bit).
  void AdvanceBestPosition() {
    size_t index = best_position_;
    while (index < list_size_) {
      const Word& word = words_[index >> 6];
      const uint64_t bits = word.epoch == epoch_ ? word.bits : uint64_t{0};
      const unsigned offset = static_cast<unsigned>(index & 63);
      // Zero-fill above bit 63-offset stops the count at the word boundary.
      const unsigned run =
          static_cast<unsigned>(std::countr_one(bits >> offset));
      index += run;
      if (run < 64 - offset) {
        break;  // first unseen position found inside this word
      }
    }
    best_position_ = static_cast<Position>(std::min(index, list_size_));
  }

  bool TestBit(size_t index) const {
    const Word& word = words_[index >> 6];
    return word.epoch == epoch_ && ((word.bits >> (index & 63)) & 1ULL);
  }

  size_t list_size_;
  std::vector<Word> words_;  // bit i (0-based) == position i+1 seen
  uint32_t epoch_ = 1;       // stamps start at 0, so 1 == all clear
  Position best_position_ = 0;
};

}  // namespace topk

#endif  // TOPK_TRACKER_BITARRAY_TRACKER_H_
