// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Bit-array best-position management (paper, Section 5.2.1): an n-bit array of
// seen flags plus a pointer `bp` that only ever moves forward. Advancing bp
// costs O(n) over the whole query, i.e. O(n/u) amortized per access; space is
// n bits.

#ifndef TOPK_TRACKER_BITARRAY_TRACKER_H_
#define TOPK_TRACKER_BITARRAY_TRACKER_H_

#include <cstdint>
#include <vector>

#include "tracker/best_position_tracker.h"

namespace topk {

class BitArrayTracker : public BestPositionTracker {
 public:
  explicit BitArrayTracker(size_t list_size);

  void MarkSeen(Position position) override;
  Position best_position() const override { return best_position_; }
  bool IsSeen(Position position) const override;
  size_t seen_count() const override { return seen_count_; }
  void Reset() override;
  std::string name() const override { return "bit-array"; }

 private:
  bool TestBit(size_t index) const {
    return (words_[index >> 6] >> (index & 63)) & 1ULL;
  }
  void SetBit(size_t index) { words_[index >> 6] |= 1ULL << (index & 63); }

  size_t list_size_;
  std::vector<uint64_t> words_;  // bit i (0-based) == position i+1 seen
  Position best_position_ = 0;
  size_t seen_count_ = 0;
};

}  // namespace topk

#endif  // TOPK_TRACKER_BITARRAY_TRACKER_H_
