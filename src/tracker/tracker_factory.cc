// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "tracker/best_position_tracker.h"
#include "tracker/bitarray_tracker.h"
#include "tracker/bplus_tree_tracker.h"
#include "tracker/sorted_set_tracker.h"

namespace topk {

std::string ToString(TrackerKind kind) {
  switch (kind) {
    case TrackerKind::kBitArray:
      return "bit-array";
    case TrackerKind::kBPlusTree:
      return "b+tree";
    case TrackerKind::kSortedSet:
      return "sorted-set";
  }
  return "unknown";
}

std::unique_ptr<BestPositionTracker> MakeTracker(TrackerKind kind,
                                                 size_t list_size) {
  switch (kind) {
    case TrackerKind::kBitArray:
      return std::make_unique<BitArrayTracker>(list_size);
    case TrackerKind::kBPlusTree:
      return std::make_unique<BPlusTreeTracker>(list_size);
    case TrackerKind::kSortedSet:
      return std::make_unique<SortedSetTracker>(list_size);
  }
  return nullptr;
}

}  // namespace topk
