// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// B+tree best-position management (paper, Section 5.2.2): seen positions are
// stored in a B+tree whose leaves are chained in key order; the best-position
// cursor walks the chain while successor keys stay consecutive. Insertion is
// O(log u) and the cursor walk is O(u) total, so the amortized cost per access
// is O(log u) — cheaper than the bit array when n >> u.

#ifndef TOPK_TRACKER_BPLUS_TREE_TRACKER_H_
#define TOPK_TRACKER_BPLUS_TREE_TRACKER_H_

#include "tracker/best_position_tracker.h"
#include "tracker/bplus_tree.h"

namespace topk {

class BPlusTreeTracker final : public BestPositionTracker {
 public:
  explicit BPlusTreeTracker(size_t list_size) : list_size_(list_size) {}

  void MarkSeen(Position position) override;
  Position best_position() const override { return best_position_; }
  bool IsSeen(Position position) const override;
  size_t seen_count() const override { return tree_.size(); }
  void Reset() override;
  std::string name() const override { return "b+tree"; }

  /// Underlying tree (exposed for structural tests).
  const BPlusTree& tree() const { return tree_; }

 private:
  size_t list_size_;
  BPlusTree tree_;
  Position best_position_ = 0;
};

}  // namespace topk

#endif  // TOPK_TRACKER_BPLUS_TREE_TRACKER_H_
