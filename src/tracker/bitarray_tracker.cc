// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "tracker/bitarray_tracker.h"

namespace topk {

BitArrayTracker::BitArrayTracker(size_t list_size)
    : list_size_(list_size), words_((list_size + 63) / 64) {}

void BitArrayTracker::Reset() {
  best_position_ = 0;
  if (++epoch_ == 0) {
    // Stamp wrap-around (once every 2^32 resets): eagerly invalidate.
    for (Word& word : words_) {
      word = Word{};
    }
    epoch_ = 1;
  }
}

}  // namespace topk
