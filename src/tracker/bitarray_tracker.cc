// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "tracker/bitarray_tracker.h"

#include <cassert>

namespace topk {

BitArrayTracker::BitArrayTracker(size_t list_size)
    : list_size_(list_size), words_((list_size + 63) / 64, 0) {}

void BitArrayTracker::MarkSeen(Position position) {
  assert(position >= 1 && position <= list_size_);
  const size_t index = position - 1;
  if (TestBit(index)) {
    return;
  }
  SetBit(index);
  ++seen_count_;
  // Paper 5.2.1: B[j] := 1; while (bp < n and B[bp+1] = 1) bp := bp + 1.
  while (best_position_ < list_size_ && TestBit(best_position_)) {
    ++best_position_;
  }
}

bool BitArrayTracker::IsSeen(Position position) const {
  assert(position >= 1 && position <= list_size_);
  return TestBit(position - 1);
}

void BitArrayTracker::Reset() {
  words_.assign(words_.size(), 0);
  best_position_ = 0;
  seen_count_ = 0;
}

}  // namespace topk
