// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// A from-scratch in-memory B+tree over uint32 keys, built for the paper's
// Section 5.2.2 best-position management. All keys live in the leaves; leaves
// are singly linked in key order, so ordered scans (walking the best-position
// cursor forward) are O(1) per step. The tracker workload only ever inserts,
// so the tree implements insert/lookup/ordered-seek (no delete) — documented
// and enforced by the public API.
//
// Insertion uses preemptive top-down splitting (full children are split on the
// way down), which keeps the code free of upward split propagation. Node
// capacities are template parameters so tests can force deep trees with tiny
// fanouts; the default fanout 64 keeps the tree shallow for real list sizes.

#ifndef TOPK_TRACKER_BPLUS_TREE_H_
#define TOPK_TRACKER_BPLUS_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

#include "common/status.h"

// Local helper macro (undef'ed at the end of this header): propagate
// invariant-check failures.
#define TOPK_CHECK_STATUS(expr)       \
  do {                                \
    ::topk::Status _s = (expr);       \
    if (!_s.ok()) {                   \
      return _s;                      \
    }                                 \
  } while (false)

namespace topk {

/// In-memory B+tree set of uint32 keys (insert-only).
///
/// \tparam kLeafCapacity  max keys per leaf (>= 2)
/// \tparam kInternalCapacity max separator keys per internal node (>= 2);
///         an internal node has up to kInternalCapacity + 1 children.
template <int kLeafCapacity = 64, int kInternalCapacity = 64>
class BPlusTreeT {
  static_assert(kLeafCapacity >= 2, "leaf capacity must be >= 2");
  static_assert(kInternalCapacity >= 2, "internal capacity must be >= 2");

 public:
  using Key = uint32_t;

  BPlusTreeT() = default;

  ~BPlusTreeT() { Clear(); }

  BPlusTreeT(const BPlusTreeT&) = delete;
  BPlusTreeT& operator=(const BPlusTreeT&) = delete;

  BPlusTreeT(BPlusTreeT&& other) noexcept { *this = std::move(other); }

  BPlusTreeT& operator=(BPlusTreeT&& other) noexcept {
    if (this != &other) {
      Clear();
      root_ = std::exchange(other.root_, nullptr);
      head_leaf_ = std::exchange(other.head_leaf_, nullptr);
      size_ = std::exchange(other.size_, 0);
      height_ = std::exchange(other.height_, 0);
    }
    return *this;
  }

  /// Inserts `key`; returns true iff the key was not already present.
  bool Insert(Key key) {
    if (root_ == nullptr) {
      LeafNode* leaf = new LeafNode();
      leaf->keys[0] = key;
      leaf->count = 1;
      root_ = leaf;
      head_leaf_ = leaf;
      height_ = 1;
      size_ = 1;
      return true;
    }
    if (IsFull(root_)) {
      // Grow the tree: new root with the old root as its only child, then
      // split that child.
      InternalNode* new_root = new InternalNode();
      new_root->count = 0;
      new_root->children[0] = root_;
      root_ = new_root;
      ++height_;
      SplitChild(new_root, 0);
    }
    Node* node = root_;
    while (!node->is_leaf) {
      InternalNode* internal = static_cast<InternalNode*>(node);
      int idx = ChildIndex(internal, key);
      Node* child = internal->children[idx];
      if (IsFull(child)) {
        SplitChild(internal, idx);
        // The separator now at keys[idx] decides which half to descend into.
        if (key >= internal->keys[idx]) {
          ++idx;
        }
      }
      node = internal->children[idx];
    }
    LeafNode* leaf = static_cast<LeafNode*>(node);
    const int slot = LowerBound(leaf->keys, leaf->count, key);
    if (slot < leaf->count && leaf->keys[slot] == key) {
      return false;
    }
    assert(leaf->count < kLeafCapacity);
    for (int i = leaf->count; i > slot; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
    }
    leaf->keys[slot] = key;
    ++leaf->count;
    ++size_;
    return true;
  }

  /// True iff `key` is present.
  bool Contains(Key key) const {
    const LeafNode* leaf = DescendToLeaf(key);
    if (leaf == nullptr) {
      return false;
    }
    const int slot = LowerBound(leaf->keys, leaf->count, key);
    return slot < leaf->count && leaf->keys[slot] == key;
  }

  /// Number of keys stored.
  size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }

  /// Tree height in levels (0 for an empty tree, 1 for a single leaf).
  int height() const { return height_; }

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

 public:
  /// Forward iterator over keys in ascending order (leaf-chain walk).
  class Iterator {
   public:
    Iterator() = default;

    /// True while the iterator points at a key.
    bool Valid() const { return leaf_ != nullptr; }

    /// Current key; requires Valid().
    Key key() const { return leaf_->keys[slot_]; }

    /// Advances to the next key in ascending order.
    void Next() {
      if (++slot_ >= leaf_->count) {
        leaf_ = leaf_->next;
        slot_ = 0;
      }
    }

   private:
    friend class BPlusTreeT;
    Iterator(const LeafNode* leaf, int slot) : leaf_(leaf), slot_(slot) {}

    const LeafNode* leaf_ = nullptr;
    int slot_ = 0;
  };

  /// Iterator at the smallest key (invalid for an empty tree).
  Iterator Begin() const {
    return head_leaf_ == nullptr ? Iterator() : Iterator(head_leaf_, 0);
  }

  /// Iterator at the first key >= `key` (invalid if none).
  Iterator Seek(Key key) const {
    const LeafNode* leaf = DescendToLeaf(key);
    if (leaf == nullptr) {
      return Iterator();
    }
    int slot = LowerBound(leaf->keys, leaf->count, key);
    if (slot >= leaf->count) {
      // All keys in this leaf are < key; the first >= key (if any) starts the
      // next leaf.
      leaf = leaf->next;
      slot = 0;
      if (leaf == nullptr) {
        return Iterator();
      }
    }
    return Iterator(leaf, slot);
  }

  /// Removes all keys.
  void Clear() {
    if (root_ != nullptr) {
      FreeNode(root_);
      root_ = nullptr;
      head_leaf_ = nullptr;
      size_ = 0;
      height_ = 0;
    }
  }

  /// Structural self-check used by tests: uniform leaf depth, per-node key
  /// ordering and occupancy, separator/child consistency, sorted leaf chain
  /// covering exactly size() keys.
  Status CheckInvariants() const {
    if (root_ == nullptr) {
      if (size_ != 0 || height_ != 0 || head_leaf_ != nullptr) {
        return Status::Internal("empty tree with non-empty bookkeeping");
      }
      return Status::OK();
    }
    int leaf_depth = -1;
    TOPK_CHECK_STATUS(CheckNode(root_, /*depth=*/0, /*is_root=*/true,
                                /*lo=*/nullptr, /*hi=*/nullptr, &leaf_depth));
    // Leaf chain: strictly ascending and exactly size_ keys.
    size_t chain_count = 0;
    bool first = true;
    Key prev = 0;
    for (Iterator it = Begin(); it.Valid(); it.Next()) {
      if (!first && it.key() <= prev) {
        return Status::Internal("leaf chain not strictly ascending at key ",
                                it.key());
      }
      prev = it.key();
      first = false;
      ++chain_count;
    }
    if (chain_count != size_) {
      return Status::Internal("leaf chain has ", chain_count,
                              " keys, size() is ", size_);
    }
    if (height_ != leaf_depth + 1) {
      return Status::Internal("height ", height_, " but leaves at depth ",
                              leaf_depth);
    }
    return Status::OK();
  }

 private:
  struct Node {
    bool is_leaf = false;
    int count = 0;  // number of keys
  };

  struct LeafNode : Node {
    LeafNode() { this->is_leaf = true; }
    Key keys[kLeafCapacity];
    LeafNode* next = nullptr;
  };

  struct InternalNode : Node {
    InternalNode() { this->is_leaf = false; }
    Key keys[kInternalCapacity];
    Node* children[kInternalCapacity + 1];
  };

  static_assert(sizeof(Key) == 4, "tracker keys are 32-bit positions");

  static bool IsFull(const Node* node) {
    return node->is_leaf ? node->count == kLeafCapacity
                         : node->count == kInternalCapacity;
  }

  // First index i in keys[0..count) with key < keys[i] routes to child i;
  // keys >= keys[i] route right of separator i.
  static int ChildIndex(const InternalNode* node, Key key) {
    int idx = 0;
    while (idx < node->count && key >= node->keys[idx]) {
      ++idx;
    }
    return idx;
  }

  static int LowerBound(const Key* keys, int count, Key key) {
    return static_cast<int>(std::lower_bound(keys, keys + count, key) - keys);
  }

  // Splits the full child at `child_index` of `parent`. The parent must not be
  // full. Leaf split: upper half moves to a new right leaf, separator is the
  // right leaf's first key (which stays in the leaf). Internal split: middle
  // key moves up as separator.
  void SplitChild(InternalNode* parent, int child_index) {
    assert(parent->count < kInternalCapacity);
    Node* child = parent->children[child_index];
    Key separator;
    Node* right_node;
    if (child->is_leaf) {
      LeafNode* leaf = static_cast<LeafNode*>(child);
      LeafNode* right = new LeafNode();
      const int mid = leaf->count / 2;
      right->count = leaf->count - mid;
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = leaf->keys[mid + i];
      }
      leaf->count = mid;
      right->next = leaf->next;
      leaf->next = right;
      separator = right->keys[0];
      right_node = right;
    } else {
      InternalNode* internal = static_cast<InternalNode*>(child);
      InternalNode* right = new InternalNode();
      const int mid = internal->count / 2;
      separator = internal->keys[mid];
      right->count = internal->count - mid - 1;
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = internal->keys[mid + 1 + i];
      }
      for (int i = 0; i <= right->count; ++i) {
        right->children[i] = internal->children[mid + 1 + i];
      }
      internal->count = mid;
      right_node = right;
    }
    // Shift parent separators/children to make room at child_index.
    for (int i = parent->count; i > child_index; --i) {
      parent->keys[i] = parent->keys[i - 1];
      parent->children[i + 1] = parent->children[i];
    }
    parent->keys[child_index] = separator;
    parent->children[child_index + 1] = right_node;
    ++parent->count;
  }

  const LeafNode* DescendToLeaf(Key key) const {
    const Node* node = root_;
    if (node == nullptr) {
      return nullptr;
    }
    while (!node->is_leaf) {
      const InternalNode* internal = static_cast<const InternalNode*>(node);
      node = internal->children[ChildIndex(internal, key)];
    }
    return static_cast<const LeafNode*>(node);
  }

  void FreeNode(Node* node) {
    if (node->is_leaf) {
      delete static_cast<LeafNode*>(node);
      return;
    }
    InternalNode* internal = static_cast<InternalNode*>(node);
    for (int i = 0; i <= internal->count; ++i) {
      FreeNode(internal->children[i]);
    }
    delete internal;
  }

  Status CheckNode(const Node* node, int depth, bool is_root, const Key* lo,
                   const Key* hi, int* leaf_depth) const {
    // Key ordering within the node and bounds from ancestor separators:
    // all keys must lie in [lo, hi).
    const Key* keys =
        node->is_leaf ? static_cast<const LeafNode*>(node)->keys
                      : static_cast<const InternalNode*>(node)->keys;
    for (int i = 0; i < node->count; ++i) {
      if (i > 0 && keys[i - 1] >= keys[i]) {
        return Status::Internal("node keys not strictly ascending");
      }
      if (lo != nullptr && keys[i] < *lo) {
        return Status::Internal("key ", keys[i], " below subtree bound ", *lo);
      }
      if (hi != nullptr && keys[i] >= *hi) {
        return Status::Internal("key ", keys[i], " above subtree bound ", *hi);
      }
    }
    if (node->is_leaf) {
      if (*leaf_depth == -1) {
        *leaf_depth = depth;
      } else if (*leaf_depth != depth) {
        return Status::Internal("leaves at different depths: ", *leaf_depth,
                                " vs ", depth);
      }
      if (!is_root && node->count < kLeafCapacity / 2) {
        return Status::Internal("non-root leaf underfull: ", node->count);
      }
      if (node->count == 0 && !is_root) {
        return Status::Internal("empty non-root leaf");
      }
      return Status::OK();
    }
    const InternalNode* internal = static_cast<const InternalNode*>(node);
    if (internal->count == 0) {
      return Status::Internal("internal node without separators");
    }
    // Splitting a full internal node leaves the right half with
    // C - C/2 - 1 separators (the middle key moves up); with no deletes, that
    // is the lower bound for any non-root internal node.
    constexpr int kMinInternalKeys =
        kInternalCapacity - kInternalCapacity / 2 - 1;
    if (!is_root && internal->count < kMinInternalKeys) {
      return Status::Internal("non-root internal node underfull: ",
                              internal->count);
    }
    for (int i = 0; i <= internal->count; ++i) {
      const Key* child_lo = (i == 0) ? lo : &internal->keys[i - 1];
      const Key* child_hi = (i == internal->count) ? hi : &internal->keys[i];
      TOPK_CHECK_STATUS(CheckNode(internal->children[i], depth + 1,
                                  /*is_root=*/false, child_lo, child_hi,
                                  leaf_depth));
    }
    return Status::OK();
  }

  Node* root_ = nullptr;
  LeafNode* head_leaf_ = nullptr;
  size_t size_ = 0;
  int height_ = 0;
};

/// Default-fanout B+tree used by the tracker.
using BPlusTree = BPlusTreeT<>;

}  // namespace topk

#undef TOPK_CHECK_STATUS

#endif  // TOPK_TRACKER_BPLUS_TREE_H_
