// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Best-position management (paper, Section 5.2). A tracker records which
// positions of one sorted list have been seen (under any access mode) and
// maintains the *best position*: the greatest position bp such that every
// position in [1, bp] has been seen.

#ifndef TOPK_TRACKER_BEST_POSITION_TRACKER_H_
#define TOPK_TRACKER_BEST_POSITION_TRACKER_H_

#include <memory>
#include <string>

#include "lists/types.h"

namespace topk {

/// Tracks seen positions of a single list and exposes the best position.
///
/// Implementations: BitArrayTracker (Section 5.2.1), BPlusTreeTracker
/// (Section 5.2.2) and SortedSetTracker (reference oracle).
class BestPositionTracker {
 public:
  virtual ~BestPositionTracker() = default;

  /// Records `position` (1-based) as seen. Idempotent.
  virtual void MarkSeen(Position position) = 0;

  /// The greatest position bp such that all of [1, bp] are seen; 0 if
  /// position 1 has not been seen yet.
  virtual Position best_position() const = 0;

  /// True iff `position` has been marked seen.
  virtual bool IsSeen(Position position) const = 0;

  /// Number of distinct positions marked seen.
  virtual size_t seen_count() const = 0;

  /// Forgets all seen positions.
  virtual void Reset() = 0;

  /// Implementation name ("bit-array", "b+tree", "sorted-set").
  virtual std::string name() const = 0;
};

/// Selects a best-position management strategy (Section 5.2 trade-off:
/// bit array is O(n/u) amortized and O(n) bits; B+tree is O(log u) amortized
/// and O(u) space).
enum class TrackerKind {
  kBitArray,
  kBPlusTree,
  kSortedSet,
};

/// Human-readable tracker-kind name.
std::string ToString(TrackerKind kind);

/// Creates a tracker for a list of `list_size` positions.
std::unique_ptr<BestPositionTracker> MakeTracker(TrackerKind kind,
                                                 size_t list_size);

}  // namespace topk

#endif  // TOPK_TRACKER_BEST_POSITION_TRACKER_H_
