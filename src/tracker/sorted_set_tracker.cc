// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "tracker/sorted_set_tracker.h"

#include <cassert>

namespace topk {

void SortedSetTracker::MarkSeen(Position position) {
  assert(position >= 1 && position <= list_size_);
  if (!seen_.insert(position).second) {
    return;
  }
  if (position != best_position_ + 1) {
    return;
  }
  best_position_ = position;
  auto it = seen_.upper_bound(best_position_);
  while (it != seen_.end() && *it == best_position_ + 1) {
    ++best_position_;
    ++it;
  }
}

void SortedSetTracker::Reset() {
  seen_.clear();
  best_position_ = 0;
}

}  // namespace topk
