// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "tracker/bplus_tree_tracker.h"

#include <cassert>

namespace topk {

void BPlusTreeTracker::MarkSeen(Position position) {
  assert(position >= 1 && position <= list_size_);
  if (!tree_.Insert(position)) {
    return;  // already seen
  }
  if (position != best_position_ + 1) {
    return;  // the gap right after bp is still open
  }
  // Paper 5.2.2: advance bp along the leaf chain while successor positions
  // stay consecutive.
  best_position_ = position;
  BPlusTree::Iterator it = tree_.Seek(best_position_ + 1);
  while (it.Valid() && it.key() == best_position_ + 1) {
    ++best_position_;
    it.Next();
  }
}

bool BPlusTreeTracker::IsSeen(Position position) const {
  assert(position >= 1 && position <= list_size_);
  return position <= best_position_ || tree_.Contains(position);
}

void BPlusTreeTracker::Reset() {
  tree_.Clear();
  best_position_ = 0;
}

}  // namespace topk
