// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Access counting and the paper's execution-cost ("middleware cost") model.

#ifndef TOPK_LISTS_ACCESS_STATS_H_
#define TOPK_LISTS_ACCESS_STATS_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace topk {

/// Counts of the three access modes defined in Sections 2 and 5.1.
struct AccessStats {
  uint64_t sorted_accesses = 0;
  uint64_t random_accesses = 0;
  uint64_t direct_accesses = 0;

  /// Total number of list accesses (the paper's "number of accesses" metric,
  /// Section 6.1, used as the distributed-cost proxy).
  uint64_t TotalAccesses() const {
    return sorted_accesses + random_accesses + direct_accesses;
  }

  AccessStats& operator+=(const AccessStats& other) {
    sorted_accesses += other.sorted_accesses;
    random_accesses += other.random_accesses;
    direct_accesses += other.direct_accesses;
    return *this;
  }

  friend AccessStats operator+(AccessStats a, const AccessStats& b) {
    a += b;
    return a;
  }

  friend bool operator==(const AccessStats& a, const AccessStats& b) {
    return a.sorted_accesses == b.sorted_accesses &&
           a.random_accesses == b.random_accesses &&
           a.direct_accesses == b.direct_accesses;
  }

  std::string ToString() const;
};

/// The paper's cost model: execution cost = as*cs + ar*cr, with each direct
/// access billed like a random access (Section 6.1).
struct CostModel {
  double sorted_cost = 1.0;  // cs
  double random_cost = 1.0;  // cr (also the price of a direct access)

  /// The evaluation's setting: cs = 1, cr = log2(n). (The paper says "log n"
  /// without a base; log2 reproduces the magnitude of its cost axis.)
  static CostModel PaperDefault(size_t n) {
    CostModel model;
    model.sorted_cost = 1.0;
    model.random_cost = n > 1 ? std::log2(static_cast<double>(n)) : 1.0;
    return model;
  }

  /// Unit costs for both access kinds (cost == number of accesses).
  static CostModel Unit() { return CostModel{1.0, 1.0}; }

  /// Execution cost of a run with the given access counts.
  double ExecutionCost(const AccessStats& stats) const {
    return static_cast<double>(stats.sorted_accesses) * sorted_cost +
           static_cast<double>(stats.random_accesses + stats.direct_accesses) *
               random_cost;
  }
};

}  // namespace topk

#endif  // TOPK_LISTS_ACCESS_STATS_H_
