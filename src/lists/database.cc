// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/database.h"

#include <cstdint>
#include <cstring>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace topk {

namespace {

// Mirror-row stride for a payload of 12*m bytes: the smallest power-of-two
// slot (16, 32) that holds the payload, else the next multiple of the 64-byte
// cache line. Either way 64 is a multiple of the stride or vice versa, so a
// row starting on the aligned base occupies exactly ceil(payload/64) lines.
size_t ItemRowStride(size_t payload_bytes) {
  if (payload_bytes <= 16) {
    return 16;
  }
  if (payload_bytes <= 32) {
    return 32;
  }
  return (payload_bytes + 63) & ~size_t{63};
}

// Zero-filled blob for the mirror rows. On Linux: an anonymous mapping
// advised MADV_HUGEPAGE *before* the construction loop first touches it, so
// in THP "madvise" mode the kernel backs the interior 2 MiB-aligned chunks
// with hugepages at fault time (synchronously — no waiting for khugepaged).
// Falls back to operator new[] (value-initialized) if mmap is unavailable.
std::shared_ptr<unsigned char> AllocateRowBlob(size_t bytes) {
#ifdef __linux__
  void* map = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map != MAP_FAILED) {
    madvise(map, bytes, MADV_HUGEPAGE);  // best-effort hint
    return std::shared_ptr<unsigned char>(
        static_cast<unsigned char*>(map),
        [bytes](unsigned char* p) { munmap(p, bytes); });
  }
#endif
  return std::shared_ptr<unsigned char>(new unsigned char[bytes](),
                                        std::default_delete<unsigned char[]>());
}

}  // namespace

Database::Database(std::vector<SortedList> lists) : lists_(std::move(lists)) {
  const size_t m = lists_.size();
  const size_t n = num_items();
  positions_offset_ = m * sizeof(Score);
  row_stride_ = ItemRowStride(ItemRowPayloadBytes(m));
  // 63 spare bytes so the first row can sit on a 64-byte boundary (an mmap
  // base is page-aligned already; the new[] fallback is not).
  item_rows_ = AllocateRowBlob(n * row_stride_ + 63);
  const uintptr_t base = reinterpret_cast<uintptr_t>(item_rows_.get());
  unsigned char* rows = item_rows_.get() + (64 - base % 64) % 64;
  rows_base_ = rows;
  for (size_t j = 0; j < m; ++j) {
    const SortedList& list = lists_[j];
    for (ItemId item = 0; item < n; ++item) {
      const ItemLookup lookup = list.Lookup(item);
      unsigned char* row = rows + static_cast<size_t>(item) * row_stride_;
      std::memcpy(row + j * sizeof(Score), &lookup.score, sizeof(Score));
      std::memcpy(row + positions_offset_ + j * sizeof(Position),
                  &lookup.position, sizeof(Position));
    }
  }
}

Result<Database> Database::Make(std::vector<SortedList> lists) {
  if (lists.empty()) {
    return Status::Invalid("a database needs at least one list");
  }
  const size_t n = lists[0].size();
  if (n == 0) {
    return Status::Invalid("lists must be non-empty");
  }
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() != n) {
      return Status::Invalid("list ", i, " has ", lists[i].size(),
                             " items but list 0 has ", n);
    }
  }
  return Database(std::move(lists));
}

Result<Database> Database::FromScoreMatrix(
    const std::vector<std::vector<Score>>& scores) {
  if (scores.empty()) {
    return Status::Invalid("score matrix has no rows");
  }
  const size_t m = scores[0].size();
  if (m == 0) {
    return Status::Invalid("score matrix has no columns");
  }
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i].size() != m) {
      return Status::Invalid("score matrix row ", i, " has ", scores[i].size(),
                             " columns, expected ", m);
    }
  }
  std::vector<SortedList> lists;
  lists.reserve(m);
  std::vector<Score> column(scores.size());
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < scores.size(); ++i) {
      column[i] = scores[i][j];
    }
    lists.push_back(SortedList::FromScores(column));
  }
  return Make(std::move(lists));
}

bool Database::AllScoresNonNegative() const {
  for (const SortedList& list : lists_) {
    if (!list.AllScoresNonNegative()) {
      return false;
    }
  }
  return true;
}

}  // namespace topk
