// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/database.h"

namespace topk {

Database::Database(std::vector<SortedList> lists) : lists_(std::move(lists)) {
  const size_t m = lists_.size();
  const size_t n = num_items();
  item_scores_.resize(n * m);
  item_positions_.resize(n * m);
  for (size_t j = 0; j < m; ++j) {
    const SortedList& list = lists_[j];
    for (ItemId item = 0; item < n; ++item) {
      const ItemLookup lookup = list.Lookup(item);
      item_scores_[static_cast<size_t>(item) * m + j] = lookup.score;
      item_positions_[static_cast<size_t>(item) * m + j] = lookup.position;
    }
  }
}

Result<Database> Database::Make(std::vector<SortedList> lists) {
  if (lists.empty()) {
    return Status::Invalid("a database needs at least one list");
  }
  const size_t n = lists[0].size();
  if (n == 0) {
    return Status::Invalid("lists must be non-empty");
  }
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() != n) {
      return Status::Invalid("list ", i, " has ", lists[i].size(),
                             " items but list 0 has ", n);
    }
  }
  return Database(std::move(lists));
}

Result<Database> Database::FromScoreMatrix(
    const std::vector<std::vector<Score>>& scores) {
  if (scores.empty()) {
    return Status::Invalid("score matrix has no rows");
  }
  const size_t m = scores[0].size();
  if (m == 0) {
    return Status::Invalid("score matrix has no columns");
  }
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i].size() != m) {
      return Status::Invalid("score matrix row ", i, " has ", scores[i].size(),
                             " columns, expected ", m);
    }
  }
  std::vector<SortedList> lists;
  lists.reserve(m);
  std::vector<Score> column(scores.size());
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < scores.size(); ++i) {
      column[i] = scores[i][j];
    }
    lists.push_back(SortedList::FromScores(column));
  }
  return Make(std::move(lists));
}

bool Database::AllScoresNonNegative() const {
  for (const SortedList& list : lists_) {
    if (!list.AllScoresNonNegative()) {
      return false;
    }
  }
  return true;
}

}  // namespace topk
