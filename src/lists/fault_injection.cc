// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/fault_injection.h"

#include <cassert>

namespace topk {
namespace {

// Distinct salts keep the transient / spike / death draws independent even
// though they hash the same (seed, list, counter) tuple.
constexpr uint64_t kTransientSalt = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kSpikeSalt = 0xbf58476d1ce4e5b9ull;
constexpr uint64_t kDeathSalt = 0x94d049bb133111ebull;

// splitmix64 finalizer: a high-quality 64-bit mix, cheap enough to run per
// access. All fault decisions are pure functions of its output.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform draw in [0, 1) from a hashed tuple.
double Draw(uint64_t seed, uint64_t list, uint64_t counter, uint64_t attempt,
            uint64_t salt) {
  const uint64_t h =
      Mix(seed ^ Mix(list + salt) ^ Mix(counter * 0x2545f4914f6cdd1dull) ^
          Mix(attempt + 0xd6e8feb86659fd93ull));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Status FaultPlan::Validate(const char* algorithm, size_t num_lists) const {
  const auto rate_ok = [](double rate) { return rate >= 0.0 && rate <= 1.0; };
  if (!rate_ok(transient_rate)) {
    return Status::Invalid(algorithm,
                           ": fault plan transient_rate must be in [0, 1]; ",
                           "got transient_rate = ", transient_rate);
  }
  if (!rate_ok(spike_rate)) {
    return Status::Invalid(algorithm,
                           ": fault plan spike_rate must be in [0, 1]; ",
                           "got spike_rate = ", spike_rate);
  }
  if (!rate_ok(death_rate)) {
    return Status::Invalid(algorithm,
                           ": fault plan death_rate must be in [0, 1]; ",
                           "got death_rate = ", death_rate);
  }
  if (max_retries < 1) {
    return Status::Invalid(algorithm, ": fault plan max_retries must be >= 1; ",
                           "got max_retries = ", max_retries);
  }
  if (spike_ms < 0.0) {
    return Status::Invalid(algorithm, ": fault plan spike_ms must be >= 0; ",
                           "got spike_ms = ", spike_ms);
  }
  if (death_min_accesses < 1 || death_max_accesses < death_min_accesses) {
    return Status::Invalid(
        algorithm,
        ": fault plan death window must satisfy 1 <= death_min_accesses <= "
        "death_max_accesses; got [",
        death_min_accesses, ", ", death_max_accesses, "]");
  }
  if (kill_list != kNoList) {
    if (kill_list >= num_lists) {
      return Status::Invalid(algorithm, ": fault plan kill_list = ", kill_list,
                             " exceeds the last list index ", num_lists - 1);
    }
    if (kill_after_accesses < 1) {
      return Status::Invalid(
          algorithm,
          ": fault plan kill_after_accesses must be >= 1 (every list serves "
          "its first access); got kill_after_accesses = ",
          kill_after_accesses);
    }
  }
  return Status::OK();
}

void FaultInjectingAccessEngine::Arm(AccessEngine* inner,
                                     const FaultPlan& plan) {
  inner_ = inner;
  plan_ = plan;
  stats_ = FaultStats{};
  armed_ = true;
  const size_t m = inner->database().num_lists();
  touches_.assign(m, 0);
  death_at_.assign(m, ~0ull);
  alive_.assign(m, 1);
  for (size_t i = 0; i < m; ++i) {
    if (plan_.death_rate > 0.0 &&
        Draw(plan_.seed, i, 0, 0, kDeathSalt) < plan_.death_rate) {
      // The death point itself comes from an independent draw so the rate
      // and the position are not correlated.
      const double u = Draw(plan_.seed, i, 1, 1, kDeathSalt);
      const uint64_t span = plan_.death_max_accesses -
                            plan_.death_min_accesses + 1;
      death_at_[i] = plan_.death_min_accesses +
                     static_cast<uint64_t>(u * static_cast<double>(span));
    }
    if (plan_.kill_list == i && plan_.kill_after_accesses < death_at_[i]) {
      death_at_[i] = plan_.kill_after_accesses;
    }
  }
}

void FaultInjectingAccessEngine::Roll(size_t list_index) {
  assert(armed_ && alive_[list_index]);
  const uint64_t t = ++touches_[list_index];
  if (plan_.transient_rate > 0.0) {
    int attempt = 0;
    while (attempt < plan_.max_retries &&
           Draw(plan_.seed, list_index, t, static_cast<uint64_t>(attempt),
                kTransientSalt) < plan_.transient_rate) {
      ++stats_.transient_faults;
      ++attempt;
    }
    if (attempt == plan_.max_retries) {
      ++stats_.exhausted_retries;
    }
  }
  if (plan_.spike_rate > 0.0 &&
      Draw(plan_.seed, list_index, t, 0, kSpikeSalt) < plan_.spike_rate) {
    ++stats_.latency_spikes;
    stats_.virtual_latency_ms += plan_.spike_ms;
  }
  // The access that reaches the death point is still served; the list is
  // dead from the next ListAlive() check on.
  if (t >= death_at_[list_index]) {
    alive_[list_index] = 0;
    ++stats_.dead_lists;
  }
}

}  // namespace topk
