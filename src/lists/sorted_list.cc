// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/sorted_list.h"

#include <algorithm>

namespace topk {

namespace {

// Descending by score; ascending item id breaks ties deterministically.
bool DescendingScoreOrder(const ListEntry& a, const ListEntry& b) {
  if (a.score != b.score) {
    return a.score > b.score;
  }
  return a.item < b.item;
}

}  // namespace

SortedList SortedList::FromScores(const std::vector<Score>& scores) {
  SortedList list;
  list.entries_.resize(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    list.entries_[i] = ListEntry{static_cast<ItemId>(i), scores[i]};
  }
  std::sort(list.entries_.begin(), list.entries_.end(), DescendingScoreOrder);
  list.BuildIndex();
  return list;
}

Result<SortedList> SortedList::FromEntries(std::vector<ListEntry> entries) {
  const size_t n = entries.size();
  std::vector<bool> seen(n, false);
  for (const ListEntry& e : entries) {
    if (e.item >= n) {
      return Status::Invalid("item id ", e.item, " out of range for list of ",
                             n, " items");
    }
    if (seen[e.item]) {
      return Status::Invalid("item id ", e.item, " appears more than once");
    }
    seen[e.item] = true;
  }
  SortedList list;
  list.entries_ = std::move(entries);
  std::sort(list.entries_.begin(), list.entries_.end(), DescendingScoreOrder);
  list.BuildIndex();
  return list;
}

Result<ListEntry> SortedList::EntryAtChecked(Position position) const {
  if (position == kInvalidPosition || position > entries_.size()) {
    return Status::OutOfRange("position ", position, " not in [1, ",
                              entries_.size(), "]");
  }
  return entries_[position - 1];
}

Result<ItemLookup> SortedList::LookupChecked(ItemId item) const {
  if (item >= position_of_.size()) {
    return Status::KeyError("item ", item, " not in list of ",
                            position_of_.size(), " items");
  }
  return Lookup(item);
}

void SortedList::BuildIndex() {
  position_of_.assign(entries_.size(), kInvalidPosition);
  for (size_t i = 0; i < entries_.size(); ++i) {
    position_of_[entries_[i].item] = static_cast<Position>(i + 1);
  }
}

}  // namespace topk
