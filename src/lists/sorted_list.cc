// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/sorted_list.h"

#include <algorithm>

namespace topk {

namespace {

// Descending by score; ascending item id breaks ties deterministically.
bool DescendingScoreOrder(const ListEntry& a, const ListEntry& b) {
  if (a.score != b.score) {
    return a.score > b.score;
  }
  return a.item < b.item;
}

}  // namespace

SortedList SortedList::FromScores(const std::vector<Score>& scores) {
  std::vector<ListEntry> entries(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    entries[i] = ListEntry{static_cast<ItemId>(i), scores[i]};
  }
  SortedList list;
  list.BuildFrom(std::move(entries));
  return list;
}

Result<SortedList> SortedList::FromEntries(std::vector<ListEntry> entries) {
  const size_t n = entries.size();
  std::vector<bool> seen(n, false);
  for (const ListEntry& e : entries) {
    if (e.item >= n) {
      return Status::Invalid("item id ", e.item, " out of range for list of ",
                             n, " items");
    }
    if (seen[e.item]) {
      return Status::Invalid("item id ", e.item, " appears more than once");
    }
    seen[e.item] = true;
  }
  SortedList list;
  list.BuildFrom(std::move(entries));
  return list;
}

Result<ListEntry> SortedList::EntryAtChecked(Position position) const {
  if (position == kInvalidPosition || position > items_.size()) {
    return Status::OutOfRange("position ", position, " not in [1, ",
                              items_.size(), "]");
  }
  return EntryAt(position);
}

Result<ItemLookup> SortedList::LookupChecked(ItemId item) const {
  if (item >= score_by_item_.size()) {
    return Status::KeyError("item ", item, " not in list of ",
                            score_by_item_.size(), " items");
  }
  return Lookup(item);
}

void SortedList::BuildFrom(std::vector<ListEntry> entries) {
  std::sort(entries.begin(), entries.end(), DescendingScoreOrder);
  const size_t n = entries.size();
  items_.resize(n);
  scores_.resize(n);
  score_by_item_.resize(n);
  position_by_item_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    items_[i] = entries[i].item;
    scores_[i] = entries[i].score;
    score_by_item_[entries[i].item] = entries[i].score;
    position_by_item_[entries[i].item] = static_cast<Position>(i + 1);
  }
}

}  // namespace topk
