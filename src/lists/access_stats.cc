// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/access_stats.h"

#include <sstream>

namespace topk {

std::string AccessStats::ToString() const {
  std::ostringstream oss;
  oss << "sorted=" << sorted_accesses << " random=" << random_accesses
      << " direct=" << direct_accesses << " total=" << TotalAccesses();
  return oss.str();
}

}  // namespace topk
