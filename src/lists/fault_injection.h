// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// FaultInjectingAccessEngine: a decorator over AccessEngine that injects a
// seeded, deterministic fault schedule into the access stream — transient
// errors (absorbed by bounded retry inside the engine), latency spikes
// (charged as virtual milliseconds against the governor's deadline), and
// permanent per-list death.
//
// Determinism is the whole point: every fault decision is a pure hash of
// (seed, list, per-list access counter[, retry attempt]), so the same plan
// replays the same schedule access-for-access, across reruns and across
// warmed contexts. Nothing here reads a clock or an RNG stream shared with
// anything else.
//
// Death contract: a list serves every access up to its precomputed death
// point and then flips to dead — callers must check ListAlive() *before*
// accessing (the algorithm loops do this through the FaultIo policy), so a
// fault never surfaces as an exception or a torn read. Transient faults are
// total: a burst that exhausts the retry budget is counted (see
// FaultStats::exhausted_retries) and the final attempt is deemed served —
// "absorbed by bounded retry" is literal, and only the schedule's permanent
// deaths remove data.

#ifndef TOPK_LISTS_FAULT_INJECTION_H_
#define TOPK_LISTS_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lists/access_engine.h"

namespace topk {

/// A seeded, deterministic fault schedule. Rates are per-access (or per-list
/// for death_rate) probabilities in [0, 1]; a default-constructed plan
/// injects nothing.
struct FaultPlan {
  static constexpr size_t kNoList = static_cast<size_t>(-1);

  /// Seed of the schedule; same seed + same plan => same faults, always.
  uint64_t seed = 1;

  /// Probability that one access attempt fails transiently. The engine
  /// retries (with deterministic "backoff" charged as retry counts) up to
  /// max_retries times; see the death contract above.
  double transient_rate = 0.0;
  int max_retries = 3;

  /// Probability that an access suffers a latency spike of spike_ms virtual
  /// milliseconds (charged against the governor's wall-clock deadline).
  double spike_rate = 0.0;
  double spike_ms = 1.0;

  /// Probability that a list dies permanently, and the access-count window
  /// [death_min_accesses, death_max_accesses] in which its (deterministic)
  /// death point is drawn. Each list serves at least one access.
  double death_rate = 0.0;
  uint64_t death_min_accesses = 1;
  uint64_t death_max_accesses = 1024;

  /// Deterministic targeted kill: list `kill_list` dies permanently after
  /// serving exactly `kill_after_accesses` accesses (>= 1). kNoList disables.
  size_t kill_list = kNoList;
  uint64_t kill_after_accesses = 1;

  /// True when the plan injects anything at all.
  bool enabled() const {
    return transient_rate > 0.0 || spike_rate > 0.0 || death_rate > 0.0 ||
           kill_list != kNoList;
  }

  /// Validates the plan for `algorithm` against a database with `num_lists`
  /// lists; messages name the algorithm, the knob and the observed value.
  Status Validate(const char* algorithm, size_t num_lists) const;
};

/// Counters of what the schedule actually injected during one arm period.
struct FaultStats {
  uint64_t transient_faults = 0;   ///< failed attempts absorbed by retry
  uint64_t exhausted_retries = 0;  ///< bursts that hit the retry budget
  uint64_t latency_spikes = 0;
  double virtual_latency_ms = 0.0;  ///< injected latency, charged to deadline
  uint32_t dead_lists = 0;          ///< lists currently permanently dead
};

/// The decorator. One instance lives in every ExecutionContext; Arm() binds
/// it to the context's engine and precomputes each list's death point, and
/// all storage is retained across queries (zero allocations once warmed).
class FaultInjectingAccessEngine {
 public:
  FaultInjectingAccessEngine() = default;

  /// Arms the schedule for one query over `inner`'s current database.
  /// Resets per-list counters and draws each list's death point from the
  /// plan. Call Disarm() instead when no faults are wanted.
  void Arm(AccessEngine* inner, const FaultPlan& plan);

  /// Disarms without touching retained storage; accessors keep working
  /// (everything reports alive / zero faults).
  void Disarm() { armed_ = false; }

  bool armed() const { return armed_; }

  /// True while `list_index` has not yet died. Callers must check before
  /// every access on a fault-aware path.
  bool ListAlive(size_t list_index) const {
    return !armed_ || alive_[list_index] != 0;
  }

  uint32_t dead_lists() const { return stats_.dead_lists; }
  double virtual_latency_ms() const { return stats_.virtual_latency_ms; }
  const FaultStats& fault_stats() const { return stats_; }

  /// Access counts of the underlying engine (cumulative across a failover).
  const AccessStats& stats() const { return inner_->stats(); }

  // The three access modes. Precondition: ListAlive(list_index). Each rolls
  // the fault schedule (possibly spending retries, charging spikes, or
  // scheduling the list's death *after* this access) and then delegates.
  AccessedEntry SortedAccess(size_t list_index) {
    Roll(list_index);
    return inner_->SortedAccess(list_index);
  }
  ItemLookup RandomAccess(size_t list_index, ItemId item) {
    Roll(list_index);
    return inner_->RandomAccess(list_index, item);
  }
  AccessedEntry DirectAccess(size_t list_index, Position position) {
    Roll(list_index);
    return inner_->DirectAccess(list_index, position);
  }

  bool SortedExhausted(size_t list_index) const {
    return inner_->SortedExhausted(list_index);
  }

  AccessEngine* inner() const { return inner_; }

 private:
  void Roll(size_t list_index);

  AccessEngine* inner_ = nullptr;
  FaultPlan plan_;
  FaultStats stats_;
  bool armed_ = false;
  std::vector<uint64_t> touches_;   // accesses served per list
  std::vector<uint64_t> death_at_;  // list dies after serving this many
  std::vector<uint8_t> alive_;
};

}  // namespace topk

#endif  // TOPK_LISTS_FAULT_INJECTION_H_
